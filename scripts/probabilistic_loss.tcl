# Probabilistic fault injection: drop 10% of everything, and delay another
# 10% by a normally distributed amount (the paper's dst_normal library).
if {[coin 0.1]} {
    xDrop cur_msg
} elseif {[coin 0.1]} {
    set ms [expr {int([dst_normal 50 20])}]
    if {$ms > 0} { xDelay $ms }
}
