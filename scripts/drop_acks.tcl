# The paper's §3 example script, verbatim in structure: drop all ACKs.
# Message types come from the packet stub installed in the PFI layer.
puts -nonewline "receive filter: "
msg_log cur_msg
set type [msg_type cur_msg]
if {$type == "ACK"} {
    xDrop cur_msg
}
