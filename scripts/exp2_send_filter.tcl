# TCP experiment 2 (Table 2 / Figure 4): delay each outgoing ACK for 30
# ACKs in a row, then tell the receive filter to start dropping (the
# cross-interpreter communication the paper describes).
if {[msg_type] == "ACK"} {
    incr acks
    if {$acks <= 30} { xDelay 3000 }
    if {$acks == 30} { peer_set dropping 1 }
}
