#!/usr/bin/env sh
# Tracked bench pipeline: runs the ablation benchmark groups
# (script_interpreter, pfi_interposition_overhead, congestion_ablation,
# sim_engine, campaign_throughput) and aggregates the per-bench JSON
# records into BENCH_6.json at the repository root — group -> bench ->
# median ns/op (+ throughput where the bench declares one), so one report
# carries the PR-1 interpreter/engine benches, the fleet scaling rows
# (jobs 1/2/4/8, Send arena worlds), the snapshot/fork ablation
# (gmp_explore_snapshots_{on,off} — the replay-savings exec/s ratio),
# the equivalence-pruning ablation (gmp_explore_pruning_{on,off}), and
# the semantic-analysis ablation (gmp_explore_semantic_{on,off} — saved
# executions net of the per-candidate quotient analysis).
# If scripts/bench_baseline.json exists (the recorded
# pre-compile-once baseline, measured back-to-back with the optimized
# build on the same machine), each entry also carries the baseline median
# and the speedup factor. A `_meta` entry records the host's CPU count —
# fleet scaling rows are meaningless without it.
#
# Usage: scripts/bench.sh [extra cargo-bench filter args]
# Knobs: PFI_BENCH_SAMPLE_MS, PFI_BENCH_WARMUP_MS, PFI_BENCH_SAMPLES
#        (see crates/criterion), BENCH_OUT (default: BENCH_6.json).

set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
raw="$repo/target/pfi-bench"
out="${BENCH_OUT:-$repo/BENCH_6.json}"

rm -rf "$raw"
PFI_BENCH_OUT="$raw" cargo bench --manifest-path "$repo/Cargo.toml" \
    -p pfi-bench --bench ablations -- "$@"

python3 - "$raw" "$repo/scripts/bench_baseline.json" "$out" <<'PY'
import json, os, pathlib, sys

raw, baseline_path, out = map(pathlib.Path, sys.argv[1:4])

baseline = {}
if baseline_path.exists():
    for group, benches in json.loads(baseline_path.read_text()).items():
        for bench, rec in benches.items():
            baseline[(group, bench)] = rec.get("median_ns")

result = {}
for f in sorted(raw.glob("*/*.json")):
    d = json.loads(f.read_text())
    entry = {"median_ns": d["median_ns"], "mean_ns": d["mean_ns"]}
    if d.get("elements_per_sec") is not None:
        entry["elements_per_sec"] = d["elements_per_sec"]
    base = baseline.get((d["group"], d["bench"]))
    if base:
        entry["baseline_median_ns"] = base
        entry["speedup"] = round(base / d["median_ns"], 2)
    result.setdefault(d["group"], {})[d["bench"]] = entry

result["_meta"] = {"host_cpus": os.cpu_count()}
out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
print(f"wrote {out} (host_cpus={os.cpu_count()})")
for group, benches in sorted(result.items()):
    if group == "_meta":
        continue
    for bench, rec in sorted(benches.items()):
        speed = f'  {rec["speedup"]:.2f}x vs baseline' if "speedup" in rec else ""
        print(f'{group}/{bench}: {rec["median_ns"]:.1f} ns/op{speed}')
PY
