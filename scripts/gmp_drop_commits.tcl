# GMP experiment 1 (Table 5): drop incoming COMMIT messages so this daemon
# parks in IN_TRANSITION.
if {[msg_type] == "COMMIT"} { xDrop cur_msg }
