# TCP experiment 1 (Table 1): log each packet with a timestamp, let thirty
# through, then drop everything.
msg_log cur_msg
incr count
if {$count > 30} { xDrop cur_msg }
