//! Apply the paper's §2.2 failure models to a live TCP transfer and watch
//! the protocol absorb (or not absorb) each one.
//!
//! ```text
//! cargo run --release --example byzantine_playground
//! ```

use pfi::core::{faults, Filter, PfiLayer};
use pfi::sim::{SimDuration, World};
use pfi::tcp::{TcpControl, TcpEvent, TcpLayer, TcpProfile, TcpReply, TcpStub};

/// Runs a 50 KiB transfer through the given receive-side filter and reports
/// what happened.
fn run_with_filter(label: &str, filter: Filter) {
    let mut world = World::new(2024);
    let client = world.add_node(vec![Box::new(TcpLayer::new(TcpProfile::sunos_4_1_3()))]);
    let pfi = PfiLayer::new(Box::new(TcpStub)).with_recv_filter(filter);
    let server = world.add_node(vec![
        Box::new(TcpLayer::new(TcpProfile::rfc_reference())),
        Box::new(pfi),
    ]);
    world.control::<TcpReply>(server, 0, TcpControl::Listen { port: 80 });
    let conn = world
        .control::<TcpReply>(
            client,
            0,
            TcpControl::Open {
                local_port: 0,
                remote: server,
                remote_port: 80,
            },
        )
        .expect_conn();
    world.run_for(SimDuration::from_millis(100));

    let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
    world.control::<TcpReply>(
        client,
        0,
        TcpControl::Send {
            conn,
            data: payload.clone(),
        },
    );
    world.run_for(SimDuration::from_secs(1_200));

    let sconn = match world.control::<TcpReply>(server, 0, TcpControl::AcceptedOn { port: 80 }) {
        TcpReply::MaybeConn(Some(c)) => c,
        _ => {
            println!("{label:<28} handshake never completed");
            return;
        }
    };
    let got = world
        .control::<TcpReply>(server, 0, TcpControl::RecvTake { conn: sconn })
        .expect_data();
    let stats = world
        .control::<TcpReply>(client, 0, TcpControl::Stats { conn })
        .expect_stats();
    let decode_failures = world
        .trace()
        .events_of::<TcpEvent>(Some(server))
        .iter()
        .filter(|(_, e)| matches!(e, TcpEvent::DecodeFailed))
        .count();
    let intact = got == payload;
    println!(
        "{label:<28} delivered {:>6}/{} bytes intact={} retransmissions={} checksum-drops={} elapsed={}",
        got.len(),
        payload.len(),
        intact,
        stats.retransmissions,
        decode_failures,
        world.now(),
    );
}

fn main() {
    println!("50 KiB transfer under each failure model (receive-side filter):\n");

    run_with_filter("baseline (no faults)", faults::pass_all());
    run_with_filter("receive omission p=0.2", faults::omission(0.2));
    run_with_filter("receive omission p=0.5", faults::omission(0.5));
    run_with_filter(
        "timing: +N(80ms, 40ms)",
        faults::timing(faults::DelayDist::Normal {
            mean_ms: 80.0,
            var_ms: 40.0,
        }),
    );
    run_with_filter(
        "byzantine (corrupt 20%)",
        faults::byzantine(faults::ByzantineConfig {
            corrupt: 0.2,
            duplicate: 0.1,
            drop: 0.05,
            reorder: 0.1,
            reorder_window: SimDuration::from_millis(50),
        }),
    );
    // A scripted fault: corrupt the advertised window of every 10th ACK —
    // the checksum is re-computed by the stub, so TCP *believes* the bogus
    // window. (Fields edited via msg_set_field stay wire-consistent.)
    run_with_filter(
        "scripted window shrink",
        Filter::script(
            r#"
            incr n
            if {[msg_type] == "DATA" && $n % 10 == 0} {
                msg_set_field window 1
            }
        "#,
        )
        .unwrap(),
    );

    println!(
        "\nTCP's checksum catches byte corruption (counted as checksum-drops) and\n\
         retransmission repairs every loss. Moderate omission and timing faults are\n\
         absorbed transparently; under heavy loss a single-timer 1995 TCP (no fast\n\
         retransmit, head-of-line recovery only) slows to a crawl — every byte that\n\
         does arrive is still intact and in order."
    );
}
