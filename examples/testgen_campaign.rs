//! Automatic test-script generation — the paper's future work (ii),
//! realised: generate a fault-injection campaign from a protocol
//! specification, run it against both the buggy and the fixed group
//! membership implementation, and diff the verdicts.
//!
//! ```text
//! cargo run --release --example testgen_campaign
//! ```

use pfi::core::Direction;
use pfi::gmp::GmpBugs;
use pfi::testgen::{generate, run_campaign, FaultKind, GmpTarget, ProtocolSpec, Verdict};

fn main() {
    let spec = ProtocolSpec::gmp();
    let campaign = generate(
        &spec,
        &FaultKind::default_matrix(),
        &[Direction::Send, Direction::Receive],
    );
    println!(
        "generated {} cases from the {} specification ({} message types × {} faults × 2 directions)\n",
        campaign.len(),
        campaign.protocol,
        spec.messages.len(),
        FaultKind::default_matrix().len(),
    );
    println!("a generated script (gmp/send/drop/HEARTBEAT):");
    let sample = campaign
        .cases
        .iter()
        .find(|c| c.id == "gmp/send/drop/HEARTBEAT")
        .unwrap();
    for line in sample.script.lines() {
        println!("    {line}");
    }

    println!("\nrunning the campaign against the FIXED implementation…");
    let fixed = run_campaign(
        &GmpTarget {
            bugs: GmpBugs::none(),
            fault_secs: 60,
        },
        &campaign,
    );
    println!("…and against the implementation WITH the paper's bugs…\n");
    let buggy = run_campaign(
        &GmpTarget {
            bugs: GmpBugs::all(),
            fault_secs: 60,
        },
        &campaign,
    );

    let mut pass = 0;
    let mut degraded = 0;
    let mut found = Vec::new();
    for (f, b) in fixed.iter().zip(&buggy) {
        match &f.verdict {
            Verdict::Pass => pass += 1,
            Verdict::Degraded(_) => degraded += 1,
            Verdict::Violated(v) => panic!("fixed implementation violated an invariant: {v}"),
            Verdict::Invalid(v) => panic!("grid case refused to install: {v}"),
            Verdict::Crashed(v) => panic!("fixed implementation crashed: {v}"),
            Verdict::Hung(v) => panic!("fixed implementation hung: {v}"),
        }
        if b.verdict.is_violation() && !f.verdict.is_violation() {
            found.push((b.case_id.clone(), b.verdict.clone()));
        }
    }
    println!("fixed implementation:  {pass} pass, {degraded} degraded, 0 violations");
    println!(
        "buggy implementation:  {} cases exposed a bug the fixed version survives:\n",
        found.len()
    );
    for (id, verdict) in found.iter().take(10) {
        println!("  {id:<44} {verdict:?}");
    }
    if found.len() > 10 {
        println!("  … and {} more", found.len() - 10);
    }
    assert!(
        !found.is_empty(),
        "the campaign must discover the injected bugs"
    );
}
