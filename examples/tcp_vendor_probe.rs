//! Probe the four 1995 vendor TCP personalities the way the paper did:
//! black-hole the connection after 30 packets and watch each stack's
//! retransmission fingerprint, then check keep-alive behaviour.
//!
//! ```text
//! cargo run --release --example tcp_vendor_probe
//! ```

use pfi::experiments::report::{series, yn, Table};
use pfi::experiments::{tcp_exp1, tcp_exp3};

fn main() {
    println!("Probing vendor TCP retransmission behaviour (paper experiment 1)…\n");
    let mut t = Table::new(
        "Retransmission fingerprints",
        &[
            "Vendor",
            "Retx",
            "Cap (s)",
            "RST on timeout",
            "Backoff series (s)",
        ],
    );
    for row in tcp_exp1::run_all() {
        t.row(&[
            row.vendor.clone(),
            row.retransmissions.to_string(),
            format!("{:.0}", row.rto_upper_bound_secs),
            yn(row.reset_sent),
            series(&row.intervals, 7),
        ]);
    }
    println!("{}", t.render());

    println!("Probing keep-alive behaviour (paper experiment 3)…\n");
    let mut k = Table::new(
        "Keep-alive fingerprints",
        &[
            "Vendor",
            "First probe (s)",
            "Probes",
            "Garbage byte",
            "Spec violation",
        ],
    );
    for row in tcp_exp3::run_all() {
        k.row(&[
            row.vendor.clone(),
            format!("{:.0}", row.first_probe_secs),
            row.probes.to_string(),
            yn(row.garbage_bytes == 1),
            yn(row.spec_violation),
        ]);
    }
    println!("{}", k.render());

    println!(
        "Identification: a stack that probes at 6752 s with exponential keep-alive \
         backoff, retransmits data only 9 times from a 330 ms floor, and never sends \
         a reset is Solaris 2.3; 12 retransmissions to a 64 s cap with a RST and a \
         one-garbage-byte probe is SunOS 4.1.3; the same without the garbage byte is \
         AIX 3.2.3 or NeXT Mach."
    );
}
