//! Quickstart: interpose a PFI layer and fault-inject a protocol with a
//! Tcl script, without touching the protocol's code.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pfi::core::{Filter, PfiControl, PfiLayer, PfiReply, RawStub};
use pfi::sim::{Context, Layer, Message, NodeId, SimDuration, World};
use std::any::Any;

/// A tiny request/response protocol so there is something to disturb: the
/// client sends `PING n`, the server answers `PONG n`.
struct PingClient {
    responses: Vec<String>,
}

struct SendPing(NodeId, u32);

impl Layer for PingClient {
    fn name(&self) -> &'static str {
        "ping-client"
    }
    fn push(&mut self, msg: Message, ctx: &mut Context<'_>) {
        ctx.send_down(msg);
    }
    fn pop(&mut self, msg: Message, _ctx: &mut Context<'_>) {
        self.responses
            .push(String::from_utf8_lossy(msg.bytes()).to_string());
    }
    fn control(&mut self, op: Box<dyn Any>, ctx: &mut Context<'_>) -> Box<dyn Any> {
        if let Ok(op) = op.downcast::<SendPing>() {
            let SendPing(dst, n) = *op;
            ctx.send_down(Message::new(
                ctx.node(),
                dst,
                format!("PING {n}").as_bytes(),
            ));
            Box::new(())
        } else {
            Box::new(self.responses.clone())
        }
    }
}

struct PongServer;

impl Layer for PongServer {
    fn name(&self) -> &'static str {
        "pong-server"
    }
    fn push(&mut self, msg: Message, ctx: &mut Context<'_>) {
        ctx.send_down(msg);
    }
    fn pop(&mut self, msg: Message, ctx: &mut Context<'_>) {
        let text = String::from_utf8_lossy(msg.bytes()).to_string();
        if let Some(n) = text.strip_prefix("PING ") {
            ctx.send_down(Message::new(
                ctx.node(),
                msg.src(),
                format!("PONG {n}").as_bytes(),
            ));
        }
    }
}

fn main() {
    let mut world = World::new(7);

    // The client stack carries a PFI layer below the protocol. Its send
    // filter is a Tcl script: log every packet, drop every third ping, and
    // delay every fourth by 250 ms — state (`count`) persists across
    // messages because it lives in the filter's interpreter.
    let pfi = PfiLayer::new(Box::new(RawStub)).with_send_filter(
        Filter::script(
            r#"
            msg_log cur_msg
            incr count
            if {$count % 3 == 0} {
                xDrop cur_msg
            } elseif {$count % 4 == 0} {
                xDelay 250
            }
        "#,
        )
        .unwrap(),
    );

    let client = world.add_node(vec![
        Box::new(PingClient {
            responses: Vec::new(),
        }),
        Box::new(pfi),
    ]);
    let server = world.add_node(vec![Box::new(PongServer)]);

    for n in 0..12u32 {
        let at = SimDuration::from_millis(100 * n as u64);
        world.schedule_in(at, move |w| {
            w.control::<()>(client, 0, SendPing(server, n));
        });
    }
    world.run_for(SimDuration::from_secs(5));

    let responses: Vec<String> = world.control(client, 0, ());
    println!("responses received ({}):", responses.len());
    for r in &responses {
        println!("  {r}");
    }

    let log = world
        .control::<PfiReply>(client, 1, PfiControl::TakeLog)
        .expect_log();
    println!("\npackets seen by the send filter ({}):", log.len());
    for entry in log.iter().take(5) {
        println!("  [{}] {} {}", entry.time, entry.dir, entry.summary);
    }
    println!("  …");

    assert_eq!(log.len(), 12, "every ping passed the filter");
    assert_eq!(responses.len(), 8, "every third ping was dropped");
}
