//! An interactive REPL for the PFI scripting language (the Tcl subset the
//! fault-injection filters are written in).
//!
//! ```text
//! cargo run --example script_repl
//! echo 'expr {6 * 7}' | cargo run --example script_repl
//! ```

use pfi::script::{Interp, NoHost};
use std::io::{self, BufRead, Write};

fn main() {
    let mut interp = Interp::new();
    interp.set_fuel_limit(1_000_000);
    let stdin = io::stdin();
    let interactive = atty_stdin();
    if interactive {
        println!("pfi-script REPL — a Tcl subset. Ctrl-D to exit.");
        println!("try: proc fib {{n}} {{ if {{$n < 2}} {{ return $n }}; expr {{[fib [expr {{$n-1}}]] + [fib [expr {{$n-2}}]]}} }}");
    }
    let mut pending = String::new();
    loop {
        if interactive {
            print!("{}", if pending.is_empty() { "% " } else { "> " });
            io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        pending.push_str(&line);
        // Continue reading while braces are unbalanced (multi-line procs).
        if open_braces(&pending) > 0 {
            continue;
        }
        let src = std::mem::take(&mut pending);
        if src.trim().is_empty() {
            continue;
        }
        match interp.eval(&mut NoHost, &src) {
            Ok(result) => {
                let out = interp.take_output();
                if !out.is_empty() {
                    print!("{out}");
                }
                if !result.is_empty() {
                    println!("{result}");
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
}

fn open_braces(s: &str) -> i64 {
    let mut depth = 0i64;
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                let _ = chars.next();
            }
            '{' => depth += 1,
            '}' => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Crude interactivity check without extra dependencies: assume piped input
/// when the `PFI_REPL_BATCH` variable is set, interactive otherwise.
fn atty_stdin() -> bool {
    std::env::var_os("PFI_REPL_BATCH").is_none()
}
