//! Load a fault-injection filter script from disk and apply it to a live
//! TCP transfer — the paper's central workflow: "testing different failure
//! scenarios and creating different tests is accomplished simply by
//! invoking different scripts", with no recompilation.
//!
//! ```text
//! cargo run --example custom_filter -- scripts/exp1_recv_filter.tcl
//! cargo run --example custom_filter -- scripts/probabilistic_loss.tcl
//! cargo run --example custom_filter -- my_own_filter.tcl
//! ```

use pfi::core::{Filter, PfiControl, PfiLayer, PfiReply};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "scripts/exp1_recv_filter.tcl".into());
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    run(&path, &source);
}

fn run(path: &str, source: &str) {
    use pfi::sim::{SimDuration, World};
    use pfi::tcp::{TcpControl, TcpLayer, TcpProfile, TcpReply, TcpStub};

    let filter = Filter::script(source).unwrap_or_else(|e| panic!("{path}: {e}"));
    println!("installing {path} as the receive filter of the server's PFI layer\n");

    let mut world = World::new(1);
    let client = world.add_node(vec![Box::new(TcpLayer::new(TcpProfile::sunos_4_1_3()))]);
    let server = world.add_node(vec![
        Box::new(TcpLayer::new(TcpProfile::rfc_reference())),
        Box::new(PfiLayer::new(Box::new(TcpStub)).with_recv_filter(filter)),
    ]);
    world.control::<TcpReply>(server, 0, TcpControl::Listen { port: 80 });
    let conn = world
        .control::<TcpReply>(
            client,
            0,
            TcpControl::Open {
                local_port: 0,
                remote: server,
                remote_port: 80,
            },
        )
        .expect_conn();
    world.run_for(SimDuration::from_secs(2));
    world.control::<TcpReply>(
        client,
        0,
        TcpControl::Send {
            conn,
            data: vec![42u8; 20_480],
        },
    );
    world.run_for(SimDuration::from_secs(600));

    let stats = world
        .control::<TcpReply>(client, 0, TcpControl::Stats { conn })
        .expect_stats();
    let state = world
        .control::<TcpReply>(client, 0, TcpControl::State { conn })
        .expect_state();
    println!("client connection after 600 virtual seconds:");
    println!("  state            {state}");
    println!("  queued bytes     {}", stats.bytes_queued);
    println!("  retransmissions  {}", stats.retransmissions);
    if let TcpReply::MaybeConn(Some(sc)) =
        world.control::<TcpReply>(server, 0, TcpControl::AcceptedOn { port: 80 })
    {
        let got = world
            .control::<TcpReply>(server, 0, TcpControl::RecvTake { conn: sc })
            .expect_data();
        println!("  bytes delivered  {}", got.len());
    }
    let log = world
        .control::<PfiReply>(server, 1, PfiControl::TakeLog)
        .expect_log();
    if !log.is_empty() {
        println!("\nfirst packets logged by the filter:");
        for e in log.iter().take(5) {
            println!("  [{}] {}", e.time, e.summary);
        }
        println!("  … {} total", log.len());
    }
}
