//! Chaos-test the group membership protocol: destination-selective send
//! filters partition five daemons, heal them, crash one, and suspend
//! another — while an invariant checker watches every committed view.
//!
//! ```text
//! cargo run --example gmp_chaos
//! ```

use pfi::experiments::common::GmpTestbed;
use pfi::gmp::{GmpBugs, GmpEvent};
use pfi::sim::SimDuration;
use std::collections::HashMap;

fn show_views(tb: &mut GmpTestbed, label: &str) {
    println!("{label}");
    for p in tb.peers.clone() {
        let v = tb.view(p);
        println!(
            "  {p}: {:?} (leader {}, {:?})",
            v.group
                .members
                .iter()
                .map(|m| m.as_u32())
                .collect::<Vec<_>>(),
            v.group.leader(),
            v.status,
        );
    }
}

fn main() {
    let mut tb = GmpTestbed::new(5, GmpBugs::none());
    tb.start_all();

    // Every daemon's send filter consults the shared blackboard: when the
    // "partition" flag is set, messages crossing the {0,1,2} | {3,4} border
    // are dropped at the sender — the paper's destination-based drops.
    for p in tb.peers.clone() {
        let side = if p.as_u32() <= 2 { 0 } else { 1 };
        tb.send_script(
            p,
            &format!(
                r#"
                if {{[global_get partition 0] == 1}} {{
                    set dst_side [expr {{[msg_dst] <= 2 ? 0 : 1}}]
                    if {{$dst_side != {side}}} {{ xDrop }}
                }}
            "#
            ),
        );
    }

    tb.run(SimDuration::from_secs(60));
    show_views(&mut tb, "t=60s — converged:");

    tb.board.set(tb.world.boards_mut(), "partition", "1");
    tb.run(SimDuration::from_secs(60));
    show_views(&mut tb, "\nt=120s — partitioned {0,1,2} | {3,4}:");

    tb.board.set(tb.world.boards_mut(), "partition", "0");
    tb.run(SimDuration::from_secs(60));
    show_views(&mut tb, "\nt=180s — healed:");

    let victim = tb.peers[4];
    tb.world.crash(victim);
    tb.run(SimDuration::from_secs(60));
    show_views(&mut tb, "\nt=240s — after crashing node 4:");

    tb.world.suspend(tb.peers[3]);
    tb.run(SimDuration::from_secs(30));
    tb.world.resume(tb.peers[3]);
    tb.run(SimDuration::from_secs(60));
    show_views(&mut tb, "\nt=330s — node 3 suspended 30 s and resumed:");

    // Invariant: whenever two daemons committed the same group id, they
    // committed identical member lists (the strong-GMP agreement property).
    let mut views: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut violations = 0;
    for p in tb.peers.clone() {
        for (_, e) in tb.world.trace().events_of::<GmpEvent>(Some(p)) {
            if let GmpEvent::GroupView { gid, members, .. } = e {
                match views.get(&gid) {
                    None => {
                        views.insert(gid, members);
                    }
                    Some(existing) if *existing != members => violations += 1,
                    _ => {}
                }
            }
        }
    }
    println!(
        "\nagreement check: {} committed views, {} violations",
        views.len(),
        violations
    );
    assert_eq!(violations, 0, "strong GMP agreement must hold");
}
