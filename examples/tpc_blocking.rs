//! Expose two-phase commit's blocking window with the PFI toolkit — the
//! paper's technique applied to one more prototype protocol (its stated
//! future work (iii)).
//!
//! ```text
//! cargo run --example tpc_blocking
//! ```

use pfi::core::{Filter, PfiControl, PfiLayer, PfiReply};
use pfi::rudp::RudpLayer;
use pfi::sim::{NodeId, SimDuration, World};
use pfi::tpc::{TpcControl, TpcEvent, TpcLayer, TpcReply, TpcStub};

fn cluster() -> (World, Vec<NodeId>) {
    let mut w = World::new(12);
    let nodes = (0..4)
        .map(|_| {
            w.add_node(vec![
                Box::new(TpcLayer::default()) as Box<dyn pfi::sim::Layer>,
                Box::new(PfiLayer::new(Box::new(TpcStub))),
                Box::new(RudpLayer::default()),
            ])
        })
        .collect();
    (w, nodes)
}

fn show(w: &mut World, nodes: &[NodeId], txid: u32) {
    let d = w
        .control::<TpcReply>(nodes[0], 0, TpcControl::Decision { txid })
        .expect_decision();
    println!(
        "  coordinator decision: {}",
        match d {
            Some(true) => "COMMIT",
            Some(false) => "ABORT",
            None => "(none)",
        }
    );
    for &p in &nodes[1..] {
        let s = w
            .control::<TpcReply>(p, 0, TpcControl::State { txid })
            .expect_state();
        println!("  participant {p}: {s:?}");
    }
}

fn main() {
    println!("two-phase commit, healthy run:");
    let (mut w, nodes) = cluster();
    w.control::<TpcReply>(
        nodes[0],
        0,
        TpcControl::Begin {
            txid: 1,
            participants: nodes[1..].to_vec(),
        },
    );
    w.run_for(SimDuration::from_secs(5));
    show(&mut w, &nodes, 1);

    println!("\ncoordinator dies between PREPARE and the decision (PFI pins the crash point):");
    let (mut w, nodes) = cluster();
    let die_before_phase2 =
        Filter::script(r#"if {[msg_type] == "COMMIT" || [msg_type] == "ABORT"} { xDrop }"#)
            .unwrap();
    let _: PfiReply = w.control(nodes[0], 1, PfiControl::SetSendFilter(die_before_phase2));
    w.control::<TpcReply>(
        nodes[0],
        0,
        TpcControl::Begin {
            txid: 1,
            participants: nodes[1..].to_vec(),
        },
    );
    let coord = nodes[0];
    w.schedule_in(SimDuration::from_secs(1), move |w| w.crash(coord));
    w.run_for(SimDuration::from_secs(30));
    show(&mut w, &nodes, 1);
    let blocked = nodes[1..]
        .iter()
        .flat_map(|p| w.trace().events_of::<TpcEvent>(Some(*p)))
        .filter(|(_, e)| matches!(e, TpcEvent::Blocked { .. }))
        .count();
    println!(
        "\n{} participants are blocked in uncertainty: they voted yes, so they may\n\
         neither commit nor abort unilaterally — 2PC's fundamental flaw, surfaced\n\
         on demand by a three-line filter script.",
        blocked
    );
    assert_eq!(blocked, 3);
}
