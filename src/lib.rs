//! # pfi — script-driven probing and fault injection of protocol implementations
//!
//! A comprehensive reproduction of **Dawson & Jahanian, "Probing and Fault
//! Injection of Protocol Implementations", ICDCS 1995**, built from scratch
//! in Rust: the PFI interposition layer and its Tcl scripting language, a
//! deterministic discrete-event simulator with x-Kernel-style protocol
//! stacks, a simplified TCP with four vendor personalities, a reliable
//! datagram layer, the strong group membership protocol with the paper's
//! three injectable bugs, and a harness regenerating every table and figure
//! of the paper's evaluation.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`sim`] — simulator, layers, messages, network, traces.
//! * [`script`] — the Tcl-subset interpreter.
//! * [`core`] — the PFI layer, filters, fault models, packet stubs.
//! * [`tcp`] — TCP substrate and vendor profiles.
//! * [`rudp`] — reliable datagram layer.
//! * [`gmp`] — group membership protocol.
//! * [`ip`] — IP-style fragmentation/reassembly (Figure 3's layer below PFI).
//! * [`lint`] — static analysis of filter scripts and fault schedules.
//! * [`tpc`] — two-phase commit, a second application-level study target
//!   (the paper's future work (iii)).
//! * [`experiments`] — the paper's evaluation experiments.
//! * [`testgen`] — automatic test-script generation from protocol
//!   specifications (the paper's future work (ii)).
//! * [`fleet`] — deterministic multi-worker campaign execution (epoch
//!   scheduling, worker statistics); campaign outcomes are byte-identical
//!   for any worker count.
//!
//! # Quick start
//!
//! Interpose a PFI layer that drops every data segment, in the style of the
//! paper's §3 example script:
//!
//! ```
//! use pfi::core::{Filter, PfiLayer};
//! use pfi::sim::{SimDuration, World};
//! use pfi::tcp::{TcpControl, TcpLayer, TcpProfile, TcpReply, TcpStub};
//!
//! let mut world = World::new(42);
//! let client = world.add_node(vec![Box::new(TcpLayer::new(TcpProfile::sunos_4_1_3()))]);
//!
//! // The server's PFI layer drops incoming DATA segments with a script.
//! let pfi = PfiLayer::new(Box::new(TcpStub)).with_recv_filter(Filter::script(r#"
//!     if {[msg_type] == "DATA"} { xDrop cur_msg }
//! "#).unwrap());
//! let server = world.add_node(vec![
//!     Box::new(TcpLayer::new(TcpProfile::rfc_reference())),
//!     Box::new(pfi),
//! ]);
//!
//! world.control::<TcpReply>(server, 0, TcpControl::Listen { port: 80 });
//! let conn = world
//!     .control::<TcpReply>(client, 0, TcpControl::Open {
//!         local_port: 0, remote: server, remote_port: 80,
//!     })
//!     .expect_conn();
//! world.run_for(SimDuration::from_millis(100));
//! world.control::<TcpReply>(client, 0, TcpControl::Send { conn, data: b"probe".to_vec() });
//! world.run_for(SimDuration::from_secs(10));
//!
//! // The data never arrives; the client is busy retransmitting.
//! let stats = world
//!     .control::<TcpReply>(client, 0, TcpControl::Stats { conn })
//!     .expect_stats();
//! assert!(stats.retransmissions > 0);
//! ```

pub use pfi_core as core;
pub use pfi_experiments as experiments;
pub use pfi_fleet as fleet;
pub use pfi_gmp as gmp;
pub use pfi_ip as ip;
pub use pfi_lint as lint;
pub use pfi_rudp as rudp;
pub use pfi_script as script;
pub use pfi_serve as serve;
pub use pfi_sim as sim;
pub use pfi_tcp as tcp;
pub use pfi_testgen as testgen;
pub use pfi_tpc as tpc;
