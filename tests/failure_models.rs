//! The §2.2 failure-model taxonomy, exercised end-to-end against the GMP
//! cluster: each model is injected with the PFI toolkit and the observable
//! system-level consequence is asserted.

use pfi::core::{faults, PfiControl, PfiLayer, PfiReply};
use pfi::gmp::{GmpBugs, GmpConfig, GmpControl, GmpLayer, GmpReply, GmpStub};
use pfi::rudp::RudpLayer;
use pfi::sim::{NodeId, SimDuration, World};

const GMD: usize = 0;
const PFI: usize = 1;

fn cluster(n: u32) -> (World, Vec<NodeId>) {
    let mut world = World::new(1234);
    let peers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    for _ in 0..n {
        let gmd = GmpLayer::new(GmpConfig::new(peers.clone()).with_bugs(GmpBugs::none()));
        world.add_node(vec![
            Box::new(gmd),
            Box::new(PfiLayer::new(Box::new(GmpStub))),
            Box::new(RudpLayer::default()),
        ]);
    }
    for &p in &peers {
        world.control::<GmpReply>(p, GMD, GmpControl::Start);
    }
    world.run_for(SimDuration::from_secs(60));
    (world, peers)
}

fn members(world: &mut World, node: NodeId) -> Vec<u32> {
    world
        .control::<GmpReply>(node, GMD, GmpControl::Status)
        .expect_status()
        .group
        .members
        .iter()
        .map(|m| m.as_u32())
        .collect()
}

#[test]
fn process_crash_failure() {
    // "A process fails by halting prematurely and doing nothing from that
    // point on."
    let (mut world, peers) = cluster(4);
    world.crash(peers[3]);
    world.run_for(SimDuration::from_secs(30));
    assert_eq!(members(&mut world, peers[0]), vec![0, 1, 2]);
}

#[test]
fn link_crash_failure() {
    // "A link fails by losing messages … before ceasing to transport
    // messages, however, it behaves correctly."
    let (mut world, peers) = cluster(3);
    world.network_mut().set_link_down(peers[0], peers[2]);
    world.network_mut().set_link_down(peers[1], peers[2]);
    world.run_for(SimDuration::from_secs(40));
    assert_eq!(members(&mut world, peers[0]), vec![0, 1]);
    assert_eq!(members(&mut world, peers[2]), vec![2]);
}

#[test]
fn send_omission_failure() {
    // "A process fails by intermittently omitting to send messages": at
    // 90% send omission the member cannot sustain heartbeats and falls out
    // of the group.
    let (mut world, peers) = cluster(3);
    let _: PfiReply = world.control(
        peers[2],
        PFI,
        PfiControl::SetSendFilter(faults::omission(0.9)),
    );
    world.run_for(SimDuration::from_secs(60));
    assert!(
        !members(&mut world, peers[0]).contains(&2),
        "leader must expel the mute member"
    );
}

#[test]
fn receive_omission_failure() {
    // The mirror image: a daemon that fails to receive most traffic stops
    // seeing heartbeats (including its own) and withdraws.
    let (mut world, peers) = cluster(3);
    let _: PfiReply = world.control(
        peers[2],
        PFI,
        PfiControl::SetRecvFilter(faults::omission(0.95)),
    );
    world.run_for(SimDuration::from_secs(60));
    assert!(!members(&mut world, peers[0]).contains(&2));
}

#[test]
fn timing_failure_within_tolerance_is_absorbed() {
    // "A link fails by transporting messages faster or slower than its
    // specification": a 200 ms delay on everything is well inside the
    // 3.5 s heartbeat tolerance — the group must hold.
    let (mut world, peers) = cluster(3);
    let _: PfiReply = world.control(
        peers[1],
        PFI,
        PfiControl::SetSendFilter(faults::timing(faults::DelayDist::Constant(
            SimDuration::from_millis(200),
        ))),
    );
    world.run_for(SimDuration::from_secs(60));
    assert_eq!(
        members(&mut world, peers[0]),
        vec![0, 1, 2],
        "small delays must be tolerated"
    );
}

#[test]
fn timing_failure_beyond_tolerance_expels() {
    // A 10-second delay exceeds the heartbeat timeout: delayed heartbeats
    // "are like dropped ones", exactly as the paper notes.
    let (mut world, peers) = cluster(3);
    let _: PfiReply = world.control(
        peers[1],
        PFI,
        PfiControl::SetSendFilter(faults::timing(faults::DelayDist::Constant(
            SimDuration::from_secs(10),
        ))),
    );
    world.run_for(SimDuration::from_secs(40));
    assert!(!members(&mut world, peers[0]).contains(&1));
}

#[test]
fn general_omission_both_directions() {
    let (mut world, peers) = cluster(3);
    let _: PfiReply = world.control(
        peers[1],
        PFI,
        PfiControl::SetSendFilter(faults::omission(0.8)),
    );
    let _: PfiReply = world.control(
        peers[1],
        PFI,
        PfiControl::SetRecvFilter(faults::omission(0.8)),
    );
    world.run_for(SimDuration::from_secs(60));
    assert!(!members(&mut world, peers[0]).contains(&1));
}

#[test]
fn byzantine_corruption_of_gmp_packets_is_tolerated_or_ignored() {
    // Corrupt bytes in GMP packets; the parser rejects mangled packets and
    // heartbeats keep the group alive (corruption rate low enough that
    // most heartbeats survive).
    let (mut world, peers) = cluster(3);
    let byz = faults::byzantine(faults::ByzantineConfig {
        corrupt: 0.2,
        duplicate: 0.1,
        drop: 0.0,
        reorder: 0.0,
        reorder_window: SimDuration::ZERO,
    });
    let _: PfiReply = world.control(peers[1], PFI, PfiControl::SetSendFilter(byz));
    world.run_for(SimDuration::from_secs(60));
    // The group must remain consistent: either node 1 stayed in (most
    // heartbeats survive 20% byte corruption) or was cleanly expelled.
    let v0 = members(&mut world, peers[0]);
    let v2 = members(&mut world, peers[2]);
    assert_eq!(v0, v2, "survivors must agree");
    assert!(v0.contains(&0) && v0.contains(&2));
}

#[test]
fn severity_ordering_crash_is_special_case_of_omission() {
    // The models are ordered by severity: a 100% send+receive omission is
    // behaviourally indistinguishable from a crash, from the group's
    // perspective.
    let (mut world_a, peers_a) = cluster(3);
    world_a.crash(peers_a[2]);
    world_a.run_for(SimDuration::from_secs(40));

    let (mut world_b, peers_b) = cluster(3);
    let _: PfiReply = world_b.control(
        peers_b[2],
        PFI,
        PfiControl::SetSendFilter(faults::drop_all()),
    );
    let _: PfiReply = world_b.control(
        peers_b[2],
        PFI,
        PfiControl::SetRecvFilter(faults::drop_all()),
    );
    world_b.run_for(SimDuration::from_secs(40));

    assert_eq!(
        members(&mut world_a, peers_a[0]),
        members(&mut world_b, peers_b[0])
    );
}
