//! Cross-crate integration: full stacks (TCP / PFI / network and
//! GMP / PFI / RUDP / network) under combined fault loads.

use pfi::core::{faults, Filter, PfiControl, PfiLayer, PfiReply, RawStub};
use pfi::gmp::{GmpBugs, GmpConfig, GmpControl, GmpLayer, GmpReply};
use pfi::rudp::RudpLayer;
use pfi::sim::{NodeId, SimDuration, World};
use pfi::tcp::{TcpControl, TcpLayer, TcpProfile, TcpReply, TcpStub};

fn tcp_pair(world: &mut World, recv_filter: Option<Filter>) -> (NodeId, NodeId, pfi::tcp::ConnId) {
    let client = world.add_node(vec![Box::new(TcpLayer::new(TcpProfile::sunos_4_1_3()))]);
    let mut pfi = PfiLayer::new(Box::new(TcpStub));
    if let Some(f) = recv_filter {
        pfi = pfi.with_recv_filter(f);
    }
    let server = world.add_node(vec![
        Box::new(TcpLayer::new(TcpProfile::rfc_reference())),
        Box::new(pfi),
    ]);
    world.control::<TcpReply>(server, 0, TcpControl::Listen { port: 80 });
    let conn = world
        .control::<TcpReply>(
            client,
            0,
            TcpControl::Open {
                local_port: 0,
                remote: server,
                remote_port: 80,
            },
        )
        .expect_conn();
    world.run_for(SimDuration::from_secs(5));
    (client, server, conn)
}

fn server_data(world: &mut World, server: NodeId) -> Vec<u8> {
    let sconn = match world.control::<TcpReply>(server, 0, TcpControl::AcceptedOn { port: 80 }) {
        TcpReply::MaybeConn(Some(c)) => c,
        other => panic!("no accepted conn: {other:?}"),
    };
    world
        .control::<TcpReply>(server, 0, TcpControl::RecvTake { conn: sconn })
        .expect_data()
}

#[test]
fn tcp_transfer_through_omission_and_timing_faults_combined() {
    let mut world = World::new(99);
    // Network jitter + a receive filter injecting both random delay and
    // random drops: a compound fault load.
    world.network_mut().default_link_mut().jitter = SimDuration::from_millis(3);
    let compound = Filter::native(|ctx: &mut pfi::core::FilterCtx<'_>| {
        if ctx.rng().coin(0.1) {
            ctx.drop_msg();
        } else if ctx.rng().coin(0.2) {
            let us = ctx.rng().uniform_u64(1_000, 40_000);
            ctx.delay(SimDuration::from_micros(us));
        }
    });
    let (client, server, conn) = tcp_pair(&mut world, Some(compound));
    let payload: Vec<u8> = (0..30_000u32).map(|i| (i * 13 % 256) as u8).collect();
    world.control::<TcpReply>(
        client,
        0,
        TcpControl::Send {
            conn,
            data: payload.clone(),
        },
    );
    world.run_for(SimDuration::from_secs(600));
    assert_eq!(server_data(&mut world, server), payload);
}

#[test]
fn tcp_transfer_with_byzantine_corruption_stays_intact() {
    let mut world = World::new(5);
    let byz = faults::byzantine(faults::ByzantineConfig {
        corrupt: 0.15,
        duplicate: 0.1,
        drop: 0.05,
        reorder: 0.2,
        reorder_window: SimDuration::from_millis(20),
    });
    let (client, server, conn) = tcp_pair(&mut world, Some(byz));
    let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    world.control::<TcpReply>(
        client,
        0,
        TcpControl::Send {
            conn,
            data: payload.clone(),
        },
    );
    world.run_for(SimDuration::from_secs(900));
    let got = server_data(&mut world, server);
    // Whatever arrived must be an intact prefix-correct stream.
    assert_eq!(
        got,
        payload[..got.len()],
        "corruption must never reach the application"
    );
    assert!(
        got.len() > payload.len() / 2,
        "most data should get through: {}",
        got.len()
    );
}

#[test]
fn same_seed_same_full_stack_trace() {
    fn run() -> Vec<String> {
        let mut world = World::new(2718);
        world.network_mut().default_link_mut().loss = 0.15;
        world.network_mut().default_link_mut().jitter = SimDuration::from_millis(2);
        let (client, _server, conn) = tcp_pair(&mut world, Some(faults::omission(0.1)));
        world.control::<TcpReply>(
            client,
            0,
            TcpControl::Send {
                conn,
                data: vec![7u8; 20_000],
            },
        );
        world.run_for(SimDuration::from_secs(120));
        world.trace().render()
    }
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    assert_eq!(a, b, "identical seeds must give identical traces");
}

#[test]
fn gmp_full_stack_survives_rudp_loss() {
    // GMP over a lossy wire: rudp's retransmissions carry the two-phase
    // protocol through the loss, so full views keep being committed.
    // (Heartbeats are deliberately unreliable, so sustained loss causes
    // occasional false suspicion and churn — the invariants that must hold
    // are agreement and repeated convergence, not a churn-free endpoint.)
    let mut world = World::new(31);
    world.network_mut().default_link_mut().loss = 0.1;
    let peers: Vec<NodeId> = (0..4).map(NodeId::new).collect();
    for _ in 0..4 {
        let gmd = GmpLayer::new(GmpConfig::new(peers.clone()).with_bugs(GmpBugs::none()));
        let pfi = PfiLayer::new(Box::new(pfi::gmp::GmpStub));
        world.add_node(vec![
            Box::new(gmd),
            Box::new(pfi),
            Box::new(RudpLayer::default()),
        ]);
    }
    for &p in &peers {
        world.control::<GmpReply>(p, 0, GmpControl::Start);
    }
    world.run_for(SimDuration::from_secs(240));
    let full: Vec<u32> = peers.iter().map(|p| p.as_u32()).collect();
    let mut by_gid: std::collections::HashMap<u64, Vec<u32>> = std::collections::HashMap::new();
    for &p in &peers {
        let views = world.trace().events_of::<pfi::gmp::GmpEvent>(Some(p));
        let mut committed_full = false;
        for (_, e) in views {
            if let pfi::gmp::GmpEvent::GroupView { gid, members, .. } = e {
                if members == full {
                    committed_full = true;
                }
                match by_gid.get(&gid) {
                    None => {
                        by_gid.insert(gid, members);
                    }
                    Some(existing) => assert_eq!(*existing, members, "gid {gid} disagreement"),
                }
            }
        }
        assert!(
            committed_full,
            "{p} never committed the full view despite rudp retransmission"
        );
    }
}

#[test]
fn pfi_layers_compose_in_one_stack() {
    // Two PFI layers stacked: the upper one drops every 4th message, the
    // lower one duplicates everything. Effects compose.
    let mut world = World::new(8);
    let upper = PfiLayer::new(Box::new(RawStub))
        .with_send_filter(Filter::script("incr n; if {$n % 4 == 0} { xDrop }").unwrap());
    let lower =
        PfiLayer::new(Box::new(RawStub)).with_send_filter(Filter::script("xDuplicate 1").unwrap());

    use pfi::sim::{Context, Layer, Message};
    use std::any::Any;
    struct Src;
    struct Fire(NodeId, u8);
    impl Layer for Src {
        fn name(&self) -> &'static str {
            "src"
        }
        fn push(&mut self, m: Message, c: &mut Context<'_>) {
            c.send_down(m);
        }
        fn pop(&mut self, m: Message, c: &mut Context<'_>) {
            c.send_up(m);
        }
        fn control(&mut self, op: Box<dyn Any>, c: &mut Context<'_>) -> Box<dyn Any> {
            let Fire(dst, b) = *op.downcast::<Fire>().unwrap();
            c.send_down(Message::new(c.node(), dst, &[b]));
            Box::new(())
        }
    }
    struct Sink;
    impl Layer for Sink {
        fn name(&self) -> &'static str {
            "sink"
        }
        fn push(&mut self, m: Message, c: &mut Context<'_>) {
            c.send_down(m);
        }
        fn pop(&mut self, m: Message, c: &mut Context<'_>) {
            c.send_up(m);
        }
    }
    let a = world.add_node(vec![Box::new(Src), Box::new(upper), Box::new(lower)]);
    let b = world.add_node(vec![Box::new(Sink)]);
    for i in 0..8u8 {
        world.control::<()>(a, 0, Fire(b, i));
    }
    world.run_for(SimDuration::from_secs(1));
    // 8 sent, 2 dropped by the upper layer, the remaining 6 doubled = 12.
    let got = world.drain_inbox(b);
    assert_eq!(got.len(), 12);
}

#[test]
fn pfi_kill_affects_only_its_own_stack_position() {
    // Killing the PFI layer below TCP severs the wire for that node but
    // leaves the TCP state machine alive (it keeps retransmitting).
    let mut world = World::new(4);
    let (client, server, conn) = tcp_pair(&mut world, None);
    world.control::<TcpReply>(
        client,
        0,
        TcpControl::Send {
            conn,
            data: vec![1u8; 512],
        },
    );
    world.run_for(SimDuration::from_secs(2));
    let _: PfiReply = world.control(server, 1, PfiControl::Kill);
    world.control::<TcpReply>(
        client,
        0,
        TcpControl::Send {
            conn,
            data: vec![2u8; 512],
        },
    );
    world.run_for(SimDuration::from_secs(30));
    let retx: Vec<_> = world
        .trace()
        .events_of::<pfi::tcp::TcpEvent>(Some(client))
        .into_iter()
        .filter(|(_, e)| matches!(e, pfi::tcp::TcpEvent::Retransmit { .. }))
        .collect();
    assert!(!retx.is_empty(), "the client must retransmit into the void");
    let _: PfiReply = world.control(server, 1, PfiControl::Revive);
    world.run_for(SimDuration::from_secs(120));
    let got = server_data(&mut world, server);
    assert_eq!(got.len(), 1_024, "after revival the stream completes");
}

#[test]
fn gmp_converges_over_a_fragmenting_ip_layer() {
    // Four protocol layers deep: GMP / PFI / RUDP / IP with a tiny MTU, so
    // membership-change packets fragment on the wire and the whole tower
    // must still converge.
    use pfi::ip::IpLayer;
    let mut world = World::new(64);
    let peers: Vec<NodeId> = (0..4).map(NodeId::new).collect();
    for _ in 0..4 {
        let gmd = GmpLayer::new(GmpConfig::new(peers.clone()).with_bugs(GmpBugs::none()));
        world.add_node(vec![
            Box::new(gmd),
            Box::new(PfiLayer::new(Box::new(pfi::gmp::GmpStub))),
            Box::new(RudpLayer::default()),
            Box::new(IpLayer::new(40)),
        ]);
    }
    for &p in &peers {
        world.control::<GmpReply>(p, 0, GmpControl::Start);
    }
    world.run_for(SimDuration::from_secs(90));
    for &p in &peers {
        let v = world
            .control::<GmpReply>(p, 0, GmpControl::Status)
            .expect_status();
        assert_eq!(
            v.group.members, peers,
            "{p} failed over the fragmenting stack"
        );
    }
    // Fragmentation really happened somewhere in the tower.
    let fragged = world
        .trace()
        .events_of::<pfi::ip::IpEvent>(None)
        .iter()
        .filter(|(_, e)| matches!(e, pfi::ip::IpEvent::Fragmented { .. }))
        .count();
    assert!(fragged > 0, "the 40-byte MTU must force fragmentation");
}
