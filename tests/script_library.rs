//! The shipped `scripts/` library: every on-disk filter script must parse,
//! and the paper's §3 example must behave as described when loaded from
//! disk (scripts are *inputs*, not code — no recompilation involved).

use pfi::core::{Filter, PfiControl, PfiLayer, PfiReply, RawStub};
use pfi::script::Script;
use pfi::sim::{Context, Layer, Message, NodeId, SimDuration, World};
use std::any::Any;

#[test]
fn every_shipped_script_parses() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scripts");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("scripts/ directory exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("tcl") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        Script::parse(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        seen += 1;
    }
    assert!(
        seen >= 5,
        "expected the script library, found {seen} scripts"
    );
}

struct Src;
struct Fire(NodeId, Vec<u8>);
impl Layer for Src {
    fn name(&self) -> &'static str {
        "src"
    }
    fn push(&mut self, m: Message, c: &mut Context<'_>) {
        c.send_down(m);
    }
    fn pop(&mut self, m: Message, c: &mut Context<'_>) {
        c.send_up(m);
    }
    fn control(&mut self, op: Box<dyn Any>, c: &mut Context<'_>) -> Box<dyn Any> {
        let Fire(dst, payload) = *op.downcast::<Fire>().unwrap();
        c.send_down(Message::new(c.node(), dst, &payload));
        Box::new(())
    }
}

#[test]
fn exp1_filter_from_disk_drops_after_thirty() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scripts");
    let src = std::fs::read_to_string(dir.join("exp1_recv_filter.tcl")).unwrap();
    let mut world = World::new(5);
    let a = world.add_node(vec![Box::new(Src)]);
    let b = world.add_node(vec![
        Box::new(Src),
        Box::new(PfiLayer::new(Box::new(RawStub)).with_recv_filter(Filter::script(&src).unwrap())),
    ]);
    for i in 0..40u8 {
        world.control::<()>(a, 0, Fire(b, vec![i]));
    }
    world.run_for(SimDuration::from_secs(1));
    assert_eq!(
        world.drain_inbox(b).len(),
        30,
        "exactly thirty packets pass"
    );
    let log = world
        .control::<PfiReply>(b, 1, PfiControl::TakeLog)
        .expect_log();
    assert_eq!(log.len(), 40, "every packet is logged, dropped or not");
}
