// QUARANTINED: this property-based suite depends on the external `proptest`
// crate, which the offline build environment cannot fetch from crates.io.
// The whole file is compiled out unless the crate's `proptest` feature is
// enabled (after restoring the proptest dev-dependency in Cargo.toml).
#![cfg(feature = "proptest")]

//! Cross-crate property tests: protocol invariants under randomized fault
//! schedules.

use pfi::core::{faults, PfiLayer};
use pfi::gmp::{GmpBugs, GmpConfig, GmpControl, GmpEvent, GmpLayer, GmpReply, GmpStub};
use pfi::rudp::RudpLayer;
use pfi::sim::{NodeId, SimDuration, World};
use pfi::tcp::{TcpControl, TcpLayer, TcpProfile, TcpReply, TcpStub};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// TCP safety: whatever the loss rate, jitter, and byzantine filter
    /// configuration, delivered application data is an exact prefix of
    /// what was sent — never corrupted, reordered, or duplicated.
    #[test]
    fn tcp_delivers_only_exact_prefixes(
        seed in 0u64..10_000,
        loss in 0.0f64..0.35,
        jitter_ms in 0u64..20,
        corrupt in 0.0f64..0.3,
        dup in 0.0f64..0.3,
        payload_len in 1usize..20_000,
    ) {
        let mut world = World::new(seed);
        world.network_mut().default_link_mut().loss = loss;
        world.network_mut().default_link_mut().jitter = SimDuration::from_millis(jitter_ms);
        let client = world.add_node(vec![Box::new(TcpLayer::new(TcpProfile::sunos_4_1_3()))]);
        let byz = faults::byzantine(faults::ByzantineConfig {
            corrupt,
            duplicate: dup,
            drop: 0.0,
            reorder: 0.2,
            reorder_window: SimDuration::from_millis(15),
        });
        let pfi = PfiLayer::new(Box::new(TcpStub)).with_recv_filter(byz);
        let server = world.add_node(vec![
            Box::new(TcpLayer::new(TcpProfile::rfc_reference())),
            Box::new(pfi),
        ]);
        world.control::<TcpReply>(server, 0, TcpControl::Listen { port: 80 });
        let conn = world
            .control::<TcpReply>(client, 0, TcpControl::Open {
                local_port: 0,
                remote: server,
                remote_port: 80,
            })
            .expect_conn();
        world.run_for(SimDuration::from_secs(10));
        let payload: Vec<u8> = (0..payload_len).map(|i| (i * 31 % 256) as u8).collect();
        world.control::<TcpReply>(client, 0, TcpControl::Send { conn, data: payload.clone() });
        world.run_for(SimDuration::from_secs(300));
        if let TcpReply::MaybeConn(Some(sconn)) =
            world.control::<TcpReply>(server, 0, TcpControl::AcceptedOn { port: 80 })
        {
            let got = world
                .control::<TcpReply>(server, 0, TcpControl::RecvTake { conn: sconn })
                .expect_data();
            prop_assert!(got.len() <= payload.len(), "over-delivery: {} > {}", got.len(), payload.len());
            prop_assert_eq!(&got[..], &payload[..got.len()], "delivered bytes must be an exact prefix");
        }
    }

    /// GMP agreement: under randomized partitions and crashes, any two
    /// daemons that ever commit the same group id commit identical member
    /// lists.
    #[test]
    fn gmp_views_with_same_gid_agree(
        seed in 0u64..10_000,
        split in 1usize..4,
        crash_idx in proptest::option::of(0usize..5),
        partition_secs in 10u64..50,
    ) {
        let mut world = World::new(seed);
        let peers: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        for _ in 0..5 {
            let gmd = GmpLayer::new(GmpConfig::new(peers.clone()).with_bugs(GmpBugs::none()));
            world.add_node(vec![
                Box::new(gmd),
                Box::new(PfiLayer::new(Box::new(GmpStub))),
                Box::new(RudpLayer::default()),
            ]);
        }
        for &p in &peers {
            world.control::<GmpReply>(p, 0, GmpControl::Start);
        }
        world.run_for(SimDuration::from_secs(40));
        world.network_mut().set_partition(&[&peers[..split], &peers[split..]]);
        world.run_for(SimDuration::from_secs(partition_secs));
        world.network_mut().clear_partition();
        if let Some(ci) = crash_idx {
            world.crash(peers[ci]);
        }
        world.run_for(SimDuration::from_secs(60));

        let mut by_gid: std::collections::HashMap<u64, Vec<u32>> =
            std::collections::HashMap::new();
        for &p in &peers {
            for (_, e) in world.trace().events_of::<GmpEvent>(Some(p)) {
                if let GmpEvent::GroupView { gid, members, .. } = e {
                    match by_gid.get(&gid) {
                        None => {
                            by_gid.insert(gid, members);
                        }
                        Some(existing) => {
                            prop_assert_eq!(existing, &members, "gid {} disagrees", gid);
                        }
                    }
                }
            }
        }
        // Liveness after healing: the surviving daemons converge to one
        // shared view.
        let survivors: Vec<NodeId> = peers
            .iter()
            .copied()
            .filter(|p| Some(p.index()) != crash_idx)
            .collect();
        let first = world
            .control::<GmpReply>(survivors[0], 0, GmpControl::Status)
            .expect_status()
            .group;
        for &p in &survivors[1..] {
            let v = world.control::<GmpReply>(p, 0, GmpControl::Status).expect_status().group;
            prop_assert_eq!(&v.members, &first.members, "{} diverged", p);
        }
    }

    /// Determinism: the same seed and fault schedule produce bit-identical
    /// traces across the full stack.
    #[test]
    fn full_stack_runs_are_deterministic(seed in 0u64..1_000, loss in 0.0f64..0.4) {
        let run = |seed: u64, loss: f64| {
            let mut world = World::new(seed);
            world.network_mut().default_link_mut().loss = loss;
            let client = world.add_node(vec![Box::new(TcpLayer::new(TcpProfile::solaris_2_3()))]);
            let server = world.add_node(vec![
                Box::new(TcpLayer::new(TcpProfile::rfc_reference())),
                Box::new(PfiLayer::new(Box::new(TcpStub)).with_recv_filter(faults::omission(0.1))),
            ]);
            world.control::<TcpReply>(server, 0, TcpControl::Listen { port: 80 });
            let conn = world
                .control::<TcpReply>(client, 0, TcpControl::Open {
                    local_port: 0,
                    remote: server,
                    remote_port: 80,
                })
                .expect_conn();
            world.control::<TcpReply>(client, 0, TcpControl::Send { conn, data: vec![9u8; 4_096] });
            world.run_for(SimDuration::from_secs(60));
            world.trace().render()
        };
        prop_assert_eq!(run(seed, loss), run(seed, loss));
    }
}
