//! Cold/warm determinism regression: the compile-once caches must be
//! observationally invisible. Every shipped filter script and a loop-heavy
//! stress script run through a cold path (caching disabled — every
//! evaluation re-parses from source) and a warm path (default bounded
//! caches); results, variables, output, packet logs, and delivered traffic
//! must be byte-identical. A final test asserts the warm per-message path
//! never re-parses: cache misses stop growing after the first message while
//! hits keep climbing.

use std::any::Any;

use pfi::core::{Direction, Filter, PfiControl, PfiLayer, PfiReply, RawStub};
use pfi::script::{Interp, NoHost};
use pfi::sim::{Context, Layer, Message, NodeId, SimDuration, SimTime, World};

/// A loop-heavy script exercising every cached construct: `while`, `for`,
/// `foreach`, `switch`, `if`/`elseif`, `proc`, `catch`, `eval`, and both
/// braced and computed `expr` forms.
const STRESS: &str = r#"
    proc weigh {x} {
        if {$x % 3 == 0} { return [expr {$x * 2}] } else { return [expr {$x + 1}] }
    }
    set sum 0
    set i 0
    while {$i < 40} {
        set sum [expr {$sum + [weigh $i]}]
        incr i
    }
    for {set j 0} {$j < 25} {incr j} {
        if {$j % 2 == 0} {
            set sum [expr {$sum + $j * $j}]
        } elseif {$j % 5 == 0} {
            set sum [expr {$sum - $j}]
        } else {
            incr sum
        }
    }
    set tally 0
    foreach item {a b c a b a d c} {
        switch -exact $item {
            a { incr tally 100 }
            b { incr tally 10 }
            default { incr tally 1 }
        }
    }
    catch { undefined_command_here } err
    eval { set via_eval [expr {$sum + $tally}] }
    puts "run [incr runs]: sum=$sum tally=$tally via_eval=$via_eval err=$err"
    set via_eval
"#;

/// Evaluates `STRESS` `rounds` times in one interpreter, returning every
/// per-round result plus the final variable snapshot and accumulated
/// `puts` output.
fn run_stress(cold: bool, rounds: usize) -> (Vec<String>, Vec<(String, String)>, String) {
    let mut interp = Interp::new();
    if cold {
        interp.set_cache_capacity(0, 0);
    }
    let mut results = Vec::new();
    for _ in 0..rounds {
        results.push(
            interp
                .eval(&mut NoHost, STRESS)
                .expect("stress script evaluates"),
        );
    }
    let vars = interp.globals_snapshot();
    let output = interp.take_output();
    (results, vars, output)
}

#[test]
fn stress_script_cold_and_warm_paths_are_byte_identical() {
    let cold = run_stress(true, 5);
    let warm = run_stress(false, 5);
    assert_eq!(cold.0, warm.0, "per-round results differ");
    assert_eq!(cold.1, warm.1, "final variables differ");
    assert_eq!(cold.2, warm.2, "puts output differs");
}

#[test]
fn stress_script_warm_path_reparses_nothing_after_first_round() {
    let mut interp = Interp::new();
    interp.eval(&mut NoHost, STRESS).unwrap();
    let s1 = interp.script_cache_stats();
    let e1 = interp.expr_cache_stats();
    for _ in 0..10 {
        interp.eval(&mut NoHost, STRESS).unwrap();
    }
    let s2 = interp.script_cache_stats();
    let e2 = interp.expr_cache_stats();
    assert_eq!(s2.misses, s1.misses, "a warm round re-parsed a script body");
    assert_eq!(e2.misses, e1.misses, "a warm round re-parsed an expr");
    assert!(
        s2.hits > s1.hits && e2.hits > e1.hits,
        "warm rounds must hit the caches"
    );
    assert_eq!(
        s2.evictions, 0,
        "the stress script must fit in the default bound"
    );
}

// ---- full PFI-layer pipeline: every shipped script, cold vs warm --------

struct Src;
struct Fire(NodeId, Vec<u8>);
impl Layer for Src {
    fn name(&self) -> &'static str {
        "src"
    }
    fn push(&mut self, m: Message, c: &mut Context<'_>) {
        c.send_down(m);
    }
    fn pop(&mut self, m: Message, c: &mut Context<'_>) {
        c.send_up(m);
    }
    fn control(&mut self, op: Box<dyn Any>, c: &mut Context<'_>) -> Box<dyn Any> {
        let Fire(dst, payload) = *op.downcast::<Fire>().unwrap();
        c.send_down(Message::new(c.node(), dst, &payload));
        Box::new(())
    }
}

/// What one pipeline run produced, in comparable form.
#[derive(Debug, PartialEq)]
struct RunTrace {
    delivered: Vec<(SimTime, Vec<u8>)>,
    log: Vec<(SimTime, String, usize)>,
    count_var: Result<String, String>,
}

/// Drives 40 deterministic messages through a PFI layer running `src` as
/// its receive filter, with the given cache capacities.
fn run_pipeline(src: &str, scripts_cap: usize, exprs_cap: usize) -> RunTrace {
    let mut world = World::new(7);
    let a = world.add_node(vec![Box::new(Src)]);
    let layer = PfiLayer::new(Box::new(RawStub))
        .with_cache_capacity(scripts_cap, exprs_cap)
        .with_recv_filter(Filter::script(src).expect("script parses"));
    let b = world.add_node(vec![Box::new(Src), Box::new(layer)]);
    for i in 0..40u8 {
        world.control::<()>(a, 0, Fire(b, vec![i, i.wrapping_mul(7)]));
        world.run_for(SimDuration::from_millis(50));
    }
    world.run_for(SimDuration::from_secs(10));
    let delivered = world
        .drain_inbox(b)
        .into_iter()
        .map(|(t, m)| (t, m.bytes().to_vec()))
        .collect();
    let log = world
        .control::<PfiReply>(b, 1, PfiControl::TakeLog)
        .expect_log()
        .into_iter()
        .map(|e| (e.time, e.summary, e.len))
        .collect();
    let count_var =
        match world.control::<PfiReply>(b, 1, PfiControl::EvalInRecv("set count".into())) {
            PfiReply::Eval(r) => r.map_err(|e| e.to_string()),
            other => panic!("expected Eval reply, got {other:?}"),
        };
    RunTrace {
        delivered,
        log,
        count_var,
    }
}

#[test]
fn every_shipped_script_is_cache_deterministic() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scripts");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("scripts/ directory exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("tcl") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let cold = run_pipeline(&src, 0, 0);
        let warm = run_pipeline(&src, 256, 256);
        assert_eq!(
            cold,
            warm,
            "{} diverges between cold and warm paths",
            path.display()
        );
        seen += 1;
    }
    assert!(
        seen >= 5,
        "expected the script library, found {seen} scripts"
    );
}

#[test]
fn warm_per_message_path_never_reparses() {
    // Loop/expr-heavy filter: the acceptance gate for the compile-once
    // engine. After the first message, every construct must be cached.
    let filter = r#"
        set total 0
        for {set i 0} {$i < 8} {incr i} {
            if {[msg_len] > $i} { set total [expr {$total + $i}] }
        }
        if {$total > 1000} { xDrop cur_msg }
    "#;
    let mut world = World::new(11);
    let a = world.add_node(vec![Box::new(Src)]);
    let layer = PfiLayer::new(Box::new(RawStub))
        .with_recv_filter(Filter::script(filter).expect("script parses"));
    let b = world.add_node(vec![Box::new(Src), Box::new(layer)]);

    world.control::<()>(a, 0, Fire(b, vec![1, 2, 3]));
    world.run_for(SimDuration::from_secs(1));
    let (s1, e1) = world
        .control::<PfiReply>(b, 1, PfiControl::CacheStats(Direction::Receive))
        .expect_cache_stats();

    for i in 0..50u8 {
        world.control::<()>(a, 0, Fire(b, vec![i]));
    }
    world.run_for(SimDuration::from_secs(5));
    let (s2, e2) = world
        .control::<PfiReply>(b, 1, PfiControl::CacheStats(Direction::Receive))
        .expect_cache_stats();

    assert_eq!(
        s2.misses, s1.misses,
        "warm per-message path re-parsed a script body"
    );
    assert_eq!(
        e2.misses, e1.misses,
        "warm per-message path re-parsed an expr"
    );
    assert!(
        s2.hits > s1.hits,
        "later messages must hit the script cache"
    );
    assert!(e2.hits > e1.hits, "later messages must hit the expr cache");
    assert!(
        s2.hit_rate() > 0.9,
        "script cache hit rate {:.3} too low",
        s2.hit_rate()
    );
    assert_eq!(world.drain_inbox(b).len(), 51, "all messages delivered");
}
