//! The paper's headline capability: orchestrating a distributed computation
//! into hard-to-reach global states with deterministic scripts, and probing
//! participants with spontaneously injected messages.

use pfi::core::{Filter, GlobalBoard, PfiLayer};
use pfi::sim::{Context, Layer, Message, NodeId, SimDuration, World};
use pfi::tcp::{Segment, TcpLayer, TcpProfile, TcpStub};
use std::any::Any;

struct Src;
struct Fire(NodeId, Vec<u8>);
impl Layer for Src {
    fn name(&self) -> &'static str {
        "src"
    }
    fn push(&mut self, m: Message, c: &mut Context<'_>) {
        c.send_down(m);
    }
    fn pop(&mut self, m: Message, c: &mut Context<'_>) {
        c.send_up(m);
    }
    fn control(&mut self, op: Box<dyn Any>, c: &mut Context<'_>) -> Box<dyn Any> {
        let Fire(dst, payload) = *op.downcast::<Fire>().unwrap();
        c.send_down(Message::new(c.node(), dst, &payload));
        Box::new(())
    }
}

/// Deterministic reordering: hold the first three messages, release them
/// after the fifth — producing an arrival order that plain networking
/// could never guarantee.
#[test]
fn deterministic_global_ordering_via_hold_release() {
    let mut world = World::new(1);
    let pfi = PfiLayer::new(Box::new(pfi::core::RawStub)).with_send_filter(
        Filter::script(
            r#"
            incr n
            if {$n <= 3} {
                xHold
            } elseif {$n == 5} {
                xRelease
            }
        "#,
        )
        .unwrap(),
    );
    let a = world.add_node(vec![Box::new(Src), Box::new(pfi)]);
    let b = world.add_node(vec![Box::new(Src)]);
    for i in 1..=6u8 {
        world.control::<()>(a, 0, Fire(b, vec![i]));
    }
    world.run_for(SimDuration::from_secs(1));
    let order: Vec<u8> = world
        .drain_inbox(b)
        .into_iter()
        .map(|(_, m)| m.bytes()[0])
        .collect();
    assert_eq!(order, vec![4, 5, 1, 2, 3, 6]);
}

/// Probing: inject a spurious TCP ACK aimed at a port with no connection —
/// a live TCP must answer with a RST (exactly the sort of "spontaneous
/// message to observe the response from another participant" the paper
/// describes).
#[test]
fn injected_probe_elicits_rst_from_live_tcp() {
    let mut world = World::new(2);
    let vendor = world.add_node(vec![Box::new(TcpLayer::new(TcpProfile::sunos_4_1_3()))]);
    // The prober: a bare stack whose PFI layer injects the forged segment.
    let pfi = PfiLayer::new(Box::new(TcpStub)).with_send_filter(
        Filter::script(
            r#"
            if {![info exists probed]} {
                set probed 1
                xInject down ACK 0 5555 80 1000 2000 512
            }
        "#,
        )
        .unwrap(),
    );
    let prober = world.add_node(vec![Box::new(Src), Box::new(pfi)]);
    // Any message through the prober's stack triggers the injection.
    world.control::<()>(prober, 0, Fire(prober, b"kick".to_vec()));
    world.run_for(SimDuration::from_secs(1));
    // The vendor answered the stray segment with a RST aimed back at the
    // prober's forged source port.
    let inbox = world.drain_inbox(prober);
    let rsts: Vec<Segment> = inbox
        .iter()
        .filter_map(|(_, m)| Segment::decode(m).ok())
        .filter(|s| s.has(pfi::tcp::flags::RST))
        .collect();
    assert_eq!(rsts.len(), 1, "exactly one RST expected, got {inbox:?}");
    assert_eq!(rsts[0].src_port, 80);
    assert_eq!(rsts[0].dst_port, 5555);
    let _ = vendor;
}

/// Cross-node synchronization: a script on node A flips a global flag that
/// a script on node B acts on — the paper's "synchronizing scripts executed
/// by PFI layers running on different nodes".
#[test]
fn scripts_synchronise_across_nodes_through_the_global_board() {
    let mut world = World::new(3);
    let board = GlobalBoard::alloc_in(world.boards_mut());
    // A's send filter counts traffic; at the third message it raises a
    // flag. B's send filter blocks all of B's traffic while the flag is up.
    let pfi_a = PfiLayer::new(Box::new(pfi::core::RawStub))
        .with_globals(board)
        .with_send_filter(
            Filter::script(
                r#"
                incr n
                if {$n == 3} { global_set blockade 1 }
            "#,
            )
            .unwrap(),
        );
    let pfi_b = PfiLayer::new(Box::new(pfi::core::RawStub))
        .with_globals(board)
        .with_send_filter(
            Filter::script(r#"if {[global_get blockade 0] == 1} { xDrop }"#).unwrap(),
        );
    let a = world.add_node(vec![Box::new(Src), Box::new(pfi_a)]);
    let b = world.add_node(vec![Box::new(Src), Box::new(pfi_b)]);
    let sink = world.add_node(vec![Box::new(Src)]);

    // Interleave sends: a, b, a, b, a, b — after a's third send (t≈400ms),
    // b's remaining sends are blockaded.
    for i in 0..3u64 {
        world.schedule_in(SimDuration::from_millis(i * 200), move |w| {
            w.control::<()>(a, 0, Fire(sink, b"from-a".to_vec()));
        });
        world.schedule_in(SimDuration::from_millis(i * 200 + 100), move |w| {
            w.control::<()>(b, 0, Fire(sink, b"from-b".to_vec()));
        });
    }
    world.run_for(SimDuration::from_secs(2));
    let got: Vec<String> = world
        .drain_inbox(sink)
        .into_iter()
        .map(|(_, m)| String::from_utf8_lossy(m.bytes()).to_string())
        .collect();
    let from_a = got.iter().filter(|s| *s == "from-a").count();
    let from_b = got.iter().filter(|s| *s == "from-b").count();
    assert_eq!(from_a, 3);
    assert_eq!(
        from_b, 2,
        "b's send after the blockade flag must be dropped"
    );
}

/// "Changing the scripts does not require recompilation": swap a filter
/// mid-run through a control op and watch behaviour change instantly.
#[test]
fn swapping_scripts_at_runtime_changes_behaviour() {
    use pfi::core::{PfiControl, PfiReply};
    let mut world = World::new(4);
    let a = world.add_node(vec![
        Box::new(Src),
        Box::new(PfiLayer::new(Box::new(pfi::core::RawStub))),
    ]);
    let b = world.add_node(vec![Box::new(Src)]);

    let phases: [(&str, usize); 3] = [
        ("", 5),              // pass-through
        ("xDrop", 0),         // drop everything
        ("xDuplicate 2", 15), // triple everything
    ];
    for (script, expected) in phases {
        if !script.is_empty() {
            let _: PfiReply = world.control(
                a,
                1,
                PfiControl::SetSendFilter(Filter::script(script).unwrap()),
            );
        }
        for i in 0..5u8 {
            world.control::<()>(a, 0, Fire(b, vec![i]));
        }
        world.run_for(SimDuration::from_secs(1));
        let got = world.drain_inbox(b);
        assert_eq!(got.len(), expected, "script {script:?}");
    }
}
