//! TCP segment wire format and the packet stub for PFI scripts.
//!
//! A simplified but byte-real 20-byte header: scripts can read, corrupt,
//! and forge these segments through the [`TcpStub`], exactly as the paper's
//! stubs expose "the headers or packet format of the target protocol".
//!
//! ```text
//! offset  size  field
//!      0     2  src_port   (big-endian)
//!      2     2  dst_port
//!      4     4  seq
//!      8     4  ack
//!     12     1  flags      (FIN|SYN|RST|PSH|ACK)
//!     13     1  reserved
//!     14     2  window
//!     16     2  payload length
//!     18     2  checksum   (16-bit sum over header-with-zero-checksum + payload)
//! ```

use pfi_core::PacketStub;
use pfi_sim::{Message, NodeId};

/// Size of the fixed TCP header.
pub const HEADER_LEN: usize = 20;

/// Segment flag bits.
pub mod flags {
    /// Sender has finished sending.
    pub const FIN: u8 = 0x01;
    /// Synchronise sequence numbers.
    pub const SYN: u8 = 0x02;
    /// Reset the connection.
    pub const RST: u8 = 0x04;
    /// Push data to the application.
    pub const PSH: u8 = 0x08;
    /// The `ack` field is significant.
    pub const ACK: u8 = 0x10;
}

/// A decoded TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Sender's port.
    pub src_port: u16,
    /// Receiver's port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Next sequence number expected from the peer (when `ACK` set).
    pub ack: u32,
    /// Flag bits (see [`flags`]).
    pub flags: u8,
    /// Advertised receive window.
    pub window: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Why a byte buffer failed to decode as a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Shorter than the fixed header.
    TooShort,
    /// The length field disagrees with the buffer size.
    LengthMismatch,
    /// Checksum verification failed (corruption).
    BadChecksum,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DecodeError::TooShort => "segment shorter than header",
            DecodeError::LengthMismatch => "length field mismatch",
            DecodeError::BadChecksum => "bad checksum",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DecodeError {}

fn checksum(bytes: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut i = 0;
    while i < bytes.len() {
        let hi = bytes[i] as u32;
        let lo = if i + 1 < bytes.len() {
            bytes[i + 1] as u32
        } else {
            0
        };
        sum = sum.wrapping_add((hi << 8) | lo);
        i += 2;
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

impl Segment {
    /// Whether a flag bit is set.
    pub fn has(&self, flag: u8) -> bool {
        self.flags & flag != 0
    }

    /// Sequence-space length: payload bytes plus one for SYN and FIN.
    pub fn seq_len(&self) -> u32 {
        let mut n = self.payload.len() as u32;
        if self.has(flags::SYN) {
            n += 1;
        }
        if self.has(flags::FIN) {
            n += 1;
        }
        n
    }

    /// Encodes the segment into a wire message between two nodes.
    pub fn encode(&self, src: NodeId, dst: NodeId) -> Message {
        let mut buf = vec![0u8; HEADER_LEN + self.payload.len()];
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_be_bytes());
        buf[8..12].copy_from_slice(&self.ack.to_be_bytes());
        buf[12] = self.flags;
        buf[14..16].copy_from_slice(&self.window.to_be_bytes());
        buf[16..18].copy_from_slice(&(self.payload.len() as u16).to_be_bytes());
        buf[HEADER_LEN..].copy_from_slice(&self.payload);
        let ck = checksum(&buf);
        buf[18..20].copy_from_slice(&ck.to_be_bytes());
        Message::new(src, dst, &buf)
    }

    /// Decodes a wire message into a segment, verifying the checksum.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for truncated, inconsistent, or corrupted
    /// buffers.
    pub fn decode(msg: &Message) -> Result<Segment, DecodeError> {
        let b = msg.bytes();
        if b.len() < HEADER_LEN {
            return Err(DecodeError::TooShort);
        }
        let plen = u16::from_be_bytes([b[16], b[17]]) as usize;
        if b.len() != HEADER_LEN + plen {
            return Err(DecodeError::LengthMismatch);
        }
        let stored = u16::from_be_bytes([b[18], b[19]]);
        let mut copy = b.to_vec();
        copy[18] = 0;
        copy[19] = 0;
        if checksum(&copy) != stored {
            return Err(DecodeError::BadChecksum);
        }
        Ok(Segment {
            src_port: u16::from_be_bytes([b[0], b[1]]),
            dst_port: u16::from_be_bytes([b[2], b[3]]),
            seq: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
            ack: u32::from_be_bytes([b[8], b[9], b[10], b[11]]),
            flags: b[12],
            window: u16::from_be_bytes([b[14], b[15]]),
            payload: b[HEADER_LEN..].to_vec(),
        })
    }

    /// The display type of this segment (matches [`TcpStub::type_of`]).
    pub fn type_name(&self) -> &'static str {
        if self.has(flags::RST) {
            "RST"
        } else if self.has(flags::SYN) && self.has(flags::ACK) {
            "SYN-ACK"
        } else if self.has(flags::SYN) {
            "SYN"
        } else if self.has(flags::FIN) {
            "FIN"
        } else if !self.payload.is_empty() {
            "DATA"
        } else if self.has(flags::ACK) {
            "ACK"
        } else {
            "NONE"
        }
    }
}

/// Packet recognition/generation stub for TCP, used by PFI scripts.
///
/// Recognised fields: `src_port`, `dst_port`, `seq`, `ack`, `flags`,
/// `window`, `len`. Generation (for `xInject`):
///
/// * `ACK <dst-node> <src_port> <dst_port> <seq> <ack> <window>` — a
///   spurious acknowledgement ("no data structures need to be updated").
/// * `RST <dst-node> <src_port> <dst_port> <seq>` — a forged reset.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpStub;

impl PacketStub for TcpStub {
    fn clone_box(&self) -> Option<Box<dyn PacketStub>> {
        Some(Box::new(*self))
    }

    fn protocol(&self) -> &'static str {
        "tcp"
    }

    fn type_of(&self, msg: &Message) -> Option<String> {
        Segment::decode(msg).ok().map(|s| s.type_name().to_string())
    }

    fn field(&self, msg: &Message, name: &str) -> Option<i64> {
        let s = Segment::decode(msg).ok()?;
        let v = match name {
            "src_port" => s.src_port as i64,
            "dst_port" => s.dst_port as i64,
            "seq" => s.seq as i64,
            "ack" => s.ack as i64,
            "flags" => s.flags as i64,
            "window" => s.window as i64,
            "len" => s.payload.len() as i64,
            _ => return None,
        };
        Some(v)
    }

    fn set_field(&self, msg: &mut Message, name: &str, value: i64) -> bool {
        let Ok(mut s) = Segment::decode(msg) else {
            return false;
        };
        match name {
            "src_port" => s.src_port = value as u16,
            "dst_port" => s.dst_port = value as u16,
            "seq" => s.seq = value as u32,
            "ack" => s.ack = value as u32,
            "flags" => s.flags = value as u8,
            "window" => s.window = value as u16,
            _ => return false,
        }
        *msg = s.encode(msg.src(), msg.dst());
        true
    }

    fn generate(&self, src: NodeId, args: &[String]) -> Result<Message, String> {
        let parse_u = |i: usize, what: &str| -> Result<u32, String> {
            args.get(i)
                .ok_or_else(|| format!("missing {what}"))?
                .parse::<u32>()
                .map_err(|_| format!("bad {what} \"{}\"", args[i]))
        };
        let ty = args
            .first()
            .map(|s| s.to_ascii_uppercase())
            .unwrap_or_default();
        match ty.as_str() {
            "ACK" => {
                let dst = parse_u(1, "dst node")?;
                let seg = Segment {
                    src_port: parse_u(2, "src_port")? as u16,
                    dst_port: parse_u(3, "dst_port")? as u16,
                    seq: parse_u(4, "seq")?,
                    ack: parse_u(5, "ack")?,
                    flags: flags::ACK,
                    window: parse_u(6, "window")? as u16,
                    payload: Vec::new(),
                };
                Ok(seg.encode(src, NodeId::new(dst)))
            }
            "RST" => {
                let dst = parse_u(1, "dst node")?;
                let seg = Segment {
                    src_port: parse_u(2, "src_port")? as u16,
                    dst_port: parse_u(3, "dst_port")? as u16,
                    seq: parse_u(4, "seq")?,
                    ack: 0,
                    flags: flags::RST,
                    window: 0,
                    payload: Vec::new(),
                };
                Ok(seg.encode(src, NodeId::new(dst)))
            }
            other => Err(format!(
                "tcp stub cannot generate \"{other}\" (only ACK, RST)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> Segment {
        Segment {
            src_port: 1234,
            dst_port: 80,
            seq: 0xDEADBEEF,
            ack: 0x01020304,
            flags: flags::ACK | flags::PSH,
            window: 4096,
            payload: b"hello world".to_vec(),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = seg();
        let m = s.encode(NodeId::new(0), NodeId::new(1));
        assert_eq!(m.len(), HEADER_LEN + 11);
        let d = Segment::decode(&m).unwrap();
        assert_eq!(d, s);
    }

    #[test]
    fn corruption_fails_checksum() {
        let m0 = seg().encode(NodeId::new(0), NodeId::new(1));
        for off in [0, 4, 12, 14, HEADER_LEN, HEADER_LEN + 5] {
            let mut m = m0.clone();
            let b = m.byte_at(off).unwrap();
            m.set_byte_at(off, b ^ 0x40);
            assert!(
                matches!(Segment::decode(&m), Err(DecodeError::BadChecksum)),
                "offset {off} corruption must be caught"
            );
        }
    }

    #[test]
    fn truncated_and_inconsistent_buffers() {
        let m = Message::new(NodeId::new(0), NodeId::new(1), &[0u8; 10]);
        assert_eq!(Segment::decode(&m), Err(DecodeError::TooShort));
        let mut m = seg().encode(NodeId::new(0), NodeId::new(1));
        m.truncate(HEADER_LEN + 3);
        assert_eq!(Segment::decode(&m), Err(DecodeError::LengthMismatch));
    }

    #[test]
    fn type_names() {
        let mut s = seg();
        assert_eq!(s.type_name(), "DATA");
        s.payload.clear();
        assert_eq!(s.type_name(), "ACK");
        s.flags = flags::SYN;
        assert_eq!(s.type_name(), "SYN");
        s.flags = flags::SYN | flags::ACK;
        assert_eq!(s.type_name(), "SYN-ACK");
        s.flags = flags::FIN | flags::ACK;
        assert_eq!(s.type_name(), "FIN");
        s.flags = flags::RST;
        assert_eq!(s.type_name(), "RST");
    }

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let mut s = seg();
        assert_eq!(s.seq_len(), 11);
        s.flags |= flags::SYN;
        assert_eq!(s.seq_len(), 12);
        s.flags |= flags::FIN;
        assert_eq!(s.seq_len(), 13);
    }

    #[test]
    fn stub_recognises_fields() {
        let m = seg().encode(NodeId::new(0), NodeId::new(1));
        let stub = TcpStub;
        assert_eq!(stub.type_of(&m).as_deref(), Some("DATA"));
        assert_eq!(stub.field(&m, "seq"), Some(0xDEADBEEFu32 as i64));
        assert_eq!(stub.field(&m, "window"), Some(4096));
        assert_eq!(stub.field(&m, "len"), Some(11));
        assert_eq!(stub.field(&m, "nonsense"), None);
    }

    #[test]
    fn stub_set_field_reencodes_with_valid_checksum() {
        let mut m = seg().encode(NodeId::new(0), NodeId::new(1));
        let stub = TcpStub;
        assert!(stub.set_field(&mut m, "window", 0));
        let d = Segment::decode(&m).unwrap();
        assert_eq!(d.window, 0);
    }

    #[test]
    fn stub_generates_spurious_ack() {
        let stub = TcpStub;
        let args: Vec<String> = ["ACK", "1", "5000", "80", "100", "200", "4096"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let m = stub.generate(NodeId::new(0), &args).unwrap();
        let s = Segment::decode(&m).unwrap();
        assert_eq!(s.type_name(), "ACK");
        assert_eq!(s.ack, 200);
        assert!(stub
            .generate(NodeId::new(0), &["DATA".to_string()])
            .is_err());
    }

    #[test]
    fn checksum_detects_swapped_bytes() {
        // Ones-complement style sums catch simple reorderings of 16-bit
        // words only when values differ; verify a realistic corruption.
        let m = seg().encode(NodeId::new(0), NodeId::new(1));
        let mut m2 = m.clone();
        m2.set_byte_at(HEADER_LEN, b'X');
        assert!(Segment::decode(&m2).is_err());
    }
}
