//! Per-connection TCP state machine.
//!
//! Implements the subset of RFC 793/1122 the paper's experiments exercise:
//! three-way handshake, sliding-window data transfer with cumulative ACKs,
//! exponential-backoff retransmission (Jacobson RTO + Karn sample/backoff
//! rules), keep-alive probing, zero-window (persist) probing, out-of-order
//! reassembly, FIN teardown, and RSTs. Vendor differences are entirely
//! profile-driven — see [`TcpProfile`](crate::TcpProfile).

use std::collections::{BTreeMap, VecDeque};

use pfi_sim::{Context, NodeId, SimDuration, SimTime, TimerId};

use crate::events::{CloseReason, TcpEvent};
use crate::profile::{KeepaliveStyle, TcpProfile};
use crate::rtt::RttEstimator;
use crate::segment::{flags, Segment};

/// Timer kinds multiplexed into timer tokens.
pub(crate) const TIMER_RETX: u64 = 0;
pub(crate) const TIMER_PERSIST: u64 = 1;
pub(crate) const TIMER_KEEPALIVE: u64 = 2;
pub(crate) const TIMER_TIMEWAIT: u64 = 3;

pub(crate) fn timer_token(conn: usize, kind: u64) -> u64 {
    ((conn as u64) << 3) | kind
}

pub(crate) fn token_parts(token: u64) -> (usize, u64) {
    ((token >> 3) as usize, token & 0x7)
}

/// Sequence-space comparison helpers (wrapping, per RFC 793).
fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}
fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// Connection states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Active open sent a SYN.
    SynSent,
    /// Passive open answered a SYN.
    SynRcvd,
    /// Data may flow.
    Established,
    /// We closed first; FIN sent, not yet acked.
    FinWait1,
    /// Our FIN is acked; awaiting the peer's FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// We closed after the peer; FIN sent.
    LastAck,
    /// Simultaneous close.
    Closing,
    /// Waiting out the quiet period after an orderly close.
    TimeWait,
}

/// A sent-but-unacknowledged segment.
#[derive(Debug, Clone)]
struct SentSeg {
    data: Vec<u8>,
    syn: bool,
    fin: bool,
    /// Retransmission count (0 = only the original transmission).
    retx: u32,
}

impl SentSeg {
    fn seq_len(&self) -> u32 {
        self.data.len() as u32 + self.syn as u32 + self.fin as u32
    }
    fn flags(&self) -> u8 {
        let mut f = flags::ACK;
        if self.syn {
            f |= flags::SYN;
        }
        if self.fin {
            f |= flags::FIN;
        }
        if !self.data.is_empty() {
            f |= flags::PSH;
        }
        f
    }
}

/// One TCP connection.
#[derive(Debug, Clone)]
pub(crate) struct Conn {
    pub(crate) id: usize,
    pub(crate) local_port: u16,
    pub(crate) remote: NodeId,
    pub(crate) remote_port: u16,
    pub(crate) state: TcpState,

    // Send side.
    iss: u32,
    snd_una: u32,
    snd_nxt: u32,
    snd_wnd: u32,
    last_peer_window: Option<u16>,
    send_q: VecDeque<u8>,
    inflight: BTreeMap<u32, SentSeg>,
    backoff: u32,
    timed: Option<(u32, SimTime)>,
    rtt: RttEstimator,
    global_errors: u32,
    retx_timer: Option<TimerId>,
    fin_queued: bool,
    fin_sent: bool,
    /// Congestion window in bytes (only consulted when the profile enables
    /// congestion control).
    cwnd: u32,
    /// Slow-start threshold in bytes.
    ssthresh: u32,
    /// Consecutive duplicate ACKs seen.
    dup_acks: u32,

    // Receive side.
    rcv_nxt: u32,
    ooo: BTreeMap<u32, Vec<u8>>,
    rcv_buf: VecDeque<u8>,
    consume: bool,
    delivered: Vec<u8>,

    // Keep-alive.
    keepalive_on: bool,
    ka_timer: Option<TimerId>,
    ka_probing: bool,
    ka_probes_sent: u32,
    ka_interval: SimDuration,

    // Zero-window persist.
    persist_timer: Option<TimerId>,
    persist_interval: SimDuration,
    zw_probes: u32,
}

/// Externally visible connection statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TcpStats {
    /// Bytes handed to the application (in-order).
    pub bytes_delivered: u64,
    /// Bytes accepted from the application for sending.
    pub bytes_queued: u64,
    /// Total retransmissions on this connection.
    pub retransmissions: u64,
    /// Keep-alive probes sent.
    pub keepalive_probes: u64,
    /// Zero-window probes sent.
    pub zero_window_probes: u64,
    /// Data currently waiting in the send queue.
    pub send_queue_len: usize,
    /// Unacknowledged bytes in flight.
    pub inflight: usize,
}

impl Conn {
    pub(crate) fn new(
        id: usize,
        local_port: u16,
        remote: NodeId,
        remote_port: u16,
        iss: u32,
        profile: &TcpProfile,
    ) -> Self {
        Conn {
            id,
            local_port,
            remote,
            remote_port,
            state: TcpState::Closed,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_wnd: 0,
            last_peer_window: None,
            send_q: VecDeque::new(),
            inflight: BTreeMap::new(),
            backoff: 0,
            timed: None,
            rtt: RttEstimator::new(
                profile.rtt_adaptive,
                profile.initial_rto,
                profile.min_rto,
                profile.max_rto,
            ),
            global_errors: 0,
            retx_timer: None,
            fin_queued: false,
            fin_sent: false,
            cwnd: profile
                .congestion
                .map(|c| c.initial_cwnd_segments * profile.mss as u32)
                .unwrap_or(u32::MAX),
            ssthresh: profile.send_window,
            dup_acks: 0,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            rcv_buf: VecDeque::new(),
            consume: true,
            delivered: Vec::new(),
            keepalive_on: false,
            ka_timer: None,
            ka_probing: false,
            ka_probes_sent: 0,
            ka_interval: SimDuration::ZERO,
            persist_timer: None,
            persist_interval: SimDuration::ZERO,
            zw_probes: 0,
        }
    }

    pub(crate) fn stats(&self, totals: &ConnTotals) -> TcpStats {
        TcpStats {
            bytes_delivered: totals.bytes_delivered,
            bytes_queued: totals.bytes_queued,
            retransmissions: totals.retransmissions,
            keepalive_probes: totals.keepalive_probes,
            zero_window_probes: totals.zero_window_probes,
            send_queue_len: self.send_q.len(),
            inflight: self.inflight.values().map(|s| s.data.len()).sum(),
        }
    }

    // ---- basic helpers ------------------------------------------------

    fn rcv_window(&self, profile: &TcpProfile) -> u16 {
        if self.consume {
            profile.recv_buffer.min(u16::MAX as usize) as u16
        } else {
            profile
                .recv_buffer
                .saturating_sub(self.rcv_buf.len())
                .min(u16::MAX as usize) as u16
        }
    }

    fn emit_segment(
        &self,
        profile: &TcpProfile,
        ctx: &mut Context<'_>,
        seq: u32,
        flag_bits: u8,
        payload: &[u8],
    ) {
        let seg = Segment {
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq,
            ack: if flag_bits & flags::ACK != 0 {
                self.rcv_nxt
            } else {
                0
            },
            flags: flag_bits,
            window: self.rcv_window(profile),
            payload: payload.to_vec(),
        };
        let msg = seg.encode(ctx.node(), self.remote);
        ctx.send_down(msg);
    }

    fn send_pure_ack(&self, profile: &TcpProfile, ctx: &mut Context<'_>) {
        self.emit_segment(profile, ctx, self.snd_nxt, flags::ACK, &[]);
    }

    fn cancel_timer(slot: &mut Option<TimerId>, ctx: &mut Context<'_>) {
        if let Some(id) = slot.take() {
            ctx.cancel_timer(id);
        }
    }

    fn cancel_all_timers(&mut self, ctx: &mut Context<'_>) {
        Self::cancel_timer(&mut self.retx_timer, ctx);
        Self::cancel_timer(&mut self.persist_timer, ctx);
        Self::cancel_timer(&mut self.ka_timer, ctx);
    }

    fn close(&mut self, ctx: &mut Context<'_>, reason: CloseReason) {
        self.state = TcpState::Closed;
        self.cancel_all_timers(ctx);
        ctx.emit(TcpEvent::Closed {
            conn: self.id,
            reason,
        });
    }

    // ---- opening ------------------------------------------------------

    /// Active open: send SYN.
    pub(crate) fn open_active(&mut self, profile: &TcpProfile, ctx: &mut Context<'_>) {
        self.state = TcpState::SynSent;
        self.inflight.insert(
            self.iss,
            SentSeg {
                data: Vec::new(),
                syn: true,
                fin: false,
                retx: 0,
            },
        );
        self.emit_segment(profile, ctx, self.iss, flags::SYN, &[]);
        ctx.emit(TcpEvent::SegmentSent {
            conn: self.id,
            seq: self.iss,
            len: 0,
            kind: "SYN",
        });
        self.snd_nxt = self.iss.wrapping_add(1);
        self.arm_retx(ctx);
    }

    /// Passive open: a SYN arrived for one of our listeners.
    pub(crate) fn open_passive(
        &mut self,
        profile: &TcpProfile,
        ctx: &mut Context<'_>,
        syn: &Segment,
    ) {
        self.rcv_nxt = syn.seq.wrapping_add(1);
        self.snd_wnd = syn.window as u32;
        self.state = TcpState::SynRcvd;
        self.inflight.insert(
            self.iss,
            SentSeg {
                data: Vec::new(),
                syn: true,
                fin: false,
                retx: 0,
            },
        );
        self.emit_segment(profile, ctx, self.iss, flags::SYN | flags::ACK, &[]);
        ctx.emit(TcpEvent::SegmentSent {
            conn: self.id,
            seq: self.iss,
            len: 0,
            kind: "SYN-ACK",
        });
        self.snd_nxt = self.iss.wrapping_add(1);
        self.arm_retx(ctx);
    }

    // ---- application interface ----------------------------------------

    pub(crate) fn app_send(
        &mut self,
        profile: &TcpProfile,
        ctx: &mut Context<'_>,
        data: &[u8],
        totals: &mut ConnTotals,
    ) {
        totals.bytes_queued += data.len() as u64;
        self.send_q.extend(data.iter().copied());
        self.try_send(profile, ctx, totals);
    }

    pub(crate) fn app_close(&mut self, profile: &TcpProfile, ctx: &mut Context<'_>) {
        match self.state {
            TcpState::Established | TcpState::CloseWait | TcpState::SynRcvd => {
                self.fin_queued = true;
                self.maybe_send_fin(profile, ctx);
            }
            TcpState::SynSent | TcpState::Closed => {
                self.close(ctx, CloseReason::App);
            }
            _ => {}
        }
    }

    fn maybe_send_fin(&mut self, profile: &TcpProfile, ctx: &mut Context<'_>) {
        if !self.fin_queued || self.fin_sent || !self.send_q.is_empty() {
            return;
        }
        let seq = self.snd_nxt;
        self.inflight.insert(
            seq,
            SentSeg {
                data: Vec::new(),
                syn: false,
                fin: true,
                retx: 0,
            },
        );
        self.emit_segment(profile, ctx, seq, flags::FIN | flags::ACK, &[]);
        ctx.emit(TcpEvent::SegmentSent {
            conn: self.id,
            seq,
            len: 0,
            kind: "FIN",
        });
        self.snd_nxt = seq.wrapping_add(1);
        self.fin_sent = true;
        self.state = match self.state {
            TcpState::CloseWait => TcpState::LastAck,
            _ => TcpState::FinWait1,
        };
        self.arm_retx(ctx);
    }

    pub(crate) fn set_keepalive(&mut self, profile: &TcpProfile, ctx: &mut Context<'_>, on: bool) {
        self.keepalive_on = on;
        Self::cancel_timer(&mut self.ka_timer, ctx);
        self.ka_probing = false;
        self.ka_probes_sent = 0;
        if on {
            self.ka_timer = Some(ctx.set_timer(
                profile.keepalive_idle,
                timer_token(self.id, TIMER_KEEPALIVE),
            ));
        }
    }

    pub(crate) fn set_consume(&mut self, profile: &TcpProfile, ctx: &mut Context<'_>, on: bool) {
        let was = self.consume;
        self.consume = on;
        if on && !was {
            // Drain the buffered bytes to the application and advertise the
            // reopened window.
            self.delivered.extend(self.rcv_buf.drain(..));
            self.send_pure_ack(profile, ctx);
        }
    }

    pub(crate) fn take_delivered(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.delivered)
    }

    // ---- sending ------------------------------------------------------

    fn flight_size(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    pub(crate) fn try_send(
        &mut self,
        profile: &TcpProfile,
        ctx: &mut Context<'_>,
        totals: &mut ConnTotals,
    ) {
        if !matches!(self.state, TcpState::Established | TcpState::CloseWait) {
            return;
        }
        loop {
            if self.send_q.is_empty() {
                break;
            }
            let mut wnd = self.snd_wnd.min(profile.send_window);
            if profile.congestion.is_some() {
                wnd = wnd.min(self.cwnd);
            }
            let avail = wnd.saturating_sub(self.flight_size());
            if avail == 0 {
                if self.snd_wnd == 0 && self.inflight.is_empty() {
                    self.enter_persist(profile, ctx);
                }
                break;
            }
            let take = profile.mss.min(self.send_q.len()).min(avail as usize);
            let payload: Vec<u8> = self.send_q.drain(..take).collect();
            let seq = self.snd_nxt;
            if self.timed.is_none() {
                self.timed = Some((seq.wrapping_add(take as u32), ctx.now()));
            }
            self.inflight.insert(
                seq,
                SentSeg {
                    data: payload.clone(),
                    syn: false,
                    fin: false,
                    retx: 0,
                },
            );
            self.emit_segment(profile, ctx, seq, flags::ACK | flags::PSH, &payload);
            ctx.emit(TcpEvent::SegmentSent {
                conn: self.id,
                seq,
                len: take,
                kind: "DATA",
            });
            self.snd_nxt = seq.wrapping_add(take as u32);
            self.arm_retx(ctx);
            let _ = totals;
        }
        self.maybe_send_fin(profile, ctx);
    }

    fn arm_retx(&mut self, ctx: &mut Context<'_>) {
        if self.retx_timer.is_none() && !self.inflight.is_empty() {
            let rto = self.rtt.backed_off_rto(self.backoff);
            self.retx_timer = Some(ctx.set_timer(rto, timer_token(self.id, TIMER_RETX)));
        }
    }

    fn rearm_retx(&mut self, ctx: &mut Context<'_>) {
        Self::cancel_timer(&mut self.retx_timer, ctx);
        self.arm_retx(ctx);
    }

    // ---- persist (zero-window probing) ---------------------------------

    fn enter_persist(&mut self, profile: &TcpProfile, ctx: &mut Context<'_>) {
        if self.persist_timer.is_some() {
            return;
        }
        self.persist_interval = profile.zw_probe_initial;
        self.zw_probes = 0;
        self.persist_timer =
            Some(ctx.set_timer(self.persist_interval, timer_token(self.id, TIMER_PERSIST)));
    }

    fn exit_persist(&mut self, ctx: &mut Context<'_>) {
        Self::cancel_timer(&mut self.persist_timer, ctx);
        self.zw_probes = 0;
    }

    fn on_persist_timer(
        &mut self,
        profile: &TcpProfile,
        ctx: &mut Context<'_>,
        totals: &mut ConnTotals,
    ) {
        self.persist_timer = None;
        if self.state == TcpState::Closed {
            return;
        }
        if self.snd_wnd > 0 {
            self.try_send(profile, ctx, totals);
            return;
        }
        // Probe with one byte of the next unsent data ("window probe").
        // The byte stays queued; it is only committed when acked.
        let probe: Vec<u8> = self.send_q.front().map(|b| vec![*b]).unwrap_or_default();
        if probe.is_empty() {
            return; // nothing left to say
        }
        self.emit_segment(profile, ctx, self.snd_nxt, flags::ACK | flags::PSH, &probe);
        self.zw_probes += 1;
        totals.zero_window_probes += 1;
        self.persist_interval = self.persist_interval.backoff(profile.zw_probe_cap);
        ctx.emit(TcpEvent::ZeroWindowProbe {
            conn: self.id,
            nth: self.zw_probes,
            next_interval: self.persist_interval,
        });
        // Zero-window probing never gives up: "a connection may hang
        // forever"; all four vendors probed indefinitely, ACKed or not.
        self.persist_timer =
            Some(ctx.set_timer(self.persist_interval, timer_token(self.id, TIMER_PERSIST)));
    }

    // ---- keep-alive ----------------------------------------------------

    fn ka_max_probes(profile: &TcpProfile) -> u32 {
        match profile.keepalive_style {
            KeepaliveStyle::FixedInterval { max_probes, .. } => max_probes,
            KeepaliveStyle::ExpBackoff { max_probes, .. } => max_probes,
        }
    }

    fn send_ka_probe(
        &mut self,
        profile: &TcpProfile,
        ctx: &mut Context<'_>,
        totals: &mut ConnTotals,
    ) {
        let garbage: &[u8] = if profile.keepalive_garbage_byte {
            &[0u8]
        } else {
            &[]
        };
        // SEG.SEQ = SND.NXT - 1: already-acked sequence space, so any live
        // peer must answer with an ACK.
        self.emit_segment(
            profile,
            ctx,
            self.snd_nxt.wrapping_sub(1),
            flags::ACK,
            garbage,
        );
        self.ka_probes_sent += 1;
        totals.keepalive_probes += 1;
        ctx.emit(TcpEvent::KeepaliveProbe {
            conn: self.id,
            nth: self.ka_probes_sent,
            garbage_bytes: garbage.len(),
        });
    }

    fn on_keepalive_timer(
        &mut self,
        profile: &TcpProfile,
        ctx: &mut Context<'_>,
        totals: &mut ConnTotals,
    ) {
        self.ka_timer = None;
        if !self.keepalive_on || self.state != TcpState::Established {
            return;
        }
        if self.ka_probing && self.ka_probes_sent > Self::ka_max_probes(profile) {
            // All probes (the original plus max_probes retransmissions)
            // went unanswered.
            if profile.keepalive_reset {
                self.emit_segment(profile, ctx, self.snd_nxt, flags::RST, &[]);
                ctx.emit(TcpEvent::Reset {
                    conn: self.id,
                    sent: true,
                });
            }
            self.close(ctx, CloseReason::KeepaliveTimeout);
            return;
        }
        if !self.ka_probing {
            self.ka_probing = true;
            self.ka_probes_sent = 0;
            self.ka_interval = match profile.keepalive_style {
                KeepaliveStyle::FixedInterval { interval, .. } => interval,
                KeepaliveStyle::ExpBackoff { initial, .. } => initial,
            };
        } else if let KeepaliveStyle::ExpBackoff { .. } = profile.keepalive_style {
            self.ka_interval = self.ka_interval.backoff(profile.max_rto);
        }
        self.send_ka_probe(profile, ctx, totals);
        self.ka_timer =
            Some(ctx.set_timer(self.ka_interval, timer_token(self.id, TIMER_KEEPALIVE)));
    }

    /// Any traffic from the peer proves liveness: reset keep-alive state.
    fn touch_keepalive(&mut self, profile: &TcpProfile, ctx: &mut Context<'_>) {
        if !self.keepalive_on {
            return;
        }
        self.ka_probing = false;
        self.ka_probes_sent = 0;
        Self::cancel_timer(&mut self.ka_timer, ctx);
        self.ka_timer = Some(ctx.set_timer(
            profile.keepalive_idle,
            timer_token(self.id, TIMER_KEEPALIVE),
        ));
    }

    // ---- retransmission -------------------------------------------------

    fn on_retx_timer(
        &mut self,
        profile: &TcpProfile,
        ctx: &mut Context<'_>,
        totals: &mut ConnTotals,
    ) {
        self.retx_timer = None;
        let Some((&seq, _)) = self.inflight.iter().next() else {
            return;
        };
        self.backoff += 1;
        self.global_errors += 1;
        let (retx, flag_bits, data, seg_len) = {
            let seg = self.inflight.get_mut(&seq).expect("first inflight");
            seg.retx += 1;
            (seg.retx, seg.flags(), seg.data.clone(), seg.seq_len())
        };
        // Karn: the retransmitted segment's ACK time is now ambiguous, so
        // discard its in-progress RTT measurement (other segments' timed
        // samples stay valid).
        if self
            .timed
            .is_some_and(|(end, _)| end == seq.wrapping_add(seg_len))
        {
            self.timed = None;
        }
        let counter = if profile.global_error_counter {
            self.global_errors
        } else {
            retx
        };
        if counter > profile.max_data_retx {
            // One retransmission too many: give up on the connection.
            if profile.reset_on_timeout {
                self.emit_segment(profile, ctx, self.snd_nxt, flags::RST, &[]);
                ctx.emit(TcpEvent::Reset {
                    conn: self.id,
                    sent: true,
                });
            }
            self.close(ctx, CloseReason::Timeout);
            return;
        }
        if let Some(_cfg) = profile.congestion {
            // Tahoe timeout response: halve the threshold, restart slow
            // start from one segment.
            let mss = profile.mss as u32;
            self.ssthresh = (self.flight_size() / 2).max(2 * mss);
            self.cwnd = mss;
            self.dup_acks = 0;
        }
        totals.retransmissions += 1;
        self.emit_segment(profile, ctx, seq, flag_bits, &data);
        let next_rto = self.rtt.backed_off_rto(self.backoff);
        ctx.emit(TcpEvent::Retransmit {
            conn: self.id,
            seq,
            nth: retx,
            next_rto,
        });
        self.retx_timer = Some(ctx.set_timer(next_rto, timer_token(self.id, TIMER_RETX)));
    }

    // ---- timer dispatch --------------------------------------------------

    pub(crate) fn on_timer(
        &mut self,
        profile: &TcpProfile,
        ctx: &mut Context<'_>,
        kind: u64,
        totals: &mut ConnTotals,
    ) {
        if self.state == TcpState::Closed {
            return;
        }
        match kind {
            TIMER_RETX => self.on_retx_timer(profile, ctx, totals),
            TIMER_PERSIST => self.on_persist_timer(profile, ctx, totals),
            TIMER_KEEPALIVE => self.on_keepalive_timer(profile, ctx, totals),
            TIMER_TIMEWAIT if self.state == TcpState::TimeWait => {
                self.close(ctx, CloseReason::Fin);
            }
            _ => {}
        }
    }

    // ---- receiving -------------------------------------------------------

    pub(crate) fn on_segment(
        &mut self,
        profile: &TcpProfile,
        ctx: &mut Context<'_>,
        seg: Segment,
        totals: &mut ConnTotals,
    ) {
        if self.state == TcpState::Closed {
            return;
        }
        self.touch_keepalive(profile, ctx);
        if seg.has(flags::RST) {
            ctx.emit(TcpEvent::Reset {
                conn: self.id,
                sent: false,
            });
            self.close(ctx, CloseReason::Reset);
            return;
        }
        match self.state {
            TcpState::SynSent => {
                if seg.has(flags::SYN) && seg.has(flags::ACK) && seg.ack == self.iss.wrapping_add(1)
                {
                    self.inflight.remove(&self.iss);
                    self.snd_una = seg.ack;
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    self.snd_wnd = seg.window as u32;
                    self.backoff = 0;
                    self.rearm_retx(ctx);
                    self.state = TcpState::Established;
                    ctx.emit(TcpEvent::Connected { conn: self.id });
                    self.send_pure_ack(profile, ctx);
                    self.try_send(profile, ctx, totals);
                }
            }
            TcpState::SynRcvd => {
                if seg.has(flags::ACK) && seg.ack == self.iss.wrapping_add(1) {
                    self.inflight.remove(&self.iss);
                    self.snd_una = seg.ack;
                    self.snd_wnd = seg.window as u32;
                    self.backoff = 0;
                    self.rearm_retx(ctx);
                    self.state = TcpState::Established;
                    ctx.emit(TcpEvent::Connected { conn: self.id });
                    if !seg.payload.is_empty() {
                        self.handle_data(profile, ctx, &seg, totals);
                    }
                    self.try_send(profile, ctx, totals);
                }
            }
            _ => {
                if seg.has(flags::ACK) {
                    self.process_ack(profile, ctx, &seg, totals);
                }
                if self.state == TcpState::Closed {
                    return;
                }
                let had_payload = !seg.payload.is_empty();
                if had_payload {
                    self.handle_data(profile, ctx, &seg, totals);
                }
                if seg.has(flags::FIN) {
                    self.handle_fin(profile, ctx, &seg);
                } else if had_payload || seg.seq != self.rcv_nxt {
                    // ACK everything we have (cumulative; covers in-order,
                    // duplicate, and out-of-order data). An out-of-window
                    // *empty* segment must be ACKed too: that is how
                    // garbage-less keep-alive probes (AIX/NeXT/Solaris
                    // style, SEG.SEQ = SND.NXT - 1 with no data) elicit
                    // their answer.
                    self.send_pure_ack(profile, ctx);
                }
            }
        }
    }

    fn process_ack(
        &mut self,
        profile: &TcpProfile,
        ctx: &mut Context<'_>,
        seg: &Segment,
        totals: &mut ConnTotals,
    ) {
        // Window update first: a pure window-update ACK must reopen a
        // zero window even when it acknowledges nothing new.
        self.snd_wnd = seg.window as u32;
        if self.last_peer_window != Some(seg.window)
            && (seg.window == 0
                || self.last_peer_window == Some(0)
                || self.last_peer_window.is_none())
        {
            ctx.emit(TcpEvent::PeerWindow {
                conn: self.id,
                window: seg.window,
            });
        }
        self.last_peer_window = Some(seg.window);

        let ack = seg.ack;
        let probe_end = self.snd_nxt.wrapping_add(1);
        if seq_lt(self.snd_una, ack) && (seq_le(ack, self.snd_nxt) || ack == probe_end) {
            let mut acked_clean = true;
            let mut acked_any = false;
            while let Some((&seq, first)) = self.inflight.iter().next() {
                let end = seq.wrapping_add(first.seq_len());
                if !seq_le(end, ack) {
                    break;
                }
                if first.retx > 0 {
                    acked_clean = false;
                }
                acked_any = true;
                if let Some((timed_end, sent_at)) = self.timed {
                    if timed_end == end && first.retx == 0 {
                        self.rtt.sample(ctx.now().saturating_since(sent_at));
                        self.timed = None;
                    }
                }
                let was_fin = first.fin;
                self.inflight.remove(&seq);
                if was_fin {
                    self.on_fin_acked(ctx);
                }
            }
            if ack == probe_end && !self.send_q.is_empty() {
                // A zero-window probe byte was accepted.
                self.send_q.pop_front();
                self.snd_nxt = ack;
                acked_any = true;
            }
            self.snd_una = ack;
            if acked_any {
                // 4.3BSD resets the backoff shift whenever new data is
                // acknowledged (Karn's rule governs RTT *samples*, which
                // stay clean-only). The Solaris global fault counter,
                // however, is only cleared by an unambiguous ACK — that is
                // precisely what the paper's 35-second-delay probe exposed.
                self.backoff = 0;
                if acked_clean && profile.global_error_counter {
                    self.global_errors = 0;
                }
                if let Some(_cfg) = profile.congestion {
                    self.dup_acks = 0;
                    let mss = profile.mss as u32;
                    if self.cwnd < self.ssthresh {
                        // Slow start: one MSS per ACK.
                        self.cwnd = self.cwnd.saturating_add(mss);
                    } else {
                        // Congestion avoidance: ~one MSS per RTT.
                        self.cwnd = self.cwnd.saturating_add((mss * mss / self.cwnd).max(1));
                    }
                }
            }
            self.rearm_retx(ctx);
        } else if let Some(cfg) = profile.congestion {
            // A duplicate ACK: same ack number with data still in flight.
            if ack == self.snd_una && !self.inflight.is_empty() && seg.payload.is_empty() {
                self.dup_acks += 1;
                if cfg.fast_retransmit_dupacks > 0 && self.dup_acks == cfg.fast_retransmit_dupacks {
                    self.fast_retransmit(profile, ctx, totals);
                }
            }
        }
        if self.state == TcpState::Closed {
            return;
        }
        if self.snd_wnd > 0 {
            if self.persist_timer.is_some() {
                self.exit_persist(ctx);
            }
            self.try_send(profile, ctx, totals);
        } else if !self.send_q.is_empty() && self.inflight.is_empty() {
            self.enter_persist(profile, ctx);
        }
    }

    /// Tahoe fast retransmit: three duplicate ACKs mean the head segment is
    /// gone but later data arrived — resend it immediately instead of
    /// waiting out the RTO, then restart from a one-segment window.
    fn fast_retransmit(
        &mut self,
        profile: &TcpProfile,
        ctx: &mut Context<'_>,
        totals: &mut ConnTotals,
    ) {
        let Some((&seq, _)) = self.inflight.iter().next() else {
            return;
        };
        let (flag_bits, data, seg_len, retx) = {
            let seg = self.inflight.get_mut(&seq).expect("first inflight");
            seg.retx += 1;
            (seg.flags(), seg.data.clone(), seg.seq_len(), seg.retx)
        };
        if self
            .timed
            .is_some_and(|(end, _)| end == seq.wrapping_add(seg_len))
        {
            self.timed = None; // Karn
        }
        let mss = profile.mss as u32;
        self.ssthresh = (self.flight_size() / 2).max(2 * mss);
        self.cwnd = mss;
        self.dup_acks = 0;
        totals.retransmissions += 1;
        self.emit_segment(profile, ctx, seq, flag_bits, &data);
        ctx.emit(TcpEvent::FastRetransmit {
            conn: self.id,
            seq,
            nth: retx,
        });
        self.rearm_retx(ctx);
    }

    fn on_fin_acked(&mut self, ctx: &mut Context<'_>) {
        match self.state {
            TcpState::FinWait1 => self.state = TcpState::FinWait2,
            TcpState::Closing => {
                self.state = TcpState::TimeWait;
                ctx.set_timer(
                    SimDuration::from_secs(30),
                    timer_token(self.id, TIMER_TIMEWAIT),
                );
            }
            TcpState::LastAck => self.close(ctx, CloseReason::Fin),
            _ => {}
        }
    }

    fn handle_data(
        &mut self,
        profile: &TcpProfile,
        ctx: &mut Context<'_>,
        seg: &Segment,
        totals: &mut ConnTotals,
    ) {
        let seq = seg.seq;
        if seq == self.rcv_nxt {
            self.accept_in_order(profile, ctx, seg.payload.clone(), totals);
            // Reassemble any queued segments that are now contiguous.
            while let Some(data) = self.ooo.remove(&self.rcv_nxt) {
                self.accept_in_order(profile, ctx, data, totals);
            }
        } else if seq_lt(self.rcv_nxt, seq) && profile.queue_out_of_order {
            ctx.emit(TcpEvent::OutOfOrderQueued { conn: self.id, seq });
            self.ooo.entry(seq).or_insert_with(|| seg.payload.clone());
        }
        // Else: dropped; the cumulative ACK below asks for a resend.
        // seq < rcv_nxt: old duplicate or keep-alive probe; payload ignored,
        // the caller's ACK answers it.
    }

    fn accept_in_order(
        &mut self,
        profile: &TcpProfile,
        ctx: &mut Context<'_>,
        data: Vec<u8>,
        totals: &mut ConnTotals,
    ) {
        let take = if self.consume {
            data.len()
        } else {
            data.len()
                .min(profile.recv_buffer.saturating_sub(self.rcv_buf.len()))
        };
        if take == 0 {
            return; // zero window: payload dropped, ACK advertises 0
        }
        let accepted = &data[..take];
        if self.consume {
            self.delivered.extend_from_slice(accepted);
        } else {
            self.rcv_buf.extend(accepted.iter().copied());
        }
        self.rcv_nxt = self.rcv_nxt.wrapping_add(take as u32);
        totals.bytes_delivered += take as u64;
        ctx.emit(TcpEvent::DataDelivered {
            conn: self.id,
            bytes: take,
        });
    }

    fn handle_fin(&mut self, profile: &TcpProfile, ctx: &mut Context<'_>, seg: &Segment) {
        let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
        if fin_seq != self.rcv_nxt {
            // FIN for data we have not received yet; ACK what we have.
            self.send_pure_ack(profile, ctx);
            return;
        }
        self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
        match self.state {
            TcpState::Established => self.state = TcpState::CloseWait,
            TcpState::FinWait1 => {
                // Our FIN unacked: simultaneous close.
                self.state = TcpState::Closing;
            }
            TcpState::FinWait2 => {
                self.state = TcpState::TimeWait;
                ctx.set_timer(
                    SimDuration::from_secs(30),
                    timer_token(self.id, TIMER_TIMEWAIT),
                );
            }
            _ => {}
        }
        self.send_pure_ack(profile, ctx);
    }
}

/// Monotonic per-connection counters kept outside [`Conn`] so stats survive
/// connection teardown.
#[derive(Debug, Clone, Default)]
pub(crate) struct ConnTotals {
    pub bytes_delivered: u64,
    pub bytes_queued: u64,
    pub retransmissions: u64,
    pub keepalive_probes: u64,
    pub zero_window_probes: u64,
}
