//! Vendor personality profiles.
//!
//! The paper probed four vendor TCPs and found them externally
//! distinguishable along a handful of axes: RTO bounds and adaptivity,
//! retransmission caps and reset behaviour, keep-alive thresholds and probe
//! styles, zero-window probe caps, and Solaris's global error counter. A
//! [`TcpProfile`] encodes those axes; the same state machine plus a
//! different profile reproduces each vendor's observed behaviour.

use pfi_sim::SimDuration;

/// Congestion control configuration (Tahoe-style), an opt-in extension.
///
/// The paper's experiments do not exercise congestion control, so the
/// vendor profiles leave it off to keep their fingerprints exactly as
/// measured; [`TcpProfile::tahoe`] enables it for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CongestionConfig {
    /// Initial congestion window, in segments.
    pub initial_cwnd_segments: u32,
    /// Duplicate ACKs that trigger a fast retransmit (0 disables fast
    /// retransmit while keeping slow start / congestion avoidance).
    pub fast_retransmit_dupacks: u32,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        CongestionConfig {
            initial_cwnd_segments: 1,
            fast_retransmit_dupacks: 3,
        }
    }
}

/// How keep-alive probes are retransmitted when unanswered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepaliveStyle {
    /// BSD-family: probes at a fixed interval, e.g. every 75 s, up to
    /// `max_probes`, then reset.
    FixedInterval {
        /// Gap between successive probes.
        interval: SimDuration,
        /// Probes after the first before giving up.
        max_probes: u32,
    },
    /// Solaris: probes with exponential backoff from `initial`, up to
    /// `max_probes`, then drop (silently).
    ExpBackoff {
        /// First retransmission gap.
        initial: SimDuration,
        /// Probes after the first before giving up.
        max_probes: u32,
    },
}

/// Externally observable parameters of one TCP implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpProfile {
    /// Vendor name as printed in the paper's tables.
    pub name: &'static str,
    /// Maximum segment size.
    pub mss: usize,
    /// Cap on unacknowledged bytes in flight (sender-side window).
    pub send_window: u32,
    /// Receive buffer capacity (advertised window when empty).
    pub recv_buffer: usize,
    /// RTO before any RTT measurement exists.
    pub initial_rto: SimDuration,
    /// Lower bound on the retransmission timeout. The paper measured
    /// ~1 s for the BSD family and ~330 ms for Solaris 2.3.
    pub min_rto: SimDuration,
    /// Upper bound on the (backed-off) retransmission timeout (64 s).
    pub max_rto: SimDuration,
    /// Retransmissions of a segment before the connection is timed out
    /// (12 BSD-family, 9 Solaris).
    pub max_data_retx: u32,
    /// Send a RST when timing out a connection (BSD yes, Solaris no).
    pub reset_on_timeout: bool,
    /// Use Jacobson's algorithm with Karn's sample selection. The paper
    /// concluded Solaris "either did not use Jacobson's algorithm, or did
    /// not select RTT measurements in the same way".
    pub rtt_adaptive: bool,
    /// Solaris's global fault counter: retransmission timeouts accumulate
    /// across segments and only a clean (never-retransmitted) ACK resets
    /// the count.
    pub global_error_counter: bool,
    /// Idle time before the first keep-alive probe (spec says ≥ 7200 s;
    /// Solaris violated it with 6752 s).
    pub keepalive_idle: SimDuration,
    /// Keep-alive retransmission style.
    pub keepalive_style: KeepaliveStyle,
    /// Keep-alive probes carry one byte of garbage data (SunOS) or none
    /// (AIX, NeXT).
    pub keepalive_garbage_byte: bool,
    /// Send RST when keep-alive gives up (BSD yes; Solaris silently drops).
    pub keepalive_reset: bool,
    /// First zero-window (persist) probe interval.
    pub zw_probe_initial: SimDuration,
    /// Cap on the zero-window probe interval (60 s BSD family, 56 s
    /// Solaris).
    pub zw_probe_cap: SimDuration,
    /// Queue out-of-order segments (RFC 1122 SHOULD; all four vendors did).
    pub queue_out_of_order: bool,
    /// Tahoe congestion control + fast retransmit (`None` = plain
    /// timeout-driven sender, as the paper's probes exercise).
    pub congestion: Option<CongestionConfig>,
}

impl TcpProfile {
    /// SunOS 4.1.3: BSD-derived; 12 retransmissions backed off to a 64 s
    /// cap, RST on timeout; keep-alive at 7200 s with 75 s × 8 probes and a
    /// garbage byte; 60 s zero-window cap.
    pub fn sunos_4_1_3() -> Self {
        TcpProfile {
            name: "SunOS 4.1.3",
            mss: 512,
            send_window: 4096,
            recv_buffer: 4096,
            initial_rto: SimDuration::from_millis(1_500),
            min_rto: SimDuration::from_secs(1),
            max_rto: SimDuration::from_secs(64),
            max_data_retx: 12,
            reset_on_timeout: true,
            rtt_adaptive: true,
            global_error_counter: false,
            keepalive_idle: SimDuration::from_secs(7_200),
            keepalive_style: KeepaliveStyle::FixedInterval {
                interval: SimDuration::from_secs(75),
                max_probes: 8,
            },
            keepalive_garbage_byte: true,
            keepalive_reset: true,
            zw_probe_initial: SimDuration::from_secs(5),
            zw_probe_cap: SimDuration::from_secs(60),
            queue_out_of_order: true,
            congestion: None,
        }
    }

    /// AIX 3.2.3: "same as SunOS", except keep-alive probes carry no
    /// garbage byte.
    pub fn aix_3_2_3() -> Self {
        TcpProfile {
            name: "AIX 3.2.3",
            keepalive_garbage_byte: false,
            ..Self::sunos_4_1_3()
        }
    }

    /// NeXT Mach (BSD-derived, like AIX no garbage byte).
    pub fn next_mach() -> Self {
        TcpProfile {
            name: "NeXT Mach",
            keepalive_garbage_byte: false,
            ..Self::sunos_4_1_3()
        }
    }

    /// Solaris 2.3: 330 ms RTO floor, non-adaptive RTT, 9 retransmissions,
    /// no RST on timeout, global error counter, keep-alive at 6752 s (a
    /// spec violation) with exponential backoff × 7, 56 s zero-window cap.
    pub fn solaris_2_3() -> Self {
        TcpProfile {
            name: "Solaris 2.3",
            mss: 512,
            send_window: 4096,
            recv_buffer: 4096,
            initial_rto: SimDuration::from_millis(330),
            min_rto: SimDuration::from_millis(330),
            max_rto: SimDuration::from_secs(64),
            max_data_retx: 9,
            reset_on_timeout: false,
            rtt_adaptive: false,
            global_error_counter: true,
            keepalive_idle: SimDuration::from_secs(6_752),
            keepalive_style: KeepaliveStyle::ExpBackoff {
                initial: SimDuration::from_secs(1),
                max_probes: 7,
            },
            keepalive_garbage_byte: false,
            keepalive_reset: false,
            zw_probe_initial: SimDuration::from_secs(5),
            zw_probe_cap: SimDuration::from_secs(56),
            queue_out_of_order: true,
            congestion: None,
        }
    }

    /// A clean RFC-793/1122 reference configuration (used by the x-Kernel
    /// side of the experiments and as the baseline in ablations).
    pub fn rfc_reference() -> Self {
        TcpProfile {
            name: "x-Kernel reference",
            ..Self::sunos_4_1_3()
        }
    }

    /// A Tahoe-style sender: the reference profile plus slow start,
    /// congestion avoidance, and 3-dup-ACK fast retransmit. Used by the
    /// recovery-speed ablation benches; not part of the paper's probes.
    pub fn tahoe() -> Self {
        TcpProfile {
            name: "Tahoe reference",
            congestion: Some(CongestionConfig::default()),
            ..Self::sunos_4_1_3()
        }
    }

    /// All four vendor profiles in the paper's table order.
    pub fn vendors() -> Vec<TcpProfile> {
        vec![
            Self::sunos_4_1_3(),
            Self::aix_3_2_3(),
            Self::next_mach(),
            Self::solaris_2_3(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_axes_match_the_paper() {
        let sun = TcpProfile::sunos_4_1_3();
        assert_eq!(sun.max_data_retx, 12);
        assert!(sun.reset_on_timeout);
        assert_eq!(sun.max_rto, SimDuration::from_secs(64));
        assert_eq!(sun.keepalive_idle, SimDuration::from_secs(7_200));
        assert!(sun.keepalive_garbage_byte);
        assert_eq!(sun.zw_probe_cap, SimDuration::from_secs(60));

        let sol = TcpProfile::solaris_2_3();
        assert_eq!(sol.max_data_retx, 9);
        assert!(!sol.reset_on_timeout);
        assert!(!sol.rtt_adaptive);
        assert!(sol.global_error_counter);
        assert_eq!(sol.min_rto, SimDuration::from_millis(330));
        assert_eq!(sol.keepalive_idle, SimDuration::from_secs(6_752));
        assert_eq!(sol.zw_probe_cap, SimDuration::from_secs(56));
        // The paper's footnote: 6752/7200 ≈ 56/60.
        let lhs: f64 = 6_752.0 / 7_200.0;
        let rhs: f64 = 56.0 / 60.0;
        assert!((lhs - rhs).abs() < 0.01);

        let aix = TcpProfile::aix_3_2_3();
        assert!(!aix.keepalive_garbage_byte);
        assert_eq!(aix.max_data_retx, sun.max_data_retx);
    }

    #[test]
    fn vendors_returns_all_four() {
        let names: Vec<&str> = TcpProfile::vendors().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["SunOS 4.1.3", "AIX 3.2.3", "NeXT Mach", "Solaris 2.3"]
        );
    }
}
