//! # pfi-tcp — a simplified TCP with vendor personalities
//!
//! The transport-protocol substrate of the PFI reproduction: a from-scratch
//! TCP implementing everything the paper's experiments exercise —
//! handshake, sliding-window transfer, Jacobson/Karn retransmission with
//! exponential backoff, keep-alive probing, zero-window (persist) probing,
//! out-of-order reassembly, and resets — plus [`TcpProfile`]s encoding the
//! externally observable quirks of the four 1995 vendor stacks the paper
//! probed (SunOS 4.1.3, AIX 3.2.3, NeXT Mach, Solaris 2.3).
//!
//! Simplifications relative to a full RFC-793/1122 stack (documented for
//! honesty, none observable by the paper's experiments): no congestion
//! control or fast retransmit, no delayed ACKs, no urgent data, no options.
//!
//! # Examples
//!
//! ```
//! use pfi_sim::{SimDuration, World};
//! use pfi_tcp::{ConnId, TcpControl, TcpLayer, TcpProfile, TcpReply};
//!
//! let mut world = World::new(1);
//! let client = world.add_node(vec![Box::new(TcpLayer::new(TcpProfile::sunos_4_1_3()))]);
//! let server = world.add_node(vec![Box::new(TcpLayer::new(TcpProfile::rfc_reference()))]);
//!
//! world.control::<TcpReply>(server, 0, TcpControl::Listen { port: 80 });
//! let conn = world
//!     .control::<TcpReply>(client, 0, TcpControl::Open {
//!         local_port: 0,
//!         remote: server,
//!         remote_port: 80,
//!     })
//!     .expect_conn();
//! world.control::<TcpReply>(client, 0, TcpControl::Send { conn, data: b"hi".to_vec() });
//! world.run_for(SimDuration::from_secs(1));
//!
//! let sconn = match world.control::<TcpReply>(server, 0, TcpControl::AcceptedOn { port: 80 }) {
//!     TcpReply::MaybeConn(Some(c)) => c,
//!     other => panic!("no accepted connection: {other:?}"),
//! };
//! let data = world.control::<TcpReply>(server, 0, TcpControl::RecvTake { conn: sconn });
//! assert_eq!(data.expect_data(), b"hi");
//! ```

#![warn(missing_docs)]

mod conn;
mod events;
mod layer;
mod profile;
mod rtt;
mod segment;

pub use conn::{TcpState, TcpStats};
pub use events::{CloseReason, TcpEvent};
pub use layer::{ConnId, TcpControl, TcpLayer, TcpReply};
pub use profile::{CongestionConfig, KeepaliveStyle, TcpProfile};
pub use rtt::RttEstimator;
pub use segment::{flags, DecodeError, Segment, TcpStub, HEADER_LEN};
