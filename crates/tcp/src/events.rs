//! Trace events emitted by the TCP layer.
//!
//! Experiments reconstruct the paper's tables from these records: e.g.
//! retransmission intervals from the timestamps of [`TcpEvent::Retransmit`]
//! records on the vendor node.

use pfi_sim::SimDuration;

/// Why a connection ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// Retransmission limit exhausted.
    Timeout,
    /// Keep-alive probes went unanswered.
    KeepaliveTimeout,
    /// A RST arrived.
    Reset,
    /// Orderly FIN exchange completed.
    Fin,
    /// The application closed an unsynchronised connection.
    App,
}

/// One observable TCP action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpEvent {
    /// Three-way handshake completed.
    Connected {
        /// Connection id on this node.
        conn: usize,
    },
    /// A segment left this node (first transmission only).
    SegmentSent {
        /// Connection id.
        conn: usize,
        /// Sequence number.
        seq: u32,
        /// Payload bytes.
        len: usize,
        /// Segment type name (`"DATA"`, `"ACK"`, …).
        kind: &'static str,
    },
    /// A segment was retransmitted after a timeout.
    Retransmit {
        /// Connection id.
        conn: usize,
        /// Sequence number of the retransmitted segment.
        seq: u32,
        /// Which retransmission of this segment this is (1-based).
        nth: u32,
        /// The RTO that will be used for the *next* timeout.
        next_rto: SimDuration,
    },
    /// A segment was resent by Tahoe fast retransmit (triple duplicate
    /// ACK), without waiting for the retransmission timer.
    FastRetransmit {
        /// Connection id.
        conn: usize,
        /// Sequence number of the retransmitted segment.
        seq: u32,
        /// Which retransmission of this segment this is (1-based).
        nth: u32,
    },
    /// In-order payload was accepted from the peer.
    DataDelivered {
        /// Connection id.
        conn: usize,
        /// Bytes accepted.
        bytes: usize,
    },
    /// An out-of-order segment was queued for reassembly.
    OutOfOrderQueued {
        /// Connection id.
        conn: usize,
        /// Sequence number of the queued segment.
        seq: u32,
    },
    /// A keep-alive probe was sent.
    KeepaliveProbe {
        /// Connection id.
        conn: usize,
        /// Probe count since probing began (1-based).
        nth: u32,
        /// Garbage bytes carried (0 or 1, per vendor).
        garbage_bytes: usize,
    },
    /// A zero-window (persist) probe was sent.
    ZeroWindowProbe {
        /// Connection id.
        conn: usize,
        /// Probe count since the window closed (1-based).
        nth: u32,
        /// The interval that will precede the *next* probe.
        next_interval: SimDuration,
    },
    /// The peer's advertised window transitioned to/from zero.
    PeerWindow {
        /// Connection id.
        conn: usize,
        /// The newly advertised window.
        window: u16,
    },
    /// A RST was sent (`sent == true`) or received.
    Reset {
        /// Connection id.
        conn: usize,
        /// Whether this node originated the reset.
        sent: bool,
    },
    /// The connection reached `Closed`.
    Closed {
        /// Connection id.
        conn: usize,
        /// Why.
        reason: CloseReason,
    },
    /// An incoming buffer failed segment decoding (corruption).
    DecodeFailed,
}
