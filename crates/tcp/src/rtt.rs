//! Round-trip-time estimation: Jacobson's algorithm with Karn's sample
//! selection.
//!
//! RFC 1122 requires both; the paper's experiment 2 distinguishes vendors
//! by whether the retransmission timeout adapts to injected ACK delays.
//! The non-adaptive mode models Solaris 2.3, which "either did not use
//! Jacobson's algorithm, or did not select RTT measurements in the same
//! way as other implementations".

use pfi_sim::SimDuration;

/// RTO estimator for one connection.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    /// Smoothed RTT in microseconds (`None` until the first sample).
    srtt_us: Option<f64>,
    /// RTT variance estimate in microseconds.
    rttvar_us: f64,
    adaptive: bool,
    initial: SimDuration,
    min: SimDuration,
    max: SimDuration,
}

impl RttEstimator {
    /// Creates an estimator.
    ///
    /// With `adaptive == false`, samples are ignored and the base RTO stays
    /// pinned at `min` (the Solaris behaviour).
    pub fn new(adaptive: bool, initial: SimDuration, min: SimDuration, max: SimDuration) -> Self {
        RttEstimator {
            srtt_us: None,
            rttvar_us: 0.0,
            adaptive,
            initial,
            min,
            max,
        }
    }

    /// Feeds one RTT measurement (Jacobson's EWMA update).
    ///
    /// Callers must apply Karn's rule: never sample a segment that was
    /// retransmitted, because its ACK is ambiguous.
    pub fn sample(&mut self, rtt: SimDuration) {
        if !self.adaptive {
            return;
        }
        let r = rtt.as_micros() as f64;
        match self.srtt_us {
            None => {
                self.srtt_us = Some(r);
                self.rttvar_us = r / 2.0;
            }
            Some(srtt) => {
                let err = (srtt - r).abs();
                self.rttvar_us = 0.75 * self.rttvar_us + 0.25 * err;
                self.srtt_us = Some(0.875 * srtt + 0.125 * r);
            }
        }
    }

    /// The base (un-backed-off) retransmission timeout: `SRTT + 4·RTTVAR`,
    /// clamped to `[min, max]`; `initial` before any sample.
    pub fn base_rto(&self) -> SimDuration {
        if !self.adaptive {
            return self.min;
        }
        match self.srtt_us {
            None => self.initial.max(self.min).min(self.max),
            Some(srtt) => {
                let rto = srtt + 4.0 * self.rttvar_us;
                SimDuration::from_micros(rto as u64)
                    .max(self.min)
                    .min(self.max)
            }
        }
    }

    /// The RTO after `backoff` consecutive timeouts: `base · 2^backoff`,
    /// capped at `max`.
    pub fn backed_off_rto(&self, backoff: u32) -> SimDuration {
        let base = self.base_rto();
        let shift = backoff.min(30);
        SimDuration::from_micros(
            base.as_micros()
                .saturating_mul(1u64 << shift)
                .min(self.max.as_micros()),
        )
    }

    /// Whether at least one sample has been absorbed.
    pub fn has_sample(&self) -> bool {
        self.srtt_us.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(adaptive: bool) -> RttEstimator {
        RttEstimator::new(
            adaptive,
            SimDuration::from_millis(1_500),
            SimDuration::from_secs(1),
            SimDuration::from_secs(64),
        )
    }

    #[test]
    fn initial_rto_before_samples() {
        let e = est(true);
        assert_eq!(e.base_rto(), SimDuration::from_millis(1_500));
        assert!(!e.has_sample());
    }

    #[test]
    fn first_sample_initialises_srtt_and_var() {
        let mut e = est(true);
        e.sample(SimDuration::from_secs(3));
        // SRTT = 3 s, RTTVAR = 1.5 s → RTO = 3 + 6 = 9 s.
        assert_eq!(e.base_rto(), SimDuration::from_secs(9));
        assert!(e.has_sample());
    }

    #[test]
    fn rto_adapts_to_sustained_delay() {
        let mut e = est(true);
        // A fast network first…
        for _ in 0..10 {
            e.sample(SimDuration::from_millis(10));
        }
        let fast = e.base_rto();
        assert_eq!(fast, SimDuration::from_secs(1), "clamped at min");
        // …then a sudden 3-second ACK delay (the experiment 2 injection).
        for _ in 0..10 {
            e.sample(SimDuration::from_secs(3));
        }
        let slow = e.base_rto();
        assert!(
            slow > SimDuration::from_secs(3),
            "RTO must exceed the delay, got {slow}"
        );
    }

    #[test]
    fn variance_shrinks_when_rtt_is_stable() {
        let mut e = est(true);
        for _ in 0..50 {
            e.sample(SimDuration::from_secs(2));
        }
        let rto = e.base_rto();
        // With zero variance, RTO converges toward SRTT.
        assert!(
            rto >= SimDuration::from_secs(2) && rto < SimDuration::from_millis(2_600),
            "{rto}"
        );
    }

    #[test]
    fn non_adaptive_ignores_samples() {
        let mut e = RttEstimator::new(
            false,
            SimDuration::from_millis(330),
            SimDuration::from_millis(330),
            SimDuration::from_secs(64),
        );
        e.sample(SimDuration::from_secs(8));
        assert_eq!(e.base_rto(), SimDuration::from_millis(330));
        assert!(!e.has_sample());
    }

    #[test]
    fn exponential_backoff_caps_at_max() {
        let e = est(true);
        // base 1.5 s → 1.5, 3, 6, 12, 24, 48, 64, 64…
        let series: Vec<u64> = (0..8).map(|b| e.backed_off_rto(b).as_millis()).collect();
        assert_eq!(
            series,
            vec![1_500, 3_000, 6_000, 12_000, 24_000, 48_000, 64_000, 64_000]
        );
    }

    #[test]
    fn huge_backoff_shift_does_not_overflow() {
        let e = est(true);
        assert_eq!(e.backed_off_rto(500), SimDuration::from_secs(64));
    }
}
