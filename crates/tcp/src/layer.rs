//! The TCP protocol layer: connection table, demux, and control ops.

use std::any::Any;
use std::collections::{HashMap, HashSet};

use pfi_sim::{Context, Layer, Message, NodeId};

use crate::conn::{token_parts, Conn, ConnTotals, TcpState, TcpStats};
use crate::events::TcpEvent;
use crate::profile::TcpProfile;
use crate::segment::{flags, Segment};

/// Handle to one connection on a [`TcpLayer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(pub usize);

/// Control operations accepted by [`TcpLayer::control`].
///
/// The experiment harness plays the role of the paper's *driver layer*
/// through these ops: opening connections, generating workload, freezing
/// the receive buffer (the zero-window test), toggling keep-alive.
#[derive(Debug)]
pub enum TcpControl {
    /// Accept connections on a port.
    Listen {
        /// Local port to listen on.
        port: u16,
    },
    /// Actively open a connection; replies [`TcpReply::Conn`].
    Open {
        /// Local port.
        local_port: u16,
        /// Peer node.
        remote: NodeId,
        /// Peer port.
        remote_port: u16,
    },
    /// Queue application data for sending.
    Send {
        /// Which connection.
        conn: ConnId,
        /// The bytes to send.
        data: Vec<u8>,
    },
    /// Close the connection (FIN).
    Close {
        /// Which connection.
        conn: ConnId,
    },
    /// Turn keep-alive probing on or off.
    SetKeepalive {
        /// Which connection.
        conn: ConnId,
        /// On or off.
        on: bool,
    },
    /// When `false`, the application stops reading: received data
    /// accumulates in the receive buffer and the advertised window shrinks
    /// to zero (the paper's zero-window-probe setup).
    SetConsume {
        /// Which connection.
        conn: ConnId,
        /// Whether the application keeps consuming.
        on: bool,
    },
    /// Take all application data delivered so far; replies
    /// [`TcpReply::Data`].
    RecvTake {
        /// Which connection.
        conn: ConnId,
    },
    /// Read counters; replies [`TcpReply::Stats`].
    Stats {
        /// Which connection.
        conn: ConnId,
    },
    /// Read the connection state; replies [`TcpReply::State`].
    State {
        /// Which connection.
        conn: ConnId,
    },
    /// The first connection accepted by a listener on `port`, if any;
    /// replies [`TcpReply::MaybeConn`].
    AcceptedOn {
        /// Listening port.
        port: u16,
    },
}

/// Replies from [`TcpLayer::control`].
#[derive(Debug)]
pub enum TcpReply {
    /// Nothing to report.
    Unit,
    /// A connection handle.
    Conn(ConnId),
    /// An optional connection handle.
    MaybeConn(Option<ConnId>),
    /// Delivered application bytes.
    Data(Vec<u8>),
    /// Connection counters.
    Stats(TcpStats),
    /// Connection state name (e.g. `"Established"`, `"Closed"`).
    State(&'static str),
    /// The referenced connection does not exist.
    NoSuchConn,
}

impl TcpReply {
    /// Unwraps a `Conn` reply.
    ///
    /// # Panics
    ///
    /// Panics if the reply is of a different kind.
    pub fn expect_conn(self) -> ConnId {
        match self {
            TcpReply::Conn(c) => c,
            other => panic!("expected Conn reply, got {other:?}"),
        }
    }

    /// Unwraps a `Data` reply.
    ///
    /// # Panics
    ///
    /// Panics if the reply is of a different kind.
    pub fn expect_data(self) -> Vec<u8> {
        match self {
            TcpReply::Data(d) => d,
            other => panic!("expected Data reply, got {other:?}"),
        }
    }

    /// Unwraps a `Stats` reply.
    ///
    /// # Panics
    ///
    /// Panics if the reply is of a different kind.
    pub fn expect_stats(self) -> TcpStats {
        match self {
            TcpReply::Stats(s) => s,
            other => panic!("expected Stats reply, got {other:?}"),
        }
    }

    /// Unwraps a `State` reply.
    ///
    /// # Panics
    ///
    /// Panics if the reply is of a different kind.
    pub fn expect_state(self) -> &'static str {
        match self {
            TcpReply::State(s) => s,
            other => panic!("expected State reply, got {other:?}"),
        }
    }
}

/// A TCP endpoint (one per node).
///
/// Place it at the top of a stack; it talks to the wire through whatever is
/// below it (directly, or through a PFI layer).
#[derive(Debug, Clone)]
pub struct TcpLayer {
    profile: TcpProfile,
    conns: Vec<Conn>,
    totals: Vec<ConnTotals>,
    by_key: HashMap<(u16, NodeId, u16), usize>,
    listeners: HashSet<u16>,
    accepted: HashMap<u16, usize>,
    iss_counter: u32,
    next_ephemeral: u16,
}

impl TcpLayer {
    /// Creates a TCP layer with the given vendor profile.
    pub fn new(profile: TcpProfile) -> Self {
        TcpLayer {
            profile,
            conns: Vec::new(),
            totals: Vec::new(),
            by_key: HashMap::new(),
            listeners: HashSet::new(),
            accepted: HashMap::new(),
            iss_counter: 1_000,
            next_ephemeral: 32_000,
        }
    }

    /// The profile this endpoint runs.
    pub fn profile(&self) -> &TcpProfile {
        &self.profile
    }

    fn alloc_conn(&mut self, local_port: u16, remote: NodeId, remote_port: u16) -> usize {
        let id = self.conns.len();
        self.iss_counter = self.iss_counter.wrapping_add(64_000);
        let conn = Conn::new(
            id,
            local_port,
            remote,
            remote_port,
            self.iss_counter,
            &self.profile,
        );
        self.by_key.insert((local_port, remote, remote_port), id);
        self.conns.push(conn);
        self.totals.push(ConnTotals::default());
        id
    }

    fn state_name(state: TcpState) -> &'static str {
        match state {
            TcpState::Closed => "Closed",
            TcpState::SynSent => "SynSent",
            TcpState::SynRcvd => "SynRcvd",
            TcpState::Established => "Established",
            TcpState::FinWait1 => "FinWait1",
            TcpState::FinWait2 => "FinWait2",
            TcpState::CloseWait => "CloseWait",
            TcpState::LastAck => "LastAck",
            TcpState::Closing => "Closing",
            TcpState::TimeWait => "TimeWait",
        }
    }
}

impl Layer for TcpLayer {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "tcp"
    }

    fn push(&mut self, _msg: Message, _ctx: &mut Context<'_>) {
        // Nothing sits above TCP in these stacks; applications use control
        // ops. A pushed message has nowhere meaningful to go.
    }

    fn pop(&mut self, msg: Message, ctx: &mut Context<'_>) {
        let seg = match Segment::decode(&msg) {
            Ok(s) => s,
            Err(_) => {
                ctx.emit(TcpEvent::DecodeFailed);
                return;
            }
        };
        let key = (seg.dst_port, msg.src(), seg.src_port);
        let conn_idx = match self.by_key.get(&key) {
            Some(&i) => Some(i),
            None => {
                if seg.has(flags::SYN)
                    && !seg.has(flags::ACK)
                    && self.listeners.contains(&seg.dst_port)
                {
                    let idx = self.alloc_conn(seg.dst_port, msg.src(), seg.src_port);
                    self.accepted.entry(seg.dst_port).or_insert(idx);
                    self.conns[idx].open_passive(&self.profile, ctx, &seg);
                    return;
                }
                None
            }
        };
        match conn_idx {
            Some(i) => {
                let totals = &mut self.totals[i];
                self.conns[i].on_segment(&self.profile, ctx, seg, totals);
            }
            None => {
                // Stray segment for no connection: answer with RST unless it
                // is itself a RST.
                if !seg.has(flags::RST) {
                    let rst = Segment {
                        src_port: seg.dst_port,
                        dst_port: seg.src_port,
                        seq: seg.ack,
                        ack: seg.seq.wrapping_add(seg.seq_len()),
                        flags: flags::RST | flags::ACK,
                        window: 0,
                        payload: Vec::new(),
                    };
                    ctx.send_down(rst.encode(ctx.node(), msg.src()));
                }
            }
        }
    }

    fn timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        let (conn, kind) = token_parts(token);
        if let Some(c) = self.conns.get_mut(conn) {
            c.on_timer(&self.profile, ctx, kind, &mut self.totals[conn]);
        }
    }

    fn control(&mut self, op: Box<dyn Any>, ctx: &mut Context<'_>) -> Box<dyn Any> {
        let Ok(op) = op.downcast::<TcpControl>() else {
            return Box::new(TcpReply::Unit);
        };
        let reply = match *op {
            TcpControl::Listen { port } => {
                self.listeners.insert(port);
                TcpReply::Unit
            }
            TcpControl::Open {
                local_port,
                remote,
                remote_port,
            } => {
                let port = if local_port == 0 {
                    self.next_ephemeral = self.next_ephemeral.wrapping_add(1);
                    self.next_ephemeral
                } else {
                    local_port
                };
                let idx = self.alloc_conn(port, remote, remote_port);
                self.conns[idx].open_active(&self.profile, ctx);
                TcpReply::Conn(ConnId(idx))
            }
            TcpControl::Send { conn, data } => match self.conns.get_mut(conn.0) {
                Some(c) => {
                    c.app_send(&self.profile, ctx, &data, &mut self.totals[conn.0]);
                    TcpReply::Unit
                }
                None => TcpReply::NoSuchConn,
            },
            TcpControl::Close { conn } => match self.conns.get_mut(conn.0) {
                Some(c) => {
                    c.app_close(&self.profile, ctx);
                    TcpReply::Unit
                }
                None => TcpReply::NoSuchConn,
            },
            TcpControl::SetKeepalive { conn, on } => match self.conns.get_mut(conn.0) {
                Some(c) => {
                    c.set_keepalive(&self.profile, ctx, on);
                    TcpReply::Unit
                }
                None => TcpReply::NoSuchConn,
            },
            TcpControl::SetConsume { conn, on } => match self.conns.get_mut(conn.0) {
                Some(c) => {
                    c.set_consume(&self.profile, ctx, on);
                    TcpReply::Unit
                }
                None => TcpReply::NoSuchConn,
            },
            TcpControl::RecvTake { conn } => match self.conns.get_mut(conn.0) {
                Some(c) => TcpReply::Data(c.take_delivered()),
                None => TcpReply::NoSuchConn,
            },
            TcpControl::Stats { conn } => match self.conns.get(conn.0) {
                Some(c) => TcpReply::Stats(c.stats(&self.totals[conn.0])),
                None => TcpReply::NoSuchConn,
            },
            TcpControl::State { conn } => match self.conns.get(conn.0) {
                Some(c) => TcpReply::State(Self::state_name(c.state)),
                None => TcpReply::NoSuchConn,
            },
            TcpControl::AcceptedOn { port } => {
                TcpReply::MaybeConn(self.accepted.get(&port).map(|&i| ConnId(i)))
            }
        };
        Box::new(reply)
    }
}
