//! Behavioural tests for the TCP substrate, exercising every mechanism the
//! paper's experiments rely on.

use pfi_core::{Filter, PfiLayer};
use pfi_sim::{NodeId, SimDuration, SimTime, World};
use pfi_tcp::{CloseReason, ConnId, TcpControl, TcpEvent, TcpLayer, TcpProfile, TcpReply, TcpStub};

/// Builds a client/server pair; client at node 0 with `client_profile`,
/// server at node 1 listening on port 80 with the reference profile.
fn pair(client_profile: TcpProfile) -> (World, NodeId, NodeId, ConnId) {
    let mut w = World::new(42);
    let c = w.add_node(vec![Box::new(TcpLayer::new(client_profile))]);
    let s = w.add_node(vec![Box::new(TcpLayer::new(TcpProfile::rfc_reference()))]);
    w.control::<TcpReply>(s, 0, TcpControl::Listen { port: 80 });
    let conn = w
        .control::<TcpReply>(
            c,
            0,
            TcpControl::Open {
                local_port: 0,
                remote: s,
                remote_port: 80,
            },
        )
        .expect_conn();
    w.run_for(SimDuration::from_millis(100));
    (w, c, s, conn)
}

fn server_conn(w: &mut World, s: NodeId) -> ConnId {
    match w.control::<TcpReply>(s, 0, TcpControl::AcceptedOn { port: 80 }) {
        TcpReply::MaybeConn(Some(c)) => c,
        other => panic!("server accepted nothing: {other:?}"),
    }
}

fn state(w: &mut World, node: NodeId, conn: ConnId) -> &'static str {
    w.control::<TcpReply>(node, 0, TcpControl::State { conn })
        .expect_state()
}

#[test]
fn handshake_establishes_both_sides() {
    let (mut w, c, s, conn) = pair(TcpProfile::sunos_4_1_3());
    assert_eq!(state(&mut w, c, conn), "Established");
    let sc = server_conn(&mut w, s);
    assert_eq!(state(&mut w, s, sc), "Established");
    let connected = w.trace().events_of::<TcpEvent>(None);
    assert!(connected
        .iter()
        .any(|(_, e)| matches!(e, TcpEvent::Connected { .. })));
}

#[test]
fn bulk_transfer_delivers_in_order() {
    let (mut w, c, s, conn) = pair(TcpProfile::sunos_4_1_3());
    let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: payload.clone(),
        },
    );
    w.run_for(SimDuration::from_secs(10));
    let sc = server_conn(&mut w, s);
    let got = w
        .control::<TcpReply>(s, 0, TcpControl::RecvTake { conn: sc })
        .expect_data();
    assert_eq!(got, payload);
}

#[test]
fn transfer_survives_random_loss() {
    let (mut w, c, s, conn) = pair(TcpProfile::sunos_4_1_3());
    w.network_mut().default_link_mut().loss = 0.2;
    let payload: Vec<u8> = (0..8_000u32).map(|i| (i * 7 % 256) as u8).collect();
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: payload.clone(),
        },
    );
    // Plenty of virtual time for retransmissions.
    w.run_for(SimDuration::from_secs(600));
    let sc = server_conn(&mut w, s);
    let got = w
        .control::<TcpReply>(s, 0, TcpControl::RecvTake { conn: sc })
        .expect_data();
    assert_eq!(got.len(), payload.len());
    assert_eq!(got, payload);
    let stats = w
        .control::<TcpReply>(c, 0, TcpControl::Stats { conn })
        .expect_stats();
    assert!(
        stats.retransmissions > 0,
        "20% loss must cause retransmissions"
    );
}

#[test]
fn bsd_blackhole_gives_12_retx_exponential_backoff_and_reset() {
    let (mut w, c, s, conn) = pair(TcpProfile::sunos_4_1_3());
    // Black-hole everything between the two nodes.
    w.network_mut().set_link_down(c, s);
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: vec![1u8; 512],
        },
    );
    w.run_for(SimDuration::from_secs(3_000));
    assert_eq!(state(&mut w, c, conn), "Closed");
    let evs = w.trace().events_of::<TcpEvent>(Some(c));
    let retx: Vec<(SimTime, u32, SimDuration)> = evs
        .iter()
        .filter_map(|(t, e)| match e {
            TcpEvent::Retransmit { nth, next_rto, .. } => Some((*t, *nth, *next_rto)),
            _ => None,
        })
        .collect();
    // Exactly 12 retransmissions before the connection is abandoned.
    assert_eq!(retx.len(), 12, "retx events: {retx:?}");
    assert_eq!(retx[11].1, 12);
    // Backoff doubles and caps at 64 s.
    let intervals: Vec<f64> = retx
        .windows(2)
        .map(|p| (p[1].0 - p[0].0).as_secs_f64())
        .collect();
    for pair in intervals.windows(2) {
        let ratio = pair[1] / pair[0];
        assert!(
            (0.9..=2.1).contains(&ratio),
            "backoff must double or stay capped: {intervals:?}"
        );
    }
    assert!(
        intervals.last().unwrap() - 64.0 < 0.5,
        "cap at 64 s: {intervals:?}"
    );
    // BSD sends a reset when giving up.
    assert!(evs
        .iter()
        .any(|(_, e)| matches!(e, TcpEvent::Reset { sent: true, .. })));
    assert!(evs.iter().any(|(_, e)| matches!(
        e,
        TcpEvent::Closed {
            reason: CloseReason::Timeout,
            ..
        }
    )));
}

#[test]
fn solaris_blackhole_gives_9_retx_no_reset() {
    let (mut w, c, s, conn) = pair(TcpProfile::solaris_2_3());
    w.network_mut().set_link_down(c, s);
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: vec![1u8; 512],
        },
    );
    w.run_for(SimDuration::from_secs(3_000));
    assert_eq!(state(&mut w, c, conn), "Closed");
    let evs = w.trace().events_of::<TcpEvent>(Some(c));
    let retx = evs
        .iter()
        .filter(|(_, e)| matches!(e, TcpEvent::Retransmit { .. }))
        .count();
    assert_eq!(retx, 9, "Solaris gives up after 9 retransmissions");
    assert!(
        !evs.iter()
            .any(|(_, e)| matches!(e, TcpEvent::Reset { sent: true, .. })),
        "Solaris closes abruptly without a reset"
    );
}

#[test]
fn solaris_first_retransmission_is_subsecond() {
    let (mut w, c, s, conn) = pair(TcpProfile::solaris_2_3());
    w.network_mut().set_link_down(c, s);
    let t0 = w.now();
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: vec![1u8; 100],
        },
    );
    w.run_for(SimDuration::from_secs(5));
    let evs = w.trace().events_of::<TcpEvent>(Some(c));
    let first_retx = evs
        .iter()
        .find(|(_, e)| matches!(e, TcpEvent::Retransmit { .. }))
        .map(|(t, _)| *t)
        .expect("a retransmission");
    let gap = first_retx.saturating_since(t0);
    assert!(
        gap < SimDuration::from_millis(500),
        "Solaris 330 ms floor, saw first retx after {gap}"
    );
}

#[test]
fn keepalive_bsd_probes_after_7200s_then_resets() {
    let (mut w, c, s, conn) = pair(TcpProfile::sunos_4_1_3());
    w.control::<TcpReply>(c, 0, TcpControl::SetKeepalive { conn, on: true });
    // Kill the server so probes go unanswered.
    w.crash(s);
    let t0 = w.now();
    w.run_for(SimDuration::from_secs(9_000));
    let evs = w.trace().events_of::<TcpEvent>(Some(c));
    let probes: Vec<SimTime> = evs
        .iter()
        .filter(|(_, e)| matches!(e, TcpEvent::KeepaliveProbe { .. }))
        .map(|(t, _)| *t)
        .collect();
    // First probe at idle threshold; 8 retransmissions at 75 s intervals.
    assert_eq!(probes.len(), 9, "probes: {probes:?}");
    let first_gap = probes[0].saturating_since(t0).as_secs_f64();
    assert!(
        (7_190.0..7_210.0).contains(&first_gap),
        "first probe at {first_gap}"
    );
    for pair in probes.windows(2) {
        let gap = (pair[1] - pair[0]).as_secs_f64();
        assert!((74.0..76.0).contains(&gap), "probe interval {gap}");
    }
    assert!(evs
        .iter()
        .any(|(_, e)| matches!(e, TcpEvent::Reset { sent: true, .. })));
    assert!(evs.iter().any(|(_, e)| matches!(
        e,
        TcpEvent::Closed {
            reason: CloseReason::KeepaliveTimeout,
            ..
        }
    )));
    // SunOS probes carry one garbage byte.
    assert!(evs.iter().all(
        |(_, e)| !matches!(e, TcpEvent::KeepaliveProbe { garbage_bytes, .. } if *garbage_bytes != 1)
    ));
}

#[test]
fn keepalive_solaris_violates_spec_and_backs_off() {
    let (mut w, c, s, conn) = pair(TcpProfile::solaris_2_3());
    w.control::<TcpReply>(c, 0, TcpControl::SetKeepalive { conn, on: true });
    w.crash(s);
    let t0 = w.now();
    w.run_for(SimDuration::from_secs(8_000));
    let evs = w.trace().events_of::<TcpEvent>(Some(c));
    let probes: Vec<SimTime> = evs
        .iter()
        .filter(|(_, e)| matches!(e, TcpEvent::KeepaliveProbe { .. }))
        .map(|(t, _)| *t)
        .collect();
    assert_eq!(
        probes.len(),
        8,
        "first probe + 7 backoff retransmissions: {probes:?}"
    );
    let first_gap = probes[0].saturating_since(t0).as_secs_f64();
    assert!(
        (6_740.0..6_760.0).contains(&first_gap),
        "Solaris violates the 7200 s threshold: {first_gap}"
    );
    // Exponential backoff between retransmissions.
    let gaps: Vec<f64> = probes
        .windows(2)
        .map(|p| (p[1] - p[0]).as_secs_f64())
        .collect();
    for pair in gaps.windows(2) {
        assert!(pair[1] > pair[0] * 1.5, "gaps must grow: {gaps:?}");
    }
    assert!(
        !evs.iter()
            .any(|(_, e)| matches!(e, TcpEvent::Reset { sent: true, .. })),
        "Solaris drops silently"
    );
}

#[test]
fn keepalive_answered_probes_continue_indefinitely() {
    let (mut w, c, _s, conn) = pair(TcpProfile::sunos_4_1_3());
    w.control::<TcpReply>(c, 0, TcpControl::SetKeepalive { conn, on: true });
    // Run 8 virtual hours with a live peer: 4 probes at ~7200 s intervals,
    // each answered, connection stays up (the paper's variation ran the
    // same test for 8–112 hours).
    w.run_for(SimDuration::from_secs(8 * 3_600));
    let evs = w.trace().events_of::<TcpEvent>(Some(c));
    let probes: Vec<SimTime> = evs
        .iter()
        .filter(|(_, e)| matches!(e, TcpEvent::KeepaliveProbe { .. }))
        .map(|(t, _)| *t)
        .collect();
    assert!(
        (3..=4).contains(&probes.len()),
        "~4 probes in 8 h: {probes:?}"
    );
    for pair in probes.windows(2) {
        let gap = (pair[1] - pair[0]).as_secs_f64();
        assert!((7_190.0..7_210.0).contains(&gap), "idle interval {gap}");
    }
    assert_eq!(state(&mut w, c, conn), "Established");
}

#[test]
fn zero_window_probing_backs_off_to_cap_and_never_stops() {
    let (mut w, c, s, conn) = pair(TcpProfile::sunos_4_1_3());
    let sc = server_conn(&mut w, s);
    // Server stops consuming: its 4096-byte buffer fills, window closes.
    w.control::<TcpReply>(
        s,
        0,
        TcpControl::SetConsume {
            conn: sc,
            on: false,
        },
    );
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: vec![7u8; 10_000],
        },
    );
    w.run_for(SimDuration::from_secs(1_200));
    let evs = w.trace().events_of::<TcpEvent>(Some(c));
    let probes: Vec<(SimTime, SimDuration)> = evs
        .iter()
        .filter_map(|(t, e)| match e {
            TcpEvent::ZeroWindowProbe { next_interval, .. } => Some((*t, *next_interval)),
            _ => None,
        })
        .collect();
    assert!(
        probes.len() >= 10,
        "expected sustained probing, got {}",
        probes.len()
    );
    // Interval grows then caps at 60 s.
    let last_gap = {
        let n = probes.len();
        (probes[n - 1].0 - probes[n - 2].0).as_secs_f64()
    };
    assert!(
        (59.0..61.0).contains(&last_gap),
        "cap at 60 s, saw {last_gap}"
    );
    assert_eq!(
        state(&mut w, c, conn),
        "Established",
        "probing must not give up"
    );
    // Solaris caps at 56 s instead.
    let (mut w2, c2, s2, conn2) = pair(TcpProfile::solaris_2_3());
    let sc2 = server_conn(&mut w2, s2);
    w2.control::<TcpReply>(
        s2,
        0,
        TcpControl::SetConsume {
            conn: sc2,
            on: false,
        },
    );
    w2.control::<TcpReply>(
        c2,
        0,
        TcpControl::Send {
            conn: conn2,
            data: vec![7u8; 10_000],
        },
    );
    w2.run_for(SimDuration::from_secs(1_200));
    let evs2 = w2.trace().events_of::<TcpEvent>(Some(c2));
    let probes2: Vec<SimTime> = evs2
        .iter()
        .filter(|(_, e)| matches!(e, TcpEvent::ZeroWindowProbe { .. }))
        .map(|(t, _)| *t)
        .collect();
    let n = probes2.len();
    let last_gap2 = (probes2[n - 1] - probes2[n - 2]).as_secs_f64();
    assert!(
        (55.0..57.0).contains(&last_gap2),
        "Solaris cap at 56 s, saw {last_gap2}"
    );
}

#[test]
fn window_reopen_resumes_transfer() {
    let (mut w, c, s, conn) = pair(TcpProfile::sunos_4_1_3());
    let sc = server_conn(&mut w, s);
    w.control::<TcpReply>(
        s,
        0,
        TcpControl::SetConsume {
            conn: sc,
            on: false,
        },
    );
    let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: payload.clone(),
        },
    );
    w.run_for(SimDuration::from_secs(120));
    // Window is closed; reopen it.
    w.control::<TcpReply>(s, 0, TcpControl::SetConsume { conn: sc, on: true });
    w.run_for(SimDuration::from_secs(300));
    let got = w
        .control::<TcpReply>(s, 0, TcpControl::RecvTake { conn: sc })
        .expect_data();
    assert_eq!(got.len(), payload.len());
    assert_eq!(got, payload);
}

#[test]
fn out_of_order_segments_are_queued_and_cumulatively_acked() {
    // Sender with a PFI layer below TCP that delays the FIRST data segment
    // by 3 s (the paper's experiment 5 setup), so the second arrives first.
    let mut w = World::new(42);
    let pfi = PfiLayer::new(Box::new(TcpStub)).with_send_filter(
        Filter::script(
            r#"
            if {[msg_type] == "DATA"} {
                incr data_count
                if {$data_count == 1} { xDelay 3000 }
            }
        "#,
        )
        .unwrap(),
    );
    let c = w.add_node(vec![
        Box::new(TcpLayer::new(TcpProfile::sunos_4_1_3())),
        Box::new(pfi),
    ]);
    let s = w.add_node(vec![Box::new(TcpLayer::new(TcpProfile::rfc_reference()))]);
    w.control::<TcpReply>(s, 0, TcpControl::Listen { port: 80 });
    let conn = w
        .control::<TcpReply>(
            c,
            0,
            TcpControl::Open {
                local_port: 0,
                remote: s,
                remote_port: 80,
            },
        )
        .expect_conn();
    w.run_for(SimDuration::from_millis(100));
    // Two MSS-sized segments.
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: vec![9u8; 1_024],
        },
    );
    w.run_for(SimDuration::from_secs(30));
    let sevs = w.trace().events_of::<TcpEvent>(Some(s));
    assert!(
        sevs.iter()
            .any(|(_, e)| matches!(e, TcpEvent::OutOfOrderQueued { .. })),
        "the receiver must queue the early second segment"
    );
    let sc = server_conn(&mut w, s);
    let got = w
        .control::<TcpReply>(s, 0, TcpControl::RecvTake { conn: sc })
        .expect_data();
    assert_eq!(
        got,
        vec![9u8; 1_024],
        "data must still arrive complete and in order"
    );
}

#[test]
fn stray_segment_gets_reset() {
    let mut w = World::new(1);
    let a = w.add_node(vec![Box::new(TcpLayer::new(TcpProfile::sunos_4_1_3()))]);
    let b = w.add_node(vec![Box::new(TcpLayer::new(TcpProfile::rfc_reference()))]);
    // Open to a port nobody listens on.
    let conn = w
        .control::<TcpReply>(
            a,
            0,
            TcpControl::Open {
                local_port: 0,
                remote: b,
                remote_port: 9,
            },
        )
        .expect_conn();
    w.run_for(SimDuration::from_secs(2));
    // The SYN was answered with RST; the connection dies immediately.
    assert_eq!(state(&mut w, a, conn), "Closed");
    let evs = w.trace().events_of::<TcpEvent>(Some(a));
    assert!(evs.iter().any(|(_, e)| matches!(
        e,
        TcpEvent::Closed {
            reason: CloseReason::Reset,
            ..
        }
    )));
}

#[test]
fn orderly_close_fin_handshake() {
    let (mut w, c, s, conn) = pair(TcpProfile::sunos_4_1_3());
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: b"bye".to_vec(),
        },
    );
    w.run_for(SimDuration::from_secs(1));
    w.control::<TcpReply>(c, 0, TcpControl::Close { conn });
    w.run_for(SimDuration::from_secs(1));
    let sc = server_conn(&mut w, s);
    assert_eq!(state(&mut w, s, sc), "CloseWait");
    assert_eq!(state(&mut w, c, conn), "FinWait2");
    w.control::<TcpReply>(s, 0, TcpControl::Close { conn: sc });
    w.run_for(SimDuration::from_secs(60));
    assert_eq!(state(&mut w, s, sc), "Closed");
    assert_eq!(state(&mut w, c, conn), "Closed");
}

#[test]
fn corrupted_segments_are_dropped_and_recovered() {
    // PFI below the sender corrupts the first data segment's payload.
    let mut w = World::new(5);
    let pfi = PfiLayer::new(Box::new(TcpStub)).with_send_filter(
        Filter::script(
            r#"
            if {[msg_type] == "DATA"} {
                incr n
                if {$n == 1} { msg_set_byte 25 255 }
            }
        "#,
        )
        .unwrap(),
    );
    let c = w.add_node(vec![
        Box::new(TcpLayer::new(TcpProfile::sunos_4_1_3())),
        Box::new(pfi),
    ]);
    let s = w.add_node(vec![Box::new(TcpLayer::new(TcpProfile::rfc_reference()))]);
    w.control::<TcpReply>(s, 0, TcpControl::Listen { port: 80 });
    let conn = w
        .control::<TcpReply>(
            c,
            0,
            TcpControl::Open {
                local_port: 0,
                remote: s,
                remote_port: 80,
            },
        )
        .expect_conn();
    w.run_for(SimDuration::from_millis(100));
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: vec![1u8; 256],
        },
    );
    w.run_for(SimDuration::from_secs(30));
    let sevs = w.trace().events_of::<TcpEvent>(Some(s));
    assert!(
        sevs.iter()
            .any(|(_, e)| matches!(e, TcpEvent::DecodeFailed)),
        "corruption must be caught by the checksum"
    );
    let sc = server_conn(&mut w, s);
    let got = w
        .control::<TcpReply>(s, 0, TcpControl::RecvTake { conn: sc })
        .expect_data();
    assert_eq!(got, vec![1u8; 256], "retransmission must repair the stream");
}

#[test]
fn retransmission_intervals_increase_exponentially_from_measured_rtt() {
    // With a 200 ms link, the first RTO reflects the measured RTT.
    let (mut w, c, s, conn) = pair(TcpProfile::sunos_4_1_3());
    w.network_mut().link_mut(c, s).latency = SimDuration::from_millis(100);
    w.network_mut().link_mut(s, c).latency = SimDuration::from_millis(100);
    // Establish an RTT estimate with some successful traffic.
    for _ in 0..5 {
        w.control::<TcpReply>(
            c,
            0,
            TcpControl::Send {
                conn,
                data: vec![3u8; 512],
            },
        );
        w.run_for(SimDuration::from_secs(2));
    }
    w.network_mut().set_link_down(c, s);
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: vec![4u8; 512],
        },
    );
    w.run_for(SimDuration::from_secs(2_000));
    let evs = w.trace().events_of::<TcpEvent>(Some(c));
    let retx_times: Vec<SimTime> = evs
        .iter()
        .filter(|(_, e)| matches!(e, TcpEvent::Retransmit { .. }))
        .map(|(t, _)| *t)
        .collect();
    let gaps: Vec<f64> = retx_times
        .windows(2)
        .map(|p| (p[1] - p[0]).as_secs_f64())
        .collect();
    // Strictly non-decreasing, roughly doubling until the cap.
    for pair in gaps.windows(2) {
        assert!(pair[1] >= pair[0] * 0.99, "gaps must not shrink: {gaps:?}");
    }
    assert!(
        gaps.iter().any(|g| (63.0..65.0).contains(g)),
        "cap reached: {gaps:?}"
    );
}
