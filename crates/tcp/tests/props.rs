// QUARANTINED: this property-based suite depends on the external `proptest`
// crate, which the offline build environment cannot fetch from crates.io.
// The whole file is compiled out unless the crate's `proptest` feature is
// enabled (after restoring the proptest dev-dependency in Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests for the TCP substrate.

use pfi_sim::{Message, NodeId, SimDuration};
use pfi_tcp::{flags, RttEstimator, Segment, TcpStub, HEADER_LEN};
use proptest::prelude::*;

use pfi_core::PacketStub;

fn arb_segment() -> impl Strategy<Value = Segment> {
    (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        0u8..32,
        any::<u16>(),
        proptest::collection::vec(any::<u8>(), 0..600),
    )
        .prop_map(
            |(src_port, dst_port, seq, ack, flags, window, payload)| Segment {
                src_port,
                dst_port,
                seq,
                ack,
                flags,
                window,
                payload,
            },
        )
}

proptest! {
    /// Encoding then decoding any segment returns the original.
    #[test]
    fn segment_roundtrip(seg in arb_segment()) {
        let m = seg.encode(NodeId::new(0), NodeId::new(1));
        prop_assert_eq!(Segment::decode(&m).unwrap(), seg);
    }

    /// Flipping any single bit of an encoded segment is always detected.
    #[test]
    fn any_single_bitflip_is_detected(seg in arb_segment(), byte in any::<usize>(), bit in 0u8..8) {
        let mut m = seg.encode(NodeId::new(0), NodeId::new(1));
        let len = m.len();
        let off = byte % len;
        let orig = m.byte_at(off).unwrap();
        m.set_byte_at(off, orig ^ (1 << bit));
        prop_assert!(Segment::decode(&m).is_err(), "bit {bit} of byte {off} slipped through");
    }

    /// The decoder never panics on arbitrary byte buffers.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..700)) {
        let m = Message::new(NodeId::new(0), NodeId::new(1), &bytes);
        let _ = Segment::decode(&m);
        let _ = TcpStub.type_of(&m);
        let _ = TcpStub.field(&m, "seq");
    }

    /// The RTO stays within [min, max] whatever samples arrive, and the
    /// backed-off RTO never exceeds max.
    #[test]
    fn rto_respects_bounds(
        samples in proptest::collection::vec(0u64..600_000_000, 0..60),
        backoff in 0u32..40,
    ) {
        let min = SimDuration::from_secs(1);
        let max = SimDuration::from_secs(64);
        let mut est = RttEstimator::new(true, SimDuration::from_millis(1_500), min, max);
        for s in samples {
            est.sample(SimDuration::from_micros(s));
            let rto = est.base_rto();
            prop_assert!(rto >= min && rto <= max, "rto {rto} out of bounds");
        }
        prop_assert!(est.backed_off_rto(backoff) <= max);
    }

    /// `set_field` through the stub keeps the wire image decodable and
    /// changes exactly the requested field.
    #[test]
    fn stub_field_edits_stay_consistent(seg in arb_segment(), new_window in any::<u16>()) {
        let mut m = seg.encode(NodeId::new(0), NodeId::new(1));
        prop_assert!(TcpStub.set_field(&mut m, "window", new_window as i64));
        let d = Segment::decode(&m).unwrap();
        prop_assert_eq!(d.window, new_window);
        prop_assert_eq!(d.payload, seg.payload);
        prop_assert_eq!(d.seq, seg.seq);
    }

    /// Sequence-space length accounting: header length plus payload
    /// equals the wire size; SYN/FIN add to seq_len but not wire size.
    #[test]
    fn wire_size_accounting(seg in arb_segment()) {
        let m = seg.encode(NodeId::new(0), NodeId::new(1));
        prop_assert_eq!(m.len(), HEADER_LEN + seg.payload.len());
        let expected = seg.payload.len() as u32
            + seg.has(flags::SYN) as u32
            + seg.has(flags::FIN) as u32;
        prop_assert_eq!(seg.seq_len(), expected);
    }
}
