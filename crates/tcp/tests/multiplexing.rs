//! Connection-table behaviour: multiple simultaneous connections, several
//! listeners, port demultiplexing, and per-connection isolation.

use pfi_sim::{NodeId, SimDuration, World};
use pfi_tcp::{ConnId, TcpControl, TcpLayer, TcpProfile, TcpReply};

fn server_conn(w: &mut World, s: NodeId, port: u16) -> ConnId {
    match w.control::<TcpReply>(s, 0, TcpControl::AcceptedOn { port }) {
        TcpReply::MaybeConn(Some(c)) => c,
        other => panic!("no accepted connection on {port}: {other:?}"),
    }
}

#[test]
fn two_clients_one_server_port() {
    let mut w = World::new(9);
    let c1 = w.add_node(vec![Box::new(TcpLayer::new(TcpProfile::sunos_4_1_3()))]);
    let c2 = w.add_node(vec![Box::new(TcpLayer::new(TcpProfile::solaris_2_3()))]);
    let s = w.add_node(vec![Box::new(TcpLayer::new(TcpProfile::rfc_reference()))]);
    w.control::<TcpReply>(s, 0, TcpControl::Listen { port: 80 });
    let k1 = w
        .control::<TcpReply>(
            c1,
            0,
            TcpControl::Open {
                local_port: 0,
                remote: s,
                remote_port: 80,
            },
        )
        .expect_conn();
    let k2 = w
        .control::<TcpReply>(
            c2,
            0,
            TcpControl::Open {
                local_port: 0,
                remote: s,
                remote_port: 80,
            },
        )
        .expect_conn();
    w.run_for(SimDuration::from_millis(100));
    w.control::<TcpReply>(
        c1,
        0,
        TcpControl::Send {
            conn: k1,
            data: b"from-c1".to_vec(),
        },
    );
    w.control::<TcpReply>(
        c2,
        0,
        TcpControl::Send {
            conn: k2,
            data: b"from-c2".to_vec(),
        },
    );
    w.run_for(SimDuration::from_secs(5));
    // The server accepted two distinct connections; the first accept handle
    // tracks the first SYN (c1).
    let sc1 = server_conn(&mut w, s, 80);
    let d1 = w
        .control::<TcpReply>(s, 0, TcpControl::RecvTake { conn: sc1 })
        .expect_data();
    assert_eq!(d1, b"from-c1");
    // The other connection exists and carried the other stream.
    let sc2 = ConnId(sc1.0 + 1);
    let d2 = w
        .control::<TcpReply>(s, 0, TcpControl::RecvTake { conn: sc2 })
        .expect_data();
    assert_eq!(d2, b"from-c2");
}

#[test]
fn one_client_many_connections_to_same_server() {
    let mut w = World::new(10);
    let c = w.add_node(vec![Box::new(TcpLayer::new(TcpProfile::sunos_4_1_3()))]);
    let s = w.add_node(vec![Box::new(TcpLayer::new(TcpProfile::rfc_reference()))]);
    w.control::<TcpReply>(s, 0, TcpControl::Listen { port: 80 });
    let conns: Vec<ConnId> = (0..4)
        .map(|_| {
            w.control::<TcpReply>(
                c,
                0,
                TcpControl::Open {
                    local_port: 0,
                    remote: s,
                    remote_port: 80,
                },
            )
            .expect_conn()
        })
        .collect();
    w.run_for(SimDuration::from_millis(200));
    for (i, &k) in conns.iter().enumerate() {
        let payload = vec![i as u8 + 1; 100 * (i + 1)];
        w.control::<TcpReply>(
            c,
            0,
            TcpControl::Send {
                conn: k,
                data: payload,
            },
        );
    }
    w.run_for(SimDuration::from_secs(10));
    // Each server-side connection got exactly its own stream (ephemeral
    // ports demultiplex them).
    let mut total = 0;
    for i in 0..4 {
        let got = w
            .control::<TcpReply>(s, 0, TcpControl::RecvTake { conn: ConnId(i) })
            .expect_data();
        assert!(!got.is_empty(), "conn {i} received nothing");
        let byte = got[0];
        assert!(
            got.iter().all(|b| *b == byte),
            "streams must not interleave"
        );
        total += got.len();
    }
    assert_eq!(total, 100 + 200 + 300 + 400);
}

#[test]
fn multiple_listeners_on_different_ports() {
    let mut w = World::new(11);
    let c = w.add_node(vec![Box::new(TcpLayer::new(TcpProfile::aix_3_2_3()))]);
    let s = w.add_node(vec![Box::new(TcpLayer::new(TcpProfile::rfc_reference()))]);
    for port in [80u16, 443, 8080] {
        w.control::<TcpReply>(s, 0, TcpControl::Listen { port });
    }
    let mut handles = Vec::new();
    for port in [80u16, 443, 8080] {
        let k = w
            .control::<TcpReply>(
                c,
                0,
                TcpControl::Open {
                    local_port: 0,
                    remote: s,
                    remote_port: port,
                },
            )
            .expect_conn();
        handles.push((port, k));
    }
    w.run_for(SimDuration::from_millis(100));
    for (port, k) in &handles {
        let data = format!("to-{port}");
        w.control::<TcpReply>(
            c,
            0,
            TcpControl::Send {
                conn: *k,
                data: data.into_bytes(),
            },
        );
    }
    w.run_for(SimDuration::from_secs(5));
    for (port, _) in &handles {
        let sc = server_conn(&mut w, s, *port);
        let got = w
            .control::<TcpReply>(s, 0, TcpControl::RecvTake { conn: sc })
            .expect_data();
        assert_eq!(got, format!("to-{port}").into_bytes());
    }
}

#[test]
fn closing_one_connection_leaves_others_running() {
    let mut w = World::new(12);
    let c = w.add_node(vec![Box::new(TcpLayer::new(TcpProfile::sunos_4_1_3()))]);
    let s = w.add_node(vec![Box::new(TcpLayer::new(TcpProfile::rfc_reference()))]);
    w.control::<TcpReply>(s, 0, TcpControl::Listen { port: 80 });
    let k1 = w
        .control::<TcpReply>(
            c,
            0,
            TcpControl::Open {
                local_port: 0,
                remote: s,
                remote_port: 80,
            },
        )
        .expect_conn();
    let k2 = w
        .control::<TcpReply>(
            c,
            0,
            TcpControl::Open {
                local_port: 0,
                remote: s,
                remote_port: 80,
            },
        )
        .expect_conn();
    w.run_for(SimDuration::from_millis(100));
    w.control::<TcpReply>(c, 0, TcpControl::Close { conn: k1 });
    w.run_for(SimDuration::from_secs(2));
    // k1 is winding down; k2 still transfers.
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn: k2,
            data: b"still alive".to_vec(),
        },
    );
    w.run_for(SimDuration::from_secs(5));
    let state1 = w
        .control::<TcpReply>(c, 0, TcpControl::State { conn: k1 })
        .expect_state();
    assert!(
        matches!(state1, "FinWait2" | "TimeWait" | "Closed"),
        "{state1}"
    );
    let got = w
        .control::<TcpReply>(s, 0, TcpControl::RecvTake { conn: ConnId(1) })
        .expect_data();
    assert_eq!(got, b"still alive");
}

#[test]
fn unknown_conn_ids_are_rejected_gracefully() {
    let mut w = World::new(13);
    let c = w.add_node(vec![Box::new(TcpLayer::new(TcpProfile::sunos_4_1_3()))]);
    let bogus = ConnId(99);
    assert!(matches!(
        w.control::<TcpReply>(
            c,
            0,
            TcpControl::Send {
                conn: bogus,
                data: vec![1]
            }
        ),
        TcpReply::NoSuchConn
    ));
    assert!(matches!(
        w.control::<TcpReply>(c, 0, TcpControl::State { conn: bogus }),
        TcpReply::NoSuchConn
    ));
    assert!(matches!(
        w.control::<TcpReply>(c, 0, TcpControl::RecvTake { conn: bogus }),
        TcpReply::NoSuchConn
    ));
}
