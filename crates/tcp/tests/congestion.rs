//! Behaviour of the opt-in Tahoe congestion control extension: slow start,
//! congestion avoidance, fast retransmit, and the recovery-speed contrast
//! with the plain timeout-driven sender.

use pfi_core::{Filter, PfiLayer};
use pfi_sim::{NodeId, SimDuration, SimTime, World};
use pfi_tcp::{ConnId, TcpControl, TcpEvent, TcpLayer, TcpProfile, TcpReply, TcpStub};

fn pair_with_filter(
    profile: TcpProfile,
    recv_filter: Option<Filter>,
    latency_ms: u64,
) -> (World, NodeId, NodeId, ConnId) {
    let mut w = World::new(77);
    w.network_mut().default_link_mut().latency = SimDuration::from_millis(latency_ms);
    let c = w.add_node(vec![Box::new(TcpLayer::new(profile))]);
    let mut pfi = PfiLayer::new(Box::new(TcpStub));
    if let Some(f) = recv_filter {
        pfi = pfi.with_recv_filter(f);
    }
    let s = w.add_node(vec![
        Box::new(TcpLayer::new(TcpProfile::rfc_reference())),
        Box::new(pfi),
    ]);
    w.control::<TcpReply>(s, 0, TcpControl::Listen { port: 80 });
    let conn = w
        .control::<TcpReply>(
            c,
            0,
            TcpControl::Open {
                local_port: 0,
                remote: s,
                remote_port: 80,
            },
        )
        .expect_conn();
    w.run_for(SimDuration::from_secs(2));
    (w, c, s, conn)
}

fn server_len(w: &mut World, s: NodeId) -> usize {
    match w.control::<TcpReply>(s, 0, TcpControl::AcceptedOn { port: 80 }) {
        TcpReply::MaybeConn(Some(sc)) => w
            .control::<TcpReply>(s, 0, TcpControl::RecvTake { conn: sc })
            .expect_data()
            .len(),
        _ => 0,
    }
}

#[test]
fn slow_start_sends_exponentially_growing_bursts() {
    // With 50 ms RTT, the first round trips send 1, 2, 4, 8 segments.
    let (mut w, c, _s, conn) = pair_with_filter(TcpProfile::tahoe(), None, 25);
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: vec![1u8; 16 * 512],
        },
    );
    w.run_for(SimDuration::from_secs(10));
    let sends: Vec<SimTime> = w
        .trace()
        .events_of::<TcpEvent>(Some(c))
        .into_iter()
        .filter(|(_, e)| matches!(e, TcpEvent::SegmentSent { kind: "DATA", .. }))
        .map(|(t, _)| t)
        .collect();
    assert_eq!(sends.len(), 16, "16 × 512 bytes at MSS 512");
    // Bucket the sends into 50 ms round trips and check growth 1, 2, 4, 8.
    let t0 = sends[0];
    let mut rounds = vec![0usize; 8];
    for t in &sends {
        let r = (t.saturating_since(t0).as_millis() / 50) as usize;
        rounds[r.min(7)] += 1;
    }
    assert_eq!(
        &rounds[..4],
        &[1, 2, 4, 8],
        "slow start must double: {rounds:?}"
    );
}

#[test]
fn plain_profile_bursts_whole_window_at_once() {
    // Without congestion control the sender fills the whole 4096-byte
    // window immediately — the contrast that motivates slow start.
    let (mut w, c, _s, conn) = pair_with_filter(TcpProfile::sunos_4_1_3(), None, 25);
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: vec![1u8; 8 * 512],
        },
    );
    w.run_for(SimDuration::from_millis(40)); // less than one RTT
    let sends = w
        .trace()
        .events_of::<TcpEvent>(Some(c))
        .into_iter()
        .filter(|(_, e)| matches!(e, TcpEvent::SegmentSent { kind: "DATA", .. }))
        .count();
    assert_eq!(sends, 8, "the whole window leaves in the first instant");
}

#[test]
fn fast_retransmit_fires_on_triple_duplicate_ack() {
    // Drop exactly one mid-stream data segment; the following segments
    // produce duplicate ACKs and Tahoe resends without waiting for the RTO.
    let drop_fourth = Filter::script(
        r#"
        if {[msg_type] == "DATA"} {
            incr n
            if {$n == 4} { xDrop }
        }
    "#,
    )
    .unwrap();
    let (mut w, c, s, conn) = pair_with_filter(TcpProfile::tahoe(), Some(drop_fourth), 5);
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: vec![2u8; 16 * 512],
        },
    );
    w.run_for(SimDuration::from_secs(30));
    let evs = w.trace().events_of::<TcpEvent>(Some(c));
    let fast = evs
        .iter()
        .filter(|(_, e)| matches!(e, TcpEvent::FastRetransmit { .. }))
        .count();
    assert!(fast >= 1, "fast retransmit must fire");
    assert_eq!(server_len(&mut w, s), 16 * 512, "stream completes");
}

#[test]
fn plain_profile_never_fast_retransmits() {
    let drop_fourth = Filter::script(
        r#"
        if {[msg_type] == "DATA"} {
            incr n
            if {$n == 4} { xDrop }
        }
    "#,
    )
    .unwrap();
    let (mut w, c, s, conn) = pair_with_filter(TcpProfile::sunos_4_1_3(), Some(drop_fourth), 5);
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: vec![2u8; 16 * 512],
        },
    );
    w.run_for(SimDuration::from_secs(30));
    let evs = w.trace().events_of::<TcpEvent>(Some(c));
    assert!(
        !evs.iter()
            .any(|(_, e)| matches!(e, TcpEvent::FastRetransmit { .. })),
        "fast retransmit is off without congestion control"
    );
    assert_eq!(server_len(&mut w, s), 16 * 512);
}

#[test]
fn fast_retransmit_recovers_a_loss_faster_than_the_rto() {
    // Measure time-to-complete for a single mid-stream loss.
    let run = |profile: TcpProfile| -> f64 {
        let drop_one = Filter::script(
            r#"
            if {[msg_type] == "DATA"} {
                incr n
                if {$n == 4} { xDrop }
            }
        "#,
        )
        .unwrap();
        let (mut w, c, s, conn) = pair_with_filter(profile, Some(drop_one), 5);
        let t0 = w.now();
        w.control::<TcpReply>(
            c,
            0,
            TcpControl::Send {
                conn,
                data: vec![3u8; 16 * 512],
            },
        );
        // Run until everything is delivered.
        let mut done_at = None;
        for _ in 0..600 {
            w.run_for(SimDuration::from_millis(100));
            let sc = match w.control::<TcpReply>(s, 0, TcpControl::AcceptedOn { port: 80 }) {
                TcpReply::MaybeConn(Some(sc)) => sc,
                _ => continue,
            };
            let stats = w
                .control::<TcpReply>(s, 0, TcpControl::Stats { conn: sc })
                .expect_stats();
            if stats.bytes_delivered >= 16 * 512 {
                done_at = Some(w.now());
                break;
            }
        }
        done_at
            .expect("transfer must complete")
            .saturating_since(t0)
            .as_secs_f64()
    };
    let tahoe = run(TcpProfile::tahoe());
    let plain = run(TcpProfile::sunos_4_1_3());
    assert!(
        tahoe < plain,
        "fast retransmit must beat the 1 s+ RTO: tahoe {tahoe:.2}s vs plain {plain:.2}s"
    );
    assert!(
        plain > 0.9,
        "the plain sender waits out its RTO: {plain:.2}s"
    );
}

#[test]
fn timeout_halves_ssthresh_and_restarts_slow_start() {
    // Black-hole mid-transfer, then restore: after the timeout the sender
    // must ramp up again from one segment (visible as paced single sends).
    let (mut w, c, s, conn) = pair_with_filter(TcpProfile::tahoe(), None, 25);
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: vec![4u8; 8 * 512],
        },
    );
    w.run_for(SimDuration::from_secs(5));
    w.network_mut().set_link_down(c, s);
    w.control::<TcpReply>(
        c,
        0,
        TcpControl::Send {
            conn,
            data: vec![5u8; 8 * 512],
        },
    );
    w.run_for(SimDuration::from_secs(10));
    w.network_mut().set_link_up(c, s);
    w.run_for(SimDuration::from_secs(60));
    assert_eq!(
        server_len(&mut w, s),
        16 * 512,
        "both batches arrive after the outage"
    );
    let retx = w
        .trace()
        .events_of::<TcpEvent>(Some(c))
        .into_iter()
        .filter(|(_, e)| matches!(e, TcpEvent::Retransmit { .. }))
        .count();
    assert!(retx >= 1, "the outage must cost at least one RTO");
}
