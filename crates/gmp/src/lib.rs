//! # pfi-gmp — the strong group membership protocol
//!
//! The application-level fault-injection target of the paper: an agreement
//! protocol "for achieving a consistent system-wide view of the operational
//! processors in the presence of failures — determining who is up and who
//! is down". The member with the lowest id leads (standing in for "lowest
//! IP address"); the next in line is the *crown prince*. Membership changes
//! run as a two-phase protocol (`MEMBERSHIP_CHANGE` → `ACK`/`NAK` →
//! `COMMIT`) with members passing through an `IN_TRANSITION` state, so all
//! members see changes in the same order.
//!
//! The paper's experiments found three implementation bugs in the student
//! implementation; all three are faithfully reproducible through
//! [`GmpBugs`] so the experiments can demonstrate both the buggy finding
//! and the fixed behaviour.
//!
//! Daemons run on top of [`pfi_rudp`]; the PFI layer is interposed between
//! the daemon and the reliable layer, exactly where the paper "inserted the
//! PFI tool into the communication interface code where udp send and
//! receive calls were made".
//!
//! # Examples
//!
//! ```
//! use pfi_gmp::{GmpConfig, GmpControl, GmpLayer, GmpReply};
//! use pfi_rudp::RudpLayer;
//! use pfi_sim::{NodeId, SimDuration, World};
//!
//! let mut world = World::new(1);
//! let peers: Vec<NodeId> = (0..3).map(NodeId::new).collect();
//! for _ in 0..3 {
//!     let gmd = GmpLayer::new(GmpConfig::new(peers.clone()));
//!     world.add_node(vec![Box::new(gmd), Box::new(RudpLayer::default())]);
//! }
//! for &n in &peers {
//!     world.control::<GmpReply>(n, 0, GmpControl::Start);
//! }
//! world.run_for(SimDuration::from_secs(30));
//! let view = world.control::<GmpReply>(peers[0], 0, GmpControl::Status).expect_status();
//! assert_eq!(view.group.members, peers, "all three daemons form one group");
//! assert_eq!(view.group.leader(), peers[0], "lowest id leads");
//! ```

#![warn(missing_docs)]

mod config;
mod events;
mod layer;
mod packet;

pub use config::{GmpBugs, GmpConfig};
pub use events::GmpEvent;
pub use layer::{GmpControl, GmpLayer, GmpReply, GmpStatus, GmpStatusReport, Group};
pub use packet::{GmpPacket, GmpStub, GmpType, MAGIC};
