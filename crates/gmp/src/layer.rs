//! The group membership daemon (gmd) as a protocol layer.
//!
//! Implements the strong group membership protocol the paper tested:
//! heartbeats for failure detection, `PROCLAIM`/`JOIN` discovery by id
//! order (lowest id leads, standing in for "lowest IP address"), and a
//! two-phase membership change (`MEMBERSHIP_CHANGE` → `ACK`/`NAK` →
//! `COMMIT`) with an `IN_TRANSITION` state in between, so that "membership
//! changes are seen in the same order by all members". The three bugs of
//! [`GmpBugs`](crate::GmpBugs) are faithfully reproducible.

use std::any::Any;
use std::collections::{BTreeSet, HashMap, HashSet};

use pfi_sim::{Context, Layer, Message, NodeId, TimerId};

use crate::config::GmpConfig;
use crate::events::GmpEvent;
use crate::packet::{GmpPacket, GmpType};

const TOKEN_HB_TICK: u64 = 0;
const TOKEN_PROCLAIM_TICK: u64 = 1;
const TOKEN_MC_COMMIT: u64 = 2;
const TOKEN_COLLECT: u64 = 3;
const TOKEN_HB_EXPECT_BASE: u64 = 16;

/// Daemon status as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GmpStatus {
    /// Operating within a committed group.
    Up,
    /// Between groups: left the old one, waiting for the `COMMIT` of the
    /// new one.
    InTransition,
}

/// The committed group view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Group id.
    pub id: u64,
    /// Sorted members.
    pub members: Vec<NodeId>,
}

impl Group {
    /// The leader: the member with the lowest id.
    pub fn leader(&self) -> NodeId {
        self.members[0]
    }

    /// The crown prince: next in line for leadership, if any.
    pub fn crown_prince(&self) -> Option<NodeId> {
        self.members.get(1).copied()
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }
}

/// Control operations on a [`GmpLayer`].
#[derive(Debug)]
pub enum GmpControl {
    /// Boot the daemon (forms a singleton group and starts proclaiming).
    Start,
    /// Query the daemon's view; replies [`GmpReply::Status`].
    Status,
}

/// A snapshot of the daemon's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GmpStatusReport {
    /// The current committed group (the *old* group while in transition).
    pub group: Group,
    /// Up or in transition.
    pub status: GmpStatus,
    /// Whether the self-death bug has triggered.
    pub self_marked_dead: bool,
}

/// Replies from [`GmpLayer::control`].
#[derive(Debug)]
pub enum GmpReply {
    /// Nothing to report.
    Unit,
    /// State snapshot.
    Status(GmpStatusReport),
}

impl GmpReply {
    /// Unwraps a `Status` reply.
    ///
    /// # Panics
    ///
    /// Panics if the reply is not `Status`.
    pub fn expect_status(self) -> GmpStatusReport {
        match self {
            GmpReply::Status(s) => s,
            other => panic!("expected Status reply, got {other:?}"),
        }
    }
}

/// A pending two-phase change this daemon is coordinating.
#[derive(Debug, Clone)]
struct PendingMc {
    gid: u64,
    proposed: Vec<NodeId>,
    acked: HashSet<NodeId>,
    collect_timer: TimerId,
}

/// The group membership daemon.
#[derive(Debug, Clone)]
pub struct GmpLayer {
    config: GmpConfig,
    me: Option<NodeId>,
    started: bool,
    group: Group,
    status: GmpStatus,
    /// The group we are transitioning into (valid while `InTransition`).
    prospective: Option<Group>,
    self_marked_dead: bool,
    gid_counter: u64,
    /// Per-member heartbeat-expect timers.
    hb_expect: HashMap<NodeId, TimerId>,
    /// Members we have timed out on (within the current view).
    timed_out: BTreeSet<NodeId>,
    mc_commit_timer: Option<TimerId>,
    pending_mc: Option<PendingMc>,
    /// Joins (node plus any members it carries) awaiting the next change.
    pending_joins: BTreeSet<NodeId>,
    /// Suspects awaiting the next change.
    pending_failures: BTreeSet<NodeId>,
}

impl GmpLayer {
    /// Creates a daemon with the given configuration.
    pub fn new(config: GmpConfig) -> Self {
        GmpLayer {
            config,
            me: None,
            started: false,
            group: Group {
                id: 0,
                members: vec![],
            },
            status: GmpStatus::Up,
            prospective: None,
            self_marked_dead: false,
            gid_counter: 0,
            hb_expect: HashMap::new(),
            timed_out: BTreeSet::new(),
            mc_commit_timer: None,
            pending_mc: None,
            pending_joins: BTreeSet::new(),
            pending_failures: BTreeSet::new(),
        }
    }

    fn me(&self) -> NodeId {
        self.me.expect("daemon not started")
    }

    // ---- wire helpers ---------------------------------------------------

    fn send(&self, ctx: &mut Context<'_>, dst: NodeId, pkt: &GmpPacket) {
        let svc = if pkt.ty == GmpType::Heartbeat {
            pfi_rudp::service::UNRELIABLE
        } else {
            pfi_rudp::service::RELIABLE
        };
        let mut body = vec![svc];
        body.extend_from_slice(&pkt.to_bytes());
        ctx.send_down(Message::new(self.me(), dst, &body));
    }

    fn packet(&self, ty: GmpType) -> GmpPacket {
        GmpPacket {
            ty,
            sender: self.me(),
            origin: self.me(),
            group_id: self.group.id,
            members: vec![],
        }
    }

    fn next_gid(&mut self) -> u64 {
        self.gid_counter += 1;
        ((self.me().as_u32() as u64) << 32) | self.gid_counter
    }

    // ---- timer management ------------------------------------------------

    fn arm_hb_expect(&mut self, ctx: &mut Context<'_>, member: NodeId) {
        if let Some(old) = self.hb_expect.remove(&member) {
            ctx.cancel_timer(old);
        }
        let id = ctx.set_timer(
            self.config.heartbeat_timeout,
            TOKEN_HB_EXPECT_BASE + member.as_u32() as u64,
        );
        self.hb_expect.insert(member, id);
    }

    /// Unregisters heartbeat-expect timers on entering `IN_TRANSITION`.
    /// The correct implementation removes them all; the buggy one has its
    /// NULL/non-NULL logic inverted and removes only the first.
    fn unset_hb_timers(&mut self, ctx: &mut Context<'_>) {
        if self.config.bugs.timer_unset {
            let first = self.hb_expect.keys().min().copied();
            if let Some(k) = first {
                if let Some(id) = self.hb_expect.remove(&k) {
                    ctx.cancel_timer(id);
                }
            }
        } else {
            for (_, id) in self.hb_expect.drain() {
                ctx.cancel_timer(id);
            }
        }
    }

    fn arm_all_hb_timers(&mut self, ctx: &mut Context<'_>) {
        let members = self.group.members.clone();
        for m in members {
            self.arm_hb_expect(ctx, m);
        }
    }

    // ---- view changes ----------------------------------------------------

    fn adopt_view(&mut self, ctx: &mut Context<'_>, group: Group) {
        self.status = GmpStatus::Up;
        self.prospective = None;
        if let Some(t) = self.mc_commit_timer.take() {
            ctx.cancel_timer(t);
        }
        // Fresh failure-detection state for the new view.
        for (_, id) in self.hb_expect.drain() {
            ctx.cancel_timer(id);
        }
        self.timed_out.clear();
        self.pending_failures.retain(|f| group.contains(*f));
        self.pending_joins.retain(|j| !group.contains(*j));
        ctx.emit(GmpEvent::GroupView {
            gid: group.id,
            members: group.members.iter().map(|m| m.as_u32()).collect(),
            leader: group.leader().as_u32(),
        });
        self.group = group;
        self.arm_all_hb_timers(ctx);
    }

    fn form_singleton(&mut self, ctx: &mut Context<'_>) {
        let gid = self.next_gid();
        ctx.emit(GmpEvent::FormedSingleton);
        self.pending_mc = None;
        self.adopt_view(
            ctx,
            Group {
                id: gid,
                members: vec![self.me()],
            },
        );
    }

    /// Acting as (prospective) leader, start a two-phase change to
    /// `proposed`. Requires `me == min(proposed)`.
    fn initiate_mc(&mut self, ctx: &mut Context<'_>, proposed: Vec<NodeId>) {
        let me = self.me();
        debug_assert_eq!(proposed.first(), Some(&me), "only the lowest id may lead");
        if self.pending_mc.is_some() {
            return; // one change at a time; triggers stay queued
        }
        if proposed == self.group.members && self.status == GmpStatus::Up {
            return;
        }
        let gid = self.next_gid();
        ctx.emit(GmpEvent::McInitiated {
            gid,
            members: proposed.iter().map(|m| m.as_u32()).collect(),
        });
        if proposed.len() == 1 {
            // A group of one needs no agreement.
            self.adopt_view(
                ctx,
                Group {
                    id: gid,
                    members: proposed,
                },
            );
            return;
        }
        let pkt = GmpPacket {
            ty: GmpType::MembershipChange,
            sender: me,
            origin: me,
            group_id: gid,
            members: proposed.clone(),
        };
        for &m in proposed.iter().filter(|&&m| m != me) {
            self.send(ctx, m, &pkt);
        }
        let collect_timer = ctx.set_timer(self.config.mc_collect_timeout, TOKEN_COLLECT);
        self.pending_mc = Some(PendingMc {
            gid,
            proposed,
            acked: HashSet::new(),
            collect_timer,
        });
    }

    /// Computes and proposes the next view from current members, pending
    /// joins, and pending failures; only acts if we are the lowest id.
    fn propose_next_view(&mut self, ctx: &mut Context<'_>) {
        if self.pending_mc.is_some() {
            return;
        }
        let me = self.me();
        let mut set: BTreeSet<NodeId> = self.group.members.iter().copied().collect();
        set.extend(self.pending_joins.iter().copied());
        for f in self.pending_failures.iter().chain(self.timed_out.iter()) {
            set.remove(f);
        }
        set.insert(me);
        let proposed: Vec<NodeId> = set.into_iter().collect();
        if proposed.first() != Some(&me) {
            return; // someone with a lower id is responsible
        }
        self.pending_joins.clear();
        self.pending_failures.clear();
        self.initiate_mc(ctx, proposed);
    }

    fn finalize_commit(&mut self, ctx: &mut Context<'_>) {
        let Some(mc) = self.pending_mc.take() else {
            return;
        };
        ctx.cancel_timer(mc.collect_timer);
        let me = self.me();
        let mut final_members: Vec<NodeId> = mc
            .proposed
            .iter()
            .copied()
            .filter(|m| *m == me || mc.acked.contains(m))
            .collect();
        final_members.sort();
        let group = Group {
            id: mc.gid,
            members: final_members.clone(),
        };
        let pkt = GmpPacket {
            ty: GmpType::Commit,
            sender: me,
            origin: me,
            group_id: mc.gid,
            members: final_members.clone(),
        };
        for &m in final_members.iter().filter(|&&m| m != me) {
            self.send(ctx, m, &pkt);
        }
        self.adopt_view(ctx, group);
        // Anything that queued up during the change drives the next one.
        if !self.pending_joins.is_empty() || !self.pending_failures.is_empty() {
            self.propose_next_view(ctx);
        }
    }

    // ---- failure detection ------------------------------------------------

    fn on_hb_expect_timeout(&mut self, ctx: &mut Context<'_>, suspect: NodeId) {
        self.hb_expect.remove(&suspect);
        if self.self_marked_dead {
            // A daemon that believes itself dead does nothing about other
            // people's liveness (part of the bug's broken local state).
            return;
        }
        let me = self.me();
        if self.status == GmpStatus::InTransition {
            // With correct timer hygiene this cannot happen: all expect
            // timers are unset on entering the transition.
            ctx.emit(GmpEvent::SpuriousTimerInTransition {
                suspect: suspect.as_u32(),
            });
            return;
        }
        if !self.group.contains(suspect) {
            return;
        }
        ctx.emit(GmpEvent::MemberSuspected {
            suspect: suspect.as_u32(),
        });
        if suspect == me {
            // We missed our own heartbeats (clock stalled, stack wedged, or
            // a fault injector at work).
            if self.config.bugs.self_death {
                ctx.emit(GmpEvent::SelfDeclaredDead);
                self.self_marked_dead = true;
                // Tell the others we died — but never fix our own state.
                let mut pkt = self.packet(GmpType::FailureReport);
                pkt.origin = me;
                for &m in self.group.members.clone().iter().filter(|&&m| m != me) {
                    self.send(ctx, m, &pkt);
                }
            } else {
                // Fixed behaviour: restart as a singleton and rejoin.
                self.form_singleton(ctx);
            }
            return;
        }
        self.timed_out.insert(suspect);
        let leader = self.group.leader();
        if leader == me {
            self.pending_failures.insert(suspect);
            self.propose_next_view(ctx);
        } else if suspect == leader || self.timed_out.contains(&leader) {
            // The leader is among the silent: the lowest live member takes
            // over (crown prince succession, generalised).
            let live_min = self
                .group
                .members
                .iter()
                .copied()
                .find(|m| !self.timed_out.contains(m));
            if live_min == Some(me) {
                self.propose_next_view(ctx);
            }
        } else {
            let mut pkt = self.packet(GmpType::FailureReport);
            pkt.origin = suspect;
            self.send(ctx, leader, &pkt);
        }
    }

    // ---- proclaim / join ---------------------------------------------------

    fn proclaim_round(&mut self, ctx: &mut Context<'_>) {
        let me = self.me();
        if self.status != GmpStatus::Up || self.group.leader() != me || self.self_marked_dead {
            return;
        }
        let targets: Vec<NodeId> = self
            .config
            .peers
            .iter()
            .copied()
            .filter(|p| *p != me && !self.group.contains(*p))
            .collect();
        let pkt = self.packet(GmpType::Proclaim);
        for t in targets {
            ctx.emit(GmpEvent::ProclaimSent { to: t.as_u32() });
            self.send(ctx, t, &pkt);
        }
    }

    fn on_proclaim(&mut self, ctx: &mut Context<'_>, pkt: &GmpPacket) {
        let me = self.me();
        let origin = pkt.origin;
        if self.status != GmpStatus::Up {
            return;
        }
        if self.self_marked_dead {
            // The buggy forwarding path: wrong parameter type, packet lost.
            ctx.emit(GmpEvent::ProclaimForwardDroppedByBug);
            return;
        }
        let leader = self.group.leader();
        if origin == me {
            // Our own proclaim came back (a member forwarded it to us). The
            // buggy leader treats it like any other proclaim and answers the
            // sender — feeding the vicious proclaim cycle the paper found.
            if self.config.bugs.proclaim_forward && leader == me && pkt.sender != me {
                ctx.emit(GmpEvent::ProclaimAnswered {
                    to: pkt.sender.as_u32(),
                    origin: origin.as_u32(),
                });
                let reply = self.packet(GmpType::Proclaim);
                self.send(ctx, pkt.sender, &reply);
            }
            return;
        }
        // The correct implementation ignores proclaims from current members;
        // the buggy forwarder skips that check and forwards anything.
        if self.group.contains(origin) && !(self.config.bugs.proclaim_forward && leader != me) {
            return;
        }
        if leader == me {
            if me < origin {
                // We outrank the proclaimer: answer with a proclaim of our
                // own so it joins us. The buggy leader answers the
                // *forwarder* instead of the originator.
                let target = if self.config.bugs.proclaim_forward {
                    pkt.sender
                } else {
                    origin
                };
                ctx.emit(GmpEvent::ProclaimAnswered {
                    to: target.as_u32(),
                    origin: origin.as_u32(),
                });
                let reply = self.packet(GmpType::Proclaim);
                self.send(ctx, target, &reply);
            } else {
                // The proclaimer outranks us: our whole group defects.
                let mut join = self.packet(GmpType::Join);
                join.members = self.group.members.clone();
                ctx.emit(GmpEvent::JoinSent {
                    to: origin.as_u32(),
                });
                self.send(ctx, origin, &join);
            }
        } else if origin < leader {
            // Defect: the proclaimer outranks our current leader.
            let mut join = self.packet(GmpType::Join);
            join.members = vec![me];
            ctx.emit(GmpEvent::JoinSent {
                to: origin.as_u32(),
            });
            self.send(ctx, origin, &join);
        } else {
            // Not the leader: forward the proclaim to the leader.
            let mut fwd = pkt.clone();
            fwd.sender = me;
            ctx.emit(GmpEvent::ProclaimForwarded {
                origin: origin.as_u32(),
                to: leader.as_u32(),
            });
            self.send(ctx, leader, &fwd);
        }
    }

    fn on_join(&mut self, ctx: &mut Context<'_>, pkt: &GmpPacket) {
        let me = self.me();
        if self.status != GmpStatus::Up || self.group.leader() != me {
            return;
        }
        self.pending_joins.insert(pkt.origin);
        self.pending_joins
            .extend(pkt.members.iter().copied().filter(|m| *m != me));
        self.propose_next_view(ctx);
    }

    // ---- two-phase change, member side --------------------------------------

    /// "If the message is from a valid leader": the proposer must be the
    /// lowest id of the proposed group, we must be in it, and — so that a
    /// higher-id leader cannot steal members from a live lower-id leader —
    /// the proposer must not be outranked by our current (or prospective)
    /// leader, unless that leader has gone silent on us.
    fn mc_is_valid(&self, pkt: &GmpPacket) -> bool {
        let me = self.me();
        if !pkt.members.contains(&me) || pkt.members.iter().min() != Some(&pkt.sender) {
            return false;
        }
        let effective_leader = match (&self.status, &self.prospective) {
            (GmpStatus::InTransition, Some(g)) => g.leader(),
            _ => self.group.leader(),
        };
        pkt.sender <= effective_leader || self.timed_out.contains(&effective_leader)
    }

    fn on_membership_change(&mut self, ctx: &mut Context<'_>, pkt: &GmpPacket) {
        let me = self.me();
        if pkt.sender == me {
            return;
        }
        if !self.mc_is_valid(pkt) {
            if pkt.members.contains(&me) {
                ctx.emit(GmpEvent::NakSent {
                    to: pkt.sender.as_u32(),
                });
                let mut nak = self.packet(GmpType::NakMc);
                nak.group_id = pkt.group_id;
                self.send(ctx, pkt.sender, &nak);
            }
            return;
        }
        // Leave the old group: in transition from one group to the next.
        self.status = GmpStatus::InTransition;
        let mut members = pkt.members.clone();
        members.sort();
        self.prospective = Some(Group {
            id: pkt.group_id,
            members,
        });
        self.unset_hb_timers(ctx);
        ctx.emit(GmpEvent::InTransition { gid: pkt.group_id });
        let mut ack = self.packet(GmpType::AckMc);
        ack.group_id = pkt.group_id;
        self.send(ctx, pkt.sender, &ack);
        if let Some(t) = self.mc_commit_timer.take() {
            ctx.cancel_timer(t);
        }
        self.mc_commit_timer = Some(ctx.set_timer(self.config.mc_commit_timeout, TOKEN_MC_COMMIT));
    }

    fn on_ack_mc(&mut self, ctx: &mut Context<'_>, pkt: &GmpPacket) {
        let me = self.me();
        let finalize = {
            let Some(mc) = self.pending_mc.as_mut() else {
                return;
            };
            if pkt.group_id != mc.gid {
                return;
            }
            mc.acked.insert(pkt.sender);
            mc.proposed.iter().all(|m| *m == me || mc.acked.contains(m))
        };
        if finalize {
            self.finalize_commit(ctx);
        }
    }

    fn on_nak_mc(&mut self, _ctx: &mut Context<'_>, pkt: &GmpPacket) {
        if let Some(mc) = self.pending_mc.as_mut() {
            if pkt.group_id == mc.gid {
                mc.proposed.retain(|m| *m != pkt.sender);
            }
        }
    }

    fn on_commit(&mut self, ctx: &mut Context<'_>, pkt: &GmpPacket) {
        if !self.mc_is_valid(pkt) {
            return;
        }
        let mut members = pkt.members.clone();
        members.sort();
        self.adopt_view(
            ctx,
            Group {
                id: pkt.group_id,
                members,
            },
        );
    }

    fn on_failure_report(&mut self, ctx: &mut Context<'_>, pkt: &GmpPacket) {
        let me = self.me();
        if self.status != GmpStatus::Up || self.group.leader() != me {
            return;
        }
        let suspect = pkt.origin;
        if suspect == me || !self.group.contains(suspect) {
            return;
        }
        ctx.emit(GmpEvent::MemberSuspected {
            suspect: suspect.as_u32(),
        });
        self.pending_failures.insert(suspect);
        self.propose_next_view(ctx);
    }

    fn on_heartbeat(&mut self, ctx: &mut Context<'_>, pkt: &GmpPacket) {
        if self.status != GmpStatus::Up {
            return;
        }
        let sender = pkt.sender;
        if self.group.contains(sender) {
            self.timed_out.remove(&sender);
            self.arm_hb_expect(ctx, sender);
        }
    }
}

impl Layer for GmpLayer {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "gmp"
    }

    fn push(&mut self, msg: Message, ctx: &mut Context<'_>) {
        // Nothing sits above the daemon.
        let _ = (msg, ctx);
    }

    fn pop(&mut self, msg: Message, ctx: &mut Context<'_>) {
        if !self.started {
            return;
        }
        let Some(pkt) = GmpPacket::parse(msg.bytes()) else {
            return;
        };
        if self.self_marked_dead && pkt.ty != GmpType::Proclaim {
            // "Dead" but still running: the buggy daemon ignores protocol
            // traffic yet keeps (mis)handling proclaim forwarding.
            return;
        }
        match pkt.ty {
            GmpType::Heartbeat => self.on_heartbeat(ctx, &pkt),
            GmpType::Proclaim => self.on_proclaim(ctx, &pkt),
            GmpType::Join => self.on_join(ctx, &pkt),
            GmpType::MembershipChange => self.on_membership_change(ctx, &pkt),
            GmpType::AckMc => self.on_ack_mc(ctx, &pkt),
            GmpType::NakMc => self.on_nak_mc(ctx, &pkt),
            GmpType::Commit => self.on_commit(ctx, &pkt),
            GmpType::FailureReport => self.on_failure_report(ctx, &pkt),
        }
    }

    fn timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        if !self.started {
            return;
        }
        if self.self_marked_dead {
            // The buggy daemon believes it has died; it stops driving the
            // protocol (heartbeats, proclaims, pending changes) entirely.
            return;
        }
        match token {
            TOKEN_HB_TICK => {
                if self.status == GmpStatus::Up && !self.self_marked_dead {
                    let pkt = self.packet(GmpType::Heartbeat);
                    // Heartbeats go to every member *including self* (the
                    // instrumented behaviour the paper's experiment 1
                    // exploits by dropping loopback heartbeats).
                    for &m in self.group.members.clone().iter() {
                        self.send(ctx, m, &pkt);
                    }
                }
                ctx.set_timer(self.config.heartbeat_interval, TOKEN_HB_TICK);
            }
            TOKEN_PROCLAIM_TICK => {
                self.proclaim_round(ctx);
                ctx.set_timer(self.config.proclaim_interval, TOKEN_PROCLAIM_TICK);
            }
            TOKEN_MC_COMMIT => {
                self.mc_commit_timer = None;
                if self.status == GmpStatus::InTransition {
                    ctx.emit(GmpEvent::CommitTimedOut);
                    self.form_singleton(ctx);
                }
            }
            TOKEN_COLLECT => {
                // Commit with whoever answered in time.
                self.finalize_commit(ctx);
            }
            t if t >= TOKEN_HB_EXPECT_BASE => {
                let suspect = NodeId::new((t - TOKEN_HB_EXPECT_BASE) as u32);
                // Only meaningful if this timer is still the registered one
                // (re-armed and cancelled timers never reach here).
                if self.hb_expect.contains_key(&suspect) {
                    self.on_hb_expect_timeout(ctx, suspect);
                }
            }
            _ => {}
        }
    }

    fn control(&mut self, op: Box<dyn Any>, ctx: &mut Context<'_>) -> Box<dyn Any> {
        let Ok(op) = op.downcast::<GmpControl>() else {
            return Box::new(GmpReply::Unit);
        };
        let reply = match *op {
            GmpControl::Start => {
                if !self.started {
                    self.started = true;
                    self.me = Some(ctx.node());
                    ctx.emit(GmpEvent::Started);
                    self.form_singleton(ctx);
                    ctx.set_timer(self.config.heartbeat_interval, TOKEN_HB_TICK);
                    // First proclaim round fires promptly.
                    ctx.set_timer(pfi_sim::SimDuration::from_millis(100), TOKEN_PROCLAIM_TICK);
                }
                GmpReply::Unit
            }
            GmpControl::Status => GmpReply::Status(GmpStatusReport {
                group: self.group.clone(),
                status: self.status,
                self_marked_dead: self.self_marked_dead,
            }),
        };
        Box::new(reply)
    }
}
