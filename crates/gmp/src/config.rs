//! Daemon configuration and the injectable implementation bugs.

use pfi_sim::{NodeId, SimDuration};

/// The three implementation bugs the paper's fault-injection experiments
/// uncovered in the student GMP. All default **off** (the fixed protocol);
/// experiments flip them on to reproduce each finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GmpBugs {
    /// Experiment 1: when a daemon misses its *own* heartbeats it declares
    /// itself dead to the group, fails to form a singleton group (staying
    /// in the old group marked "down"), and its proclaim-forwarding path
    /// calls a routine with the wrong parameter so forwarded proclaims are
    /// silently lost.
    pub self_death: bool,
    /// Experiment 3: the leader answers a forwarded `PROCLAIM` to the
    /// *forwarder* instead of the originator, creating a proclaim loop
    /// between leader and forwarder.
    pub proclaim_forward: bool,
    /// Experiment 4: the timer-unregistration routine has its NULL/non-NULL
    /// logic inverted, so entering `IN_TRANSITION` cancels only the first
    /// heartbeat-expect timer instead of all of them; stale timers then
    /// fire during the transition.
    pub timer_unset: bool,
}

impl GmpBugs {
    /// All bugs present — the implementation as originally submitted.
    pub fn all() -> Self {
        GmpBugs {
            self_death: true,
            proclaim_forward: true,
            timer_unset: true,
        }
    }

    /// No bugs — the fixed implementation.
    pub fn none() -> Self {
        Self::default()
    }
}

/// Timing and topology configuration of a group membership daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GmpConfig {
    /// All daemons in the system (the address book proclaims go to).
    pub peers: Vec<NodeId>,
    /// Gap between heartbeats to every group member (including self).
    pub heartbeat_interval: SimDuration,
    /// Silence from a member before it is suspected.
    pub heartbeat_timeout: SimDuration,
    /// Gap between proclaim rounds while seeking members.
    pub proclaim_interval: SimDuration,
    /// How long the leader collects ACK/NAKs before committing with
    /// whoever answered.
    pub mc_collect_timeout: SimDuration,
    /// How long a member waits in `IN_TRANSITION` for the `COMMIT` before
    /// giving up and forming a singleton group.
    pub mc_commit_timeout: SimDuration,
    /// Which implementation bugs are present.
    pub bugs: GmpBugs,
}

impl GmpConfig {
    /// Defaults used throughout the experiments: 1 s heartbeats, 3.5 s
    /// suspicion, 4 s proclaim rounds, 2 s ACK collection, 6 s commit wait.
    pub fn new(peers: Vec<NodeId>) -> Self {
        GmpConfig {
            peers,
            heartbeat_interval: SimDuration::from_secs(1),
            heartbeat_timeout: SimDuration::from_millis(3_500),
            proclaim_interval: SimDuration::from_secs(4),
            mc_collect_timeout: SimDuration::from_secs(2),
            mc_commit_timeout: SimDuration::from_secs(6),
            bugs: GmpBugs::none(),
        }
    }

    /// Same configuration with the given bugs injected.
    pub fn with_bugs(mut self, bugs: GmpBugs) -> Self {
        self.bugs = bugs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let peers: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let c = GmpConfig::new(peers.clone());
        assert_eq!(c.peers, peers);
        assert!(c.heartbeat_timeout > c.heartbeat_interval * 2);
        assert!(c.mc_commit_timeout > c.mc_collect_timeout);
        assert_eq!(c.bugs, GmpBugs::none());
    }

    #[test]
    fn bug_presets() {
        assert!(
            GmpBugs::all().self_death
                && GmpBugs::all().proclaim_forward
                && GmpBugs::all().timer_unset
        );
        assert_eq!(GmpBugs::none(), GmpBugs::default());
        let c = GmpConfig::new(vec![]).with_bugs(GmpBugs {
            self_death: true,
            ..GmpBugs::none()
        });
        assert!(c.bugs.self_death && !c.bugs.timer_unset);
    }
}
