//! Trace events emitted by group membership daemons.

/// One observable GMP action. Node ids are raw `u32` indices for easy
//  comparison in experiment analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GmpEvent {
    /// The daemon started (singleton group of itself).
    Started,
    /// A committed group view was adopted.
    GroupView {
        /// Group id.
        gid: u64,
        /// Sorted member ids.
        members: Vec<u32>,
        /// Leader id (lowest member).
        leader: u32,
    },
    /// Entered `IN_TRANSITION` after accepting a `MEMBERSHIP_CHANGE`.
    InTransition {
        /// Proposed group id.
        gid: u64,
    },
    /// A member went silent and is now suspected.
    MemberSuspected {
        /// The suspect's id.
        suspect: u32,
    },
    /// This daemon (as acting leader) started a two-phase change.
    McInitiated {
        /// Proposed group id.
        gid: u64,
        /// Proposed members.
        members: Vec<u32>,
    },
    /// Gave up waiting for a `COMMIT` and fell back to a singleton group.
    CommitTimedOut,
    /// Formed a singleton group.
    FormedSingleton,
    /// Sent a `PROCLAIM`.
    ProclaimSent {
        /// Destination.
        to: u32,
    },
    /// Forwarded someone else's `PROCLAIM` to the leader.
    ProclaimForwarded {
        /// The original proclaimer.
        origin: u32,
        /// The leader it was forwarded to.
        to: u32,
    },
    /// The leader answered a `PROCLAIM`.
    ProclaimAnswered {
        /// Who the answer was addressed to — under the forwarding bug this
        /// is the forwarder, not the originator.
        to: u32,
        /// The original proclaimer.
        origin: u32,
    },
    /// Sent a `JOIN` (possibly defecting to a lower-id leader).
    JoinSent {
        /// The prospective leader.
        to: u32,
    },
    /// Sent a `NAK` for an invalid `MEMBERSHIP_CHANGE`.
    NakSent {
        /// The proposer.
        to: u32,
    },
    /// **Bug symptom** (experiment 1): the daemon declared itself dead
    /// after missing its own heartbeats.
    SelfDeclaredDead,
    /// **Bug symptom** (experiment 1): a proclaim was lost in the broken
    /// forwarding path of a self-declared-dead daemon.
    ProclaimForwardDroppedByBug,
    /// **Bug symptom** (experiment 4): a heartbeat-expect timer fired while
    /// the daemon was `IN_TRANSITION` — it should have been unregistered.
    SpuriousTimerInTransition {
        /// The member the stale timer was watching.
        suspect: u32,
    },
}
