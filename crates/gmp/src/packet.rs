//! GMP wire format and packet stub.
//!
//! ```text
//! offset size field
//!      0    1 magic (0xA7)
//!      1    1 message type
//!      2    4 sender id
//!      6    4 origin id   (original proclaimer when forwarded; else sender)
//!     10    8 group id
//!     18    1 member count N
//!     19   4N member ids
//! ```
//!
//! Because the PFI layer sits between GMP and the reliable datagram layer,
//! messages travelling *down* still carry the one-byte rudp service
//! selector in front of this header; the stub detects the magic byte at
//! offset 0 or 1 so filters work in both directions.

use pfi_core::PacketStub;
use pfi_sim::{Message, NodeId};

/// First byte of every GMP packet.
pub const MAGIC: u8 = 0xA7;

/// GMP message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GmpType {
    /// Periodic liveness beacon (sent unreliably).
    Heartbeat,
    /// "I want to be in a group" — broadcast to potential members.
    Proclaim,
    /// Request to join the receiver's group.
    Join,
    /// Phase 1 of the two-phase change: the proposed new group.
    MembershipChange,
    /// Positive acknowledgement of a `MembershipChange`.
    AckMc,
    /// Negative acknowledgement of a `MembershipChange`.
    NakMc,
    /// Phase 2: the agreed new group.
    Commit,
    /// A member reports a suspected failure to the leader.
    FailureReport,
}

impl GmpType {
    /// Stable wire value.
    pub fn to_byte(self) -> u8 {
        match self {
            GmpType::Heartbeat => 1,
            GmpType::Proclaim => 2,
            GmpType::Join => 3,
            GmpType::MembershipChange => 4,
            GmpType::AckMc => 5,
            GmpType::NakMc => 6,
            GmpType::Commit => 7,
            GmpType::FailureReport => 8,
        }
    }

    /// Parses a wire value.
    pub fn from_byte(b: u8) -> Option<GmpType> {
        Some(match b {
            1 => GmpType::Heartbeat,
            2 => GmpType::Proclaim,
            3 => GmpType::Join,
            4 => GmpType::MembershipChange,
            5 => GmpType::AckMc,
            6 => GmpType::NakMc,
            7 => GmpType::Commit,
            8 => GmpType::FailureReport,
            _ => return None,
        })
    }

    /// Name as used in filter scripts (`msg_type`), matching the paper's
    /// spelling.
    pub fn name(self) -> &'static str {
        match self {
            GmpType::Heartbeat => "HEARTBEAT",
            GmpType::Proclaim => "PROCLAIM",
            GmpType::Join => "JOIN",
            GmpType::MembershipChange => "MEMBERSHIP_CHANGE",
            GmpType::AckMc => "ACK",
            GmpType::NakMc => "NAK",
            GmpType::Commit => "COMMIT",
            GmpType::FailureReport => "FAILURE_REPORT",
        }
    }
}

/// A decoded GMP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GmpPacket {
    /// Message type.
    pub ty: GmpType,
    /// The node that transmitted this packet.
    pub sender: NodeId,
    /// The node the content is about: the original proclaimer for
    /// forwarded `Proclaim`s, the suspect for `FailureReport`s; otherwise
    /// equal to `sender`.
    pub origin: NodeId,
    /// Group identifier (proposed or committed).
    pub group_id: u64,
    /// Member list (proposed/committed members, or carried members on a
    /// `Join` from a merging leader).
    pub members: Vec<NodeId>,
}

impl GmpPacket {
    /// Serialises to bytes (without any rudp service selector).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(19 + 4 * self.members.len());
        b.push(MAGIC);
        b.push(self.ty.to_byte());
        b.extend_from_slice(&self.sender.as_u32().to_be_bytes());
        b.extend_from_slice(&self.origin.as_u32().to_be_bytes());
        b.extend_from_slice(&self.group_id.to_be_bytes());
        b.push(self.members.len() as u8);
        for m in &self.members {
            b.extend_from_slice(&m.as_u32().to_be_bytes());
        }
        b
    }

    /// Parses from bytes, tolerating a one-byte service selector in front
    /// (send-direction framing).
    pub fn parse(bytes: &[u8]) -> Option<GmpPacket> {
        let b = if bytes.first() == Some(&MAGIC) {
            bytes
        } else if bytes.get(1) == Some(&MAGIC) {
            &bytes[1..]
        } else {
            return None;
        };
        if b.len() < 19 {
            return None;
        }
        let ty = GmpType::from_byte(b[1])?;
        let sender = NodeId::new(u32::from_be_bytes([b[2], b[3], b[4], b[5]]));
        let origin = NodeId::new(u32::from_be_bytes([b[6], b[7], b[8], b[9]]));
        let group_id = u64::from_be_bytes([b[10], b[11], b[12], b[13], b[14], b[15], b[16], b[17]]);
        let n = b[18] as usize;
        if b.len() != 19 + 4 * n {
            return None;
        }
        let members = (0..n)
            .map(|i| {
                let o = 19 + 4 * i;
                NodeId::new(u32::from_be_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]]))
            })
            .collect();
        Some(GmpPacket {
            ty,
            sender,
            origin,
            group_id,
            members,
        })
    }
}

/// Packet stub for PFI layers interposed at the GMP ↔ rudp boundary.
///
/// Generation supports forging probes:
/// `PROCLAIM <dst-node> <origin>` and `HEARTBEAT <dst-node> <sender>`
/// (down-framed with the rudp service selector).
#[derive(Debug, Clone, Copy, Default)]
pub struct GmpStub;

impl PacketStub for GmpStub {
    fn clone_box(&self) -> Option<Box<dyn PacketStub>> {
        Some(Box::new(*self))
    }

    fn protocol(&self) -> &'static str {
        "gmp"
    }

    fn type_of(&self, msg: &Message) -> Option<String> {
        GmpPacket::parse(msg.bytes()).map(|p| p.ty.name().to_string())
    }

    fn field(&self, msg: &Message, name: &str) -> Option<i64> {
        let p = GmpPacket::parse(msg.bytes())?;
        match name {
            "sender" => Some(p.sender.index() as i64),
            "origin" => Some(p.origin.index() as i64),
            "gid" => Some(p.group_id as i64),
            "nmembers" => Some(p.members.len() as i64),
            _ => None,
        }
    }

    fn set_field(&self, _msg: &mut Message, _name: &str, _value: i64) -> bool {
        false
    }

    fn generate(&self, src: NodeId, args: &[String]) -> Result<Message, String> {
        let ty = match args.first().map(|s| s.to_ascii_uppercase()).as_deref() {
            Some("PROCLAIM") => GmpType::Proclaim,
            Some("HEARTBEAT") => GmpType::Heartbeat,
            other => return Err(format!("gmp stub cannot generate {other:?}")),
        };
        let parse_node = |i: usize, what: &str| -> Result<NodeId, String> {
            args.get(i)
                .ok_or_else(|| format!("missing {what}"))?
                .parse::<u32>()
                .map(NodeId::new)
                .map_err(|_| format!("bad {what} \"{}\"", args[i]))
        };
        let dst = parse_node(1, "dst node")?;
        let who = parse_node(2, "subject node")?;
        let pkt = GmpPacket {
            ty,
            sender: who,
            origin: who,
            group_id: 0,
            members: vec![],
        };
        // Down-framed: prepend the rudp service selector (heartbeats are
        // fire-and-forget, the rest reliable).
        let svc = if ty == GmpType::Heartbeat { 1u8 } else { 0u8 };
        let mut body = vec![svc];
        body.extend_from_slice(&pkt.to_bytes());
        Ok(Message::new(src, dst, &body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> GmpPacket {
        GmpPacket {
            ty: GmpType::Commit,
            sender: NodeId::new(1),
            origin: NodeId::new(1),
            group_id: 0x1_0000_0002,
            members: vec![NodeId::new(1), NodeId::new(2), NodeId::new(4)],
        }
    }

    #[test]
    fn roundtrip() {
        let p = pkt();
        assert_eq!(GmpPacket::parse(&p.to_bytes()), Some(p));
    }

    #[test]
    fn parse_tolerates_service_prefix() {
        let p = pkt();
        let mut framed = vec![0u8];
        framed.extend_from_slice(&p.to_bytes());
        assert_eq!(GmpPacket::parse(&framed), Some(p));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(GmpPacket::parse(&[]), None);
        assert_eq!(GmpPacket::parse(&[MAGIC, 99, 0, 0]), None);
        let mut truncated = pkt().to_bytes();
        truncated.pop();
        assert_eq!(GmpPacket::parse(&truncated), None);
    }

    #[test]
    fn type_names_and_bytes_roundtrip() {
        for ty in [
            GmpType::Heartbeat,
            GmpType::Proclaim,
            GmpType::Join,
            GmpType::MembershipChange,
            GmpType::AckMc,
            GmpType::NakMc,
            GmpType::Commit,
            GmpType::FailureReport,
        ] {
            assert_eq!(GmpType::from_byte(ty.to_byte()), Some(ty));
            assert!(!ty.name().is_empty());
        }
        assert_eq!(GmpType::from_byte(0), None);
    }

    #[test]
    fn stub_recognition_both_framings() {
        let p = pkt();
        let bare = Message::new(NodeId::new(0), NodeId::new(1), &p.to_bytes());
        assert_eq!(GmpStub.type_of(&bare).as_deref(), Some("COMMIT"));
        assert_eq!(GmpStub.field(&bare, "sender"), Some(1));
        assert_eq!(GmpStub.field(&bare, "nmembers"), Some(3));
        let mut framed_bytes = vec![0u8];
        framed_bytes.extend_from_slice(&p.to_bytes());
        let framed = Message::new(NodeId::new(0), NodeId::new(1), &framed_bytes);
        assert_eq!(GmpStub.type_of(&framed).as_deref(), Some("COMMIT"));
    }

    #[test]
    fn stub_generates_forged_proclaim() {
        let args: Vec<String> = ["PROCLAIM", "2", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let m = GmpStub.generate(NodeId::new(0), &args).unwrap();
        assert_eq!(m.dst(), NodeId::new(2));
        let p = GmpPacket::parse(m.bytes()).unwrap();
        assert_eq!(p.ty, GmpType::Proclaim);
        assert_eq!(p.origin, NodeId::new(3));
        assert!(GmpStub
            .generate(NodeId::new(0), &["COMMIT".to_string()])
            .is_err());
    }
}
