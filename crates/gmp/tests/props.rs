// QUARANTINED: this property-based suite depends on the external `proptest`
// crate, which the offline build environment cannot fetch from crates.io.
// The whole file is compiled out unless the crate's `proptest` feature is
// enabled (after restoring the proptest dev-dependency in Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests for GMP packets and the stub.

use pfi_core::PacketStub;
use pfi_gmp::{GmpPacket, GmpStub, GmpType};
use pfi_sim::{Message, NodeId};
use proptest::prelude::*;

fn arb_type() -> impl Strategy<Value = GmpType> {
    prop_oneof![
        Just(GmpType::Heartbeat),
        Just(GmpType::Proclaim),
        Just(GmpType::Join),
        Just(GmpType::MembershipChange),
        Just(GmpType::AckMc),
        Just(GmpType::NakMc),
        Just(GmpType::Commit),
        Just(GmpType::FailureReport),
    ]
}

fn arb_packet() -> impl Strategy<Value = GmpPacket> {
    (
        arb_type(),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        proptest::collection::vec(any::<u32>(), 0..20),
    )
        .prop_map(|(ty, sender, origin, group_id, members)| GmpPacket {
            ty,
            sender: NodeId::new(sender),
            origin: NodeId::new(origin),
            group_id,
            members: members.into_iter().map(NodeId::new).collect(),
        })
}

proptest! {
    /// Serialisation round trip, bare and with the rudp service prefix.
    #[test]
    fn packet_roundtrip(pkt in arb_packet()) {
        let bytes = pkt.to_bytes();
        let parsed = GmpPacket::parse(&bytes);
        prop_assert_eq!(parsed.as_ref(), Some(&pkt));
        let mut framed = vec![0u8];
        framed.extend_from_slice(&bytes);
        prop_assert_eq!(GmpPacket::parse(&framed), Some(pkt));
    }

    /// The parser never panics on arbitrary input, and truncations of valid
    /// packets are always rejected (no partial parses).
    #[test]
    fn parser_rejects_truncations(pkt in arb_packet(), cut in 1usize..30) {
        let bytes = pkt.to_bytes();
        let cut = cut.min(bytes.len() - 1);
        prop_assert_eq!(GmpPacket::parse(&bytes[..bytes.len() - cut]), None);
    }

    /// Arbitrary garbage never panics the parser or the stub.
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = GmpPacket::parse(&bytes);
        let m = Message::new(NodeId::new(0), NodeId::new(1), &bytes);
        let _ = GmpStub.type_of(&m);
        let _ = GmpStub.field(&m, "sender");
    }

    /// The stub's field values agree with the parsed packet.
    #[test]
    fn stub_fields_agree_with_parse(pkt in arb_packet()) {
        let m = Message::new(NodeId::new(0), NodeId::new(1), &pkt.to_bytes());
        prop_assert_eq!(GmpStub.field(&m, "sender"), Some(pkt.sender.index() as i64));
        prop_assert_eq!(GmpStub.field(&m, "origin"), Some(pkt.origin.index() as i64));
        prop_assert_eq!(GmpStub.field(&m, "nmembers"), Some(pkt.members.len() as i64));
        prop_assert_eq!(GmpStub.type_of(&m), Some(pkt.ty.name().to_string()));
    }
}
