//! Behavioural tests for the group membership protocol under failures.

use pfi_core::{Filter, PfiLayer};
use pfi_gmp::{GmpBugs, GmpConfig, GmpControl, GmpEvent, GmpLayer, GmpReply, GmpStatus, GmpStub};
use pfi_rudp::RudpLayer;
use pfi_sim::{NodeId, SimDuration, World};

/// Builds `n` daemons, each with a PFI layer between gmd and rudp, and
/// starts them all at once.
fn cluster(n: u32, bugs: GmpBugs) -> (World, Vec<NodeId>) {
    let mut w = World::new(11);
    let peers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    for _ in 0..n {
        let gmd = GmpLayer::new(GmpConfig::new(peers.clone()).with_bugs(bugs));
        let pfi = PfiLayer::new(Box::new(GmpStub));
        w.add_node(vec![
            Box::new(gmd),
            Box::new(pfi),
            Box::new(RudpLayer::default()),
        ]);
    }
    for &p in &peers {
        w.control::<GmpReply>(p, 0, GmpControl::Start);
    }
    (w, peers)
}

fn view(w: &mut World, node: NodeId) -> pfi_gmp::GmpStatusReport {
    w.control::<GmpReply>(node, 0, GmpControl::Status)
        .expect_status()
}

fn members(w: &mut World, node: NodeId) -> Vec<u32> {
    view(w, node)
        .group
        .members
        .iter()
        .map(|m| m.as_u32())
        .collect()
}

#[test]
fn daemons_converge_to_one_group_with_lowest_leader() {
    let (mut w, peers) = cluster(5, GmpBugs::none());
    w.run_for(SimDuration::from_secs(60));
    for &p in &peers {
        let v = view(&mut w, p);
        assert_eq!(v.status, GmpStatus::Up, "{p} stuck in transition");
        assert_eq!(
            members(&mut w, p),
            vec![0, 1, 2, 3, 4],
            "{p} has wrong view"
        );
        assert_eq!(v.group.leader(), peers[0]);
        assert_eq!(v.group.crown_prince(), Some(peers[1]));
    }
    // All nodes agree on the same group id.
    let gid0 = view(&mut w, peers[0]).group.id;
    for &p in &peers {
        assert_eq!(view(&mut w, p).group.id, gid0);
    }
}

#[test]
fn crashed_member_is_excluded() {
    let (mut w, peers) = cluster(4, GmpBugs::none());
    w.run_for(SimDuration::from_secs(60));
    w.crash(peers[2]);
    w.run_for(SimDuration::from_secs(30));
    for p in [peers[0], peers[1], peers[3]] {
        assert_eq!(
            members(&mut w, p),
            vec![0, 1, 3],
            "{p} still sees the crashed node"
        );
    }
}

#[test]
fn crashed_leader_is_replaced_by_crown_prince() {
    let (mut w, peers) = cluster(4, GmpBugs::none());
    w.run_for(SimDuration::from_secs(60));
    w.crash(peers[0]);
    w.run_for(SimDuration::from_secs(30));
    for &p in &peers[1..] {
        let v = view(&mut w, p);
        assert_eq!(
            v.group.members,
            peers[1..].to_vec(),
            "{p} has wrong post-crash view"
        );
        assert_eq!(
            v.group.leader(),
            peers[1],
            "the crown prince must take over"
        );
    }
}

#[test]
fn partition_forms_disjoint_groups_and_heals() {
    let (mut w, peers) = cluster(5, GmpBugs::none());
    w.run_for(SimDuration::from_secs(60));
    // Partition {0,1,2} | {3,4}.
    w.network_mut().set_partition(&[&peers[0..3], &peers[3..5]]);
    w.run_for(SimDuration::from_secs(40));
    for &p in &peers[0..3] {
        assert_eq!(
            members(&mut w, p),
            vec![0, 1, 2],
            "{p} wrong in left partition"
        );
    }
    for &p in &peers[3..5] {
        assert_eq!(
            members(&mut w, p),
            vec![3, 4],
            "{p} wrong in right partition"
        );
        assert_eq!(view(&mut w, p).group.leader(), peers[3]);
    }
    // Heal: one group again.
    w.network_mut().clear_partition();
    w.run_for(SimDuration::from_secs(60));
    for &p in &peers {
        assert_eq!(
            members(&mut w, p),
            vec![0, 1, 2, 3, 4],
            "{p} did not re-merge"
        );
    }
}

#[test]
fn isolated_node_cycles_out_and_back() {
    let (mut w, peers) = cluster(3, GmpBugs::none());
    w.run_for(SimDuration::from_secs(60));
    w.network_mut().isolate(peers[2], &peers);
    w.run_for(SimDuration::from_secs(40));
    assert_eq!(members(&mut w, peers[0]), vec![0, 1]);
    assert_eq!(
        members(&mut w, peers[2]),
        vec![2],
        "isolated node forms a singleton"
    );
    w.network_mut().rejoin(peers[2], &peers);
    w.run_for(SimDuration::from_secs(60));
    assert_eq!(members(&mut w, peers[0]), vec![0, 1, 2]);
    assert_eq!(members(&mut w, peers[2]), vec![0, 1, 2]);
}

#[test]
fn fixed_daemon_recovers_from_self_heartbeat_loss() {
    let (mut w, peers) = cluster(3, GmpBugs::none());
    w.run_for(SimDuration::from_secs(60));
    // Drop node 1's heartbeats *to itself* via its send filter.
    let drop_self_hb = Filter::script(
        r#"
        if {[msg_type] == "HEARTBEAT" && [msg_dst] == [node_id]} { xDrop }
    "#,
    )
    .unwrap();
    let _: pfi_core::PfiReply = w.control(
        peers[1],
        1,
        pfi_core::PfiControl::SetSendFilter(drop_self_hb),
    );
    w.run_for(SimDuration::from_secs(30));
    // The fixed daemon falls back to a singleton and rejoins (possibly
    // repeatedly); it must never declare itself dead.
    let evs = w.trace().events_of::<GmpEvent>(Some(peers[1]));
    assert!(
        !evs.iter()
            .any(|(_, e)| matches!(e, GmpEvent::SelfDeclaredDead)),
        "fixed daemon must not declare itself dead"
    );
    assert!(
        evs.iter()
            .any(|(_, e)| matches!(e, GmpEvent::FormedSingleton)),
        "fixed daemon must restart as a singleton"
    );
    assert!(!view(&mut w, peers[1]).self_marked_dead);
}

#[test]
fn buggy_daemon_declares_itself_dead() {
    let bugs = GmpBugs {
        self_death: true,
        ..GmpBugs::none()
    };
    let (mut w, peers) = cluster(3, bugs);
    w.run_for(SimDuration::from_secs(60));
    let drop_self_hb = Filter::script(
        r#"
        if {[msg_type] == "HEARTBEAT" && [msg_dst] == [node_id]} { xDrop }
    "#,
    )
    .unwrap();
    let _: pfi_core::PfiReply = w.control(
        peers[1],
        1,
        pfi_core::PfiControl::SetSendFilter(drop_self_hb),
    );
    w.run_for(SimDuration::from_secs(30));
    let evs = w.trace().events_of::<GmpEvent>(Some(peers[1]));
    assert!(
        evs.iter()
            .any(|(_, e)| matches!(e, GmpEvent::SelfDeclaredDead)),
        "buggy daemon must declare itself dead"
    );
    let v = view(&mut w, peers[1]);
    assert!(v.self_marked_dead);
    // The bug: it stays in the old group instead of forming a singleton.
    assert!(
        v.group.members.len() > 1,
        "buggy daemon wrongly keeps its old group: {:?}",
        v.group.members
    );
    // The others kick it out and move on.
    assert_eq!(members(&mut w, peers[0]), vec![0, 2]);
}

/// The paper's experiment 4 staging: form a full group first (so heartbeat-
/// expect timers are armed for every member), then force a *second*
/// membership change while dropping the COMMIT, leaving the node parked in
/// `IN_TRANSITION` with whatever timers the unset routine failed to cancel.
fn stage_second_membership_change(bugs: GmpBugs) -> Vec<(pfi_sim::SimTime, GmpEvent)> {
    let (mut w, peers) = cluster(3, bugs);
    w.run_for(SimDuration::from_secs(60));
    // Drop COMMITs so node 2 lingers in IN_TRANSITION. (The paper also
    // dropped heartbeats; here in-transition daemons ignore heartbeats
    // anyway, and dropping them early would trip the self-heartbeat path.)
    let drop = Filter::script(r#"if {[msg_type] == "COMMIT"} { xDrop }"#).unwrap();
    let _: pfi_core::PfiReply = w.control(peers[2], 1, pfi_core::PfiControl::SetRecvFilter(drop));
    // Isolate node 1: the leader proposes {0, 2}, giving node 2 its second
    // MEMBERSHIP_CHANGE.
    w.network_mut().isolate(peers[1], &peers);
    w.run_for(SimDuration::from_secs(30));
    w.trace().events_of::<GmpEvent>(Some(peers[2]))
}

#[test]
fn timer_unset_bug_fires_stale_timers_in_transition() {
    let bugs = GmpBugs {
        timer_unset: true,
        ..GmpBugs::none()
    };
    let evs = stage_second_membership_change(bugs);
    assert!(
        evs.iter()
            .any(|(_, e)| matches!(e, GmpEvent::InTransition { .. })),
        "node 2 must enter a transition"
    );
    assert!(
        evs.iter()
            .any(|(_, e)| matches!(e, GmpEvent::SpuriousTimerInTransition { .. })),
        "stale heartbeat timers must fire during the transition"
    );
}

#[test]
fn correct_timer_hygiene_stays_quiet_in_transition() {
    let evs = stage_second_membership_change(GmpBugs::none());
    assert!(
        evs.iter()
            .any(|(_, e)| matches!(e, GmpEvent::InTransition { .. })),
        "node 2 must enter a transition"
    );
    assert!(
        !evs.iter()
            .any(|(_, e)| matches!(e, GmpEvent::SpuriousTimerInTransition { .. })),
        "with all timers unset nothing may fire during the transition"
    );
}

#[test]
fn all_up_views_agree_after_churn() {
    // Agreement invariant: after arbitrary churn settles, every Up daemon
    // sharing a group id has an identical member list.
    let (mut w, peers) = cluster(5, GmpBugs::none());
    w.run_for(SimDuration::from_secs(60));
    w.network_mut().set_partition(&[&peers[0..2], &peers[2..5]]);
    w.run_for(SimDuration::from_secs(40));
    w.network_mut().clear_partition();
    w.run_for(SimDuration::from_secs(40));
    w.crash(peers[4]);
    w.run_for(SimDuration::from_secs(40));
    let mut by_gid: std::collections::HashMap<u64, Vec<u32>> = std::collections::HashMap::new();
    for &p in &peers[0..4] {
        let v = view(&mut w, p);
        assert_eq!(v.status, GmpStatus::Up);
        let entry = by_gid
            .entry(v.group.id)
            .or_insert_with(|| v.group.members.iter().map(|m| m.as_u32()).collect());
        let mine: Vec<u32> = v.group.members.iter().map(|m| m.as_u32()).collect();
        assert_eq!(*entry, mine, "{p} disagrees about group {}", v.group.id);
    }
    // And in fact they all converge to the same surviving group.
    assert_eq!(by_gid.len(), 1, "views: {by_gid:?}");
    assert_eq!(by_gid.values().next().unwrap(), &vec![0, 1, 2, 3]);
}

#[test]
fn higher_id_proposer_is_rejected_with_nak() {
    // A member whose leader is alive must refuse a MEMBERSHIP_CHANGE from a
    // higher-id proposer (the "valid leader" check), answering with a NAK.
    let (mut w, peers) = cluster(4, GmpBugs::none());
    w.run_for(SimDuration::from_secs(60));
    // Isolate node 1 from ONLY node 0 (the leader) in both directions: node
    // 1 concludes the leader is dead and, as crown prince, proposes a new
    // group to 2 and 3 — whose leader 0 is still alive.
    w.network_mut().set_link_down(peers[0], peers[1]);
    w.run_for(SimDuration::from_secs(20));
    let naks: usize = [peers[2], peers[3]]
        .iter()
        .map(|p| {
            w.trace()
                .events_of::<GmpEvent>(Some(*p))
                .iter()
                .filter(|(_, e)| matches!(e, GmpEvent::NakSent { to: 1 }))
                .count()
        })
        .sum();
    assert!(
        naks > 0,
        "members with a live lower-id leader must NAK the usurper"
    );
    // And the system converges: 0 leads {0,2,3} (1 unreachable from 0).
    assert_eq!(members(&mut w, peers[0]), vec![0, 2, 3]);
}

#[test]
fn seven_daemons_with_staggered_starts_converge() {
    let mut w = World::new(77);
    let peers: Vec<NodeId> = (0..7).map(NodeId::new).collect();
    for _ in 0..7 {
        let gmd = GmpLayer::new(GmpConfig::new(peers.clone()));
        let pfi = PfiLayer::new(Box::new(GmpStub));
        w.add_node(vec![
            Box::new(gmd),
            Box::new(pfi),
            Box::new(pfi_rudp::RudpLayer::default()),
        ]);
    }
    // Stagger the starts over 20 seconds, highest id first.
    for (i, &p) in peers.iter().rev().enumerate() {
        w.schedule_in(SimDuration::from_secs(3 * i as u64), move |w| {
            w.control::<GmpReply>(p, 0, GmpControl::Start);
        });
    }
    w.run_for(SimDuration::from_secs(120));
    for &p in &peers {
        let v = w
            .control::<GmpReply>(p, 0, GmpControl::Status)
            .expect_status();
        assert_eq!(
            v.group.members.len(),
            7,
            "{p} stuck with {:?}",
            v.group.members
        );
        assert_eq!(v.group.leader(), peers[0]);
    }
}
