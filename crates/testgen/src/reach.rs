//! Static reachability of scheduled faults: the flow model and the
//! semantic schedule quotient.
//!
//! The canonicalizer in [`crate::schedule`] rewrites schedules *syntactically*
//! — it only looks at the fault lines themselves. This module adds the
//! *semantic* layer the paper's probe/fault methodology implies: a
//! [`FlowModel`] captures what the protocol specification and the target's
//! topology say about the traffic each fault site can ever observe, and an
//! abstract interpretation of each fault's lowered filter script (via
//! [`pfi_lint::analyze_effects`]) recovers the guard facts the fault fires
//! under. Combining the two proves some faults **statically inert**: their
//! guards can never match any message the site carries, so installing them
//! is indistinguishable from not installing them.
//!
//! Two consumers share one predicate, [`FlowModel::fault_inertness`], so
//! their verdicts can never drift:
//!
//! * the explorer's third prune tier ([`FlowModel::semantic_id`]) quotients
//!   candidate schedules by stripping inert faults and removing corruption
//!   that is shadowed by an unconditional drop on the same flow, then
//!   dedupes by the quotient's id — the quotient is a **dedup key only**,
//!   the original schedule is what executes when it is novel;
//! * `validate.rs` and `pfi-lint --spec` report the same facts as
//!   [`InertFault`](pfi_lint::Category::InertFault) diagnostics.
//!
//! # Soundness
//!
//! Every rule here must be *behaviour-preserving*: running the original
//! schedule and its quotient must produce byte-identical verdict, oracle,
//! and coverage results. The load-bearing facts:
//!
//! * an inert fault's clauses never fire, so they emit no trace events and
//!   apply no verdicts — stripping them changes nothing observable (they do
//!   consume interpreter steps, which is why callers must not use the
//!   quotient under a step budget);
//! * `msg_type` as seen by a filter guard is parsed from the message
//!   **bytes** by the packet stub, so a live `corrupt-byte` elsewhere in
//!   the schedule can rewrite the type a *receive*-side guard observes —
//!   receive-direction type facts are therefore gated on the absence of
//!   foreign corruption (send-side guards run before any other site can
//!   corrupt, and a fault cannot enable itself);
//! * `msg_dst` is a header field and `msg_set_byte` addresses the payload,
//!   so destination facts are corruption-immune, and the simulator delivers
//!   strictly to `dst` — a receive filter on node *n* only ever sees
//!   messages addressed to *n*.

use pfi_core::lower::FilterProgram;
use pfi_core::Direction;
use pfi_lint::{analyze_effects, ClauseEffect, WindowBound};

use crate::schedule::{FaultOp, FaultSchedule, ScheduledFault};
use crate::spec::ProtocolSpec;

/// What the protocol specification and target topology statically
/// guarantee about the traffic each fault site can observe.
///
/// Absent knowledge is always expressible: [`FlowModel::permissive`] knows
/// only the message-type vocabulary and the node count, and every optional
/// field means "no fact — assume anything". Rules only fire on *positive*
/// knowledge, so a permissive model can never produce an unsound verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowModel {
    /// Protocol name, used in diagnostics.
    protocol: String,
    /// The complete message-type vocabulary from the [`ProtocolSpec`].
    messages: Vec<String>,
    /// How many nodes the target world contains; destinations at or above
    /// this are outside the topology.
    nodes: u32,
    /// Which world node each fault site sits on (`None` = unknown). When
    /// known, a receive filter at site *s* only sees traffic addressed to
    /// `site_node[s]`.
    site_node: Option<Vec<u32>>,
    /// Per site: the complete set of destinations the node ever sends to
    /// (`None` = no fact). Indexed by site; missing entries mean no fact.
    send_dsts: Vec<Option<Vec<u32>>>,
    /// An upper bound on the wire length of any message the protocol puts
    /// on the network (`0` = unknown). Sound as long as it is an *upper*
    /// bound: rules only prove guards requiring *longer* messages inert.
    max_wire_len: usize,
}

impl FlowModel {
    /// A model that knows only the spec vocabulary and the node count — no
    /// placement, routing, or wire-length facts. This is what schedule
    /// validation uses when no target is in hand.
    pub fn permissive(spec: &ProtocolSpec, nodes: u32) -> FlowModel {
        FlowModel {
            protocol: spec.name.clone(),
            messages: spec.messages.iter().map(|m| m.name.clone()).collect(),
            nodes,
            site_node: None,
            send_dsts: Vec::new(),
            max_wire_len: 0,
        }
    }

    /// The flow model of the bundled GMP target: three nodes, site *i* on
    /// node *i*. Every node both self-sends (heartbeat timers) and
    /// broadcasts, so there are no send-destination facts; GMP wire
    /// messages (including the reliable-transport framing byte) never
    /// exceed 32 bytes for a three-node group.
    pub fn gmp() -> FlowModel {
        let mut m = FlowModel::permissive(&ProtocolSpec::gmp(), 3);
        m.site_node = Some(vec![0, 1, 2]);
        m.max_wire_len = 32;
        m
    }

    /// The flow model of the bundled TCP target: client on node 0, server
    /// on node 1, and the single fault site is the server, which only ever
    /// sends back to the client.
    pub fn tcp() -> FlowModel {
        let mut m = FlowModel::permissive(&ProtocolSpec::tcp(), 2);
        m.site_node = Some(vec![1]);
        m.send_dsts = vec![Some(vec![0])];
        m
    }

    /// The flow model of the bundled two-phase-commit target: coordinator
    /// on node 0 talking to participants 1–3, participants answering only
    /// the coordinator. Site *i* sits on node *i*.
    pub fn two_phase_commit() -> FlowModel {
        let mut m = FlowModel::permissive(&ProtocolSpec::two_phase_commit(), 4);
        m.site_node = Some(vec![0, 1, 2, 3]);
        m.send_dsts = vec![
            Some(vec![1, 2, 3]),
            Some(vec![0]),
            Some(vec![0]),
            Some(vec![0]),
        ];
        m
    }

    /// The protocol name this model describes.
    pub fn protocol(&self) -> &str {
        &self.protocol
    }

    /// How many nodes the modelled world contains.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Whether `msg_type` is in the protocol's vocabulary.
    pub fn knows_type(&self, msg_type: &str) -> bool {
        self.messages.iter().any(|m| m == msg_type)
    }

    /// Decides whether one effect clause can ever fire.
    ///
    /// `placement` is the `(site, direction)` the clause's script is
    /// installed at, when known (`None` for bare scripts linted without an
    /// installation context). `foreign_corruption` must be `true` whenever
    /// some *other* live fault or clause can rewrite message bytes — it
    /// gates the type facts that byte corruption could invalidate.
    ///
    /// Returns the first rule that proves the clause unreachable, as a
    /// `(rule slug, message)` pair, or `None` when no rule applies (which
    /// includes clauses with an opaque guard — absence of a recovered
    /// constraint is never evidence).
    pub fn clause_unreachable(
        &self,
        clause: &ClauseEffect,
        placement: Option<(u32, Direction)>,
        foreign_corruption: bool,
    ) -> Option<(&'static str, String)> {
        if clause.opaque_guard {
            return None;
        }
        match clause.window {
            WindowBound::Nth(n) if n <= 0 => {
                return Some((
                    "window-never-fires",
                    format!("instance window {n} never fires (message instances are 1-based)"),
                ));
            }
            WindowBound::First(n) if n <= 0 => {
                return Some((
                    "window-never-fires",
                    format!("a first-{n} window admits no messages"),
                ));
            }
            _ => {}
        }
        if let Some(d) = clause.dst {
            if d < 0 || d >= i64::from(self.nodes) {
                return Some((
                    "dst-outside-topology",
                    format!(
                        "destination n{d} is outside the {}-node {} topology",
                        self.nodes, self.protocol
                    ),
                ));
            }
            match placement {
                Some((site, Direction::Receive)) => {
                    if let Some(node) = self
                        .site_node
                        .as_ref()
                        .and_then(|sn| sn.get(site as usize).copied())
                    {
                        if d != i64::from(node) {
                            return Some((
                                "recv-dst-mismatch",
                                format!(
                                    "site n{site} sits on node {node}; its receive filter only \
                                     sees traffic addressed to n{node}, never to n{d}"
                                ),
                            ));
                        }
                    }
                }
                Some((site, Direction::Send)) => {
                    if let Some(Some(dsts)) = self.send_dsts.get(site as usize) {
                        if !dsts.iter().any(|x| i64::from(*x) == d) {
                            return Some((
                                "send-dst-unreachable",
                                format!(
                                    "site n{site} never sends {} traffic to n{d} (it only \
                                     sends to {})",
                                    self.protocol,
                                    dsts.iter()
                                        .map(|x| format!("n{x}"))
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                ),
                            ));
                        }
                    }
                }
                None => {}
            }
        }
        if let Some(t) = &clause.msg_type {
            // A send-side guard observes the bytes before any other site
            // can corrupt them; everywhere else, type facts are only sound
            // when nothing live can rewrite the type byte.
            let type_fact_sound =
                matches!(placement, Some((_, Direction::Send))) || !foreign_corruption;
            if type_fact_sound && !self.knows_type(t) {
                return Some((
                    "unknown-msg-type",
                    format!(
                        "message type {t:?} is not in the {} specification; the guard can \
                         never match",
                        self.protocol
                    ),
                ));
            }
        }
        if let Some(l) = clause.min_len {
            if self.max_wire_len > 0 && l > self.max_wire_len as i64 {
                return Some((
                    "offset-beyond-wire",
                    format!(
                        "the guard requires messages longer than {l} bytes but {} wire \
                         messages never exceed {} bytes",
                        self.protocol, self.max_wire_len
                    ),
                ));
            }
        }
        None
    }

    /// Decides whether the `idx`-th fault of `schedule` is statically
    /// inert — provably unobservable whether or not it is installed.
    ///
    /// The predicate depends only on the fault itself and the *multiset* of
    /// other faults in the schedule (for the corruption gate and reorder
    /// exclusivity), never on their order — so it answers identically on a
    /// schedule and on any reordering, including its canonical form.
    pub fn fault_inertness(&self, schedule: &FaultSchedule, idx: usize) -> Option<InertFact> {
        let fault = schedule.faults.get(idx)?;
        let fact = |rule: &'static str, message: String| {
            Some(InertFact {
                fault: idx,
                line: fault.to_line(),
                rule,
                message,
            })
        };

        // Structural no-ops: the fault fires but provably does nothing.
        match &fault.op {
            FaultOp::CorruptByteAt { mask: 0, .. } => {
                return fact(
                    "xor-identity",
                    "corrupt-byte with mask 0 XORs nothing into the message".into(),
                );
            }
            FaultOp::Duplicate { copies: 0, .. } => {
                return fact(
                    "zero-copies",
                    "duplicate with 0 copies forwards no extra messages".into(),
                );
            }
            FaultOp::ReorderWindow { hold: 0, .. } => {
                // The hold window is empty, and the release can only flush
                // messages held by *some* reorder on this (site, direction)
                // — with no other one present it releases nothing.
                let exclusive = schedule.faults.iter().enumerate().all(|(j, g)| {
                    j == idx
                        || !(matches!(g.op, FaultOp::ReorderWindow { .. })
                            && g.site == fault.site
                            && g.dir == fault.dir)
                });
                if exclusive {
                    return fact(
                        "empty-reorder-window",
                        "reorder with hold 0 holds nothing, and no other reorder on this \
                         site and direction leaves messages for its release to flush"
                            .into(),
                    );
                }
            }
            _ => {}
        }

        // Guard unreachability: abstract-interpret the fault's own lowered
        // filter script; the fault is inert only when *every* clause is
        // provably unreachable.
        let foreign_corruption = schedule.faults.iter().enumerate().any(|(j, g)| {
            j != idx && matches!(g.op, FaultOp::CorruptByteAt { mask, .. } if mask != 0)
        });
        let mut program = FilterProgram::new();
        for clause in fault.op.clauses() {
            program.push(clause);
        }
        let effects = analyze_effects(&program.emit()).ok()?;
        if effects.opaque || effects.clauses.is_empty() {
            return None;
        }
        let mut first: Option<(&'static str, String)> = None;
        for clause in &effects.clauses {
            let kill =
                self.clause_unreachable(clause, Some((fault.site, fault.dir)), foreign_corruption)?;
            first.get_or_insert(kill);
        }
        let (rule, message) = first?;
        fact(rule, message)
    }

    /// Every inert fault of `schedule`, with the rule that proved it.
    pub fn inert_facts(&self, schedule: &FaultSchedule) -> Vec<InertFact> {
        (0..schedule.faults.len())
            .filter_map(|i| self.fault_inertness(schedule, i))
            .collect()
    }

    /// The semantic quotient of a schedule: canonicalize, strip statically
    /// inert faults, remove corruption shadowed by an unconditional drop on
    /// the same flow, and iterate to a fixpoint (removing a shadowed
    /// corrupt can un-gate a receive-side type fact, which can strip more).
    ///
    /// The result is a **dedup key**, not a replacement schedule to run —
    /// though by construction running it is behaviour-equivalent whenever
    /// no interpreter step budget is in force.
    pub fn semantic_schedule(&self, schedule: &FaultSchedule) -> FaultSchedule {
        let mut cur = schedule.canonical();
        loop {
            let kept: Vec<ScheduledFault> = cur
                .faults
                .iter()
                .enumerate()
                .filter(|(i, _)| self.fault_inertness(&cur, *i).is_none())
                .map(|(_, f)| f.clone())
                .collect();
            let next = strip_shadowed_corrupts(&FaultSchedule { faults: kept }).canonical();
            if next == cur {
                return cur;
            }
            cur = next;
        }
    }

    /// The id of the [semantic quotient](FlowModel::semantic_schedule) —
    /// the explorer's third-tier dedup key. Two schedules with the same
    /// semantic id are behaviour-equivalent under this model.
    pub fn semantic_id(&self, schedule: &FaultSchedule) -> String {
        self.semantic_schedule(schedule).id()
    }
}

/// A proof that one scheduled fault can never be observed: the fault's
/// index and line, the rule slug that fired, and a human-readable
/// explanation citing the spec or topology fact used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InertFact {
    /// Index of the fault within the schedule it was proved against.
    pub fault: usize,
    /// The fault's stable one-line text form.
    pub line: String,
    /// Stable rule slug (e.g. `recv-dst-mismatch`, `unknown-msg-type`).
    pub rule: &'static str,
    /// Why the fault can never fire.
    pub message: String,
}

/// Removes `corrupt-byte` faults whose every mutation lands on a message
/// that an unconditional drop on the same `(site, direction, msg_type)`
/// flow discards anyway. Expects (and preserves) canonical fault order.
///
/// A corrupt is shadowed only when all four of these hold for its group:
///
/// 1. the group's chained (non-floating) faults include a `drop-all`, so
///    every message of the flow gets a `Drop` verdict;
/// 2. those chained faults are *all* pure drops — a delay or hold would
///    reorder verdicts and is not "unconditionally discarded";
/// 3. the group has no `duplicate` — duplicated copies are forwarded even
///    when the original is dropped, and they carry the corruption;
/// 4. the group is the *last* one lowered into its `(site, direction)`
///    filter program — a later group's type guard re-reads the (mutated)
///    bytes, so the corruption could redirect traffic into it.
fn strip_shadowed_corrupts(canon: &FaultSchedule) -> FaultSchedule {
    let faults = &canon.faults;
    fn group_key(f: &ScheduledFault) -> (u32, bool, &str) {
        (f.site, matches!(f.dir, Direction::Receive), f.op.msg_type())
    }
    let dir_key = |f: &ScheduledFault| (f.site, matches!(f.dir, Direction::Receive));
    let pure_drop = |f: &ScheduledFault| {
        matches!(
            f.op,
            FaultOp::DropAll { .. }
                | FaultOp::DropNth { .. }
                | FaultOp::DropAfter { .. }
                | FaultOp::DropToDest { .. }
        )
    };
    let floating = |f: &ScheduledFault| {
        matches!(
            f.op,
            FaultOp::Duplicate { .. } | FaultOp::CorruptByteAt { .. }
        )
    };

    let mut keep = vec![true; faults.len()];
    let mut i = 0;
    while i < faults.len() {
        let mut j = i;
        while j < faults.len() && group_key(&faults[j]) == group_key(&faults[i]) {
            j += 1;
        }
        let group = &faults[i..j];
        let last_on_dir = j >= faults.len() || dir_key(&faults[j]) != dir_key(&faults[i]);
        let chained: Vec<&ScheduledFault> = group.iter().filter(|f| !floating(f)).collect();
        let has_drop_all = chained
            .iter()
            .any(|f| matches!(f.op, FaultOp::DropAll { .. }));
        let chained_pure = chained.iter().all(|f| pure_drop(f));
        let no_dup = !group
            .iter()
            .any(|f| matches!(f.op, FaultOp::Duplicate { .. }));
        if last_on_dir && has_drop_all && chained_pure && no_dup {
            for (k, f) in group.iter().enumerate() {
                if matches!(f.op, FaultOp::CorruptByteAt { .. }) {
                    keep[i + k] = false;
                }
            }
        }
        i = j;
    }
    FaultSchedule {
        faults: faults
            .iter()
            .zip(&keep)
            .filter(|(_, k)| **k)
            .map(|(f, _)| f.clone())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_schedule, GmpTarget, TestTarget};
    use crate::schedule::ScheduleMutator;
    use pfi_sim::SimRng;

    fn fault(site: u32, dir: Direction, op: FaultOp) -> ScheduledFault {
        ScheduledFault { site, dir, op }
    }

    fn sched(faults: Vec<ScheduledFault>) -> FaultSchedule {
        FaultSchedule { faults }
    }

    #[test]
    fn permissive_model_proves_structural_noops() {
        let m = FlowModel::permissive(&ProtocolSpec::gmp(), 3);
        let cases = vec![
            (
                FaultOp::CorruptByteAt {
                    msg_type: "ACK".into(),
                    offset: 2,
                    mask: 0,
                },
                "xor-identity",
            ),
            (
                FaultOp::Duplicate {
                    msg_type: "ACK".into(),
                    copies: 0,
                },
                "zero-copies",
            ),
            (
                FaultOp::ReorderWindow {
                    msg_type: "ACK".into(),
                    hold: 0,
                },
                "empty-reorder-window",
            ),
            (
                FaultOp::DropNth {
                    msg_type: "ACK".into(),
                    nth: 0,
                },
                "window-never-fires",
            ),
            (
                FaultOp::DropToDest {
                    msg_type: "ACK".into(),
                    dst: 99,
                },
                "dst-outside-topology",
            ),
            (
                FaultOp::DropAll {
                    msg_type: "NO_SUCH_TYPE".into(),
                },
                "unknown-msg-type",
            ),
        ];
        for (op, rule) in cases {
            let s = sched(vec![fault(0, Direction::Send, op)]);
            let fact = m.fault_inertness(&s, 0).expect("should be inert");
            assert_eq!(fact.rule, rule, "{}", fact.line);
            assert_eq!(fact.fault, 0);
        }
    }

    #[test]
    fn permissive_model_keeps_live_faults() {
        let m = FlowModel::permissive(&ProtocolSpec::gmp(), 3);
        let live = vec![
            FaultOp::DropAll {
                msg_type: "HEARTBEAT".into(),
            },
            FaultOp::DropToDest {
                msg_type: "ACK".into(),
                dst: 2,
            },
            FaultOp::DelayMs {
                msg_type: "COMMIT".into(),
                ms: 250,
            },
            FaultOp::CorruptByteAt {
                msg_type: "JOIN".into(),
                offset: 0,
                mask: 0x40,
            },
            FaultOp::ReorderWindow {
                msg_type: "ACK".into(),
                hold: 2,
            },
        ];
        for op in live {
            for dir in [Direction::Send, Direction::Receive] {
                let s = sched(vec![fault(1, dir, op.clone())]);
                assert!(
                    m.fault_inertness(&s, 0).is_none(),
                    "{} should be live",
                    s.faults[0].to_line()
                );
            }
        }
    }

    #[test]
    fn topology_facts_prove_destination_mismatches() {
        let gmp = FlowModel::gmp();
        // A receive filter on node 1 never sees traffic addressed to n2.
        let s = sched(vec![fault(
            1,
            Direction::Receive,
            FaultOp::DropToDest {
                msg_type: "ACK".into(),
                dst: 2,
            },
        )]);
        let fact = gmp.fault_inertness(&s, 0).expect("recv mismatch is inert");
        assert_eq!(fact.rule, "recv-dst-mismatch");
        // The same destination on the send side has no fact in GMP
        // (nodes broadcast), so it stays live.
        let s = sched(vec![fault(
            1,
            Direction::Send,
            FaultOp::DropToDest {
                msg_type: "ACK".into(),
                dst: 2,
            },
        )]);
        assert!(gmp.fault_inertness(&s, 0).is_none());

        // TPC participants only answer the coordinator: site 1 sending to
        // n2 is provably dead, sending to n0 is live.
        let tpc = FlowModel::two_phase_commit();
        let to = |dst| {
            sched(vec![fault(
                1,
                Direction::Send,
                FaultOp::DropToDest {
                    msg_type: "ACK".into(),
                    dst,
                },
            )])
        };
        assert_eq!(
            tpc.fault_inertness(&to(2), 0).expect("dead").rule,
            "send-dst-unreachable"
        );
        assert!(tpc.fault_inertness(&to(0), 0).is_none());

        // The TCP server (site 0 on node 1) never sends to itself.
        let tcp = FlowModel::tcp();
        let s = sched(vec![fault(
            0,
            Direction::Send,
            FaultOp::DropToDest {
                msg_type: "ACK".into(),
                dst: 1,
            },
        )]);
        assert_eq!(
            tcp.fault_inertness(&s, 0).expect("dead").rule,
            "send-dst-unreachable"
        );
    }

    #[test]
    fn corruption_gates_receive_side_type_facts() {
        let m = FlowModel::gmp();
        let unknown = fault(
            0,
            Direction::Receive,
            FaultOp::DropAll {
                msg_type: "NO_SUCH_TYPE".into(),
            },
        );
        // Alone: the stub can never report an off-spec type, so inert.
        let s = sched(vec![unknown.clone()]);
        assert_eq!(
            m.fault_inertness(&s, 0).expect("inert").rule,
            "unknown-msg-type"
        );
        // With a live corrupt elsewhere, the receive-side guard could
        // observe rewritten type bytes — no claim.
        let corrupt = fault(
            1,
            Direction::Send,
            FaultOp::CorruptByteAt {
                msg_type: "HEARTBEAT".into(),
                offset: 0,
                mask: 0xFF,
            },
        );
        let s = sched(vec![unknown.clone(), corrupt]);
        assert!(m.fault_inertness(&s, 0).is_none());
        // A mask-0 corrupt rewrites nothing: the gate ignores it.
        let noop_corrupt = fault(
            1,
            Direction::Send,
            FaultOp::CorruptByteAt {
                msg_type: "HEARTBEAT".into(),
                offset: 0,
                mask: 0,
            },
        );
        let s = sched(vec![unknown.clone(), noop_corrupt]);
        assert!(m.fault_inertness(&s, 0).is_some());
        // Send-side type guards observe the bytes before anyone else can
        // corrupt them: the gate does not apply.
        let send_unknown = fault(
            0,
            Direction::Send,
            FaultOp::DropAll {
                msg_type: "NO_SUCH_TYPE".into(),
            },
        );
        let corrupt = fault(
            1,
            Direction::Send,
            FaultOp::CorruptByteAt {
                msg_type: "HEARTBEAT".into(),
                offset: 0,
                mask: 0xFF,
            },
        );
        let s = sched(vec![send_unknown, corrupt]);
        assert!(m.fault_inertness(&s, 0).is_some());
    }

    #[test]
    fn reorder_exclusivity_guards_the_hold_zero_rule() {
        let m = FlowModel::permissive(&ProtocolSpec::gmp(), 3);
        let hold0 = fault(
            0,
            Direction::Send,
            FaultOp::ReorderWindow {
                msg_type: "ACK".into(),
                hold: 0,
            },
        );
        let other = |site, dir| {
            fault(
                site,
                dir,
                FaultOp::ReorderWindow {
                    msg_type: "COMMIT".into(),
                    hold: 2,
                },
            )
        };
        // Alone: inert.
        assert!(m.fault_inertness(&sched(vec![hold0.clone()]), 0).is_some());
        // Another reorder on the same (site, dir): its held messages could
        // be flushed by this release — no claim.
        let s = sched(vec![hold0.clone(), other(0, Direction::Send)]);
        assert!(m.fault_inertness(&s, 0).is_none());
        // Same site, other direction: separate filter program — inert.
        let s = sched(vec![hold0.clone(), other(0, Direction::Receive)]);
        assert!(m.fault_inertness(&s, 0).is_some());
        let s = sched(vec![hold0, other(1, Direction::Send)]);
        assert!(m.fault_inertness(&s, 0).is_some());
    }

    #[test]
    fn wire_length_bound_kills_out_of_range_corruption() {
        let m = FlowModel::gmp();
        let at = |offset| {
            sched(vec![fault(
                0,
                Direction::Send,
                FaultOp::CorruptByteAt {
                    msg_type: "HEARTBEAT".into(),
                    offset,
                    mask: 0xFF,
                },
            )])
        };
        // The lowered guard is `[msg_len] > offset`, so offset 32 requires
        // a 33-byte message — beyond the 32-byte GMP bound.
        assert_eq!(
            m.fault_inertness(&at(32), 0).expect("dead").rule,
            "offset-beyond-wire"
        );
        assert!(m.fault_inertness(&at(31), 0).is_none());
        // Without a wire-length fact there is no claim.
        let p = FlowModel::permissive(&ProtocolSpec::gmp(), 3);
        assert!(p.fault_inertness(&at(1000), 0).is_none());
    }

    #[test]
    fn inertness_is_order_independent() {
        let m = FlowModel::gmp();
        let a = fault(
            1,
            Direction::Receive,
            FaultOp::DropToDest {
                msg_type: "ACK".into(),
                dst: 2,
            },
        );
        let b = fault(
            0,
            Direction::Send,
            FaultOp::DropAll {
                msg_type: "HEARTBEAT".into(),
            },
        );
        let fwd = sched(vec![a.clone(), b.clone()]);
        let rev = sched(vec![b, a]);
        let facts_of = |s: &FaultSchedule| {
            let mut v: Vec<(String, &'static str)> = m
                .inert_facts(s)
                .iter()
                .map(|f| (f.line.clone(), f.rule))
                .collect();
            v.sort();
            v
        };
        assert_eq!(facts_of(&fwd), facts_of(&rev));
        assert_eq!(m.semantic_id(&fwd), m.semantic_id(&rev));
    }

    #[test]
    fn semantic_quotient_strips_inert_and_shadowed_faults() {
        let m = FlowModel::gmp();
        // Inert-only schedule quotients to the baseline.
        let s = sched(vec![fault(
            1,
            Direction::Receive,
            FaultOp::DropToDest {
                msg_type: "ACK".into(),
                dst: 0,
            },
        )]);
        assert_eq!(m.semantic_id(&s), "baseline");

        // Corrupt shadowed by a drop-all on the same flow is removed.
        let corrupt = fault(
            0,
            Direction::Send,
            FaultOp::CorruptByteAt {
                msg_type: "ACK".into(),
                offset: 3,
                mask: 0x40,
            },
        );
        let drop_all = fault(
            0,
            Direction::Send,
            FaultOp::DropAll {
                msg_type: "ACK".into(),
            },
        );
        let s = sched(vec![corrupt.clone(), drop_all.clone()]);
        assert_eq!(m.semantic_schedule(&s).faults, vec![drop_all.clone()]);

        // ...but a duplicate in the group forwards corrupted copies.
        let dup = fault(
            0,
            Direction::Send,
            FaultOp::Duplicate {
                msg_type: "ACK".into(),
                copies: 2,
            },
        );
        let s = sched(vec![corrupt.clone(), drop_all.clone(), dup]);
        assert_eq!(m.semantic_schedule(&s).faults.len(), 3);

        // ...and a later group on the same filter program re-reads the
        // mutated bytes, so the corrupt survives there too.
        let later = fault(
            0,
            Direction::Send,
            FaultOp::DropAll {
                msg_type: "COMMIT".into(),
            },
        );
        let s = sched(vec![corrupt.clone(), drop_all.clone(), later]);
        assert_eq!(m.semantic_schedule(&s).faults.len(), 3);

        // A drop-nth does not shadow: most messages pass uncorrupted only
        // if dropped — here they are not.
        let drop_nth = fault(
            0,
            Direction::Send,
            FaultOp::DropNth {
                msg_type: "ACK".into(),
                nth: 2,
            },
        );
        let s = sched(vec![corrupt, drop_nth]);
        assert_eq!(m.semantic_schedule(&s).faults.len(), 2);
    }

    #[test]
    fn shadow_removal_ungates_type_facts_at_the_fixpoint() {
        let m = FlowModel::gmp();
        // The corrupt is live on its own, but every ACK it touches is
        // dropped in the same program — so after shadow removal the
        // receive-side unknown-type drop becomes provably inert too, and
        // the whole schedule quotients to the lone drop-all.
        let recv_unknown = fault(
            2,
            Direction::Receive,
            FaultOp::DropAll {
                msg_type: "NO_SUCH_TYPE".into(),
            },
        );
        let corrupt = fault(
            0,
            Direction::Send,
            FaultOp::CorruptByteAt {
                msg_type: "ACK".into(),
                offset: 3,
                mask: 0xFF,
            },
        );
        let drop_all = fault(
            0,
            Direction::Send,
            FaultOp::DropAll {
                msg_type: "ACK".into(),
            },
        );
        let s = sched(vec![recv_unknown, corrupt, drop_all.clone()]);
        assert_eq!(m.semantic_schedule(&s).faults, vec![drop_all]);
    }

    #[test]
    fn semantic_quotient_is_idempotent_on_mutated_schedules() {
        let m = FlowModel::gmp();
        let mutator = ScheduleMutator::new(&ProtocolSpec::gmp(), 3, 3);
        let mut rng = SimRng::seed_from(0xDEAD_BEEF);
        let mut parent = FaultSchedule::empty();
        for _ in 0..300 {
            let s = mutator.mutate(&parent, 4, &mut rng);
            let q = m.semantic_schedule(&s);
            assert_eq!(q, m.semantic_schedule(&q), "not idempotent for {}", s.id());
            assert_eq!(q, q.canonical(), "quotient not canonical for {}", s.id());
            if crate::validate::schedule_is_installable(&s, 3) {
                parent = s;
            }
        }
    }

    /// The load-bearing soundness test: wherever the semantic quotient
    /// differs from the canonical form, running the original schedule and
    /// the quotient against the real GMP target must be indistinguishable
    /// — same verdict, same oracle outcome, same coverage. Mirrors
    /// `canonicalization_is_behaviour_preserving`, one rewrite tier up.
    #[test]
    fn semantic_quotient_is_behaviour_preserving() {
        let target = GmpTarget {
            fault_secs: 5,
            ..GmpTarget::default()
        };
        let model = target.flow_model().expect("gmp has a flow model");
        let mutator = ScheduleMutator::new(&ProtocolSpec::gmp(), 3, 3);
        let mut rng = SimRng::seed_from(42);
        let mut parent = FaultSchedule::empty();
        let mut checked = 0usize;
        for _ in 0..2000 {
            if checked >= 12 {
                break;
            }
            let s = mutator.mutate(&parent, 4, &mut rng);
            if !crate::validate::schedule_is_installable(&s, 3) {
                continue;
            }
            parent = s.clone();
            let q = model.semantic_schedule(&s);
            if q == s.canonical() {
                continue;
            }
            checked += 1;
            let a = run_schedule(&target, &s);
            let b = run_schedule(&target, &q);
            assert_eq!(a.verdict, b.verdict, "quotient diverged for {}", s.id());
            assert_eq!(a.oracle, b.oracle, "quotient diverged for {}", s.id());
            assert_eq!(
                a.coverage.edges().collect::<Vec<_>>(),
                b.coverage.edges().collect::<Vec<_>>(),
                "quotient diverged for {}",
                s.id()
            );
        }
        assert!(checked >= 8, "only {checked} rewritten pairs exercised");
    }
}
