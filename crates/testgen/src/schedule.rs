//! Parameterized fault schedules: the campaign engine's genome.
//!
//! The grid generator ([`crate::generate`]) enumerates one fault per case;
//! a coverage-guided campaign instead searches over [`FaultSchedule`]s —
//! small *compositions* of parameterized faults installed on both filter
//! directions at once. Schedules lower to ordinary PFI Tcl scripts through
//! [`pfi_core::lower`], serialize to a stable one-line-per-fault text form
//! (the repro artifact format), and mutate under a seeded [`SimRng`] so a
//! whole exploration is replayable from one integer.

use pfi_core::lower::{Clause, FaultAction, FilterProgram, Window};
use pfi_core::Direction;
use pfi_sim::SimRng;

use crate::spec::ProtocolSpec;

/// One parameterized fault against one message type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOp {
    /// Drop every instance.
    DropAll {
        /// Targeted message type.
        msg_type: String,
    },
    /// Drop only the `nth` instance (1-based).
    DropNth {
        /// Targeted message type.
        msg_type: String,
        /// Which instance to drop.
        nth: u32,
    },
    /// Pass `after` instances, then drop the rest.
    DropAfter {
        /// Targeted message type.
        msg_type: String,
        /// How many instances pass first.
        after: u32,
    },
    /// Drop instances addressed to one node.
    DropToDest {
        /// Targeted message type.
        msg_type: String,
        /// Destination node id.
        dst: u32,
    },
    /// Delay every instance.
    DelayMs {
        /// Targeted message type.
        msg_type: String,
        /// Delay in milliseconds.
        ms: u64,
    },
    /// Forward extra copies of every instance.
    Duplicate {
        /// Targeted message type.
        msg_type: String,
        /// How many extra copies.
        copies: u32,
    },
    /// XOR one byte of every instance.
    CorruptByteAt {
        /// Targeted message type.
        msg_type: String,
        /// Byte offset.
        offset: usize,
        /// XOR mask (non-zero).
        mask: u8,
    },
    /// Hold the first `hold` instances, release them after the next one —
    /// a deterministic reordering window.
    ReorderWindow {
        /// Targeted message type.
        msg_type: String,
        /// How many instances to hold back.
        hold: u32,
    },
}

impl FaultOp {
    /// The targeted message type.
    pub fn msg_type(&self) -> &str {
        match self {
            FaultOp::DropAll { msg_type }
            | FaultOp::DropNth { msg_type, .. }
            | FaultOp::DropAfter { msg_type, .. }
            | FaultOp::DropToDest { msg_type, .. }
            | FaultOp::DelayMs { msg_type, .. }
            | FaultOp::Duplicate { msg_type, .. }
            | FaultOp::CorruptByteAt { msg_type, .. }
            | FaultOp::ReorderWindow { msg_type, .. } => msg_type,
        }
    }

    /// Mutable access to the targeted message type (scramble mutations
    /// corrupt it in place).
    pub(crate) fn msg_type_mut(&mut self) -> &mut String {
        match self {
            FaultOp::DropAll { msg_type }
            | FaultOp::DropNth { msg_type, .. }
            | FaultOp::DropAfter { msg_type, .. }
            | FaultOp::DropToDest { msg_type, .. }
            | FaultOp::DelayMs { msg_type, .. }
            | FaultOp::Duplicate { msg_type, .. }
            | FaultOp::CorruptByteAt { msg_type, .. }
            | FaultOp::ReorderWindow { msg_type, .. } => msg_type,
        }
    }

    /// The typed filter clauses this fault lowers to.
    pub fn clauses(&self) -> Vec<Clause> {
        let base = |window, action| Clause {
            msg_type: Some(self.msg_type().to_string()),
            dst: None,
            window,
            action,
        };
        match self {
            FaultOp::DropAll { .. } => vec![base(Window::All, FaultAction::Drop)],
            FaultOp::DropNth { nth, .. } => vec![base(Window::Nth(*nth), FaultAction::Drop)],
            FaultOp::DropAfter { after, .. } => {
                vec![base(Window::After(*after), FaultAction::Drop)]
            }
            FaultOp::DropToDest { msg_type, dst } => vec![Clause {
                msg_type: Some(msg_type.clone()),
                dst: Some(*dst),
                window: Window::All,
                action: FaultAction::Drop,
            }],
            FaultOp::DelayMs { ms, .. } => vec![base(Window::All, FaultAction::DelayMs(*ms))],
            FaultOp::Duplicate { copies, .. } => {
                vec![base(Window::All, FaultAction::Duplicate(*copies))]
            }
            FaultOp::CorruptByteAt { offset, mask, .. } => vec![base(
                Window::All,
                FaultAction::CorruptByte {
                    offset: *offset,
                    mask: *mask,
                },
            )],
            FaultOp::ReorderWindow { hold, .. } => vec![
                base(Window::First(*hold), FaultAction::Hold),
                base(Window::Nth(*hold + 1), FaultAction::Release),
            ],
        }
    }

    fn tokens(&self) -> String {
        match self {
            FaultOp::DropAll { msg_type } => format!("drop-all {msg_type}"),
            FaultOp::DropNth { msg_type, nth } => format!("drop-nth {msg_type} {nth}"),
            FaultOp::DropAfter { msg_type, after } => format!("drop-after {msg_type} {after}"),
            FaultOp::DropToDest { msg_type, dst } => format!("drop-to-dest {msg_type} {dst}"),
            FaultOp::DelayMs { msg_type, ms } => format!("delay-ms {msg_type} {ms}"),
            FaultOp::Duplicate { msg_type, copies } => format!("duplicate {msg_type} {copies}"),
            FaultOp::CorruptByteAt {
                msg_type,
                offset,
                mask,
            } => format!("corrupt-byte {msg_type} {offset} {mask}"),
            FaultOp::ReorderWindow { msg_type, hold } => format!("reorder {msg_type} {hold}"),
        }
    }
}

/// A fault plus where it is interposed: which fault site (a node's PFI
/// layer) and which filter direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Which of the target's fault sites carries the filter. Site indices
    /// are defined by [`crate::TestTarget::build`]; for the bundled targets
    /// they equal world node indices.
    pub site: u32,
    /// Which filter (send or receive path) carries the fault.
    pub dir: Direction,
    /// The fault itself.
    pub op: FaultOp,
}

impl ScheduledFault {
    /// The stable one-line text form, e.g. `n1 send drop-nth HEARTBEAT 3`.
    pub fn to_line(&self) -> String {
        let dir = match self.dir {
            Direction::Send => "send",
            Direction::Receive => "recv",
        };
        format!("n{} {} {}", self.site, dir, self.op.tokens())
    }

    /// Parses the [`to_line`](ScheduledFault::to_line) form back. A
    /// missing leading `n<site>` token means site 0.
    pub fn from_line(line: &str) -> Result<Self, String> {
        let mut toks: Vec<&str> = line.split_whitespace().collect();
        let err = || format!("malformed fault line: {line:?}");
        let site = match toks.first() {
            Some(t) => match t.strip_prefix('n').and_then(|n| n.parse::<u32>().ok()) {
                Some(site) => {
                    toks.remove(0);
                    site
                }
                None => 0,
            },
            None => return Err(err()),
        };
        let dir = match toks.first() {
            Some(&"send") => Direction::Send,
            Some(&"recv") | Some(&"receive") => Direction::Receive,
            _ => return Err(err()),
        };
        let num = |i: usize| -> Result<u64, String> {
            toks.get(i)
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(err)
        };
        let msg = |i: usize| -> Result<String, String> {
            toks.get(i).map(|t| t.to_string()).ok_or_else(err)
        };
        let op = match toks.get(1) {
            Some(&"drop-all") => FaultOp::DropAll { msg_type: msg(2)? },
            Some(&"drop-nth") => FaultOp::DropNth {
                msg_type: msg(2)?,
                nth: num(3)? as u32,
            },
            Some(&"drop-after") => FaultOp::DropAfter {
                msg_type: msg(2)?,
                after: num(3)? as u32,
            },
            Some(&"drop-to-dest") => FaultOp::DropToDest {
                msg_type: msg(2)?,
                dst: num(3)? as u32,
            },
            Some(&"delay-ms") => FaultOp::DelayMs {
                msg_type: msg(2)?,
                ms: num(3)?,
            },
            Some(&"duplicate") => FaultOp::Duplicate {
                msg_type: msg(2)?,
                copies: num(3)? as u32,
            },
            Some(&"corrupt-byte") => FaultOp::CorruptByteAt {
                msg_type: msg(2)?,
                offset: num(3)? as usize,
                mask: num(4)? as u8,
            },
            Some(&"reorder") => FaultOp::ReorderWindow {
                msg_type: msg(2)?,
                hold: num(3)? as u32,
            },
            _ => return Err(err()),
        };
        Ok(ScheduledFault { site, dir, op })
    }
}

/// A composition of scheduled faults — one campaign test case.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// The faults, applied together in one run.
    pub faults: Vec<ScheduledFault>,
}

impl FaultSchedule {
    /// The empty (baseline, fault-free) schedule.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether this is the baseline schedule.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A stable identifier (the serialized lines joined with ` + `).
    pub fn id(&self) -> String {
        if self.is_empty() {
            "baseline".to_string()
        } else {
            self.faults
                .iter()
                .map(ScheduledFault::to_line)
                .collect::<Vec<_>>()
                .join(" + ")
        }
    }

    /// Serializes to one line per fault (the repro artifact body).
    pub fn to_lines(&self) -> Vec<String> {
        self.faults.iter().map(ScheduledFault::to_line).collect()
    }

    /// Parses a list of fault lines back into a schedule.
    pub fn from_lines<'a>(lines: impl IntoIterator<Item = &'a str>) -> Result<Self, String> {
        let faults = lines
            .into_iter()
            .map(ScheduledFault::from_line)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultSchedule { faults })
    }

    /// The schedule's canonical form under execution equivalence. Two
    /// schedules with the same canonical form produce identical runs —
    /// same trace, same coverage, same verdict — so the campaign engine
    /// may skip one when the other already executed
    /// ([`crate::ExploreConfig::pruning`]). Three rewrites, each proved
    /// against the filter semantics the runner enforces:
    ///
    /// 1. **Window normalization** — `drop-after 0` fires on every
    ///    instance (`Window::After(0)`: the counter is at least 1 by the
    ///    first test), which is exactly `drop-all`; the canonical form
    ///    uses `drop-all`.
    /// 2. **Dead-verdict elimination** — a filter run evaluates every
    ///    clause and keeps the *last* verdict written
    ///    (`Effects::verdict` is a single slot): a verdict-only fault
    ///    (the drops and delays, which have no side effect besides the
    ///    verdict) followed by an all-window verdict fault on the same
    ///    `(site, dir, msg_type)` is overwritten on every message it
    ///    matches and contributes nothing — it is removed. Faults with
    ///    non-verdict effects (duplicate copies accumulate, corruption
    ///    mutates bytes, reorder's release flag survives) are never
    ///    removed.
    /// 3. **Commuting-fault sort** — faults stably sorted by
    ///    `(site, dir, msg_type)`. Send/receive filters are independent
    ///    interpreters; sites are independent layers; and clauses guard on
    ///    `msg_type` equality, so a message only ever evaluates clauses of
    ///    its own type — the relative order of faults targeting different
    ///    types never matters, while the order of faults on the same
    ///    `(site, dir, msg_type)` is semantic in general and preserved by
    ///    the stable sort, except for the two commuting shapes below.
    /// 4. **Within-group commuters** — duplicate counts accumulate in
    ///    their own effect slot and corruption XORs bytes in place (XOR
    ///    commutes; forwarded copies clone the message *after* the whole
    ///    filter ran), so `duplicate` and `corrupt-byte` faults interact
    ///    with nothing in their group: they float to a sorted tail of it.
    ///    And a run of *consecutive* pure-drop faults all write the same
    ///    `Drop` verdict — a message is dropped iff any of their windows
    ///    fires, in any order — so each such run is sorted. (Drops
    ///    separated by a delay do not commute: which verdict lands last
    ///    depends on the order.)
    ///
    /// Only installable schedules are canonicalized by the engine,
    /// validated with the same
    /// [`crate::validate::schedule_is_installable`] predicate the runner
    /// enforces — an uninstallable schedule never runs, so it has no
    /// behaviour to be equivalent to.
    pub fn canonical(&self) -> FaultSchedule {
        let mut faults: Vec<ScheduledFault> = self
            .faults
            .iter()
            .cloned()
            .map(|mut f| {
                if let FaultOp::DropAfter { msg_type, after: 0 } = &f.op {
                    f.op = FaultOp::DropAll {
                        msg_type: msg_type.clone(),
                    };
                }
                f
            })
            .collect();
        let verdict_only = |f: &ScheduledFault| {
            matches!(
                f.op,
                FaultOp::DropAll { .. }
                    | FaultOp::DropNth { .. }
                    | FaultOp::DropAfter { .. }
                    | FaultOp::DropToDest { .. }
                    | FaultOp::DelayMs { .. }
            )
        };
        // All-window, unguarded verdict writers: they overwrite the
        // verdict of every message of their type.
        let verdict_all =
            |f: &ScheduledFault| matches!(f.op, FaultOp::DropAll { .. } | FaultOp::DelayMs { .. });
        let dead: Vec<bool> = faults
            .iter()
            .enumerate()
            .map(|(i, f)| {
                verdict_only(f)
                    && faults[i + 1..].iter().any(|g| {
                        g.site == f.site
                            && g.dir == f.dir
                            && g.op.msg_type() == f.op.msg_type()
                            && verdict_all(g)
                    })
            })
            .collect();
        let mut keep = dead.iter();
        faults.retain(|_| !*keep.next().unwrap());
        faults.sort_by(|a, b| {
            (a.site, matches!(a.dir, Direction::Receive), a.op.msg_type()).cmp(&(
                b.site,
                matches!(b.dir, Direction::Receive),
                b.op.msg_type(),
            ))
        });

        // Normalize each (site, dir, msg_type) group: float the commuting
        // faults (duplicate, corrupt-byte) to a sorted tail, and sort each
        // maximal run of consecutive pure-drop faults.
        let commutes = |f: &ScheduledFault| {
            matches!(
                f.op,
                FaultOp::Duplicate { .. } | FaultOp::CorruptByteAt { .. }
            )
        };
        let pure_drop = |f: &ScheduledFault| {
            matches!(
                f.op,
                FaultOp::DropAll { .. }
                    | FaultOp::DropNth { .. }
                    | FaultOp::DropAfter { .. }
                    | FaultOp::DropToDest { .. }
            )
        };
        let mut out: Vec<ScheduledFault> = Vec::with_capacity(faults.len());
        let mut i = 0;
        while i < faults.len() {
            let group_key = |f: &ScheduledFault| {
                (
                    f.site,
                    matches!(f.dir, Direction::Receive),
                    f.op.msg_type().to_string(),
                )
            };
            let key = group_key(&faults[i]);
            let mut j = i;
            while j < faults.len() && group_key(&faults[j]) == key {
                j += 1;
            }
            let (mut chained, mut floating): (Vec<_>, Vec<_>) =
                faults[i..j].iter().cloned().partition(|f| !commutes(f));
            floating.sort_by_key(ScheduledFault::to_line);
            let mut k = 0;
            while k < chained.len() {
                let mut run = k;
                while run < chained.len() && pure_drop(&chained[run]) {
                    run += 1;
                }
                chained[k..run].sort_by_key(ScheduledFault::to_line);
                k = run.max(k + 1);
            }
            out.extend(chained);
            out.extend(floating);
            i = j;
        }
        FaultSchedule { faults: out }
    }

    /// The [`id`](FaultSchedule::id) of the [`canonical`](FaultSchedule::canonical)
    /// form — the equivalence-class key the campaign engine prunes on.
    pub fn canonical_id(&self) -> String {
        self.canonical().id()
    }

    /// Lowers the schedule to per-site filter scripts, one entry per fault
    /// site the schedule touches (ascending by site index).
    pub fn lower(&self) -> Vec<SiteScripts> {
        let mut by_site: std::collections::BTreeMap<u32, (FilterProgram, FilterProgram)> =
            std::collections::BTreeMap::new();
        for fault in &self.faults {
            let (send, recv) = by_site.entry(fault.site).or_default();
            for clause in fault.op.clauses() {
                match fault.dir {
                    Direction::Send => send.push(clause),
                    Direction::Receive => recv.push(clause),
                }
            }
        }
        by_site
            .into_iter()
            .map(|(site, (send, recv))| SiteScripts {
                site,
                send: send.emit(),
                recv: recv.emit(),
            })
            .collect()
    }
}

/// The lowered filter scripts for one fault site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteScripts {
    /// The fault-site index the scripts install on.
    pub site: u32,
    /// The send-filter script (empty string when no send faults).
    pub send: String,
    /// The receive-filter script (empty string when no receive faults).
    pub recv: String,
}

/// Mutates schedules within a protocol's message vocabulary.
#[derive(Debug, Clone)]
pub struct ScheduleMutator {
    messages: Vec<String>,
    nodes: u32,
    sites: u32,
}

impl ScheduleMutator {
    /// A mutator drawing message types from `spec`, destinations from the
    /// target's `nodes` node ids, and fault placements from its `sites`
    /// fault sites.
    pub fn new(spec: &ProtocolSpec, nodes: u32, sites: u32) -> Self {
        ScheduleMutator {
            messages: spec.messages.iter().map(|m| m.name.clone()).collect(),
            nodes: nodes.max(1),
            sites: sites.max(1),
        }
    }

    fn pick_message(&self, rng: &mut SimRng) -> String {
        self.messages[rng.uniform_u64(0, self.messages.len() as u64) as usize].clone()
    }

    /// Draws one random scheduled fault.
    pub fn random_fault(&self, rng: &mut SimRng) -> ScheduledFault {
        let site = rng.uniform_u64(0, self.sites as u64) as u32;
        let dir = if rng.coin(0.5) {
            Direction::Send
        } else {
            Direction::Receive
        };
        let msg_type = self.pick_message(rng);
        let op = match rng.uniform_u64(0, 8) {
            0 => FaultOp::DropAll { msg_type },
            1 => FaultOp::DropNth {
                msg_type,
                nth: rng.uniform_u64(1, 9) as u32,
            },
            2 => FaultOp::DropAfter {
                msg_type,
                after: rng.uniform_u64(0, 21) as u32,
            },
            3 => FaultOp::DropToDest {
                msg_type,
                dst: rng.uniform_u64(0, self.nodes as u64) as u32,
            },
            4 => {
                const DELAYS: [u64; 5] = [250, 1_000, 3_000, 5_000, 15_000];
                FaultOp::DelayMs {
                    msg_type,
                    ms: DELAYS[rng.uniform_u64(0, DELAYS.len() as u64) as usize],
                }
            }
            5 => FaultOp::Duplicate {
                msg_type,
                copies: rng.uniform_u64(1, 3) as u32,
            },
            6 => {
                const MASKS: [u8; 4] = [0x01, 0x40, 0x80, 0xFF];
                FaultOp::CorruptByteAt {
                    msg_type,
                    offset: rng.uniform_u64(0, 12) as usize,
                    mask: MASKS[rng.uniform_u64(0, MASKS.len() as u64) as usize],
                }
            }
            _ => FaultOp::ReorderWindow {
                msg_type,
                hold: rng.uniform_u64(1, 4) as u32,
            },
        };
        ScheduledFault { site, dir, op }
    }

    /// Draws one *statically-invalid* scheduled fault: either it addresses
    /// a fault site the target does not have, or its message type carries
    /// a stray `}` that closes the lowered guard's braced condition early
    /// and breaks the filter script's parse. Both classes are refused at
    /// install time ([`crate::Verdict::Invalid`]); the campaign pre-filter
    /// exists to reject them before a worker is even dispatched.
    fn scrambled_fault(&self, rng: &mut SimRng) -> ScheduledFault {
        let mut fault = self.random_fault(rng);
        if rng.coin(0.5) {
            fault.site = self.sites + 1 + rng.uniform_u64(0, 2) as u32;
        } else {
            let m = fault.op.msg_type().to_string();
            *fault.op.msg_type_mut() = format!("{}}}{}", &m[..1], &m[1..]);
        }
        fault
    }

    /// Produces a mutated child of `parent`: add a fault (while under
    /// `max_faults`), remove one, or replace one. One roll in ten is a
    /// *scramble* — the child carries a statically-invalid fault
    /// ([`scrambled_fault`](Self::scrambled_fault)), modelling the
    /// corrupted or cross-target schedules a long campaign accumulates;
    /// the static pre-filter is what keeps them off the workers.
    pub fn mutate(
        &self,
        parent: &FaultSchedule,
        max_faults: usize,
        rng: &mut SimRng,
    ) -> FaultSchedule {
        let mut child = parent.clone();
        let roll = rng.uniform_u64(0, 10);
        if roll == 9 {
            let fault = self.scrambled_fault(rng);
            if child.is_empty() {
                child.faults.push(fault);
            } else {
                let i = rng.uniform_u64(0, child.len() as u64) as usize;
                child.faults[i] = fault;
            }
        } else if child.is_empty() || (roll < 4 && child.len() < max_faults) {
            child.faults.push(self.random_fault(rng));
        } else if roll < 6 && child.len() > 1 {
            let i = rng.uniform_u64(0, child.len() as u64) as usize;
            child.faults.remove(i);
        } else {
            let i = rng.uniform_u64(0, child.len() as u64) as usize;
            child.faults[i] = self.random_fault(rng);
        }
        child
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfi_script::Script;

    fn sample_schedule() -> FaultSchedule {
        FaultSchedule {
            faults: vec![
                ScheduledFault {
                    site: 1,
                    dir: Direction::Send,
                    op: FaultOp::DropNth {
                        msg_type: "HEARTBEAT".into(),
                        nth: 3,
                    },
                },
                ScheduledFault {
                    site: 2,
                    dir: Direction::Receive,
                    op: FaultOp::CorruptByteAt {
                        msg_type: "COMMIT".into(),
                        offset: 2,
                        mask: 0x40,
                    },
                },
                ScheduledFault {
                    site: 1,
                    dir: Direction::Send,
                    op: FaultOp::ReorderWindow {
                        msg_type: "DATA".into(),
                        hold: 2,
                    },
                },
            ],
        }
    }

    #[test]
    fn lowering_groups_by_site_and_parses() {
        let scripts = sample_schedule().lower();
        assert_eq!(scripts.len(), 2);
        assert_eq!(scripts[0].site, 1);
        assert_eq!(scripts[1].site, 2);
        for s in &scripts {
            assert!(Script::parse(&s.send).is_ok(), "{}", s.send);
            assert!(Script::parse(&s.recv).is_ok(), "{}", s.recv);
        }
        // Site 1 carries both send faults; site 2 only the recv corruption.
        let site1 = &scripts[0];
        assert!(site1.send.contains("xHold") && site1.send.contains("xRelease"));
        assert!(site1.recv.is_empty());
        let site2 = &scripts[1];
        assert!(site2.send.is_empty());
        assert!(site2.recv.contains("msg_set_byte"), "{}", site2.recv);
    }

    #[test]
    fn fault_lines_carry_the_site() {
        let lines = sample_schedule().to_lines();
        assert_eq!(lines[0], "n1 send drop-nth HEARTBEAT 3");
        assert_eq!(lines[1], "n2 recv corrupt-byte COMMIT 2 64");
        // A line without a site token parses as site 0.
        let f = ScheduledFault::from_line("send drop-all ACK").unwrap();
        assert_eq!(f.site, 0);
    }

    #[test]
    fn serialization_round_trips() {
        let sched = sample_schedule();
        let lines = sched.to_lines();
        let back = FaultSchedule::from_lines(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(back, sched);
        assert_eq!(back.to_lines(), lines);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "send",
            "send drop-nth",
            "send drop-nth HEARTBEAT notanumber",
            "sideways drop-all ACK",
            "send explode ACK",
        ] {
            assert!(ScheduledFault::from_line(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn mutation_is_deterministic_and_bounded() {
        let mutator = ScheduleMutator::new(&ProtocolSpec::gmp(), 3, 3);
        let mut a = SimRng::seed_from(99);
        let mut b = SimRng::seed_from(99);
        let mut sa = FaultSchedule::empty();
        let mut sites_seen = std::collections::BTreeSet::new();
        for _ in 0..50 {
            let next = mutator.mutate(&sa, 4, &mut a);
            assert_eq!(next, mutator.mutate(&sa, 4, &mut b));
            assert!(next.len() <= 4);
            // Like the engine's corpus, only installable mutants become
            // parents (invalid ones are pre-filtered away).
            if !crate::validate::schedule_is_installable(&next, 3) {
                continue;
            }
            for f in &next.faults {
                assert!(f.site < 3);
                sites_seen.insert(f.site);
            }
            for s in next.lower() {
                assert!(Script::parse(&s.send).is_ok() && Script::parse(&s.recv).is_ok());
            }
            sa = next;
        }
        assert!(sites_seen.len() > 1, "mutator never moved the fault site");
    }

    #[test]
    fn canonicalization_is_behaviour_preserving() {
        // The equivalence-pruning contract, checked against the actual
        // runner: every mutator-produced schedule whose canonical form
        // differs from it still executes to the same verdict, oracle, and
        // coverage. This is the soundness property pruning rests on — a
        // canonical collision means the runs were interchangeable.
        let mutator = ScheduleMutator::new(&ProtocolSpec::gmp(), 3, 3);
        let mut rng = SimRng::seed_from(1234);
        let mut parent = FaultSchedule::empty();
        let target = crate::runner::GmpTarget {
            fault_secs: 5,
            ..crate::runner::GmpTarget::default()
        };
        let mut rewritten = 0usize;
        for _ in 0..500 {
            let child = mutator.mutate(&parent, 4, &mut rng);
            let canon = child.canonical();
            // Canonicalization is idempotent, and the key is stable.
            assert_eq!(canon.canonical(), canon, "{}", child.id());
            assert_eq!(canon.id(), child.canonical_id());
            if crate::validate::schedule_is_installable(&child, 3) {
                if canon != child && rewritten < 60 {
                    rewritten += 1;
                    let a = crate::runner::run_schedule(&target, &child);
                    let b = crate::runner::run_schedule(&target, &canon);
                    assert_eq!(a.verdict, b.verdict, "{}", child.id());
                    assert_eq!(a.oracle, b.oracle, "{}", child.id());
                    assert_eq!(
                        a.coverage.edges().collect::<Vec<_>>(),
                        b.coverage.edges().collect::<Vec<_>>(),
                        "{}",
                        child.id()
                    );
                }
                parent = child;
            }
        }
        assert!(
            rewritten > 0,
            "500 mutations never produced a canonically-rewritten schedule"
        );
    }

    #[test]
    fn canonical_rewrites_pin_the_equivalence_classes() {
        let fault = |site, dir, op| ScheduledFault { site, dir, op };
        let a = fault(
            2,
            Direction::Receive,
            FaultOp::DropAll {
                msg_type: "COMMIT".into(),
            },
        );
        let b = fault(
            0,
            Direction::Send,
            FaultOp::DelayMs {
                msg_type: "DATA".into(),
                ms: 250,
            },
        );

        // Cross-(site, dir) permutations collapse to one class.
        let ab = FaultSchedule {
            faults: vec![a.clone(), b.clone()],
        };
        let ba = FaultSchedule {
            faults: vec![b.clone(), a.clone()],
        };
        assert_ne!(ab.id(), ba.id());
        assert_eq!(ab.canonical_id(), ba.canonical_id());

        // Same (site, dir), different message types commute too: a
        // message only evaluates clauses guarding its own type.
        let c = fault(
            2,
            Direction::Receive,
            FaultOp::DropNth {
                msg_type: "JOIN".into(),
                nth: 2,
            },
        );
        let ac = FaultSchedule {
            faults: vec![a.clone(), c.clone()],
        };
        let ca = FaultSchedule {
            faults: vec![c.clone(), a.clone()],
        };
        assert_ne!(ac.id(), ca.id());
        assert_eq!(ac.canonical_id(), ca.canonical_id());

        // Same (site, dir, msg_type): the verdict slot is last-writer-
        // wins, so two all-window delays collapse to the later one — and
        // the two orders are genuinely different programs.
        let d1 = fault(
            1,
            Direction::Send,
            FaultOp::DelayMs {
                msg_type: "HEARTBEAT".into(),
                ms: 250,
            },
        );
        let d2 = fault(
            1,
            Direction::Send,
            FaultOp::DelayMs {
                msg_type: "HEARTBEAT".into(),
                ms: 1_000,
            },
        );
        let d12 = FaultSchedule {
            faults: vec![d1.clone(), d2.clone()],
        };
        let d21 = FaultSchedule {
            faults: vec![d2.clone(), d1.clone()],
        };
        assert_eq!(d12.canonical(), FaultSchedule { faults: vec![d2] });
        assert_eq!(d21.canonical(), FaultSchedule { faults: vec![d1] });
        assert_ne!(d12.canonical_id(), d21.canonical_id());

        // drop-after 0 normalizes to drop-all, and a non-verdict fault
        // (duplicate) is never eliminated by a later all-window verdict.
        let after0 = FaultSchedule {
            faults: vec![fault(
                0,
                Direction::Send,
                FaultOp::DropAfter {
                    msg_type: "DATA".into(),
                    after: 0,
                },
            )],
        };
        let drop_all = FaultSchedule {
            faults: vec![fault(
                0,
                Direction::Send,
                FaultOp::DropAll {
                    msg_type: "DATA".into(),
                },
            )],
        };
        assert_eq!(after0.canonical_id(), drop_all.canonical_id());
        let dup_then_drop = FaultSchedule {
            faults: vec![
                fault(
                    0,
                    Direction::Send,
                    FaultOp::Duplicate {
                        msg_type: "DATA".into(),
                        copies: 1,
                    },
                ),
                drop_all.faults[0].clone(),
            ],
        };
        assert_eq!(dup_then_drop.canonical().len(), 2);
    }

    #[test]
    fn scrambles_produce_both_invalid_classes_and_nothing_else() {
        let mutator = ScheduleMutator::new(&ProtocolSpec::gmp(), 3, 3);
        let mut rng = SimRng::seed_from(7);
        let (mut bad_site, mut bad_parse) = (0usize, 0usize);
        for _ in 0..300 {
            let child = mutator.mutate(&FaultSchedule::empty(), 4, &mut rng);
            let errs = crate::validate::install_errors(&child, 3);
            if errs.is_empty() {
                continue;
            }
            // An invalid mutant must fail for exactly one known reason.
            assert_eq!(errs.len(), 1, "{errs:?}");
            if errs[0].contains("fault site") {
                bad_site += 1;
                assert!(child.faults.iter().any(|f| f.site >= 3));
            } else {
                bad_parse += 1;
                assert!(errs[0].contains("does not parse"), "{errs:?}");
                // ... and still round-trips through the repro line format,
                // so unfiltered engines can ship it to fleet workers.
                let back =
                    FaultSchedule::from_lines(child.to_lines().iter().map(String::as_str)).unwrap();
                assert_eq!(back, child);
            }
        }
        assert!(bad_site > 0, "no out-of-topology scrambles in 300 draws");
        assert!(bad_parse > 0, "no parse-breaking scrambles in 300 draws");
    }
}
