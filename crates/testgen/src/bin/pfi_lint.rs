//! Standalone static analyzer for PFI artifacts: Tcl filter scripts,
//! fault-schedule text, and `pfi-repro` bundles.
//!
//! ```text
//! pfi-lint drop_acks.tcl                  # lint a filter script
//! pfi-lint --target tpc schedule.txt      # validate a fault schedule
//! pfi-lint failure.repro                  # validate a repro's schedule
//! pfi-lint --deny nondeterministic *.tcl  # promote a category to error
//! pfi-lint --spec gmp drop_acks.tcl       # + semantic reachability analysis
//! pfi-lint --spec gmp --grid              # lint the generated grid corpus
//! ```
//!
//! Input kind is sniffed per file (a `pfi-repro v1` header means a repro
//! artifact, a leading `nN ` fault line means schedule text, anything
//! else is a script) and can be forced with `--script` / `--schedule`.
//! Exit status is nonzero iff any finding is an error after `--deny` /
//! `--warn` adjustment.

use pfi_lint::{analyze_effects, render, Category, Diagnostic, Effect, Linter, Severity};
use pfi_testgen::{
    generate, validate_schedule, FaultKind, FaultSchedule, FlowModel, ProtocolSpec, Repro,
    ScheduleFinding,
};

const HELP: &str = "pfi-lint — static analysis for PFI scripts and fault schedules

USAGE:
    pfi-lint [FLAGS] FILE...

Each FILE is sniffed: a `pfi-repro v1` header means a repro artifact
(its schedule is validated against the repro's own target), a leading
fault line (`n1 send drop-all HEARTBEAT`) means fault-schedule text,
anything else is linted as a PFI Tcl filter script.

FLAGS:
    --target NAME   topology for schedule text: gmp (default), tcp, tpc
    --spec NAME     run the semantic reachability pass too: every effectful
                    clause is checked against the named protocol\'s flow
                    model (message types, topology, wire-length bounds) and
                    a clause proven unable to fire gets an `inert-fault`
                    warning with the rule that proved it (promote with
                    `--deny inert-fault`)
    --grid          lint the generated grid campaign for the --spec protocol
                    instead of reading input files (CI corpus self-check)
    --script        treat every input as a Tcl filter script
    --schedule      treat every input as fault-schedule text
    --deny CAT      treat findings of category CAT as errors (repeatable)
    --warn CAT      treat findings of category CAT as warnings (repeatable)
    --help          this text

CATEGORIES:
    parse-error unknown-command bad-arity undef-var maybe-undef-var
    dead-code constant-condition nondeterministic dead-proc unused-param
    inert-fault
";

/// What to lint a given input as.
#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Sniff,
    Script,
    Schedule,
}

/// The flow model the `--spec` semantic pass runs against.
fn flow_model(target: &str) -> Option<FlowModel> {
    match target {
        "gmp" => Some(FlowModel::gmp()),
        "tcp" => Some(FlowModel::tcp()),
        "tpc" => Some(FlowModel::two_phase_commit()),
        _ => None,
    }
}

/// Per-target topology used when validating schedule text.
fn topology(target: &str) -> Option<(ProtocolSpec, u32, u32)> {
    match target {
        "gmp" => Some((ProtocolSpec::gmp(), 3, 3)),
        "tcp" => Some((ProtocolSpec::tcp(), 2, 1)),
        "tpc" => Some((ProtocolSpec::two_phase_commit(), 4, 4)),
        _ => None,
    }
}

/// Applies `--deny` / `--warn` overrides to one diagnostic.
fn adjust(d: &mut Diagnostic, deny: &[Category], warn: &[Category]) {
    if deny.contains(&d.category) {
        d.severity = Severity::Error;
    } else if warn.contains(&d.category) {
        d.severity = Severity::Warning;
    }
}

fn lint_script(
    name: &str,
    src: &str,
    model: Option<&FlowModel>,
    deny: &[Category],
    warn: &[Category],
) -> (String, bool) {
    let mut diags = Linter::filter().lint(src);
    if let Some(model) = model {
        diags.extend(reachability_diags(src, model));
        diags.sort_by_key(|d| (d.span.line, d.span.col));
    }
    for d in &mut diags {
        adjust(d, deny, warn);
    }
    let failed = diags.iter().any(|d| d.severity == Severity::Error);
    (render(src, name, &diags), failed)
}

/// The `--spec` semantic pass: abstract-interprets the script into effect
/// clauses and asks the flow model which of them can never fire. A bare
/// script has no installation context, so placement-dependent rules stay
/// quiet (`None`); the corruption gate is fed by the script\'s own clauses
/// (a corrupting clause may rewrite the type byte a later guard reads).
fn reachability_diags(src: &str, model: &FlowModel) -> Vec<Diagnostic> {
    let Ok(effects) = analyze_effects(src) else {
        // Parse errors are the Linter\'s findings; nothing to add here.
        return Vec::new();
    };
    let self_corruption = effects
        .clauses
        .iter()
        .any(|c| c.effects.contains(Effect::Corrupt));
    effects
        .clauses
        .iter()
        .filter_map(|clause| {
            let (rule, why) = model.clause_unreachable(clause, None, self_corruption)?;
            Some(Diagnostic::new(
                Severity::Warning,
                Category::InertFault,
                clause.span,
                format!("fault can never fire: {why} [{rule}]"),
            ))
        })
        .collect()
}

/// `--grid`: regenerate the full grid campaign for the `--spec` protocol
/// and lint every script in it, semantic pass included. This is the CI
/// self-check that generated scripts never contain statically-dead faults.
fn lint_grid(spec: &ProtocolSpec, model: &FlowModel, deny: &[Category], warn: &[Category]) -> bool {
    let campaign = generate(
        spec,
        &FaultKind::default_matrix(),
        &[pfi_core::Direction::Send, pfi_core::Direction::Receive],
    );
    let mut failed = false;
    let mut findings = 0usize;
    for case in &campaign.cases {
        let (out, f) = lint_script(&case.id, &case.script, Some(model), deny, warn);
        if !out.is_empty() {
            print!("{out}");
            findings += 1;
        }
        failed |= f;
    }
    println!(
        "grid {}: {} script(s) linted, {} with findings",
        campaign.protocol,
        campaign.len(),
        findings
    );
    failed
}

fn print_findings(name: &str, findings: Vec<ScheduleFinding>) -> bool {
    let mut failed = false;
    for f in &findings {
        let at = match f.fault {
            Some(i) => format!(" (fault #{i})"),
            None => String::new(),
        };
        println!("{}: {}{at}", f.severity.as_str(), f.message);
        for d in &f.diagnostics {
            println!("  {d}");
        }
        failed |= f.severity == Severity::Error;
    }
    if findings.is_empty() {
        println!("{name}: clean");
    }
    failed
}

fn lint_schedule(
    name: &str,
    text: &str,
    target: &str,
    deny: &[Category],
    warn: &[Category],
) -> bool {
    let lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let schedule = match FaultSchedule::from_lines(lines) {
        Ok(s) => s,
        Err(e) => {
            println!("error: {name} is not a fault schedule: {e}");
            return true;
        }
    };
    lint_schedule_parsed(name, &schedule, target, deny, warn)
}

fn lint_repro(name: &str, text: &str, deny: &[Category], warn: &[Category]) -> bool {
    let repro = match Repro::from_text(text) {
        Ok(r) => r,
        Err(e) => {
            println!("error: {name} is not a valid repro artifact: {e}");
            return true;
        }
    };
    println!(
        "{name}: target {}, {} fault(s), oracle {}",
        repro.target,
        repro.schedule.len(),
        repro.oracle
    );
    lint_schedule_parsed(name, &repro.schedule, &repro.target, deny, warn)
}

fn lint_schedule_parsed(
    name: &str,
    schedule: &FaultSchedule,
    target: &str,
    deny: &[Category],
    warn: &[Category],
) -> bool {
    let Some((spec, nodes, sites)) = topology(target) else {
        eprintln!("{name}: unknown target {target:?} (expected gmp, tcp, or tpc)");
        return true;
    };
    let mut findings = validate_schedule(schedule, &spec, nodes, sites);
    for f in &mut findings {
        for d in &mut f.diagnostics {
            adjust(d, deny, warn);
        }
        if let Some(worst) = f.diagnostics.iter().map(|d| d.severity).max() {
            f.severity = worst;
        }
    }
    print_findings(name, findings)
}

/// Sniffs what kind of artifact a file holds (repro headers are handled
/// before this is consulted).
fn sniff(text: &str) -> Kind {
    let first = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'));
    match first {
        Some(l) => {
            let mut chars = l.chars();
            if chars.next() == Some('n') && chars.next().is_some_and(|c| c.is_ascii_digit()) {
                Kind::Schedule
            } else {
                Kind::Script
            }
        }
        None => Kind::Script,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return;
    }

    let mut kind = Kind::Sniff;
    let mut target = "gmp".to_string();
    let mut spec_target: Option<String> = None;
    let mut grid = false;
    let mut deny = Vec::new();
    let mut warn = Vec::new();
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--script" => kind = Kind::Script,
            "--schedule" => kind = Kind::Schedule,
            "--grid" => grid = true,
            "--target" => {
                i += 1;
                match args.get(i) {
                    Some(v) => target = v.clone(),
                    None => {
                        eprintln!("--target needs a value");
                        std::process::exit(2);
                    }
                }
            }
            "--spec" => {
                i += 1;
                match args.get(i) {
                    Some(v) => spec_target = Some(v.clone()),
                    None => {
                        eprintln!("--spec needs a protocol name (gmp, tcp, or tpc)");
                        std::process::exit(2);
                    }
                }
            }
            flag @ ("--deny" | "--warn") => {
                i += 1;
                let Some(cat) = args.get(i).and_then(|v| Category::from_slug(v)) else {
                    eprintln!(
                        "{flag} needs a category; one of: {}",
                        Category::ALL
                            .iter()
                            .map(|c| c.as_str())
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                    std::process::exit(2);
                };
                if flag == "--deny" {
                    deny.push(cat);
                } else {
                    warn.push(cat);
                }
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other:?} (see --help)");
                std::process::exit(2);
            }
            path => files.push(path.to_string()),
        }
        i += 1;
    }
    let model = match &spec_target {
        Some(t) => match flow_model(t) {
            Some(m) => Some(m),
            None => {
                eprintln!("--spec: unknown protocol {t:?} (expected gmp, tcp, or tpc)");
                std::process::exit(2);
            }
        },
        None => None,
    };
    if grid {
        let Some(t) = &spec_target else {
            eprintln!("--grid needs --spec NAME to know which campaign to generate");
            std::process::exit(2);
        };
        let (spec, _, _) = topology(t).expect("flow_model and topology cover the same names");
        let failed = lint_grid(&spec, model.as_ref().unwrap(), &deny, &warn);
        std::process::exit(if failed { 1 } else { 0 });
    }
    if files.is_empty() {
        eprintln!("no input files (see --help)");
        std::process::exit(2);
    }

    let mut failed = false;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        let file_failed = if text.starts_with("pfi-repro v1") && kind == Kind::Sniff {
            lint_repro(path, &text, &deny, &warn)
        } else {
            let resolved = match kind {
                Kind::Sniff => sniff(&text),
                k => k,
            };
            match resolved {
                Kind::Schedule => lint_schedule(path, &text, &target, &deny, &warn),
                _ => {
                    let (out, f) = lint_script(path, &text, model.as_ref(), &deny, &warn);
                    if out.is_empty() {
                        println!("{path}: clean");
                    } else {
                        print!("{out}");
                    }
                    f
                }
            }
        };
        failed |= file_failed;
    }
    std::process::exit(if failed { 1 } else { 0 });
}
