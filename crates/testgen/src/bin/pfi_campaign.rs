//! Command-line campaign runner: generate a fault-injection campaign from
//! a bundled protocol specification and run it against the matching target,
//! or run a coverage-guided exploration instead of the fixed grid. Both
//! modes fan case execution out across a worker fleet (`--jobs`), with
//! outcomes byte-identical for any worker count.
//!
//! ```text
//! pfi-campaign gmp                      # full grid campaign, fixed GMP
//! pfi-campaign gmp --buggy              # against the implementation with the paper's bugs
//! pfi-campaign tcp                      # against a TCP transfer
//! pfi-campaign tpc                      # against a two-phase commit transaction
//! pfi-campaign gmp --list               # print the generated scripts, don't run
//! pfi-campaign gmp --explore            # coverage-guided search instead of the grid
//! pfi-campaign gmp --explore --budget 64 --seed 7
//! pfi-campaign gmp --explore --jobs 4 --stats
//! pfi-campaign gmp --explore --digest   # one-line outcome digest (CI golden)
//! pfi-campaign gmp --explore --no-snapshots   # rebuild every world (same digest)
//! pfi-campaign gmp --explore --journal run.journal        # crash-safe record
//! pfi-campaign gmp --explore --resume run.journal --journal run.journal
//! ```
//!
//! Exploration prints each discovered failure as a replayable `pfi-repro`
//! artifact (shrunk to a 1-minimal fault set).

use std::sync::Arc;

use pfi_core::Direction;
use pfi_gmp::GmpBugs;
use pfi_testgen::{
    explore_fleet, generate, run_campaign_fleet, ChaosOracleTarget, ExploreConfig, FaultKind,
    GmpTarget, ProtocolSpec, TargetFactory, TcpTarget, TestTarget, TpcTarget, Verdict,
};

const HELP: &str = "pfi-campaign — script-driven fault-injection campaigns

USAGE:
    pfi-campaign [PROTOCOL] [FLAGS]

PROTOCOL (default gmp):
    gmp        group membership daemon cluster
    tcp        client/server TCP transfer
    tpc        two-phase commit transaction

FLAGS:
    --buggy           use the implementation with the paper's seeded bugs (gmp)
    --list            print the generated grid scripts and exit
    --explore         coverage-guided schedule search instead of the fixed grid
    --seed N          exploration RNG seed
    --budget N        exploration mutation budget
    --epoch N         candidates per dispatch epoch (determinism unit; outcomes
                      depend on it, never on --jobs; 1 = classic sequential walk)
    --jobs N          worker threads; 0 or omitted auto-detects the host's
                      available parallelism. Any value yields byte-identical
                      campaign results (the resolved count is printed, shown
                      in --stats, and recorded in the journal)
    --no-prefilter    run statically-invalid candidates instead of rejecting them
                      up front (same digest either way; used by CI to prove it)
    --snapshots       fork candidate runs from cached world snapshots instead of
                      replaying shared schedule prefixes (default; same digest
                      either way — CI diffs the two modes to prove it)
    --no-snapshots    rebuild every candidate's world from scratch
    --snapshot-cache N
                      LRU capacity of the per-campaign snapshot store
                      (default 64; statistics only, never part of the digest)
    --journal PATH    write-ahead journal: record dispatch intent and every
                      result to PATH as the exploration runs (crash-safe)
    --resume PATH     replay the completed work recorded in PATH instead of
                      re-executing it; must be the same campaign config.
                      Combine with --journal (same path is fine) to end up
                      with a journal byte-identical to an uninterrupted run's
    --max-retries N   panic retries before a candidate is quarantined and its
                      lineage dropped (fleet workers; default 2)
    --step-budget N   interpreter step budget per filter script per run; a
                      script that burns it out reports the run as HUNG
    --inject-panic    add a sabotage oracle that panics whenever a run drops
                      a message — exercises crash containment (CI resilience)
    --stats           print the fleet execution report (workers, exec/sec, queues)
    --digest          print a one-line outcome digest (for golden comparisons)
    --help            this text

EXIT CODES:
    0   clean: no violations, no infrastructure trouble
    1   at least one oracle violation was found (the campaign's purpose)
    2   usage error
    3   infrastructure trouble only: crashed / hung / quarantined /
        uninstallable cases, but no violations
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return;
    }
    let proto = args.first().map(String::as_str).unwrap_or("gmp");
    let buggy = args.iter().any(|a| a == "--buggy");
    let list_only = args.iter().any(|a| a == "--list");
    let explore_mode = args.iter().any(|a| a == "--explore");
    let stats = args.iter().any(|a| a == "--stats");
    let digest = args.iter().any(|a| a == "--digest");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };
    // `--jobs 0` (and no flag at all) auto-detects the host's cores; the
    // resolved count is what gets printed, reported, and journaled.
    let jobs = match flag_value("--jobs") {
        Some(0) | None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Some(j) => j as usize,
    };

    let spec = match proto {
        "gmp" => ProtocolSpec::gmp(),
        "tcp" => ProtocolSpec::tcp(),
        "tpc" => ProtocolSpec::two_phase_commit(),
        other => {
            eprintln!("unknown protocol {other:?} (expected gmp, tcp, or tpc)");
            std::process::exit(2);
        }
    };

    // The factory (plain-data target config) crosses into the fleet's
    // worker threads. Grid mode prebuilds each case's world on the master
    // and ships it (worlds are arena-backed and Send); explore mode lets
    // workers build worlds themselves — there the per-candidate build is
    // the parallel work.
    let inject_panic = args.iter().any(|a| a == "--inject-panic");
    fn sabotage<T: TestTarget + Clone + Send + Sync + 'static>(
        target: T,
        inject_panic: bool,
    ) -> Arc<dyn TargetFactory> {
        if inject_panic {
            Arc::new(ChaosOracleTarget { inner: target })
        } else {
            Arc::new(target)
        }
    }
    let factory: Arc<dyn TargetFactory> = match proto {
        "gmp" => sabotage(
            GmpTarget {
                bugs: if buggy {
                    GmpBugs::all()
                } else {
                    GmpBugs::none()
                },
                fault_secs: 60,
            },
            inject_panic,
        ),
        "tpc" => sabotage(TpcTarget, inject_panic),
        _ => sabotage(TcpTarget::default(), inject_panic),
    };

    if explore_mode {
        let mut config = ExploreConfig::default();
        if let Some(seed) = flag_value("--seed") {
            config.seed = seed;
        }
        if let Some(budget) = flag_value("--budget") {
            config.budget = budget as usize;
        }
        if let Some(epoch) = flag_value("--epoch") {
            config.epoch = (epoch as usize).max(1);
        }
        if args.iter().any(|a| a == "--no-prefilter") {
            config.prefilter = false;
        }
        if args.iter().any(|a| a == "--no-snapshots") {
            config.snapshots = false;
        } else if args.iter().any(|a| a == "--snapshots") {
            config.snapshots = true;
        }
        if let Some(cache) = flag_value("--snapshot-cache") {
            config.snapshot_cache = (cache as usize).max(1);
        }
        if let Some(retries) = flag_value("--max-retries") {
            config.max_retries = retries as u32;
        }
        if let Some(steps) = flag_value("--step-budget") {
            config.step_budget = steps;
        }
        let path_value = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
                .map(std::path::PathBuf::from)
        };
        config.journal = path_value("--journal");
        if let Some(path) = path_value("--resume") {
            match pfi_testgen::Journal::load(&path) {
                Ok(journal) => config.resume = Some(journal),
                Err(e) => {
                    eprintln!("cannot resume from {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        if !digest {
            println!(
                "exploring {} (seed {}, budget {}, ≤{} faults per schedule, epoch {}, {} job(s))…\n",
                proto, config.seed, config.budget, config.max_faults, config.epoch, jobs
            );
        }
        let (outcome, report) = explore_fleet(Arc::clone(&factory), &spec, &config, jobs);
        if digest {
            // One line, a pure function of (target, seed, budget,
            // max_faults, epoch) — CI compares it across --jobs values.
            println!(
                "pfi-campaign digest {} seed={} budget={} epoch={} {}",
                proto,
                config.seed,
                config.budget,
                config.epoch,
                outcome.digest64()
            );
        } else {
            println!(
                "ran {} schedules; corpus kept {} ({} coverage edges); {} candidate(s) rejected as uninstallable{}",
                outcome.executed,
                outcome.corpus.len(),
                outcome.coverage.len(),
                outcome.rejected,
                if config.prefilter {
                    " before dispatch"
                } else {
                    " at install time"
                }
            );
            if outcome.replayed > 0 {
                println!(
                    "resumed: {} of those results were replayed from the journal, not re-executed",
                    outcome.replayed
                );
            }
            if outcome.crashed > 0 || outcome.hung > 0 {
                println!(
                    "infrastructure: {} run(s) crashed (panic contained, coverage salvaged), {} cut short by a runaway-run watchdog",
                    outcome.crashed, outcome.hung
                );
            }
            for q in &outcome.quarantined {
                println!(
                    "QUARANTINED {} after {} attempt(s): {}",
                    q.schedule.id(),
                    q.attempts,
                    q.error
                );
            }
            for failure in &outcome.failures {
                println!(
                    "\nVIOLATION (shrunk from {} to {} fault(s)):\n{}",
                    failure.schedule.len(),
                    failure.shrunk.len(),
                    failure.repro.to_text()
                );
            }
        }
        if stats {
            println!();
            println!("resolved jobs: {jobs} worker thread(s)");
            let snap = &outcome.snapshots;
            if config.snapshots {
                println!(
                    "snapshots: {} hit(s), {} miss(es) ({:.1}% hit rate), {} stored, {} evicted, {} prefix event(s) skipped",
                    snap.hits,
                    snap.misses,
                    snap.hit_rate() * 100.0,
                    snap.stored,
                    snap.evicted,
                    snap.events_skipped
                );
            } else {
                println!("snapshots: disabled (every world rebuilt from scratch)");
            }
            print!("{report}");
        }
        // Same exit-code contract as the grid: violations are findings
        // (1) and outrank infrastructure trouble (3).
        if !outcome.failures.is_empty() {
            std::process::exit(1);
        }
        if outcome.crashed > 0 || outcome.hung > 0 || !outcome.quarantined.is_empty() {
            std::process::exit(3);
        }
        return;
    }

    let campaign = generate(
        &spec,
        &FaultKind::default_matrix(),
        &[Direction::Send, Direction::Receive],
    );
    println!(
        "campaign: {} cases for protocol {} ({} job(s))\n",
        campaign.len(),
        campaign.protocol,
        jobs
    );

    if list_only {
        for case in &campaign.cases {
            println!("## {}\n{}", case.id, case.script);
        }
        return;
    }

    let (results, report) = run_campaign_fleet(Arc::clone(&factory), &campaign, jobs);

    let mut pass = 0;
    let mut degraded = 0;
    let mut violated = 0;
    let mut infra = 0;
    for r in &results {
        match &r.verdict {
            Verdict::Pass => pass += 1,
            Verdict::Degraded(_) => degraded += 1,
            Verdict::Violated(why) => {
                violated += 1;
                println!("VIOLATION {:<44} {}", r.case_id, why);
            }
            // Grid cases are generated against the target's own primary
            // site, so refusal can only mean a harness bug — infra class.
            Verdict::Invalid(why) => {
                infra += 1;
                println!("INVALID   {:<44} {}", r.case_id, why);
            }
            Verdict::Crashed(why) => {
                infra += 1;
                println!("CRASHED   {:<44} {}", r.case_id, why);
            }
            Verdict::Hung(why) => {
                infra += 1;
                println!("HUNG      {:<44} {}", r.case_id, why);
            }
        }
    }
    println!("\n{pass} pass, {degraded} degraded, {violated} violations, {infra} infrastructure");
    if stats {
        println!();
        println!("resolved jobs: {jobs} worker thread(s)");
        print!("{report}");
    }
    // Exit codes: violations are findings (1); crashes, hangs, and
    // uninstallable grid cases are harness trouble (3). A run with both
    // reports the findings — they are the result the campaign exists for.
    if violated > 0 {
        std::process::exit(1);
    }
    if infra > 0 {
        std::process::exit(3);
    }
}
