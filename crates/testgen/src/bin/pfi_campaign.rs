//! Command-line campaign runner: generate a fault-injection campaign from
//! a bundled protocol specification and run it against the matching target,
//! or run a coverage-guided exploration instead of the fixed grid. Both
//! modes fan case execution out across a worker fleet (`--jobs`), with
//! outcomes byte-identical for any worker count.
//!
//! ```text
//! pfi-campaign gmp                      # full grid campaign, fixed GMP
//! pfi-campaign gmp --buggy              # against the implementation with the paper's bugs
//! pfi-campaign tcp                      # against a TCP transfer
//! pfi-campaign tpc                      # against a two-phase commit transaction
//! pfi-campaign gmp --list               # print the generated scripts, don't run
//! pfi-campaign gmp --explore            # coverage-guided search instead of the grid
//! pfi-campaign gmp --explore --budget 64 --seed 7
//! pfi-campaign gmp --explore --jobs 4 --stats
//! pfi-campaign gmp --explore --digest   # one-line outcome digest (CI golden)
//! pfi-campaign gmp --explore --no-snapshots   # rebuild every world (same digest)
//! pfi-campaign gmp --explore --journal run.journal        # crash-safe record
//! pfi-campaign gmp --explore --resume run.journal --journal run.journal
//! ```
//!
//! Exploration prints each discovered failure as a replayable `pfi-repro`
//! artifact (shrunk to a 1-minimal fault set).

use std::sync::Arc;

use pfi_core::Direction;
use pfi_gmp::GmpBugs;
use pfi_testgen::{
    explore_fleet, generate, run_campaign_fleet, ChaosOracleTarget, ExploreConfig, FaultKind,
    GmpTarget, ProtocolSpec, SkipReason, TargetFactory, TcpTarget, TestTarget, TpcTarget, Verdict,
};

const HELP: &str = "pfi-campaign — script-driven fault-injection campaigns

USAGE:
    pfi-campaign [PROTOCOL] [FLAGS]

PROTOCOL (default gmp):
    gmp        group membership daemon cluster
    tcp        client/server TCP transfer
    tpc        two-phase commit transaction

FLAGS:
    --buggy           use the implementation with the paper's seeded bugs (gmp)
    --list            print the generated grid scripts and exit
    --explore         coverage-guided schedule search instead of the fixed grid
    --seed N          exploration RNG seed
    --budget N        exploration mutation budget
    --epoch N         candidates per dispatch epoch (determinism unit; outcomes
                      depend on it, never on --jobs; 1 = classic sequential walk)
    --max-faults N    cap on faults per generated schedule (outcome input)
    --jobs N          worker threads; 0 or omitted auto-detects the host's
                      available parallelism. Any value yields byte-identical
                      campaign results (the resolved count is printed, shown
                      in --stats, and recorded in the journal)
    --no-prefilter    run statically-invalid candidates instead of rejecting them
                      up front (same digest either way; used by CI to prove it)
    --no-pruning      execute candidates even when an equivalent canonical
                      schedule already ran (same digest either way — pruning
                      only ever saves executions; CI diffs the modes)
    --no-semantic     keep the canonical pruning tier but disable the semantic
                      one: candidates whose quotient under the target's flow
                      model (statically-inert faults stripped, shadowed
                      corruptions removed) matches a settled result run anyway
                      (same digest either way; CI diffs the modes)
    --explain-pruned  print one line per skipped candidate naming the tier
                      that skipped it (canonical duplicate / semantic
                      duplicate / inert quotient) and, for inert faults, the
                      reachability rule that proved each one can never fire
    --fault-secs N    gmp fault-window length in virtual seconds (default 60;
                      5 is the loop-heavy corpus the pruning experiments use)
    --snapshots       fork candidate runs from cached world snapshots instead of
                      replaying shared schedule prefixes (default; same digest
                      either way — CI diffs the two modes to prove it)
    --no-snapshots    rebuild every candidate's world from scratch
    --snapshot-cache N
                      LRU capacity of the per-campaign snapshot store
                      (default 64; statistics only, never part of the digest)
    --journal PATH    write-ahead journal: record dispatch intent and every
                      result to PATH as the exploration runs (crash-safe)
    --resume PATH     replay the completed work recorded in PATH instead of
                      re-executing it; must be the same campaign config.
                      Combine with --journal (same path is fine) to end up
                      with a journal byte-identical to an uninterrupted run's
    --max-retries N   panic retries before a candidate is quarantined and its
                      lineage dropped (fleet workers; default 2)
    --step-budget N   interpreter step budget per filter script per run; a
                      script that burns it out reports the run as HUNG
    --inject-panic    add a sabotage oracle that panics whenever a run drops
                      a message — exercises crash containment (CI resilience)
    --stats           print the fleet execution report (workers, exec/sec, queues)
    --digest          print a one-line outcome digest (for golden comparisons)
    --serve ADDR      don't run locally: submit the exploration to a running
                      pfi-serve daemon (host:port, or a Unix socket path
                      containing '/'), wait for it, print its results, and
                      exit with the campaign's usual exit code. --share-corpus
                      seeds it from the daemon's corpus pool; --journal,
                      --resume, and --jobs are the daemon's business and are
                      ignored
    --share-corpus    (with --serve) seed from the daemon's shared corpus pool
    --serve-retries N (with --serve) attempts per protocol exchange before
                      giving up; reconnects between attempts (default 8;
                      env PFI_SERVE_RETRIES)
    --serve-backoff-ms N
                      (with --serve) base reconnect backoff; doubles per
                      attempt with deterministic jitter, capped at 2s
                      (default 50; env PFI_SERVE_BACKOFF_MS)
    --help            this text

EXIT CODES:
    0   clean: no violations, no infrastructure trouble
    1   at least one oracle violation was found (the campaign's purpose)
    2   usage error
    3   infrastructure trouble only: crashed / hung / quarantined /
        uninstallable cases, but no violations
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return;
    }
    let proto = args.first().map(String::as_str).unwrap_or("gmp");
    let buggy = args.iter().any(|a| a == "--buggy");
    let list_only = args.iter().any(|a| a == "--list");
    let explore_mode = args.iter().any(|a| a == "--explore");
    let stats = args.iter().any(|a| a == "--stats");
    let digest = args.iter().any(|a| a == "--digest");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };
    // `--jobs 0` (and no flag at all) auto-detects the host's cores; the
    // resolved count is what gets printed, reported, and journaled.
    let jobs = match flag_value("--jobs") {
        Some(0) | None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Some(j) => j as usize,
    };

    let spec = match proto {
        "gmp" => ProtocolSpec::gmp(),
        "tcp" => ProtocolSpec::tcp(),
        "tpc" => ProtocolSpec::two_phase_commit(),
        other => {
            eprintln!("unknown protocol {other:?} (expected gmp, tcp, or tpc)");
            std::process::exit(2);
        }
    };

    // The factory (plain-data target config) crosses into the fleet's
    // worker threads. Grid mode prebuilds each case's world on the master
    // and ships it (worlds are arena-backed and Send); explore mode lets
    // workers build worlds themselves — there the per-candidate build is
    // the parallel work.
    let inject_panic = args.iter().any(|a| a == "--inject-panic");
    fn sabotage<T: TestTarget + Clone + Send + Sync + 'static>(
        target: T,
        inject_panic: bool,
    ) -> Arc<dyn TargetFactory> {
        if inject_panic {
            Arc::new(ChaosOracleTarget { inner: target })
        } else {
            Arc::new(target)
        }
    }
    let fault_secs = flag_value("--fault-secs").unwrap_or(60);
    let factory: Arc<dyn TargetFactory> = match proto {
        "gmp" => sabotage(
            GmpTarget {
                bugs: if buggy {
                    GmpBugs::all()
                } else {
                    GmpBugs::none()
                },
                fault_secs,
            },
            inject_panic,
        ),
        "tpc" => sabotage(TpcTarget, inject_panic),
        _ => sabotage(TcpTarget::default(), inject_panic),
    };

    if explore_mode {
        let mut config = ExploreConfig::default();
        if let Some(seed) = flag_value("--seed") {
            config.seed = seed;
        }
        if let Some(budget) = flag_value("--budget") {
            config.budget = budget as usize;
        }
        if let Some(epoch) = flag_value("--epoch") {
            config.epoch = (epoch as usize).max(1);
        }
        if let Some(max_faults) = flag_value("--max-faults") {
            config.max_faults = (max_faults as usize).max(1);
        }
        if args.iter().any(|a| a == "--no-prefilter") {
            config.prefilter = false;
        }
        if args.iter().any(|a| a == "--no-pruning") {
            config.pruning = false;
        }
        if args.iter().any(|a| a == "--no-semantic") {
            config.semantic = false;
        }
        if args.iter().any(|a| a == "--explain-pruned") {
            config.explain = true;
        }
        if args.iter().any(|a| a == "--no-snapshots") {
            config.snapshots = false;
        } else if args.iter().any(|a| a == "--snapshots") {
            config.snapshots = true;
        }
        if let Some(cache) = flag_value("--snapshot-cache") {
            config.snapshot_cache = (cache as usize).max(1);
        }
        if let Some(retries) = flag_value("--max-retries") {
            config.max_retries = retries as u32;
        }
        if let Some(steps) = flag_value("--step-budget") {
            config.step_budget = steps;
        }
        let path_value = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
                .map(std::path::PathBuf::from)
        };
        config.journal = path_value("--journal");
        if let Some(path) = path_value("--resume") {
            match pfi_testgen::Journal::load(&path) {
                Ok(journal) => config.resume = Some(journal),
                Err(e) => {
                    eprintln!("cannot resume from {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        // `--serve` hands the whole campaign to a daemon: the local
        // process becomes a thin client with the same exit-code contract.
        if let Some(addr) = args
            .iter()
            .position(|a| a == "--serve")
            .and_then(|i| args.get(i + 1))
        {
            let env_num = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
            let retries = flag_value("--serve-retries")
                .or_else(|| env_num("PFI_SERVE_RETRIES"))
                .unwrap_or(8) as u32;
            let backoff_ms = flag_value("--serve-backoff-ms")
                .or_else(|| env_num("PFI_SERVE_BACKOFF_MS"))
                .unwrap_or(50);
            serve_shim(
                addr,
                proto,
                buggy,
                fault_secs,
                args.iter().any(|a| a == "--share-corpus"),
                &config,
                retries,
                backoff_ms,
            );
        }
        if !digest {
            println!(
                "exploring {} (seed {}, budget {}, ≤{} faults per schedule, epoch {}, {} job(s))…\n",
                proto, config.seed, config.budget, config.max_faults, config.epoch, jobs
            );
        }
        let (outcome, report) = explore_fleet(Arc::clone(&factory), &spec, &config, jobs);
        if digest {
            // One line, a pure function of (target, seed, budget,
            // max_faults, epoch) — CI compares it across --jobs values.
            println!(
                "pfi-campaign digest {} seed={} budget={} epoch={} {}",
                proto,
                config.seed,
                config.budget,
                config.epoch,
                outcome.digest64()
            );
        } else {
            println!(
                "ran {} schedules; corpus kept {} ({} coverage edges); {} candidate(s) rejected as uninstallable{}; {} pruned as equivalent, {} pruned as inert",
                outcome.executed,
                outcome.corpus.len(),
                outcome.coverage.len(),
                outcome.rejected,
                if config.prefilter {
                    " before dispatch"
                } else {
                    " at install time"
                },
                outcome.pruned,
                outcome.inert,
            );
            for skip in &outcome.skipped {
                match &skip.reason {
                    SkipReason::CanonicalDuplicate { canonical } => println!(
                        "SKIPPED {} — canonical duplicate of already-run {canonical}",
                        skip.schedule.id()
                    ),
                    SkipReason::SemanticDuplicate { quotient } => println!(
                        "SKIPPED {} — semantically equivalent to settled {quotient} \
                         (shadowed corruption stripped)",
                        skip.schedule.id()
                    ),
                    SkipReason::InertQuotient { quotient, facts } => {
                        println!(
                            "SKIPPED {} — quotient {quotient} already settled; inert faults:",
                            skip.schedule.id()
                        );
                        for fact in facts {
                            println!("    {} [{}]: {}", fact.line, fact.rule, fact.message);
                        }
                    }
                }
            }
            if outcome.replayed > 0 {
                println!(
                    "resumed: {} of those results were replayed from the journal, not re-executed",
                    outcome.replayed
                );
            }
            if outcome.crashed > 0 || outcome.hung > 0 {
                println!(
                    "infrastructure: {} run(s) crashed (panic contained, coverage salvaged), {} cut short by a runaway-run watchdog",
                    outcome.crashed, outcome.hung
                );
            }
            for q in &outcome.quarantined {
                println!(
                    "QUARANTINED {} after {} attempt(s): {}",
                    q.schedule.id(),
                    q.attempts,
                    q.error
                );
            }
            for failure in &outcome.failures {
                println!(
                    "\nVIOLATION (shrunk from {} to {} fault(s)):\n{}",
                    failure.schedule.len(),
                    failure.shrunk.len(),
                    failure.repro.to_text()
                );
            }
        }
        if stats {
            println!();
            println!("resolved jobs: {jobs} worker thread(s)");
            let snap = &outcome.snapshots;
            if config.snapshots {
                println!(
                    "snapshots: {} hit(s), {} miss(es) ({:.1}% hit rate), {} stored, {} evicted, {} prefix event(s) skipped",
                    snap.hits,
                    snap.misses,
                    snap.hit_rate() * 100.0,
                    snap.stored,
                    snap.evicted,
                    snap.events_skipped
                );
            } else {
                println!("snapshots: disabled (every world rebuilt from scratch)");
            }
            print!("{report}");
        }
        // Same exit-code contract as the grid: violations are findings
        // (1) and outrank infrastructure trouble (3).
        if !outcome.failures.is_empty() {
            std::process::exit(1);
        }
        if outcome.crashed > 0 || outcome.hung > 0 || !outcome.quarantined.is_empty() {
            std::process::exit(3);
        }
        return;
    }

    let campaign = generate(
        &spec,
        &FaultKind::default_matrix(),
        &[Direction::Send, Direction::Receive],
    );
    println!(
        "campaign: {} cases for protocol {} ({} job(s))\n",
        campaign.len(),
        campaign.protocol,
        jobs
    );

    if list_only {
        for case in &campaign.cases {
            println!("## {}\n{}", case.id, case.script);
        }
        return;
    }

    let (results, report) = run_campaign_fleet(Arc::clone(&factory), &campaign, jobs);

    let mut pass = 0;
    let mut degraded = 0;
    let mut violated = 0;
    let mut infra = 0;
    for r in &results {
        match &r.verdict {
            Verdict::Pass => pass += 1,
            Verdict::Degraded(_) => degraded += 1,
            Verdict::Violated(why) => {
                violated += 1;
                println!("VIOLATION {:<44} {}", r.case_id, why);
            }
            // Grid cases are generated against the target's own primary
            // site, so refusal can only mean a harness bug — infra class.
            Verdict::Invalid(why) => {
                infra += 1;
                println!("INVALID   {:<44} {}", r.case_id, why);
            }
            Verdict::Crashed(why) => {
                infra += 1;
                println!("CRASHED   {:<44} {}", r.case_id, why);
            }
            Verdict::Hung(why) => {
                infra += 1;
                println!("HUNG      {:<44} {}", r.case_id, why);
            }
        }
    }
    println!("\n{pass} pass, {degraded} degraded, {violated} violations, {infra} infrastructure");
    if stats {
        println!();
        println!("resolved jobs: {jobs} worker thread(s)");
        print!("{report}");
    }
    // Exit codes: violations are findings (1); crashes, hangs, and
    // uninstallable grid cases are harness trouble (3). A run with both
    // reports the findings — they are the result the campaign exists for.
    if violated > 0 {
        std::process::exit(1);
    }
    if infra > 0 {
        std::process::exit(3);
    }
}

/// Submits the exploration to a pfi-serve daemon and relays its result.
///
/// This speaks the daemon's line protocol directly (pfi-serve depends on
/// this crate, so the dependency cannot point the other way): one
/// `submit` with the full campaign identity, a blocking `wait`, then
/// `results` — a dot-terminated payload block — printed verbatim. Exits
/// with the campaign's exit code (0 clean / 1 violations / 3
/// infrastructure), exactly as a local run would.
///
/// Self-healing: every step survives a torn connection. The client
/// reconnects with exponential backoff + deterministic jitter
/// (`--serve-retries` / `--serve-backoff-ms`, env `PFI_SERVE_RETRIES` /
/// `PFI_SERVE_BACKOFF_MS`); the submit carries an idempotency token
/// derived from the campaign identity plus this process, so a resubmit
/// after a mid-ack disconnect dedupes to the already-accepted campaign
/// instead of double-running; `wait` and `results` are re-issued by
/// campaign id on each fresh connection, so the client resumes exactly
/// where the fault cut it off.
#[allow(clippy::too_many_arguments)]
fn serve_shim(
    addr: &str,
    proto: &str,
    buggy: bool,
    fault_secs: u64,
    share_corpus: bool,
    config: &ExploreConfig,
    retries: u32,
    backoff_ms: u64,
) -> ! {
    use std::io::{BufRead, BufReader, Write};

    trait Rw: std::io::Read + std::io::Write {}
    impl<T: std::io::Read + std::io::Write> Rw for T {}

    fn fnv64(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    let die = |msg: String| -> ! {
        eprintln!("--serve {addr}: {msg}");
        std::process::exit(3);
    };

    // Anything with '/' — or without the ':' a host:port must carry —
    // is a Unix socket path; the rest is TCP.
    let connect = || -> std::io::Result<BufReader<Box<dyn Rw>>> {
        let stream: Box<dyn Rw> = if addr.contains('/') || !addr.contains(':') {
            Box::new(std::os::unix::net::UnixStream::connect(addr)?)
        } else {
            Box::new(std::net::TcpStream::connect(addr)?)
        };
        Ok(BufReader::new(stream))
    };

    let params_kv = format!(
        "proto={proto} seed={} budget={} max-faults={} epoch={} buggy={} \
         fault-secs={fault_secs} prefilter={} pruning={} semantic={} snapshots={} \
         step-budget={} share-corpus={}",
        config.seed,
        config.budget,
        config.max_faults,
        config.epoch,
        buggy as u8,
        config.prefilter as u8,
        config.pruning as u8,
        config.semantic as u8,
        config.snapshots as u8,
        config.step_budget,
        share_corpus as u8,
    );
    // Idempotency token: stable across every retry of THIS submission
    // (so the daemon dedupes a resubmit after a torn ack), distinct
    // across invocations (so two identical campaigns submitted on
    // purpose both run).
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let ident = format!(
        "pc-{:016x}-{:08x}",
        fnv64(params_kv.as_bytes()) ^ nonce.rotate_left(17),
        std::process::id()
    );

    // One protocol exchange with reconnect-and-retry. `conn` persists
    // across calls; any I/O error or torn reply poisons it, and the next
    // attempt reconnects after a jittered exponential backoff. A protocol
    // `err` reply is the daemon speaking, not the wire failing — returned
    // as-is, never retried.
    let mut conn: Option<BufReader<Box<dyn Rw>>> = None;
    let mut retried: u64 = 0;
    let exchange = |conn: &mut Option<BufReader<Box<dyn Rw>>>,
                    retried: &mut u64,
                    line: &str,
                    payload: bool|
     -> Result<(String, Vec<String>), String> {
        let mut last = String::new();
        for attempt in 0..retries.max(1) {
            if attempt > 0 {
                *retried += 1;
                let exp = backoff_ms
                    .max(1)
                    .saturating_mul(1u64 << attempt.min(16))
                    .min(2000);
                let jitter = fnv64(format!("{ident}:{attempt}").as_bytes()) % (exp / 2 + 1);
                std::thread::sleep(std::time::Duration::from_millis(exp / 2 + jitter));
            }
            let c = match conn {
                Some(c) => c,
                None => match connect() {
                    Ok(c) => conn.insert(c),
                    Err(e) => {
                        last = format!("cannot connect: {e}");
                        continue;
                    }
                },
            };
            let io = (|| -> std::io::Result<(String, Vec<String>)> {
                writeln!(c.get_mut(), "{line}")?;
                c.get_mut().flush()?;
                // A line without its newline is a torn reply: the daemon
                // closes after any failed write, so EOF can cut a line
                // mid-frame ("ok " torn before the id). Acting on the
                // fragment would be wrong in both directions — always
                // classify it as EOF and let the retry loop resubmit.
                let full_line = |c: &mut BufReader<Box<dyn Rw>>| -> std::io::Result<String> {
                    let mut l = String::new();
                    if c.read_line(&mut l)? == 0 || !l.ends_with('\n') {
                        return Err(std::io::ErrorKind::UnexpectedEof.into());
                    }
                    Ok(l)
                };
                let head = full_line(c)?.trim_end().to_string();
                let mut lines = Vec::new();
                if payload && head.starts_with("ok") {
                    loop {
                        let l = full_line(c)?;
                        let l = l.trim_end_matches(['\r', '\n']);
                        if l == "." {
                            break;
                        }
                        lines.push(l.strip_prefix('.').unwrap_or(l).to_string());
                    }
                }
                Ok((head, lines))
            })();
            match io {
                Ok((head, lines)) => {
                    if head == "ok" || head.starts_with("ok ") {
                        return Ok((head, lines));
                    }
                    return Err(format!("daemon refused: {head}"));
                }
                Err(e) => {
                    *conn = None; // poisoned: reconnect on the next attempt
                    last = format!("request failed: {e}");
                }
            }
        }
        Err(format!("{last} (after {} attempt(s))", retries.max(1)))
    };
    let kv = |head: &str, key: &str| -> Option<String> {
        head.split_whitespace()
            .filter_map(|tok| tok.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.to_string())
    };

    let submit = format!("submit {params_kv} ident={ident}");
    let (head, _) = exchange(&mut conn, &mut retried, &submit, false).unwrap_or_else(|e| die(e));
    let id = kv(&head, "id").unwrap_or_else(|| die("daemon reply carried no id".to_string()));
    let dedup = if kv(&head, "deduped").as_deref() == Some("1") {
        " (resumed an already-accepted submission)"
    } else {
        ""
    };
    println!("submitted {id} to {addr}{dedup}; waiting…");

    let (head, _) = exchange(&mut conn, &mut retried, &format!("wait id={id}"), false)
        .unwrap_or_else(|e| die(e));
    let exit: i32 = kv(&head, "exit").and_then(|e| e.parse().ok()).unwrap_or(3);

    let (_, payload) = exchange(&mut conn, &mut retried, &format!("results id={id}"), true)
        .unwrap_or_else(|e| die(e));
    for line in &payload {
        println!("{line}");
    }
    if retried > 0 {
        eprintln!("--serve {addr}: healed {retried} torn exchange(s) by reconnecting");
    }
    std::process::exit(exit);
}
