//! Command-line campaign runner: generate a fault-injection campaign from
//! a bundled protocol specification and run it against the matching target,
//! or run a coverage-guided exploration instead of the fixed grid.
//!
//! ```text
//! pfi-campaign gmp                      # full grid campaign, fixed GMP
//! pfi-campaign gmp --buggy              # against the implementation with the paper's bugs
//! pfi-campaign tcp                      # against a TCP transfer
//! pfi-campaign tpc                      # against a two-phase commit transaction
//! pfi-campaign gmp --list               # print the generated scripts, don't run
//! pfi-campaign gmp --explore            # coverage-guided search instead of the grid
//! pfi-campaign gmp --explore --budget 64 --seed 7
//! ```
//!
//! Exploration prints each discovered failure as a replayable `pfi-repro`
//! artifact (shrunk to a 1-minimal fault set).

use pfi_core::Direction;
use pfi_gmp::GmpBugs;
use pfi_testgen::{
    explore, generate, run_campaign, ExploreConfig, FaultKind, GmpTarget, ProtocolSpec, TcpTarget,
    TestTarget, TpcTarget, Verdict,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let proto = args.first().map(String::as_str).unwrap_or("gmp");
    let buggy = args.iter().any(|a| a == "--buggy");
    let list_only = args.iter().any(|a| a == "--list");
    let explore_mode = args.iter().any(|a| a == "--explore");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };

    let spec = match proto {
        "gmp" => ProtocolSpec::gmp(),
        "tcp" => ProtocolSpec::tcp(),
        "tpc" => ProtocolSpec::two_phase_commit(),
        other => {
            eprintln!("unknown protocol {other:?} (expected gmp, tcp, or tpc)");
            std::process::exit(2);
        }
    };

    let target: Box<dyn TestTarget> = match proto {
        "gmp" => Box::new(GmpTarget {
            bugs: if buggy {
                GmpBugs::all()
            } else {
                GmpBugs::none()
            },
            fault_secs: 60,
        }),
        "tpc" => Box::new(TpcTarget),
        _ => Box::new(TcpTarget::default()),
    };

    if explore_mode {
        let mut config = ExploreConfig::default();
        if let Some(seed) = flag_value("--seed") {
            config.seed = seed;
        }
        if let Some(budget) = flag_value("--budget") {
            config.budget = budget as usize;
        }
        println!(
            "exploring {} (seed {}, budget {}, ≤{} faults per schedule)…\n",
            proto, config.seed, config.budget, config.max_faults
        );
        let outcome = explore(target.as_ref(), &spec, &config);
        println!(
            "ran {} schedules; corpus kept {} ({} coverage edges)",
            outcome.executed,
            outcome.corpus.len(),
            outcome.coverage.len()
        );
        for failure in &outcome.failures {
            println!(
                "\nVIOLATION (shrunk from {} to {} fault(s)):\n{}",
                failure.schedule.len(),
                failure.shrunk.len(),
                failure.repro.to_text()
            );
        }
        if !outcome.failures.is_empty() {
            std::process::exit(1);
        }
        return;
    }

    let campaign = generate(
        &spec,
        &FaultKind::default_matrix(),
        &[Direction::Send, Direction::Receive],
    );
    println!(
        "campaign: {} cases for protocol {}\n",
        campaign.len(),
        campaign.protocol
    );

    if list_only {
        for case in &campaign.cases {
            println!("## {}\n{}", case.id, case.script);
        }
        return;
    }

    let results = run_campaign(target.as_ref(), &campaign);

    let mut pass = 0;
    let mut degraded = 0;
    let mut violated = 0;
    for r in &results {
        match &r.verdict {
            Verdict::Pass => pass += 1,
            Verdict::Degraded(_) => degraded += 1,
            Verdict::Violated(why) => {
                violated += 1;
                println!("VIOLATION {:<44} {}", r.case_id, why);
            }
        }
    }
    println!("\n{pass} pass, {degraded} degraded, {violated} violations");
    if violated > 0 {
        std::process::exit(1);
    }
}
