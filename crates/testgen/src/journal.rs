//! Write-ahead campaign journal: crash-safe exploration with resume.
//!
//! A long exploration that dies at 90% — a power cut, an OOM kill, a
//! panicking worker taking the process down — used to lose everything.
//! The journal makes campaign progress durable: an [`ExploreConfig`] with
//! a `journal` path appends one record per merged candidate *as the
//! campaign runs*, and a later run handed the loaded [`Journal`] as
//! `resume` replays every recorded result without re-executing it,
//! producing the byte-identical [`ExploreOutcome`] (same corpus, same
//! coverage, same repro bytes, same digest) while only paying for the
//! work the interrupted run never finished.
//!
//! [`ExploreConfig`]: crate::ExploreConfig
//! [`ExploreOutcome`]: crate::ExploreOutcome
//!
//! # Format
//!
//! The journal is the same hand-rolled line-oriented text the repro
//! artifact uses — append-only, human-readable, no serialization
//! dependency:
//!
//! ```text
//! pfi-journal v1
//! target gmp
//! world-seed 4242
//! seed 42
//! budget 24
//! max-faults 3
//! epoch 8
//! prefilter true
//! pruning true
//! semantic true
//! seed-corpus 0000000000000000
//! step-budget 0
//! max-retries 2
//! jobs 4
//! snapshots on cache=64
//! dispatch baseline
//! case begin
//! verdict degraded membership changed 2 times under the fault
//! cover gmp:n0:Started
//! cover gmp:n0:Started>GroupView:3
//! case end
//! dispatch n1 recv drop-all HEARTBEAT
//! case begin
//! fault n1 recv drop-all HEARTBEAT
//! verdict violated gmp-no-self-death: n1 declared itself dead
//! oracle gmp-no-self-death
//! cover gmp:n1:SelfDeath
//! shrunk n1 recv drop-all HEARTBEAT
//! shrink-runs 3
//! message n1 declared itself dead
//! case end
//! counters executed=27 rejected=2 pruned=0 inert=0 replayed=0 crashed=0 hung=0
//! complete
//! ```
//!
//! The `jobs` line records the resolved worker count of the run that
//! wrote the journal, the `snapshots` line whether it used snapshot/fork
//! execution (and the LRU capacity), and the `counters` line the final
//! campaign counters — statistics for the campaign record, not identity:
//! outcomes depend on none of them, so resume neither checks them nor
//! requires them to match, and they are the only journal lines that may
//! differ between runs of the same campaign (a resumed run's `counters`
//! line reports its own nonzero `replayed`). `dispatch` lines are the
//! write-*ahead* part: the id of every candidate
//! is journaled before its epoch executes, so an interrupted journal names
//! the work that was in flight when the process died. `case` blocks are
//! the results, appended in canonical merge order (which is deterministic,
//! so an uninterrupted journal's bytes are a pure function of the campaign
//! config — and a resumed campaign, journaling to a fresh file, reproduces
//! those bytes exactly). `quarantine` blocks record candidates the worker
//! supervisor gave up on after exhausting panic retries; they carry no
//! result and are **not** replayed on resume — a resumed campaign retries
//! them fresh. A final `complete` line marks a campaign that finished.
//!
//! # Torn tails
//!
//! The journal is written record-at-a-time, so a killed process leaves at
//! most one partial record at the end of the file. [`Journal::from_text`]
//! drops an unterminated trailing block (and a final line without a
//! newline) silently — that work simply re-executes on resume. Garbage
//! *before* the tail is corruption, not interruption, and is an error.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::runner::Verdict;
use crate::schedule::FaultSchedule;

/// The journal's format-version header line.
const HEADER: &str = "pfi-journal v1";

/// The campaign identity a journal records — enough to verify a resume
/// matches the run that wrote the journal, and for the CLI to reconstruct
/// the campaign config from the journal alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalMeta {
    /// Target name ([`crate::TestTarget::name`]).
    pub target: String,
    /// The target's world seed ([`crate::TestTarget::seed`]).
    pub world_seed: u64,
    /// Exploration RNG seed.
    pub seed: u64,
    /// Mutation budget.
    pub budget: usize,
    /// Maximum faults per schedule.
    pub max_faults: usize,
    /// Candidates per dispatch epoch.
    pub epoch: usize,
    /// Whether static pre-filtering was on.
    pub prefilter: bool,
    /// Whether equivalence pruning was on. Identity, exactly like
    /// `prefilter`: pruning changes the `executed` accounting and which
    /// candidates the journal records, so a journal recorded with it on
    /// must resume with it on.
    pub pruning: bool,
    /// Whether semantic schedule pruning was on. Identity for the same
    /// reason as `pruning`: the semantic tier changes which candidates the
    /// journal records.
    pub semantic: bool,
    /// FNV-1a digest of the seed-corpus schedule ids (0 when the campaign
    /// started from the bare baseline). Identity: a campaign seeded with a
    /// different corpus walks a different space, so resume must be handed
    /// the same seed schedules.
    pub seed_corpus: u64,
    /// Interpreter step budget (0 = interpreter default).
    pub step_budget: u64,
    /// Panic-retry budget per candidate before quarantine.
    pub max_retries: u32,
}

/// One shrink result recorded with a violated case.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalShrink {
    /// The 1-minimal schedule.
    pub shrunk: FaultSchedule,
    /// How many re-executions shrinking performed.
    pub runs: usize,
    /// The confirmed bare violation message — present iff this case was
    /// the *first* discovery of its (oracle, shrunk) failure and the
    /// master ran the confirmation; duplicates skip confirmation and
    /// record nothing.
    pub message: Option<String>,
}

/// One merged candidate result: everything resume needs to replay the
/// merge without re-executing the candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalCase {
    /// The candidate schedule (empty = the baseline).
    pub schedule: FaultSchedule,
    /// The run's verdict.
    pub verdict: Verdict,
    /// Violated oracle name, when the verdict is a violation.
    pub oracle: Option<String>,
    /// The run's full coverage edge set, sorted.
    pub coverage: Vec<String>,
    /// Shrink results, when the run violated an oracle (the baseline is
    /// never shrunk, so a violated baseline legitimately lacks this).
    pub shrink: Option<JournalShrink>,
}

/// The campaign's final counters, journaled as one non-identity line just
/// before the `complete` marker so `results`-style tooling (the pfi-serve
/// daemon's store) can report them after a restart without replaying the
/// campaign. Like `jobs` and `snapshots`, resume never compares this line:
/// `replayed` legitimately differs between an uninterrupted run (0) and a
/// resumed one, so counters are excluded from journal byte-equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalCounters {
    /// Schedules that actually ran (baseline + novel mutants + shrink and
    /// confirmation re-runs).
    pub executed: usize,
    /// Candidates refused as uninstallable.
    pub rejected: usize,
    /// Candidates skipped because their canonical form already executed
    /// with a non-violating verdict.
    pub pruned: usize,
    /// Candidates skipped because their semantic quotient matched a
    /// settled non-violating result.
    pub inert: usize,
    /// Results replayed from a resume journal instead of re-executed.
    pub replayed: usize,
    /// Runs whose target or oracle panicked (contained).
    pub crashed: usize,
    /// Runs a runaway-run watchdog cut short.
    pub hung: usize,
}

/// One candidate the worker supervisor quarantined: it panicked on every
/// retry, so there is no result to replay — only the record that the
/// lineage was dropped. Resume retries these fresh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalQuarantine {
    /// The quarantined schedule.
    pub schedule: FaultSchedule,
    /// Executions attempted (1 + retries).
    pub attempts: u32,
    /// The panic message of the last attempt.
    pub error: String,
}

/// A loaded campaign journal.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// The campaign identity.
    pub meta: JournalMeta,
    /// The resolved worker count of the run that wrote the journal —
    /// statistics, not identity. Campaign outcomes are worker-count-
    /// independent by construction, so resume never checks this (a journal
    /// recorded at `--jobs 4` resumes fine at `--jobs 1`), and — like
    /// `snapshots` — it may legitimately differ between runs of the same
    /// campaign.
    pub jobs: Option<usize>,
    /// Whether the writing run used snapshot/fork execution, and its LRU
    /// capacity — statistics, not identity, exactly like `jobs`: outcomes
    /// are byte-identical with snapshots on or off, so resume never checks
    /// this either (a journal recorded with snapshots on resumes fine with
    /// them off, and vice versa).
    pub snapshots: Option<(bool, usize)>,
    /// Every schedule id journaled as dispatched (write-ahead intent).
    pub dispatched: Vec<String>,
    /// Completed case records, in merge order.
    pub cases: Vec<JournalCase>,
    /// Quarantined candidates, in merge order.
    pub quarantined: Vec<JournalQuarantine>,
    /// The final counters, written just before `complete` — the third
    /// non-identity line class (after `jobs` and `snapshots`): a resumed
    /// run reports its own `replayed`, so this line may differ between
    /// runs of the same campaign and is excluded from byte-equality.
    pub counters: Option<JournalCounters>,
    /// Whether the journal ends with the `complete` marker — the campaign
    /// ran to its full budget.
    pub complete: bool,
}

/// Multi-line text (verdict messages can carry panic payloads) collapsed
/// to the one-line form the journal requires.
fn one_line(s: &str) -> String {
    if s.contains(['\n', '\r']) {
        s.replace(['\n', '\r'], " ")
    } else {
        s.to_string()
    }
}

fn render_meta(meta: &JournalMeta) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    let _ = writeln!(out, "target {}", meta.target);
    let _ = writeln!(out, "world-seed {}", meta.world_seed);
    let _ = writeln!(out, "seed {}", meta.seed);
    let _ = writeln!(out, "budget {}", meta.budget);
    let _ = writeln!(out, "max-faults {}", meta.max_faults);
    let _ = writeln!(out, "epoch {}", meta.epoch);
    let _ = writeln!(out, "prefilter {}", meta.prefilter);
    let _ = writeln!(out, "pruning {}", meta.pruning);
    let _ = writeln!(out, "semantic {}", meta.semantic);
    let _ = writeln!(out, "seed-corpus {:016x}", meta.seed_corpus);
    let _ = writeln!(out, "step-budget {}", meta.step_budget);
    let _ = writeln!(out, "max-retries {}", meta.max_retries);
    out
}

/// The number of metadata lines [`render_meta`] writes after the header.
const META_LINES: usize = 12;

fn render_counters(c: &JournalCounters) -> String {
    format!(
        "counters executed={} rejected={} pruned={} inert={} replayed={} crashed={} hung={}\n",
        c.executed, c.rejected, c.pruned, c.inert, c.replayed, c.crashed, c.hung
    )
}

fn render_case(case: &JournalCase) -> String {
    let mut out = String::new();
    out.push_str("case begin\n");
    for line in case.schedule.to_lines() {
        let _ = writeln!(out, "fault {line}");
    }
    let verdict = match &case.verdict {
        Verdict::Pass => "pass".to_string(),
        Verdict::Degraded(m) => format!("degraded {}", one_line(m)),
        Verdict::Violated(m) => format!("violated {}", one_line(m)),
        Verdict::Invalid(m) => format!("invalid {}", one_line(m)),
        Verdict::Crashed(m) => format!("crashed {}", one_line(m)),
        Verdict::Hung(m) => format!("hung {}", one_line(m)),
    };
    let _ = writeln!(out, "verdict {verdict}");
    if let Some(oracle) = &case.oracle {
        let _ = writeln!(out, "oracle {oracle}");
    }
    for edge in &case.coverage {
        let _ = writeln!(out, "cover {edge}");
    }
    if let Some(shrink) = &case.shrink {
        for line in shrink.shrunk.to_lines() {
            let _ = writeln!(out, "shrunk {line}");
        }
        let _ = writeln!(out, "shrink-runs {}", shrink.runs);
        if let Some(message) = &shrink.message {
            let _ = writeln!(out, "message {}", one_line(message));
        }
    }
    out.push_str("case end\n");
    out
}

fn render_quarantine(q: &JournalQuarantine) -> String {
    let mut out = String::new();
    out.push_str("quarantine begin\n");
    for line in q.schedule.to_lines() {
        let _ = writeln!(out, "fault {line}");
    }
    let _ = writeln!(out, "attempts {}", q.attempts);
    let _ = writeln!(out, "error {}", one_line(&q.error));
    out.push_str("quarantine end\n");
    out
}

impl Journal {
    /// An empty journal for `meta` — what a campaign that died before its
    /// first record would load as.
    pub fn new(meta: JournalMeta) -> Self {
        Journal {
            meta,
            jobs: None,
            snapshots: None,
            dispatched: Vec::new(),
            cases: Vec::new(),
            quarantined: Vec::new(),
            counters: None,
            complete: false,
        }
    }

    /// The case records keyed by schedule id — what resume replays.
    pub fn replay_map(&self) -> BTreeMap<String, JournalCase> {
        self.cases
            .iter()
            .map(|c| (c.schedule.id(), c.clone()))
            .collect()
    }

    /// Renders the canonical text form. Dispatch lines are grouped before
    /// the records (a live journal interleaves them per epoch);
    /// [`from_text`](Journal::from_text) accepts both shapes, and
    /// `from_text(to_text(j)) == j` holds for every journal.
    pub fn to_text(&self) -> String {
        let mut out = render_meta(&self.meta);
        if let Some(jobs) = self.jobs {
            let _ = writeln!(out, "jobs {jobs}");
        }
        if let Some((on, cache)) = self.snapshots {
            let _ = writeln!(
                out,
                "snapshots {} cache={cache}",
                if on { "on" } else { "off" }
            );
        }
        for id in &self.dispatched {
            let _ = writeln!(out, "dispatch {id}");
        }
        for case in &self.cases {
            out.push_str(&render_case(case));
        }
        for q in &self.quarantined {
            out.push_str(&render_quarantine(q));
        }
        if let Some(c) = &self.counters {
            out.push_str(&render_counters(c));
        }
        if self.complete {
            out.push_str("complete\n");
        }
        out
    }

    /// Parses journal text. A torn tail — a final line without its
    /// newline, or an unterminated trailing `case`/`quarantine` block — is
    /// dropped silently (that work re-executes on resume). Anything
    /// malformed *before* the tail is an error.
    pub fn from_text(text: &str) -> Result<Self, String> {
        // Only lines the writer finished (newline-terminated) count: the
        // final `split` element is either the empty string after the last
        // newline or a torn partial line — drop it either way.
        let mut lines: Vec<&str> = text.split('\n').collect();
        lines.pop();
        let mut lines = lines.into_iter();
        if lines.next() != Some(HEADER) {
            return Err(format!("missing {HEADER:?} header"));
        }

        let mut target = None;
        let mut world_seed = None;
        let mut seed = None;
        let mut budget = None;
        let mut max_faults = None;
        let mut epoch = None;
        let mut prefilter = None;
        let mut pruning = None;
        let mut semantic = None;
        let mut seed_corpus = None;
        let mut step_budget = None;
        let mut max_retries = None;
        let parse_u64 = |field: &str, v: &str| {
            v.parse::<u64>()
                .map_err(|e| format!("bad {field} {v:?}: {e}"))
        };
        let parse_bool = |field: &str, v: &str| {
            v.parse::<bool>()
                .map_err(|e| format!("bad {field} {v:?}: {e}"))
        };
        for _ in 0..META_LINES {
            let Some(line) = lines.next() else {
                return Err("journal truncated inside its metadata header".to_string());
            };
            match line.split_once(' ') {
                Some(("target", v)) => target = Some(v.to_string()),
                Some(("world-seed", v)) => world_seed = Some(parse_u64("world-seed", v)?),
                Some(("seed", v)) => seed = Some(parse_u64("seed", v)?),
                Some(("budget", v)) => budget = Some(parse_u64("budget", v)? as usize),
                Some(("max-faults", v)) => max_faults = Some(parse_u64("max-faults", v)? as usize),
                Some(("epoch", v)) => epoch = Some(parse_u64("epoch", v)? as usize),
                Some(("prefilter", v)) => prefilter = Some(parse_bool("prefilter", v)?),
                Some(("pruning", v)) => pruning = Some(parse_bool("pruning", v)?),
                Some(("semantic", v)) => semantic = Some(parse_bool("semantic", v)?),
                Some(("seed-corpus", v)) => {
                    seed_corpus = Some(
                        u64::from_str_radix(v, 16)
                            .map_err(|e| format!("bad seed-corpus {v:?}: {e}"))?,
                    )
                }
                Some(("step-budget", v)) => step_budget = Some(parse_u64("step-budget", v)?),
                Some(("max-retries", v)) => max_retries = Some(parse_u64("max-retries", v)? as u32),
                _ => return Err(format!("unrecognised metadata line: {line:?}")),
            }
        }
        let meta = JournalMeta {
            target: target.ok_or("missing target line")?,
            world_seed: world_seed.ok_or("missing world-seed line")?,
            seed: seed.ok_or("missing seed line")?,
            budget: budget.ok_or("missing budget line")?,
            max_faults: max_faults.ok_or("missing max-faults line")?,
            epoch: epoch.ok_or("missing epoch line")?,
            prefilter: prefilter.ok_or("missing prefilter line")?,
            pruning: pruning.ok_or("missing pruning line")?,
            semantic: semantic.ok_or("missing semantic line")?,
            seed_corpus: seed_corpus.ok_or("missing seed-corpus line")?,
            step_budget: step_budget.ok_or("missing step-budget line")?,
            max_retries: max_retries.ok_or("missing max-retries line")?,
        };

        let mut journal = Journal::new(meta);
        while let Some(line) = lines.next() {
            if journal.complete {
                return Err(format!("content after complete marker: {line:?}"));
            }
            match line {
                "complete" => journal.complete = true,
                "case begin" => {
                    let Some(case) = parse_case(&mut lines)? else {
                        break; // torn trailing block: drop it
                    };
                    journal.cases.push(case);
                }
                "quarantine begin" => {
                    let Some(q) = parse_quarantine(&mut lines)? else {
                        break;
                    };
                    journal.quarantined.push(q);
                }
                _ => match line.split_once(' ') {
                    Some(("dispatch", id)) => journal.dispatched.push(id.to_string()),
                    Some(("jobs", v)) => {
                        journal.jobs = Some(parse_u64("jobs", v)? as usize);
                    }
                    Some(("counters", v)) => {
                        let mut c = JournalCounters::default();
                        for field in v.split_whitespace() {
                            let (name, value) = field
                                .split_once('=')
                                .ok_or_else(|| format!("bad counters field {field:?}"))?;
                            let value = parse_u64(name, value)? as usize;
                            match name {
                                "executed" => c.executed = value,
                                "rejected" => c.rejected = value,
                                "pruned" => c.pruned = value,
                                "inert" => c.inert = value,
                                "replayed" => c.replayed = value,
                                "crashed" => c.crashed = value,
                                "hung" => c.hung = value,
                                other => return Err(format!("unknown counter {other:?}")),
                            }
                        }
                        journal.counters = Some(c);
                    }
                    Some(("snapshots", v)) => {
                        let (mode, rest) = v
                            .split_once(' ')
                            .ok_or_else(|| format!("bad snapshots line: {v:?}"))?;
                        let on = match mode {
                            "on" => true,
                            "off" => false,
                            other => return Err(format!("bad snapshots mode {other:?}")),
                        };
                        let cache = rest
                            .strip_prefix("cache=")
                            .and_then(|c| c.parse::<usize>().ok())
                            .ok_or_else(|| format!("bad snapshots cache: {rest:?}"))?;
                        journal.snapshots = Some((on, cache));
                    }
                    _ => return Err(format!("unrecognised journal line: {line:?}")),
                },
            }
        }
        Ok(journal)
    }

    /// Loads and parses a journal file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
        Self::from_text(&text)
    }

    /// Rebuilds the campaign outcome the recorded cases merge to —
    /// **without executing anything**. This replays exactly the merge the
    /// engine performs (coverage-novel schedules join the corpus in case
    /// order; cases whose shrink carries a confirmed message are the
    /// first discoveries of their failure), so for a complete journal the
    /// reconstructed [`digest`](crate::ExploreOutcome::digest) is
    /// byte-identical to the live run's. Counters come from the journal's
    /// `counters` line (zeros when an interrupted journal never wrote
    /// one); snapshot statistics are not journaled and read as zeros.
    ///
    /// This is what lets `pfi-serve results` answer from the store alone
    /// after a daemon restart.
    pub fn reconstruct(&self) -> crate::ExploreOutcome {
        let mut coverage = crate::Coverage::new();
        let mut corpus: Vec<FaultSchedule> = Vec::new();
        let mut failures = Vec::new();
        for case in &self.cases {
            if case.verdict.is_invalid() {
                continue;
            }
            let novel = coverage.merge(&crate::Coverage::from_edges(case.coverage.clone())) > 0;
            if corpus.is_empty() || novel {
                // The first case is the baseline, which the engine always
                // keeps regardless of novelty.
                corpus.push(case.schedule.clone());
            }
            let Some(shrink) = &case.shrink else { continue };
            let Some(message) = &shrink.message else {
                continue; // duplicate of an earlier discovery
            };
            let oracle = case.oracle.clone().unwrap_or_else(|| "target".to_string());
            failures.push(crate::FoundFailure {
                schedule: case.schedule.clone(),
                shrunk: shrink.shrunk.clone(),
                oracle: oracle.clone(),
                message: message.clone(),
                repro: crate::Repro {
                    target: self.meta.target.clone(),
                    seed: self.meta.world_seed,
                    oracle,
                    message: message.clone(),
                    schedule: shrink.shrunk.clone(),
                },
            });
        }
        let c = self.counters.unwrap_or_default();
        crate::ExploreOutcome {
            corpus,
            coverage,
            failures,
            executed: c.executed,
            rejected: c.rejected,
            pruned: c.pruned,
            inert: c.inert,
            replayed: c.replayed,
            crashed: c.crashed,
            hung: c.hung,
            quarantined: self.quarantined.clone(),
            snapshots: crate::SnapshotStats::default(),
            skipped: Vec::new(),
        }
    }
}

/// Parses one `case` block; `Ok(None)` means the block was unterminated
/// (the torn tail of an interrupted journal).
fn parse_case<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
) -> Result<Option<JournalCase>, String> {
    let mut fault_lines: Vec<&str> = Vec::new();
    let mut verdict = None;
    let mut oracle = None;
    let mut coverage = Vec::new();
    let mut shrunk_lines: Vec<&str> = Vec::new();
    let mut shrink_runs = None;
    let mut message = None;
    let mut ended = false;
    for line in lines {
        if line == "case end" {
            ended = true;
            break;
        }
        match line.split_once(' ') {
            Some(("fault", v)) => fault_lines.push(v),
            Some(("verdict", v)) => {
                let (kind, msg) = v.split_once(' ').unwrap_or((v, ""));
                verdict = Some(match kind {
                    "pass" => Verdict::Pass,
                    "degraded" => Verdict::Degraded(msg.to_string()),
                    "violated" => Verdict::Violated(msg.to_string()),
                    "invalid" => Verdict::Invalid(msg.to_string()),
                    "crashed" => Verdict::Crashed(msg.to_string()),
                    "hung" => Verdict::Hung(msg.to_string()),
                    other => return Err(format!("unknown verdict kind {other:?}")),
                });
            }
            Some(("oracle", v)) => oracle = Some(v.to_string()),
            Some(("cover", v)) => coverage.push(v.to_string()),
            Some(("shrunk", v)) => shrunk_lines.push(v),
            Some(("shrink-runs", v)) => {
                shrink_runs = Some(
                    v.parse::<usize>()
                        .map_err(|e| format!("bad shrink-runs {v:?}: {e}"))?,
                )
            }
            Some(("message", v)) => message = Some(v.to_string()),
            _ => return Err(format!("unrecognised case line: {line:?}")),
        }
    }
    if !ended {
        return Ok(None);
    }
    let verdict = verdict.ok_or("case record missing verdict line")?;
    let shrink = match shrink_runs {
        Some(runs) => Some(JournalShrink {
            shrunk: FaultSchedule::from_lines(shrunk_lines)?,
            runs,
            message,
        }),
        None if !shrunk_lines.is_empty() => {
            return Err("case record has shrunk lines but no shrink-runs".to_string())
        }
        None => None,
    };
    if shrink.is_some() && !verdict.is_violation() {
        return Err("case record has shrink results but a non-violated verdict".to_string());
    }
    Ok(Some(JournalCase {
        schedule: FaultSchedule::from_lines(fault_lines)?,
        verdict,
        oracle,
        coverage,
        shrink,
    }))
}

/// Parses one `quarantine` block; `Ok(None)` means it was unterminated.
fn parse_quarantine<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
) -> Result<Option<JournalQuarantine>, String> {
    let mut fault_lines: Vec<&str> = Vec::new();
    let mut attempts = None;
    let mut error = None;
    let mut ended = false;
    for line in lines {
        if line == "quarantine end" {
            ended = true;
            break;
        }
        match line.split_once(' ') {
            Some(("fault", v)) => fault_lines.push(v),
            Some(("attempts", v)) => {
                attempts = Some(
                    v.parse::<u32>()
                        .map_err(|e| format!("bad attempts {v:?}: {e}"))?,
                )
            }
            Some(("error", v)) => error = Some(v.to_string()),
            _ => return Err(format!("unrecognised quarantine line: {line:?}")),
        }
    }
    if !ended {
        return Ok(None);
    }
    Ok(Some(JournalQuarantine {
        schedule: FaultSchedule::from_lines(fault_lines)?,
        attempts: attempts.ok_or("quarantine record missing attempts line")?,
        error: error.ok_or("quarantine record missing error line")?,
    }))
}

/// Appends journal records to a file as the campaign runs. Each record is
/// written and flushed whole, so a killed process tears at most the last
/// record — exactly what [`Journal::from_text`] tolerates.
///
/// [`create`](JournalWriter::create) truncates: a resumed campaign writes
/// a *fresh* journal (replayed records included, in the same canonical
/// merge order), so the resumed file ends byte-identical to the journal an
/// uninterrupted run would have written.
#[derive(Debug)]
pub struct JournalWriter {
    file: std::fs::File,
    path: PathBuf,
}

impl JournalWriter {
    /// Creates (or truncates) the journal file and writes the metadata
    /// header.
    pub fn create(path: &Path, meta: &JournalMeta) -> Result<Self, String> {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create journal {}: {e}", path.display()))?;
        let mut writer = JournalWriter {
            file,
            path: path.to_path_buf(),
        };
        writer.append(&render_meta(meta))?;
        Ok(writer)
    }

    /// Records the resolved worker count of the run writing this journal.
    /// Statistics only — never part of the campaign identity resume
    /// checks, since outcomes are worker-count-independent.
    pub fn jobs(&mut self, jobs: usize) -> Result<(), String> {
        self.append(&format!("jobs {jobs}\n"))
    }

    /// Records whether the run uses snapshot/fork execution and its LRU
    /// capacity. Statistics only, like [`jobs`](JournalWriter::jobs) —
    /// outcomes are byte-identical either way, so resume never checks it.
    pub fn snapshots(&mut self, on: bool, cache: usize) -> Result<(), String> {
        self.append(&format!(
            "snapshots {} cache={cache}\n",
            if on { "on" } else { "off" }
        ))
    }

    /// Journals dispatch intent: `id` is about to execute (or replay).
    pub fn dispatch(&mut self, id: &str) -> Result<(), String> {
        self.append(&format!("dispatch {id}\n"))
    }

    /// Journals one merged case result.
    pub fn case(&mut self, case: &JournalCase) -> Result<(), String> {
        self.append(&render_case(case))
    }

    /// Journals one quarantined candidate.
    pub fn quarantine(&mut self, q: &JournalQuarantine) -> Result<(), String> {
        self.append(&render_quarantine(q))
    }

    /// Journals the campaign's final counters (non-identity; written just
    /// before [`complete`](JournalWriter::complete)).
    pub fn counters(&mut self, c: &JournalCounters) -> Result<(), String> {
        self.append(&render_counters(c))
    }

    /// Marks the campaign complete (it ran to its full budget).
    pub fn complete(&mut self) -> Result<(), String> {
        self.append("complete\n")
    }

    fn append(&mut self, text: &str) -> Result<(), String> {
        self.file
            .write_all(text.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("journal write to {} failed: {e}", self.path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultOp, ScheduledFault};
    use pfi_core::Direction;

    fn drop_fault(site: u32, msg: &str) -> ScheduledFault {
        ScheduledFault {
            site,
            dir: Direction::Receive,
            op: FaultOp::DropAll {
                msg_type: msg.to_string(),
            },
        }
    }

    fn sample() -> Journal {
        let schedule = FaultSchedule {
            faults: vec![drop_fault(1, "HEARTBEAT")],
        };
        Journal {
            meta: JournalMeta {
                target: "gmp".into(),
                world_seed: 4242,
                seed: 42,
                budget: 24,
                max_faults: 3,
                epoch: 8,
                prefilter: true,
                pruning: true,
                semantic: true,
                seed_corpus: 0,
                step_budget: 0,
                max_retries: 2,
            },
            jobs: Some(4),
            snapshots: Some((true, 64)),
            dispatched: vec!["baseline".to_string(), schedule.id()],
            cases: vec![
                JournalCase {
                    schedule: FaultSchedule::empty(),
                    verdict: Verdict::Pass,
                    oracle: None,
                    coverage: vec!["gmp:n0:Started".into(), "gmp:n0:Started>GroupView:3".into()],
                    shrink: None,
                },
                JournalCase {
                    schedule: schedule.clone(),
                    verdict: Verdict::Violated("gmp-no-self-death: n1 died".into()),
                    oracle: Some("gmp-no-self-death".into()),
                    coverage: vec!["gmp:n1:SelfDeath".into()],
                    shrink: Some(JournalShrink {
                        shrunk: schedule,
                        runs: 3,
                        message: Some("n1 died".into()),
                    }),
                },
            ],
            quarantined: vec![JournalQuarantine {
                schedule: FaultSchedule {
                    faults: vec![drop_fault(2, "COMMIT")],
                },
                attempts: 3,
                error: "oracle exploded".into(),
            }],
            counters: Some(JournalCounters {
                executed: 6,
                rejected: 1,
                pruned: 2,
                inert: 0,
                replayed: 0,
                crashed: 0,
                hung: 0,
            }),
            complete: true,
        }
    }

    #[test]
    fn round_trip_is_value_identical() {
        let journal = sample();
        let text = journal.to_text();
        let parsed = Journal::from_text(&text).unwrap();
        assert_eq!(parsed, journal);
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn torn_tails_drop_the_partial_record_only() {
        let journal = sample();
        let text = journal.to_text();
        // Cut the text at every byte boundary: parsing must either succeed
        // with a prefix of the records, or (inside the metadata header)
        // fail — never accept garbage or panic.
        for cut in 0..text.len() {
            let torn = &text[..cut];
            if !torn.is_ascii() {
                continue;
            }
            match Journal::from_text(torn) {
                Ok(j) => {
                    assert_eq!(j.meta, journal.meta);
                    // Whatever cases survived are a prefix of the real ones.
                    assert!(j.cases.len() <= journal.cases.len());
                    for (got, want) in j.cases.iter().zip(&journal.cases) {
                        assert_eq!(got, want, "cut at {cut}");
                    }
                    assert!(!j.complete || cut == text.len());
                }
                Err(_) => {
                    // Only tolerable while still inside the metadata
                    // header — records must degrade, not error.
                    let meta_len = render_meta(&journal.meta).len();
                    assert!(
                        cut < meta_len,
                        "cut at {cut} (past the {meta_len}-byte header) must not error"
                    );
                }
            }
        }
    }

    #[test]
    fn mid_file_garbage_is_an_error_not_a_tear() {
        let mut text = sample().to_text();
        text.push_str("wat is this\n");
        let err = Journal::from_text(&text).unwrap_err();
        assert!(err.contains("content after complete"), "{err}");

        let corrupted = sample().to_text().replace("verdict pass", "verdict yolo");
        assert!(Journal::from_text(&corrupted).is_err());
    }

    #[test]
    fn writer_and_to_text_agree() {
        let journal = sample();
        let path =
            std::env::temp_dir().join(format!("pfi_journal_{}_writer_agrees", std::process::id()));
        let mut w = JournalWriter::create(&path, &journal.meta).unwrap();
        w.jobs(4).unwrap();
        w.snapshots(true, 64).unwrap();
        for id in &journal.dispatched {
            w.dispatch(id).unwrap();
        }
        for case in &journal.cases {
            w.case(case).unwrap();
        }
        for q in &journal.quarantined {
            w.quarantine(q).unwrap();
        }
        w.counters(journal.counters.as_ref().unwrap()).unwrap();
        w.complete().unwrap();
        let bytes = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(bytes, journal.to_text());
        assert_eq!(Journal::from_text(&bytes).unwrap(), journal);
    }

    #[test]
    fn multiline_messages_are_collapsed_not_corrupting() {
        let mut journal = sample();
        journal.cases[1].verdict = Verdict::Crashed("panicked at:\nassertion failed".into());
        journal.cases[1].oracle = None;
        journal.cases[1].shrink = None;
        let parsed = Journal::from_text(&journal.to_text()).unwrap();
        assert_eq!(
            parsed.cases[1].verdict,
            Verdict::Crashed("panicked at: assertion failed".into())
        );
        // The rest of the journal survives the awkward payload.
        assert_eq!(parsed.cases.len(), 2);
        assert!(parsed.complete);
    }

    #[test]
    fn replay_map_keys_by_schedule_id() {
        let journal = sample();
        let map = journal.replay_map();
        assert_eq!(map.len(), 2);
        assert!(map.contains_key("baseline"));
        assert!(map.contains_key(&journal.cases[1].schedule.id()));
    }
}
