//! Campaign runner: applies generated scripts to a target system and
//! checks the target's invariants.

use pfi_core::{Direction, Filter, PfiControl, PfiReply};
use pfi_gmp::{GmpBugs, GmpConfig, GmpControl, GmpEvent, GmpLayer, GmpReply, GmpStub};
use pfi_rudp::RudpLayer;
use pfi_sim::{NodeId, SimDuration, World};
use pfi_tcp::{ConnId, TcpControl, TcpLayer, TcpProfile, TcpReply, TcpStub};
use pfi_tpc::{TpcControl, TpcEvent, TpcLayer, TpcReply, TpcStub};

use crate::generate::{Campaign, TestCase};

/// Outcome of one test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// All invariants held and service was undisturbed.
    Pass,
    /// Invariants held but service degraded (expected under many faults).
    Degraded(String),
    /// An invariant was violated: the campaign found a bug.
    Violated(String),
}

impl Verdict {
    /// Whether this verdict represents an invariant violation.
    pub fn is_violation(&self) -> bool {
        matches!(self, Verdict::Violated(_))
    }
}

/// One case's result.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The case id from the campaign.
    pub case_id: String,
    /// The verdict.
    pub verdict: Verdict,
}

/// A system a campaign can be run against.
pub trait TestTarget {
    /// Builds a fresh instance; returns the world plus the node and stack
    /// index of the PFI layer the case's filter is installed on.
    fn build(&self) -> (World, NodeId, usize);
    /// Drives the system through the test.
    fn drive(&self, world: &mut World);
    /// Checks invariants after the run.
    fn verdict(&self, world: &mut World) -> Verdict;
}

/// Runs every case of a campaign against fresh instances of the target.
pub fn run_campaign(target: &dyn TestTarget, campaign: &Campaign) -> Vec<CaseResult> {
    campaign
        .cases
        .iter()
        .map(|case| run_case(target, case))
        .collect()
}

/// Runs a single case.
pub fn run_case(target: &dyn TestTarget, case: &TestCase) -> CaseResult {
    let (mut world, node, pfi_layer) = target.build();
    let filter = Filter::script(&case.script).expect("generated scripts always parse");
    let op = match case.dir {
        Direction::Send => PfiControl::SetSendFilter(filter),
        Direction::Receive => PfiControl::SetRecvFilter(filter),
    };
    let _: PfiReply = world.control(node, pfi_layer, op);
    target.drive(&mut world);
    CaseResult {
        case_id: case.id.clone(),
        verdict: target.verdict(&mut world),
    }
}

// ---------------------------------------------------------------------
// GMP target
// ---------------------------------------------------------------------

/// A three-daemon GMP cluster; the case filter is installed on node 1
/// (a non-leader member).
#[derive(Debug, Clone)]
pub struct GmpTarget {
    /// Which implementation bugs are present.
    pub bugs: GmpBugs,
    /// Virtual seconds to run after fault installation.
    pub fault_secs: u64,
}

impl Default for GmpTarget {
    fn default() -> Self {
        GmpTarget {
            bugs: GmpBugs::none(),
            fault_secs: 60,
        }
    }
}

impl GmpTarget {
    fn peers() -> Vec<NodeId> {
        (0..3).map(NodeId::new).collect()
    }
}

impl TestTarget for GmpTarget {
    fn build(&self) -> (World, NodeId, usize) {
        let mut world = World::new(4242);
        let peers = Self::peers();
        for _ in 0..3 {
            let gmd = GmpLayer::new(GmpConfig::new(peers.clone()).with_bugs(self.bugs));
            world.add_node(vec![
                Box::new(gmd),
                Box::new(pfi_core::PfiLayer::new(Box::new(GmpStub))),
                Box::new(RudpLayer::default()),
            ]);
        }
        for &p in &peers {
            world.control::<GmpReply>(p, 0, GmpControl::Start);
        }
        // Converge before the fault is installed.
        world.run_for(SimDuration::from_secs(40));
        (world, peers[1], 1)
    }

    fn drive(&self, world: &mut World) {
        world.run_for(SimDuration::from_secs(self.fault_secs));
    }

    fn verdict(&self, world: &mut World) -> Verdict {
        let peers = Self::peers();
        // Invariant 1: agreement — same group id, same member list, across
        // every committed view anywhere.
        let mut by_gid: std::collections::HashMap<u64, Vec<u32>> = std::collections::HashMap::new();
        for &p in &peers {
            for (_, e) in world.trace().events_of::<GmpEvent>(Some(p)) {
                match e {
                    GmpEvent::GroupView { gid, members, .. } => match by_gid.get(&gid) {
                        None => {
                            by_gid.insert(gid, members);
                        }
                        Some(existing) => {
                            if *existing != members {
                                return Verdict::Violated(format!(
                                    "view disagreement for gid {gid}: {existing:?} vs {members:?}"
                                ));
                            }
                        }
                    },
                    // Invariant 2: a daemon must never declare itself dead.
                    GmpEvent::SelfDeclaredDead => {
                        return Verdict::Violated(format!("{p} declared itself dead"));
                    }
                    // Invariant 3: no timers may fire inside a transition.
                    GmpEvent::SpuriousTimerInTransition { suspect } => {
                        return Verdict::Violated(format!(
                            "{p} saw a stale timer for n{suspect} while in transition"
                        ));
                    }
                    _ => {}
                }
            }
        }
        // Invariant 4 (liveness): the two unfaulted daemons (0 and 2) must
        // end up Up, agreeing, and together.
        let v0 = world
            .control::<GmpReply>(peers[0], 0, GmpControl::Status)
            .expect_status();
        let v2 = world
            .control::<GmpReply>(peers[2], 0, GmpControl::Status)
            .expect_status();
        if v0.group.members != v2.group.members {
            return Verdict::Degraded(format!(
                "unfaulted daemons diverge: {:?} vs {:?} (may still be converging)",
                v0.group.members, v2.group.members
            ));
        }
        if !v0.group.contains(peers[2]) {
            return Verdict::Degraded("unfaulted daemons separated".to_string());
        }
        if !v0.group.contains(peers[1]) {
            return Verdict::Degraded("the faulty member fell out of the group".to_string());
        }
        // Service disturbance: any committed view change after the fault
        // was installed (the convergence phase ends at 40 virtual seconds)
        // means the fault was visible, even if the group healed.
        let churn = world
            .trace()
            .events_of::<GmpEvent>(Some(peers[0]))
            .iter()
            .filter(|(t, e)| t.as_secs_f64() > 40.0 && matches!(e, GmpEvent::GroupView { .. }))
            .count();
        if churn > 0 {
            Verdict::Degraded(format!("membership changed {churn} times under the fault"))
        } else {
            Verdict::Pass
        }
    }
}

// ---------------------------------------------------------------------
// TCP target
// ---------------------------------------------------------------------

/// A client/server TCP transfer; the case filter is installed on the
/// server's PFI layer.
#[derive(Debug, Clone)]
pub struct TcpTarget {
    /// Client profile.
    pub profile: TcpProfile,
    /// Bytes to transfer.
    pub payload_len: usize,
    /// Virtual seconds to run after fault installation.
    pub fault_secs: u64,
}

impl Default for TcpTarget {
    fn default() -> Self {
        TcpTarget {
            profile: TcpProfile::sunos_4_1_3(),
            payload_len: 8_192,
            fault_secs: 180,
        }
    }
}

impl TcpTarget {
    fn payload(&self) -> Vec<u8> {
        (0..self.payload_len)
            .map(|i| (i * 11 % 256) as u8)
            .collect()
    }

    fn client() -> NodeId {
        NodeId::new(0)
    }
    fn server() -> NodeId {
        NodeId::new(1)
    }
    const CONN: ConnId = ConnId(0);
}

// ---------------------------------------------------------------------
// 2PC target
// ---------------------------------------------------------------------

/// A coordinator plus three participants running one transaction; the case
/// filter is installed on participant 1's PFI layer.
///
/// Invariant: **decision agreement** — no two nodes ever apply conflicting
/// decisions for the same transaction. Faults may block participants or
/// abort the transaction (degradation), never split the decision.
#[derive(Debug, Clone, Default)]
pub struct TpcTarget;

impl TestTarget for TpcTarget {
    fn build(&self) -> (World, NodeId, usize) {
        let mut world = World::new(555);
        for _ in 0..4 {
            world.add_node(vec![
                Box::new(TpcLayer::default()),
                Box::new(pfi_core::PfiLayer::new(Box::new(TpcStub))),
                Box::new(RudpLayer::default()),
            ]);
        }
        (world, NodeId::new(1), 1)
    }

    fn drive(&self, world: &mut World) {
        let participants: Vec<NodeId> = (1..4).map(NodeId::new).collect();
        world.control::<TpcReply>(
            NodeId::new(0),
            0,
            TpcControl::Begin {
                txid: 1,
                participants,
            },
        );
        world.run_for(SimDuration::from_secs(60));
    }

    fn verdict(&self, world: &mut World) -> Verdict {
        let mut decision: Option<bool> = None;
        let mut blocked = 0usize;
        for i in 0..4 {
            for (_, e) in world.trace().events_of::<TpcEvent>(Some(NodeId::new(i))) {
                match e {
                    TpcEvent::DecisionApplied { commit, .. }
                    | TpcEvent::DecisionMade { commit, .. } => match decision {
                        None => decision = Some(commit),
                        Some(d) if d != commit => {
                            return Verdict::Violated(format!("decision split: {d} vs {commit}"))
                        }
                        _ => {}
                    },
                    TpcEvent::Blocked { .. } => blocked += 1,
                    _ => {}
                }
            }
        }
        if blocked > 0 {
            return Verdict::Degraded(format!("{blocked} participant(s) blocked in uncertainty"));
        }
        match decision {
            Some(true) => Verdict::Pass,
            Some(false) => Verdict::Degraded("transaction aborted".to_string()),
            None => Verdict::Degraded("no decision reached".to_string()),
        }
    }
}

impl TestTarget for TcpTarget {
    fn build(&self) -> (World, NodeId, usize) {
        let mut world = World::new(777);
        let client = world.add_node(vec![Box::new(TcpLayer::new(self.profile.clone()))]);
        let server = world.add_node(vec![
            Box::new(TcpLayer::new(TcpProfile::rfc_reference())),
            Box::new(pfi_core::PfiLayer::new(Box::new(TcpStub))),
        ]);
        world.control::<TcpReply>(server, 0, TcpControl::Listen { port: 80 });
        // Open the connection only after the fault is installed — SYN-path
        // faults are part of the campaign.
        let _ = client;
        (world, server, 1)
    }

    fn drive(&self, world: &mut World) {
        let conn = world
            .control::<TcpReply>(
                Self::client(),
                0,
                TcpControl::Open {
                    local_port: 0,
                    remote: Self::server(),
                    remote_port: 80,
                },
            )
            .expect_conn();
        debug_assert_eq!(conn, Self::CONN);
        world.run_for(SimDuration::from_secs(5));
        let payload = self.payload();
        world.control::<TcpReply>(
            Self::client(),
            0,
            TcpControl::Send {
                conn,
                data: payload,
            },
        );
        world.run_for(SimDuration::from_secs(self.fault_secs));
    }

    fn verdict(&self, world: &mut World) -> Verdict {
        let payload = self.payload();
        let sconn =
            match world.control::<TcpReply>(Self::server(), 0, TcpControl::AcceptedOn { port: 80 })
            {
                TcpReply::MaybeConn(Some(c)) => c,
                _ => return Verdict::Degraded("connection never established".to_string()),
            };
        let got = world
            .control::<TcpReply>(Self::server(), 0, TcpControl::RecvTake { conn: sconn })
            .expect_data();
        // The integrity invariant: whatever arrives must be an exact prefix.
        if got.len() > payload.len() || got[..] != payload[..got.len()] {
            return Verdict::Violated(format!(
                "delivered {} bytes that are not a prefix of the sent stream",
                got.len()
            ));
        }
        if got.len() == payload.len() {
            Verdict::Pass
        } else {
            Verdict::Degraded(format!(
                "only {}/{} bytes arrived",
                got.len(),
                payload.len()
            ))
        }
    }
}
