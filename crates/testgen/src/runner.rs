//! Campaign runner: applies generated scripts or fault schedules to a
//! target system, extracts coverage, and judges the run with the target's
//! oracles.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use pfi_core::{Direction, Filter, PfiControl, PfiEvent, PfiReply};
use pfi_fleet::{Fleet, FleetReport, JobRunner};
use pfi_gmp::{GmpBugs, GmpConfig, GmpControl, GmpEvent, GmpLayer, GmpReply, GmpStub};
use pfi_rudp::RudpLayer;
use pfi_sim::{NodeId, SimDuration, TraceLog, World};
use pfi_tcp::{ConnId, TcpControl, TcpLayer, TcpProfile, TcpReply, TcpStub};
use pfi_tpc::{TpcControl, TpcEvent, TpcLayer, TpcReply, TpcStub};

use crate::coverage::Coverage;
use crate::generate::{Campaign, TestCase};
use crate::oracle::{
    first_violation, DeliveredStream, GmpAgreementOracle, GmpLeaderUniquenessOracle,
    GmpNoSelfDeathOracle, GmpProclaimRoutingOracle, GmpTimerDisciplineOracle, Oracle,
    TcpNoSilentCloseOracle, TcpPrefixOracle, TcpRtoBoundsOracle, TpcAtomicityOracle,
};
use crate::schedule::{FaultSchedule, SiteScripts};
use crate::snapshot::{prefix_digests, CaseSnapshot, SnapshotStore};

/// Outcome of one test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// All invariants held and service was undisturbed.
    Pass,
    /// Invariants held but service degraded (expected under many faults).
    Degraded(String),
    /// An invariant was violated: the campaign found a bug.
    Violated(String),
    /// The schedule could not be installed — a fault site the target does
    /// not have, or a lowered script that does not parse. Nothing ran;
    /// the run contributed no coverage. Campaign pre-filtering
    /// ([`crate::ExploreConfig::prefilter`]) rejects exactly these
    /// schedules without executing them.
    Invalid(String),
    /// The target (or an oracle) panicked mid-run. The panic was contained
    /// by the runner: coverage reached before the crash is kept, and any
    /// oracle violation observed on the partial trace still wins over this
    /// verdict. Says nothing about the protocol — it is an infrastructure
    /// finding about the harness or target code itself.
    Crashed(String),
    /// A runaway-run watchdog cut the run short: the drive exhausted its
    /// [`RunLimits::event_cap`] (a message storm stalled virtual time), or
    /// a filter script burned through its interpreter step budget (an
    /// unbounded loop). The truncated trace was still judged — an oracle
    /// violation observed before the cutoff wins over this verdict.
    Hung(String),
}

impl Verdict {
    /// Whether this verdict represents an invariant violation.
    pub fn is_violation(&self) -> bool {
        matches!(self, Verdict::Violated(_))
    }

    /// Whether the schedule was refused at install time (nothing ran).
    pub fn is_invalid(&self) -> bool {
        matches!(self, Verdict::Invalid(_))
    }

    /// Whether the target or an oracle panicked mid-run.
    pub fn is_crashed(&self) -> bool {
        matches!(self, Verdict::Crashed(_))
    }

    /// Whether a runaway-run watchdog cut the run short.
    pub fn is_hung(&self) -> bool {
        matches!(self, Verdict::Hung(_))
    }

    /// Whether this verdict reports harness trouble (crash or hang) rather
    /// than a protocol judgement — campaigns count these separately and
    /// the CLI maps them to a distinct exit code.
    pub fn is_infrastructure(&self) -> bool {
        self.is_crashed() || self.is_hung()
    }
}

/// One case's result — enough to diagnose and replay the case without
/// re-running the whole campaign.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The case id from the campaign.
    pub case_id: String,
    /// The target's world seed the case ran under.
    pub seed: u64,
    /// The generated filter script the case installed.
    pub script: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Name of the violated oracle, when `verdict` is a violation found by
    /// one (service-level violations from the target itself leave this
    /// empty).
    pub oracle: Option<String>,
    /// Behavioural coverage the run reached.
    pub coverage: Coverage,
}

/// Outcome of running one [`FaultSchedule`].
#[derive(Debug, Clone)]
pub struct ScheduleRun {
    /// The schedule's stable id.
    pub schedule_id: String,
    /// The target's world seed.
    pub seed: u64,
    /// The lowered per-site filter scripts.
    pub scripts: Vec<SiteScripts>,
    /// The verdict.
    pub verdict: Verdict,
    /// Name of the violated oracle, if any.
    pub oracle: Option<String>,
    /// Behavioural coverage the run reached.
    pub coverage: Coverage,
}

/// Per-run event budget for target drives. A healthy run of any bundled
/// target is a few thousand events; fault compositions that amplify
/// messages (duplicate + proclaim forwarding, say) can storm into the
/// millions and stall a campaign. The cap cuts such runs short
/// deterministically — the truncated trace still yields coverage and is
/// still judged by the oracles. The default for [`RunLimits::event_cap`].
pub const DRIVE_EVENT_CAP: u64 = 250_000;

/// Runaway-run watchdog budgets, applied per executed schedule.
///
/// Both budgets are measured in deterministic units (simulator events and
/// interpreter steps), so a run that trips a watchdog trips it identically
/// on every replay, on every worker, at every job count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Maximum simulator events one drive phase may process before the run
    /// is declared [`Verdict::Hung`]. See [`DRIVE_EVENT_CAP`].
    pub event_cap: u64,
    /// Interpreter step budget installed on every fault site's filter
    /// interpreters (via [`PfiControl::SetStepBudget`]) before the drive.
    /// A script that exhausts it fails open with a budget-exhausted trace
    /// event, and the run is declared [`Verdict::Hung`]. `0` keeps the
    /// interpreter's own default fuel limit.
    pub step_budget: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            event_cap: DRIVE_EVENT_CAP,
            step_budget: 0,
        }
    }
}

/// A system a campaign can be run against.
pub trait TestTarget {
    /// Short stable name (used in repro artifacts).
    fn name(&self) -> &'static str;
    /// The world seed every run of this target uses.
    fn seed(&self) -> u64;
    /// How many nodes the target builds (bounds destination faults).
    fn node_count(&self) -> u32;
    /// How many fault sites [`build`](TestTarget::build) returns (bounds
    /// a schedule's `site` indices without building a world).
    fn fault_sites(&self) -> u32 {
        1
    }
    /// Which fault site grid-generated single-script cases install on.
    fn primary_site(&self) -> usize {
        0
    }
    /// Builds a fresh instance; returns the world plus the fault sites —
    /// each a `(node, stack index)` of a PFI layer schedules can put
    /// filters on. Must return exactly
    /// [`fault_sites`](TestTarget::fault_sites) entries.
    fn build(&self) -> (World, Vec<(NodeId, usize)>);
    /// Drives the system through the test. Returns `true` iff the event
    /// cap in `limits` cut the drive short — the runner escalates such
    /// runs to [`Verdict::Hung`] after the oracles have judged the
    /// truncated trace.
    fn drive(&self, world: &mut World, limits: &RunLimits) -> bool;
    /// Records end-of-run facts into the trace (e.g. the delivered byte
    /// stream) before the oracles judge it.
    fn harvest(&self, _world: &mut World) {}
    /// The invariant oracles judging a finished run's trace.
    fn oracles(&self) -> Vec<Box<dyn Oracle>>;
    /// Service-level check after the oracles pass: `Pass` or `Degraded`.
    fn verdict(&self, world: &mut World) -> Verdict;
    /// The target's static [`FlowModel`](crate::reach::FlowModel), when it
    /// has one — what the spec and topology guarantee about the traffic
    /// each fault site observes. `None` (the default) disables semantic
    /// schedule pruning for the target; it never changes which schedules
    /// *execute* to what, only which provably-equivalent candidates the
    /// explorer skips.
    fn flow_model(&self) -> Option<crate::reach::FlowModel> {
        None
    }
}

/// Builds fresh [`TestTarget`]s on demand — the `Send + Sync` handle a
/// fleet worker uses to construct its own target on its own thread.
///
/// Built worlds are arena-backed and `Send`, so a [`PreparedCase`] can
/// cross the thread boundary directly ([`run_campaign_fleet`] prepares on
/// the master and ships the built world). The factory survives as the
/// compatibility path: exploration workers still build worlds locally —
/// there, per-candidate world construction *is* the parallel work — and
/// every worker needs its own (cheap, plain-data) target for driving and
/// judging whatever world it is handed.
pub trait TargetFactory: Send + Sync {
    /// Builds one target instance.
    fn make(&self) -> Box<dyn TestTarget>;
}

/// Every `Clone + Send + Sync` target description is its own factory —
/// the bundled targets ([`GmpTarget`], [`TcpTarget`], [`TpcTarget`]) are
/// plain-data configs, so `Arc::new(GmpTarget::default())` is a factory.
impl<T: TestTarget + Clone + Send + Sync + 'static> TargetFactory for T {
    fn make(&self) -> Box<dyn TestTarget> {
        Box::new(self.clone())
    }
}

/// Runs every case of a campaign against fresh instances of the target.
pub fn run_campaign(target: &dyn TestTarget, campaign: &Campaign) -> Vec<CaseResult> {
    campaign
        .cases
        .iter()
        .map(|case| run_case(target, case))
        .collect()
}

/// Runs a campaign's cases fanned out across `jobs` worker threads. The
/// master prepares each case — builds the world, installs the filters —
/// and dispatches the built [`PreparedCase`] to the fleet; workers only
/// drive and judge. Cases are independent pure functions of their
/// scripts, so results come back in campaign order and are byte-identical
/// to [`run_campaign`] for any job count; only wall-clock time and the
/// [`FleetReport`] vary.
pub fn run_campaign_fleet(
    factory: Arc<dyn TargetFactory>,
    campaign: &Campaign,
    jobs: usize,
) -> (Vec<CaseResult>, FleetReport) {
    type PreparedJob = (TestCase, Result<PreparedCase, Verdict>);
    let master = factory.make();
    let mut fleet: Fleet<PreparedJob, CaseResult> = Fleet::new(jobs, move |_worker| {
        // Workers hold their own target for the drive/judge half; the
        // expensive half (the built world) arrives inside the job.
        let target = factory.make();
        Box::new(move |(case, prepared): PreparedJob| {
            run_case_prepared(target.as_ref(), &case, prepared)
        }) as Box<dyn JobRunner<PreparedJob, CaseResult>>
    });
    let batch: Vec<PreparedJob> = campaign
        .cases
        .iter()
        .map(|case| {
            let scripts = case_scripts(master.as_ref(), case);
            let prepared = prepare(
                master.as_ref(),
                std::slice::from_ref(&scripts),
                &RunLimits::default(),
            );
            (case.clone(), prepared)
        })
        .collect();
    let results = fleet
        .run_epoch(batch)
        .into_iter()
        .map(|item| item.result)
        .collect();
    (results, fleet.shutdown())
}

/// The single-site script placement a grid-generated case lowers to.
fn case_scripts(target: &dyn TestTarget, case: &TestCase) -> SiteScripts {
    SiteScripts {
        site: target.primary_site() as u32,
        send: match case.dir {
            Direction::Send => case.script.clone(),
            Direction::Receive => String::new(),
        },
        recv: match case.dir {
            Direction::Send => String::new(),
            Direction::Receive => case.script.clone(),
        },
    }
}

/// Runs a single grid-generated case (on the target's primary site).
pub fn run_case(target: &dyn TestTarget, case: &TestCase) -> CaseResult {
    let script = case_scripts(target, case);
    let (verdict, oracle, coverage) =
        execute(target, std::slice::from_ref(&script), &RunLimits::default());
    CaseResult {
        case_id: case.id.clone(),
        seed: target.seed(),
        script: case.script.clone(),
        verdict,
        oracle,
        coverage,
    }
}

/// Drives and judges a case prepared elsewhere — the worker-side half of
/// the prebuilt-case dispatch in [`run_campaign_fleet`]. `Err` carries the
/// install refusal [`prepare`] produced on the preparing thread.
/// Byte-identical to [`run_case`] on the same case: preparation is
/// deterministic and the drive is a pure function of the prepared world.
pub fn run_case_prepared(
    target: &dyn TestTarget,
    case: &TestCase,
    prepared: Result<PreparedCase, Verdict>,
) -> CaseResult {
    let (verdict, oracle, coverage) = match prepared {
        Ok(p) => run_prepared(target, p, &RunLimits::default()),
        Err(verdict) => (verdict, None, Coverage::new()),
    };
    CaseResult {
        case_id: case.id.clone(),
        seed: target.seed(),
        script: case.script.clone(),
        verdict,
        oracle,
        coverage,
    }
}

/// Runs one fault schedule: lowers it, installs the filters on each fault
/// site it touches, and judges the run. Uses the default [`RunLimits`];
/// campaigns with a configured step budget use
/// [`run_schedule_limited`].
pub fn run_schedule(target: &dyn TestTarget, schedule: &FaultSchedule) -> ScheduleRun {
    run_schedule_limited(target, schedule, &RunLimits::default())
}

/// [`run_schedule`] with explicit runaway-run watchdog budgets.
pub fn run_schedule_limited(
    target: &dyn TestTarget,
    schedule: &FaultSchedule,
    limits: &RunLimits,
) -> ScheduleRun {
    let scripts = schedule.lower();
    let (verdict, oracle, coverage) = execute(target, &scripts, limits);
    ScheduleRun {
        schedule_id: schedule.id(),
        seed: target.seed(),
        scripts,
        verdict,
        oracle,
        coverage,
    }
}

/// A fully-built, ready-to-drive case: the world with its fault-site
/// filters installed, step budgets armed, and timer tracing on.
///
/// The whole point of the arena-backed world refactor: `World` owns all of
/// its state as plain data, so a `PreparedCase` is `Send` — built on one
/// thread (typically the campaign master) and driven on another (a fleet
/// worker). [`run_campaign_fleet`] dispatches these as its job payload.
#[derive(Debug)]
pub struct PreparedCase {
    world: World,
    sites: Vec<(NodeId, usize)>,
}

// Compile-enforced: prepared cases must stay dispatchable across fleet
// worker threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<PreparedCase>();
};

impl PreparedCase {
    /// The fault sites the target built — each a `(node, stack index)` of
    /// a PFI layer.
    pub fn sites(&self) -> &[(NodeId, usize)] {
        &self.sites
    }
}

/// Builds one case up to the point of driving it: validate, build the
/// world, arm timer tracing, install step budgets and filters.
///
/// Scripts that cannot be installed — a site index the target does not
/// have (e.g. a repro artifact written for a different target), or a
/// script that does not parse — are refused *before* the world is built:
/// `Err(Verdict::Invalid)` is exactly the refusal campaign pre-filtering
/// predicts without executing.
pub fn prepare(
    target: &dyn TestTarget,
    scripts: &[SiteScripts],
    limits: &RunLimits,
) -> Result<PreparedCase, Verdict> {
    let install_errors = crate::validate::scripts_install_errors(scripts, target.fault_sites());
    if !install_errors.is_empty() {
        return Err(Verdict::Invalid(install_errors.join("; ")));
    }
    let mut case = prepare_base(target, limits);
    install_scripts(&mut case.world, &case.sites, target.name(), scripts);
    Ok(case)
}

/// The filter-free half of [`prepare`]: build the world, arm timer
/// tracing and step budgets, install *nothing*. This is the state the
/// snapshot store caches under the schedule prefix chain's `d_0` — every
/// schedule of the same target and limits shares it, and forking it skips
/// `TestTarget::build` (for GMP, 40 virtual seconds of convergence
/// traffic) on every subsequent run.
pub fn prepare_base(target: &dyn TestTarget, limits: &RunLimits) -> PreparedCase {
    let (mut world, sites) = target.build();
    // Timer life-cycle records are a coverage signal; trace them for the
    // driven phase (build-time convergence stays untraced on purpose).
    world.trace_timers = true;
    if limits.step_budget > 0 {
        for &(node, pfi_layer) in &sites {
            let _: PfiReply = world.control(
                node,
                pfi_layer,
                PfiControl::SetStepBudget(limits.step_budget),
            );
        }
    }
    PreparedCase { world, sites }
}

/// Captures the prepared fault-free base world as a cacheable snapshot,
/// or `None` when a layer refuses to clone (native filters, unclonable
/// stubs). The campaign master uses this to warm a cold dispatch store —
/// e.g. on resume, where the baseline was replayed rather than run.
pub(crate) fn capture_base(target: &dyn TestTarget, limits: &RunLimits) -> Option<CaseSnapshot> {
    let base = prepare_base(target, limits);
    let world = base.world.try_snapshot().ok()?;
    Some(CaseSnapshot::new(
        crate::snapshot::base_digest(target, limits),
        FaultSchedule::empty(),
        base.sites,
        world,
    ))
}

/// Installs lowered per-site filter scripts on a prepared world. Filter
/// installation is plain control-plane assignment: it emits no trace
/// events, draws no RNG, and advances no virtual time — which is exactly
/// what makes a forked-then-installed world byte-identical to a
/// cold-prepared one.
fn install_scripts(
    world: &mut World,
    sites: &[(NodeId, usize)],
    target_name: &str,
    scripts: &[SiteScripts],
) {
    for s in scripts {
        let &(node, pfi_layer) = sites.get(s.site as usize).unwrap_or_else(|| {
            panic!(
                "schedule addresses fault site n{} but target {:?} has only {}",
                s.site,
                target_name,
                sites.len()
            )
        });
        for (script, make_op) in [
            (&s.send, PfiControl::SetSendFilter as fn(Filter) -> _),
            (&s.recv, PfiControl::SetRecvFilter as fn(Filter) -> _),
        ] {
            if !script.is_empty() {
                let filter = Filter::script(script).expect("generated scripts always parse");
                let _: PfiReply = world.control(node, pfi_layer, make_op(filter));
            }
        }
    }
}

/// Installs only the scripts that *differ* from what a forked snapshot
/// already carries. `SetSendFilter`/`SetRecvFilter` replace the whole
/// filter, and a cached prefix's per-site script is always a clause-prefix
/// of the full schedule's (lowering groups clauses by site preserving
/// fault order), so replacing the changed directions wholesale is exact.
fn install_suffix(
    world: &mut World,
    sites: &[(NodeId, usize)],
    target_name: &str,
    installed: &[SiteScripts],
    full: &[SiteScripts],
) {
    let mut suffix: Vec<SiteScripts> = Vec::new();
    for s in full {
        let old = installed.iter().find(|o| o.site == s.site);
        let old_send = old.map_or("", |o| o.send.as_str());
        let old_recv = old.map_or("", |o| o.recv.as_str());
        debug_assert!(
            (s.send.is_empty() <= old_send.is_empty())
                && (s.recv.is_empty() <= old_recv.is_empty()),
            "cached prefix carries a filter the full schedule lacks (site n{})",
            s.site
        );
        if s.send != old_send || s.recv != old_recv {
            suffix.push(SiteScripts {
                site: s.site,
                send: if s.send != old_send {
                    s.send.clone()
                } else {
                    String::new()
                },
                recv: if s.recv != old_recv {
                    s.recv.clone()
                } else {
                    String::new()
                },
            });
        }
    }
    install_scripts(world, sites, target_name, &suffix);
}

/// [`run_schedule_limited`] with snapshot/fork execution: consult `store`
/// for the longest cached schedule prefix, fork it instead of building
/// cold, and install only the suffix of filters before driving. On a full
/// miss the freshly prepared *base* world (no filters) is captured into
/// the store under the chain's `d_0`, so every later schedule of the same
/// target forks it. `None` for `store` is exactly
/// [`run_schedule_limited`].
///
/// Byte-identical to the cold path for every schedule: forks restore the
/// captured world exactly, and filter installation has no observable side
/// effects beyond the filters themselves. Uninstallable schedules are
/// refused ([`Verdict::Invalid`]) *before* the store is consulted —
/// corrupted candidates (e.g. [`crate::ScheduleMutator`] scrambles) never
/// enter the cache and never count as lookups.
pub fn run_schedule_snapshotted(
    target: &dyn TestTarget,
    schedule: &FaultSchedule,
    limits: &RunLimits,
    store: Option<&mut SnapshotStore>,
) -> ScheduleRun {
    let Some(store) = store else {
        return run_schedule_limited(target, schedule, limits);
    };
    let scripts = schedule.lower();
    let install_errors = crate::validate::scripts_install_errors(&scripts, target.fault_sites());
    if !install_errors.is_empty() {
        return ScheduleRun {
            schedule_id: schedule.id(),
            seed: target.seed(),
            scripts,
            verdict: Verdict::Invalid(install_errors.join("; ")),
            oracle: None,
            coverage: Coverage::new(),
        };
    }
    let digests = prefix_digests(target, limits, schedule);
    let case = match store.lookup_longest(&digests) {
        Some(snap) => {
            store.note_skipped(snap.events_processed());
            let mut world = snap.fork();
            let sites = snap.sites().to_vec();
            install_suffix(
                &mut world,
                &sites,
                target.name(),
                &snap.installed_scripts(),
                &scripts,
            );
            PreparedCase { world, sites }
        }
        None => {
            let mut base = prepare_base(target, limits);
            // Capture the fault-free base for every later schedule of this
            // target. Targets whose layers refuse to clone (native filters,
            // say) simply keep building cold — correctness never depends
            // on the cache.
            if let Ok(world) = base.world.try_snapshot() {
                store.insert(Arc::new(CaseSnapshot::new(
                    digests[0],
                    FaultSchedule::empty(),
                    base.sites.clone(),
                    world,
                )));
            }
            install_scripts(&mut base.world, &base.sites, target.name(), &scripts);
            base
        }
    };
    let (verdict, oracle, coverage) = run_prepared(target, case, limits);
    ScheduleRun {
        schedule_id: schedule.id(),
        seed: target.seed(),
        scripts,
        verdict,
        oracle,
        coverage,
    }
}

/// The shared execution path: [`prepare`], then [`run_prepared`] —
/// build-and-drive on the calling thread.
fn execute(
    target: &dyn TestTarget,
    scripts: &[SiteScripts],
    limits: &RunLimits,
) -> (Verdict, Option<String>, Coverage) {
    match prepare(target, scripts, limits) {
        Ok(case) => run_prepared(target, case, limits),
        Err(verdict) => (verdict, None, Coverage::new()),
    }
}

/// Drives and judges a [`PreparedCase`]: drive, harvest, extract
/// coverage, judge. The case may have been prepared on a different
/// thread — the result is a pure function of the prepared world either
/// way.
///
/// The drive/harvest phase and both judging phases run under panic guards:
/// a target or oracle that panics yields [`Verdict::Crashed`] instead of
/// unwinding into the campaign loop (or taking a fleet worker's whole
/// epoch with it). Coverage is extracted from the trace *after* the guard,
/// so a crashed run's pre-crash edges still feed corpus growth — a
/// crashing schedule leaves no silent hole in the search space. Verdict
/// priority: `Violated` (even on a truncated or partial trace) beats
/// `Crashed` beats `Hung` beats the target's own service verdict.
pub fn run_prepared(
    target: &dyn TestTarget,
    case: PreparedCase,
    limits: &RunLimits,
) -> (Verdict, Option<String>, Coverage) {
    let PreparedCase { mut world, .. } = case;
    let driven = catch_unwind(AssertUnwindSafe(|| {
        let capped = target.drive(&mut world, limits);
        target.harvest(&mut world);
        capped
    }));
    // The trace survives a drive panic; salvage whatever coverage the run
    // reached before it died.
    let coverage = Coverage::from_trace(world.trace());
    // Judge even truncated and partial traces: a violation observed before
    // a crash or hang is still a finding, and shrink/replay re-judge the
    // same truncated trace deterministically.
    match catch_unwind(AssertUnwindSafe(|| {
        first_violation(&target.oracles(), world.trace())
    })) {
        Ok(Some((name, msg))) => {
            return (
                Verdict::Violated(format!("{name}: {msg}")),
                Some(name.to_string()),
                coverage,
            );
        }
        Ok(None) => {}
        Err(payload) => {
            return (
                Verdict::Crashed(format!("oracle panicked: {}", panic_text(payload.as_ref()))),
                None,
                coverage,
            );
        }
    }
    let capped = match driven {
        Ok(capped) => capped,
        Err(payload) => {
            return (
                Verdict::Crashed(format!("target panicked: {}", panic_text(payload.as_ref()))),
                None,
                coverage,
            );
        }
    };
    if capped {
        return (
            Verdict::Hung(format!(
                "drive exhausted its {} simulator-event budget",
                limits.event_cap
            )),
            None,
            coverage,
        );
    }
    if let Some(error) = budget_exhausted_script(world.trace()) {
        return (
            Verdict::Hung(format!("filter script watchdog fired: {error}")),
            None,
            coverage,
        );
    }
    match catch_unwind(AssertUnwindSafe(|| target.verdict(&mut world))) {
        Ok(verdict) => (verdict, None, coverage),
        Err(payload) => (
            Verdict::Crashed(format!(
                "target verdict panicked: {}",
                panic_text(payload.as_ref())
            )),
            None,
            coverage,
        ),
    }
}

/// First budget-exhausted script failure in the trace, if any — the
/// interpreter's step-budget watchdog firing is what distinguishes a
/// looping script (a hang) from a merely broken one (fail-open noise).
fn budget_exhausted_script(trace: &TraceLog) -> Option<String> {
    trace
        .events_with_nodes::<PfiEvent>()
        .into_iter()
        .find_map(|(_, node, event)| match event {
            PfiEvent::ScriptFailed {
                budget_exhausted: true,
                dir,
                error,
            } => Some(format!("{node} {dir:?} filter: {error}")),
            _ => None,
        })
}

/// Renders a caught panic payload. Note the `&dyn Any` must be the *boxed*
/// value, not a reference to the box (`Box<dyn Any>` itself implements
/// `Any`, so `downcast_ref` on the wrong one always misses).
pub(crate) fn panic_text(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------
// GMP target
// ---------------------------------------------------------------------

/// A three-daemon GMP cluster. Every daemon's PFI layer is a fault site
/// (site index = node index); grid-generated single-script cases fault
/// node 1, a non-leader member.
#[derive(Debug, Clone)]
pub struct GmpTarget {
    /// Which implementation bugs are present.
    pub bugs: GmpBugs,
    /// Virtual seconds to run after fault installation.
    pub fault_secs: u64,
}

impl Default for GmpTarget {
    fn default() -> Self {
        GmpTarget {
            bugs: GmpBugs::none(),
            fault_secs: 60,
        }
    }
}

impl GmpTarget {
    fn peers() -> Vec<NodeId> {
        (0..3).map(NodeId::new).collect()
    }
}

impl TestTarget for GmpTarget {
    fn name(&self) -> &'static str {
        "gmp"
    }

    fn seed(&self) -> u64 {
        4242
    }

    fn node_count(&self) -> u32 {
        3
    }

    fn flow_model(&self) -> Option<crate::reach::FlowModel> {
        Some(crate::reach::FlowModel::gmp())
    }

    fn fault_sites(&self) -> u32 {
        3
    }

    fn primary_site(&self) -> usize {
        1 // grid cases fault node 1, a non-leader member
    }

    fn build(&self) -> (World, Vec<(NodeId, usize)>) {
        let mut world = World::new(self.seed());
        let peers = Self::peers();
        for _ in 0..3 {
            let gmd = GmpLayer::new(GmpConfig::new(peers.clone()).with_bugs(self.bugs));
            world.add_node(vec![
                Box::new(gmd),
                Box::new(pfi_core::PfiLayer::new(Box::new(GmpStub))),
                Box::new(RudpLayer::default()),
            ]);
        }
        for &p in &peers {
            world.control::<GmpReply>(p, 0, GmpControl::Start);
        }
        // Converge before the fault is installed.
        world.run_for(SimDuration::from_secs(40));
        let sites = peers.iter().map(|&p| (p, 1)).collect();
        (world, sites)
    }

    fn drive(&self, world: &mut World, limits: &RunLimits) -> bool {
        let ran = world.run_for_capped(SimDuration::from_secs(self.fault_secs), limits.event_cap);
        ran == limits.event_cap
    }

    fn oracles(&self) -> Vec<Box<dyn Oracle>> {
        vec![
            Box::new(GmpAgreementOracle),
            Box::new(GmpLeaderUniquenessOracle),
            Box::new(GmpNoSelfDeathOracle),
            Box::new(GmpProclaimRoutingOracle),
            Box::new(GmpTimerDisciplineOracle),
        ]
    }

    fn verdict(&self, world: &mut World) -> Verdict {
        let peers = Self::peers();
        // Liveness: the two unfaulted daemons (0 and 2) must end up Up,
        // agreeing, and together.
        let v0 = world
            .control::<GmpReply>(peers[0], 0, GmpControl::Status)
            .expect_status();
        let v2 = world
            .control::<GmpReply>(peers[2], 0, GmpControl::Status)
            .expect_status();
        if v0.group.members != v2.group.members {
            return Verdict::Degraded(format!(
                "unfaulted daemons diverge: {:?} vs {:?} (may still be converging)",
                v0.group.members, v2.group.members
            ));
        }
        if !v0.group.contains(peers[2]) {
            return Verdict::Degraded("unfaulted daemons separated".to_string());
        }
        if !v0.group.contains(peers[1]) {
            return Verdict::Degraded("the faulty member fell out of the group".to_string());
        }
        // Service disturbance: any committed view change after the fault
        // was installed (the convergence phase ends at 40 virtual seconds)
        // means the fault was visible, even if the group healed.
        let churn = world
            .trace()
            .events_of::<GmpEvent>(Some(peers[0]))
            .iter()
            .filter(|(t, e)| t.as_secs_f64() > 40.0 && matches!(e, GmpEvent::GroupView { .. }))
            .count();
        if churn > 0 {
            Verdict::Degraded(format!("membership changed {churn} times under the fault"))
        } else {
            Verdict::Pass
        }
    }
}

// ---------------------------------------------------------------------
// TCP target
// ---------------------------------------------------------------------

/// A client/server TCP transfer; the case filter is installed on the
/// server's PFI layer.
#[derive(Debug, Clone)]
pub struct TcpTarget {
    /// Client profile.
    pub profile: TcpProfile,
    /// Bytes to transfer.
    pub payload_len: usize,
    /// Virtual seconds to run after fault installation.
    pub fault_secs: u64,
}

impl Default for TcpTarget {
    fn default() -> Self {
        TcpTarget {
            profile: TcpProfile::sunos_4_1_3(),
            payload_len: 8_192,
            fault_secs: 180,
        }
    }
}

impl TcpTarget {
    fn payload(&self) -> Vec<u8> {
        (0..self.payload_len)
            .map(|i| (i * 11 % 256) as u8)
            .collect()
    }

    fn client() -> NodeId {
        NodeId::new(0)
    }
    fn server() -> NodeId {
        NodeId::new(1)
    }
    const CONN: ConnId = ConnId(0);
}

impl TestTarget for TcpTarget {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn seed(&self) -> u64 {
        777
    }

    fn node_count(&self) -> u32 {
        2
    }

    fn flow_model(&self) -> Option<crate::reach::FlowModel> {
        Some(crate::reach::FlowModel::tcp())
    }

    fn build(&self) -> (World, Vec<(NodeId, usize)>) {
        let mut world = World::new(self.seed());
        let client = world.add_node(vec![Box::new(TcpLayer::new(self.profile.clone()))]);
        let server = world.add_node(vec![
            Box::new(TcpLayer::new(TcpProfile::rfc_reference())),
            Box::new(pfi_core::PfiLayer::new(Box::new(TcpStub))),
        ]);
        world.control::<TcpReply>(server, 0, TcpControl::Listen { port: 80 });
        // Open the connection only after the fault is installed — SYN-path
        // faults are part of the campaign.
        let _ = client;
        (world, vec![(server, 1)])
    }

    fn drive(&self, world: &mut World, limits: &RunLimits) -> bool {
        let conn = world
            .control::<TcpReply>(
                Self::client(),
                0,
                TcpControl::Open {
                    local_port: 0,
                    remote: Self::server(),
                    remote_port: 80,
                },
            )
            .expect_conn();
        debug_assert_eq!(conn, Self::CONN);
        // The handshake phase gets its own full cap (rather than drawing
        // down the transfer phase's budget) so transfer-phase event counts
        // are unchanged from when this phase ran uncapped.
        if world.run_for_capped(SimDuration::from_secs(5), limits.event_cap) == limits.event_cap {
            return true;
        }
        let payload = self.payload();
        world.control::<TcpReply>(
            Self::client(),
            0,
            TcpControl::Send {
                conn,
                data: payload,
            },
        );
        let ran = world.run_for_capped(SimDuration::from_secs(self.fault_secs), limits.event_cap);
        ran == limits.event_cap
    }

    fn harvest(&self, world: &mut World) {
        // Take whatever the server-side application can read and record it
        // for the stream oracles (RecvTake consumes, so this happens once).
        let sconn =
            match world.control::<TcpReply>(Self::server(), 0, TcpControl::AcceptedOn { port: 80 })
            {
                TcpReply::MaybeConn(Some(c)) => c,
                _ => return,
            };
        let data = world
            .control::<TcpReply>(Self::server(), 0, TcpControl::RecvTake { conn: sconn })
            .expect_data();
        let now = world.now();
        world.trace_mut().record(
            now,
            Self::server(),
            "testgen",
            DeliveredStream {
                conn: sconn.0,
                data,
            },
        );
    }

    fn oracles(&self) -> Vec<Box<dyn Oracle>> {
        vec![
            Box::new(TcpPrefixOracle {
                expected: self.payload(),
            }),
            Box::new(TcpNoSilentCloseOracle),
            Box::new(TcpRtoBoundsOracle::default()),
        ]
    }

    fn verdict(&self, world: &mut World) -> Verdict {
        let streams = world
            .trace()
            .events_of::<DeliveredStream>(Some(Self::server()));
        let Some((_, stream)) = streams.first() else {
            return Verdict::Degraded("connection never established".to_string());
        };
        if stream.data.len() == self.payload_len {
            Verdict::Pass
        } else {
            Verdict::Degraded(format!(
                "only {}/{} bytes arrived",
                stream.data.len(),
                self.payload_len
            ))
        }
    }
}

// ---------------------------------------------------------------------
// 2PC target
// ---------------------------------------------------------------------

/// A coordinator plus three participants running one transaction. Every
/// node's PFI layer is a fault site (site index = node index);
/// grid-generated cases fault participant 1.
///
/// Invariant: **decision agreement** — no two nodes ever apply conflicting
/// decisions for the same transaction. Faults may block participants or
/// abort the transaction (degradation), never split the decision.
#[derive(Debug, Clone, Default)]
pub struct TpcTarget;

impl TestTarget for TpcTarget {
    fn name(&self) -> &'static str {
        "tpc"
    }

    fn seed(&self) -> u64 {
        555
    }

    fn node_count(&self) -> u32 {
        4
    }

    fn flow_model(&self) -> Option<crate::reach::FlowModel> {
        Some(crate::reach::FlowModel::two_phase_commit())
    }

    fn fault_sites(&self) -> u32 {
        4
    }

    fn primary_site(&self) -> usize {
        1 // grid cases fault participant 1
    }

    fn build(&self) -> (World, Vec<(NodeId, usize)>) {
        let mut world = World::new(self.seed());
        for _ in 0..4 {
            world.add_node(vec![
                Box::new(TpcLayer::default()),
                Box::new(pfi_core::PfiLayer::new(Box::new(TpcStub))),
                Box::new(RudpLayer::default()),
            ]);
        }
        let sites = (0..4).map(|i| (NodeId::new(i), 1)).collect();
        (world, sites)
    }

    fn drive(&self, world: &mut World, limits: &RunLimits) -> bool {
        let participants: Vec<NodeId> = (1..4).map(NodeId::new).collect();
        world.control::<TpcReply>(
            NodeId::new(0),
            0,
            TpcControl::Begin {
                txid: 1,
                participants,
            },
        );
        let ran = world.run_for_capped(SimDuration::from_secs(60), limits.event_cap);
        ran == limits.event_cap
    }

    fn oracles(&self) -> Vec<Box<dyn Oracle>> {
        vec![Box::new(TpcAtomicityOracle)]
    }

    fn verdict(&self, world: &mut World) -> Verdict {
        let mut decision: Option<bool> = None;
        let mut blocked = 0usize;
        for i in 0..4 {
            for (_, e) in world.trace().events_of::<TpcEvent>(Some(NodeId::new(i))) {
                match e {
                    TpcEvent::DecisionApplied { commit, .. }
                    | TpcEvent::DecisionMade { commit, .. } => {
                        decision.get_or_insert(commit);
                    }
                    TpcEvent::Blocked { .. } => blocked += 1,
                    _ => {}
                }
            }
        }
        if blocked > 0 {
            return Verdict::Degraded(format!("{blocked} participant(s) blocked in uncertainty"));
        }
        match decision {
            Some(true) => Verdict::Pass,
            Some(false) => Verdict::Degraded("transaction aborted".to_string()),
            None => Verdict::Degraded("no decision reached".to_string()),
        }
    }
}

// ---------------------------------------------------------------------
// Chaos wrapper (resilience testing)
// ---------------------------------------------------------------------

/// Wraps any target and appends a
/// [`ChaosPanicOracle`](crate::oracle::ChaosPanicOracle) to its oracles —
/// an oracle that panics instead of judging whenever the run dropped a
/// message. This is the fault the campaign *itself* is tested against:
/// a resilient campaign contains every panic as [`Verdict::Crashed`],
/// keeps each crashed run's coverage, and finishes. Used by resilience
/// tests and `pfi-campaign --inject-panic`.
#[derive(Debug, Clone)]
pub struct ChaosOracleTarget<T> {
    /// The real target being sabotaged.
    pub inner: T,
}

impl<T: TestTarget> TestTarget for ChaosOracleTarget<T> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn seed(&self) -> u64 {
        self.inner.seed()
    }

    fn node_count(&self) -> u32 {
        self.inner.node_count()
    }

    fn fault_sites(&self) -> u32 {
        self.inner.fault_sites()
    }

    fn primary_site(&self) -> usize {
        self.inner.primary_site()
    }

    fn build(&self) -> (World, Vec<(NodeId, usize)>) {
        self.inner.build()
    }

    fn drive(&self, world: &mut World, limits: &RunLimits) -> bool {
        self.inner.drive(world, limits)
    }

    fn harvest(&self, world: &mut World) {
        self.inner.harvest(world)
    }

    fn oracles(&self) -> Vec<Box<dyn Oracle>> {
        let mut oracles = self.inner.oracles();
        oracles.push(Box::new(crate::oracle::ChaosPanicOracle));
        oracles
    }

    fn verdict(&self, world: &mut World) -> Verdict {
        self.inner.verdict(world)
    }

    fn flow_model(&self) -> Option<crate::reach::FlowModel> {
        self.inner.flow_model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultOp, FaultSchedule, ScheduledFault};

    fn drop_heartbeats() -> FaultSchedule {
        FaultSchedule {
            faults: vec![ScheduledFault {
                site: 1,
                dir: Direction::Receive,
                op: FaultOp::DropAll {
                    msg_type: "HEARTBEAT".to_string(),
                },
            }],
        }
    }

    #[test]
    fn chaos_oracle_panic_is_contained_as_crashed_with_coverage() {
        let target = ChaosOracleTarget {
            inner: GmpTarget::default(),
        };
        let run = run_schedule(&target, &drop_heartbeats());
        assert!(
            run.verdict.is_crashed(),
            "expected Crashed, got {:?}",
            run.verdict
        );
        assert!(run.verdict.is_infrastructure());
        let Verdict::Crashed(msg) = &run.verdict else {
            unreachable!()
        };
        assert!(
            msg.contains("chaos oracle injected panic"),
            "panic payload text must survive containment: {msg}"
        );
        assert!(
            !run.coverage.is_empty(),
            "a crashed run must still salvage its pre-crash coverage"
        );
    }

    #[test]
    fn chaos_oracle_judges_fault_free_baselines_clean() {
        let target = ChaosOracleTarget {
            inner: GmpTarget::default(),
        };
        let run = run_schedule(&target, &FaultSchedule::empty());
        assert!(
            !run.verdict.is_infrastructure(),
            "no drops, no panic: got {:?}",
            run.verdict
        );
    }

    #[test]
    fn event_cap_escalates_to_hung() {
        // A tiny event cap truncates the drive immediately.
        let run = run_schedule_limited(
            &GmpTarget::default(),
            &FaultSchedule::empty(),
            &RunLimits {
                event_cap: 10,
                step_budget: 0,
            },
        );
        assert!(
            run.verdict.is_hung(),
            "expected Hung, got {:?}",
            run.verdict
        );
    }

    #[test]
    fn snapshotted_run_is_byte_identical_to_cold_and_reuses_the_base() {
        let target = GmpTarget::default();
        let limits = RunLimits::default();
        let schedule = drop_heartbeats();
        let mut store = SnapshotStore::new(4);
        // First run misses, captures the base, runs cold.
        let first = run_schedule_snapshotted(&target, &schedule, &limits, Some(&mut store));
        assert_eq!(store.stats().misses, 1);
        assert_eq!(store.stats().stored, 1);
        // Second run (different schedule, same base) forks.
        let second =
            run_schedule_snapshotted(&target, &FaultSchedule::empty(), &limits, Some(&mut store));
        assert_eq!(store.stats().hits, 1);
        assert!(
            store.stats().events_skipped > 0,
            "the fork skipped the build phase"
        );
        // Both are byte-identical to their cold counterparts.
        let cold_first = run_schedule_limited(&target, &schedule, &limits);
        let cold_second = run_schedule_limited(&target, &FaultSchedule::empty(), &limits);
        for (snap, cold) in [(&first, &cold_first), (&second, &cold_second)] {
            assert_eq!(snap.verdict, cold.verdict);
            assert_eq!(snap.oracle, cold.oracle);
            assert_eq!(
                snap.coverage.edges().collect::<Vec<_>>(),
                cold.coverage.edges().collect::<Vec<_>>()
            );
            assert_eq!(snap.scripts, cold.scripts);
        }
        // A third run of the faulted schedule also forks and still matches.
        let third = run_schedule_snapshotted(&target, &schedule, &limits, Some(&mut store));
        assert_eq!(store.stats().hits, 2);
        assert_eq!(third.verdict, cold_first.verdict);
        assert_eq!(
            third.coverage.edges().collect::<Vec<_>>(),
            cold_first.coverage.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn forking_a_deep_prefix_installs_only_the_suffix() {
        let target = GmpTarget::default();
        let limits = RunLimits::default();
        let prefix = drop_heartbeats();
        let mut full = prefix.clone();
        full.faults.push(ScheduledFault {
            site: 2,
            dir: Direction::Send,
            op: FaultOp::DelayMs {
                msg_type: "COMMIT".to_string(),
                ms: 250,
            },
        });
        // Capture a snapshot *with the prefix installed*, cache it under
        // the prefix chain's deepest digest, and run the full schedule.
        let mut store = SnapshotStore::new(4);
        let digests = crate::snapshot::prefix_digests(&target, &limits, &full);
        let mut case = prepare_base(&target, &limits);
        install_scripts(&mut case.world, &case.sites, target.name(), &prefix.lower());
        store.insert(Arc::new(CaseSnapshot::new(
            digests[prefix.len()],
            prefix.clone(),
            case.sites.clone(),
            case.world.try_snapshot().unwrap(),
        )));
        let forked = run_schedule_snapshotted(&target, &full, &limits, Some(&mut store));
        assert_eq!(store.stats().hits, 1);
        let cold = run_schedule_limited(&target, &full, &limits);
        assert_eq!(forked.verdict, cold.verdict);
        assert_eq!(forked.oracle, cold.oracle);
        assert_eq!(
            forked.coverage.edges().collect::<Vec<_>>(),
            cold.coverage.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn invalid_schedules_never_touch_the_snapshot_store() {
        let target = GmpTarget::default();
        let limits = RunLimits::default();
        let mut store = SnapshotStore::new(4);
        // Both scramble classes: an out-of-topology site and a
        // parse-breaking message type.
        let bad_site = FaultSchedule {
            faults: vec![ScheduledFault {
                site: 99,
                dir: Direction::Send,
                op: FaultOp::DropAll {
                    msg_type: "HEARTBEAT".to_string(),
                },
            }],
        };
        let bad_parse = FaultSchedule {
            faults: vec![ScheduledFault {
                site: 1,
                dir: Direction::Send,
                op: FaultOp::DropAll {
                    msg_type: "H}EARTBEAT".to_string(),
                },
            }],
        };
        for bad in [&bad_site, &bad_parse] {
            let run = run_schedule_snapshotted(&target, bad, &limits, Some(&mut store));
            assert!(run.verdict.is_invalid(), "{:?}", run.verdict);
        }
        // Scrambles also never *come from* the store's perspective: no
        // lookups, no captures, no stats movement at all.
        assert!(store.is_empty());
        assert_eq!(store.stats(), &crate::snapshot::SnapshotStats::default());
        // ScheduleMutator's scramble mutants hit the same refusal.
        let mutator =
            crate::schedule::ScheduleMutator::new(&crate::spec::ProtocolSpec::gmp(), 3, 3);
        let mut rng = pfi_sim::SimRng::seed_from(3);
        let mut scrambles = 0usize;
        for _ in 0..100 {
            let child = mutator.mutate(&FaultSchedule::empty(), 4, &mut rng);
            if crate::validate::schedule_is_installable(&child, target.fault_sites()) {
                continue;
            }
            scrambles += 1;
            let run = run_schedule_snapshotted(&target, &child, &limits, Some(&mut store));
            assert!(run.verdict.is_invalid());
        }
        assert!(scrambles > 0, "no scramble mutants in 100 draws");
        assert!(
            store.is_empty(),
            "scramble mutants must never enter the store"
        );
        assert_eq!(store.stats(), &crate::snapshot::SnapshotStats::default());
    }

    #[test]
    fn step_budget_watchdog_escalates_to_hung() {
        // No FaultOp lowers to a looping script, so drive the private
        // execute path directly with one.
        let script = SiteScripts {
            site: 1,
            send: String::new(),
            recv: "while {1} {incr spin}".to_string(),
        };
        let (verdict, oracle, coverage) = execute(
            &GmpTarget::default(),
            std::slice::from_ref(&script),
            &RunLimits {
                event_cap: DRIVE_EVENT_CAP,
                step_budget: 500,
            },
        );
        assert!(
            verdict.is_hung(),
            "looping filter script must trip the step-budget watchdog, got {verdict:?}"
        );
        let Verdict::Hung(msg) = &verdict else {
            unreachable!()
        };
        assert!(
            msg.contains("watchdog"),
            "hung message names the cause: {msg}"
        );
        assert!(oracle.is_none());
        assert!(
            !coverage.is_empty(),
            "the run still ran (scripts fail open) and must yield coverage"
        );
    }
}
