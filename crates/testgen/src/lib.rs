//! # pfi-testgen — test-script generation from protocol specifications
//!
//! The paper closes with three future directions; the second is "automatic
//! generation of test scripts from a protocol specification". This crate
//! implements it: a [`ProtocolSpec`] lists a protocol's message types and
//! their roles, [`generate`] crosses them with a [`FaultKind`] matrix and
//! both filter directions, and every product is an ordinary PFI Tcl filter
//! script (parse-checked at generation time). [`run_campaign`] then applies
//! each script to a fresh instance of a [`TestTarget`] — a GMP cluster or a
//! TCP transfer — and checks the target's invariants.
//!
//! # Examples
//!
//! ```
//! use pfi_core::Direction;
//! use pfi_testgen::{generate, FaultKind, ProtocolSpec};
//!
//! let campaign = generate(
//!     &ProtocolSpec::gmp(),
//!     &[FaultKind::Drop],
//!     &[Direction::Receive],
//! );
//! assert_eq!(campaign.len(), 8); // one drop case per GMP message type
//! let commit_case = campaign.cases.iter()
//!     .find(|c| c.id == "gmp/receive/drop/COMMIT")
//!     .unwrap();
//! assert!(commit_case.script.contains("xDrop"));
//! ```

#![warn(missing_docs)]

mod generate;
mod runner;
mod spec;

pub use generate::{generate, Campaign, FaultKind, TestCase};
pub use runner::{
    run_campaign, run_case, CaseResult, GmpTarget, TcpTarget, TestTarget, TpcTarget, Verdict,
};
pub use spec::{MessageSpec, ProtocolSpec, Role};
