//! # pfi-testgen — test generation and coverage-guided fault campaigns
//!
//! The paper closes with three future directions; the second is "automatic
//! generation of test scripts from a protocol specification". This crate
//! implements it twice over:
//!
//! * **Grid generation** — a [`ProtocolSpec`] lists a protocol's message
//!   types and roles, [`generate`] crosses them with a [`FaultKind`] matrix
//!   and both filter directions, and every product is an ordinary PFI Tcl
//!   filter script (parse-checked at generation time). [`run_campaign`]
//!   applies each to a fresh [`TestTarget`] and checks its invariants.
//! * **Coverage-guided exploration** — [`explore`] searches over composed
//!   [`FaultSchedule`]s instead: seeded mutation ([`ScheduleMutator`]),
//!   trace-derived [`Coverage`] as the keep/discard signal, [`Oracle`]s as
//!   the judges, delta-debugging ([`shrink_schedule`]) to 1-minimal
//!   failures, and replayable text [`Repro`] artifacts.
//!
//! Both campaign forms fan out across worker threads via `pfi-fleet`:
//! [`explore_fleet`] and [`run_campaign_fleet`] take a [`TargetFactory`]
//! (workers build their own `!Send` worlds) and produce outcomes
//! byte-identical to their sequential counterparts for any job count.
//!
//! # Examples
//!
//! ```
//! use pfi_core::Direction;
//! use pfi_testgen::{generate, FaultKind, ProtocolSpec};
//!
//! let campaign = generate(
//!     &ProtocolSpec::gmp(),
//!     &[FaultKind::Drop],
//!     &[Direction::Receive],
//! );
//! assert_eq!(campaign.len(), 8); // one drop case per GMP message type
//! let commit_case = campaign.cases.iter()
//!     .find(|c| c.id == "gmp/receive/drop/COMMIT")
//!     .unwrap();
//! assert!(commit_case.script.contains("xDrop"));
//! ```
//!
//! A tiny exploration of the (fixed) GMP target:
//!
//! ```no_run
//! use pfi_testgen::{explore, ExploreConfig, GmpTarget, ProtocolSpec};
//!
//! let outcome = explore(
//!     &GmpTarget::default(),
//!     &ProtocolSpec::gmp(),
//!     &ExploreConfig { seed: 1, budget: 8, max_faults: 2, epoch: 1, ..ExploreConfig::default() },
//! );
//! assert!(outcome.coverage.len() > 0);
//! ```

#![warn(missing_docs)]

mod coverage;
mod explore;
mod generate;
mod journal;
mod oracle;
mod reach;
mod repro;
mod runner;
mod schedule;
mod shrink;
mod snapshot;
mod spec;
mod validate;

pub use coverage::Coverage;
pub use explore::{
    explore, explore_fleet, replay, seed_corpus_digest, CampaignFleet, ExploreConfig,
    ExploreOutcome, FoundFailure, SkipReason, SkippedCandidate, DEFAULT_EPOCH,
    DEFAULT_SNAPSHOT_CACHE,
};
pub use generate::{generate, Campaign, FaultKind, TestCase};
pub use journal::{
    Journal, JournalCase, JournalCounters, JournalMeta, JournalQuarantine, JournalShrink,
    JournalWriter,
};
pub use oracle::{
    first_violation, ChaosPanicOracle, DeliveredStream, GmpAgreementOracle,
    GmpLeaderUniquenessOracle, GmpNoSelfDeathOracle, GmpProclaimRoutingOracle,
    GmpTimerDisciplineOracle, Oracle, TcpNoSilentCloseOracle, TcpPrefixOracle, TcpRtoBoundsOracle,
    TpcAtomicityOracle,
};
pub use pfi_fleet::{FleetReport, WorkerStats};
pub use reach::{FlowModel, InertFact};
pub use repro::Repro;
pub use runner::{
    prepare, prepare_base, run_campaign, run_campaign_fleet, run_case, run_case_prepared,
    run_prepared, run_schedule, run_schedule_limited, run_schedule_snapshotted, CaseResult,
    ChaosOracleTarget, GmpTarget, PreparedCase, RunLimits, ScheduleRun, TargetFactory, TcpTarget,
    TestTarget, TpcTarget, Verdict, DRIVE_EVENT_CAP,
};
pub use schedule::{FaultOp, FaultSchedule, ScheduleMutator, ScheduledFault, SiteScripts};
pub use shrink::shrink_schedule;
pub use snapshot::{
    base_digest, prefix_digests, shared_prefix_len, CaseSnapshot, SnapshotStats, SnapshotStore,
};
pub use spec::{MessageSpec, ProtocolSpec, Role};
pub use validate::{
    install_errors, schedule_is_installable, scripts_install_errors, validate_schedule,
    ScheduleFinding,
};
