//! Static validation of fault schedules before anything runs.
//!
//! Two tiers, deliberately separated:
//!
//! * [`install_errors`] — the *exact* predicate the runner enforces at
//!   install time: every fault site must exist on the target, and every
//!   lowered filter script must parse. A schedule failing it can never be
//!   installed, so campaign pre-filtering may reject it **without
//!   changing any run that would have happened** — the unfiltered engine
//!   refuses the same schedules at execution time
//!   ([`Verdict::Invalid`](crate::Verdict)), and both modes reach the
//!   same corpus, coverage, and failures.
//! * [`validate_schedule`] — everything else worth telling a human:
//!   message types outside the protocol spec, destinations outside the
//!   topology, inert parameters (a zero XOR mask, zero duplicate
//!   copies), plus a full `pfi-lint` pass over each lowered script.
//!   These are warnings: such schedules install and run fine (the fault
//!   just never fires, or fires vacuously), so rejecting them would
//!   change which runs execute and break digest equality with the
//!   unfiltered engine.

use pfi_lint::{Diagnostic, Linter, Severity};
use pfi_script::Script;

use crate::schedule::{FaultSchedule, SiteScripts};
use crate::spec::ProtocolSpec;

/// One schedule-level finding.
#[derive(Debug, Clone)]
pub struct ScheduleFinding {
    /// How serious: `Error` findings block installation; the rest do not.
    pub severity: Severity,
    /// Index of the offending fault in the schedule, when the finding is
    /// attributable to one.
    pub fault: Option<usize>,
    /// Human-readable description.
    pub message: String,
    /// Script diagnostics backing this finding (lint findings on a
    /// lowered filter carry their own spans against that script).
    pub diagnostics: Vec<Diagnostic>,
}

impl ScheduleFinding {
    fn new(severity: Severity, fault: Option<usize>, message: impl Into<String>) -> Self {
        ScheduleFinding {
            severity,
            fault,
            message: message.into(),
            diagnostics: Vec::new(),
        }
    }
}

/// The install-blocking problems of a set of lowered site scripts against
/// a target with `sites` fault sites — the exact checks the runner
/// performs before installing anything.
pub fn scripts_install_errors(scripts: &[SiteScripts], sites: u32) -> Vec<String> {
    let mut errors = Vec::new();
    for s in scripts {
        if s.site >= sites {
            errors.push(format!(
                "filter addresses fault site n{} but the target has only {sites} fault site(s)",
                s.site
            ));
        }
        for (dir, src) in [("send", &s.send), ("recv", &s.recv)] {
            if src.is_empty() {
                continue;
            }
            if let Err(e) = Script::parse(src) {
                errors.push(format!("site n{} {dir} filter does not parse: {e}", s.site));
            }
        }
    }
    errors
}

/// The install-blocking problems of a schedule against a target with
/// `sites` fault sites — exactly what the runner refuses at install time,
/// nothing more. Empty means the schedule will install.
pub fn install_errors(schedule: &FaultSchedule, sites: u32) -> Vec<String> {
    scripts_install_errors(&schedule.lower(), sites)
}

/// Whether the schedule can be installed on a target with `sites` fault
/// sites. The campaign pre-filter rejects on exactly this predicate.
pub fn schedule_is_installable(schedule: &FaultSchedule, sites: u32) -> bool {
    install_errors(schedule, sites).is_empty()
}

/// Full static validation: install errors, spec/topology warnings, inert
/// parameter warnings, and a `pfi-lint` pass over every lowered script.
pub fn validate_schedule(
    schedule: &FaultSchedule,
    spec: &ProtocolSpec,
    nodes: u32,
    sites: u32,
) -> Vec<ScheduleFinding> {
    let mut findings = Vec::new();

    for (i, fault) in schedule.faults.iter().enumerate() {
        if fault.site >= sites {
            findings.push(ScheduleFinding::new(
                Severity::Error,
                Some(i),
                format!(
                    "site n{} is out of range: the target has {sites} fault site(s)",
                    fault.site
                ),
            ));
        }
    }

    // Inert-fault warnings are *not* re-derived here: the permissive flow
    // model (spec + node count, no placement or routing facts) is the same
    // predicate the semantic pruning tier and `pfi-lint --spec` run, so
    // what validation warns about and what the explorer quotients away can
    // never drift apart.
    let model = crate::reach::FlowModel::permissive(spec, nodes);
    for fact in model.inert_facts(schedule) {
        findings.push(ScheduleFinding::new(
            Severity::Warning,
            Some(fact.fault),
            format!(
                "the fault will never fire: {} [{}]",
                fact.message, fact.rule
            ),
        ));
    }

    let linter = Linter::filter();
    for scripts in schedule.lower() {
        for (dir, src) in [("send", &scripts.send), ("recv", &scripts.recv)] {
            if src.is_empty() {
                continue;
            }
            let diags = linter.lint(src);
            let Some(worst) = diags.iter().map(|d| d.severity).max() else {
                continue;
            };
            let mut finding = ScheduleFinding::new(
                worst,
                None,
                format!(
                    "site n{} {dir} filter: {} lint finding(s)",
                    scripts.site,
                    diags.len()
                ),
            );
            finding.diagnostics = diags;
            findings.push(finding);
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultOp, ScheduledFault};
    use pfi_core::Direction;

    fn fault(site: u32, op: FaultOp) -> ScheduledFault {
        ScheduledFault {
            site,
            dir: Direction::Send,
            op,
        }
    }

    #[test]
    fn in_range_schedule_installs() {
        let s = FaultSchedule {
            faults: vec![fault(
                1,
                FaultOp::DropAll {
                    msg_type: "HEARTBEAT".into(),
                },
            )],
        };
        assert!(install_errors(&s, 3).is_empty());
        assert!(schedule_is_installable(&s, 3));
    }

    #[test]
    fn out_of_range_site_blocks_install() {
        let s = FaultSchedule {
            faults: vec![fault(
                5,
                FaultOp::DropAll {
                    msg_type: "HEARTBEAT".into(),
                },
            )],
        };
        let errs = install_errors(&s, 3);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("site n5"), "{errs:?}");
        assert!(!schedule_is_installable(&s, 3));
    }

    #[test]
    fn unparseable_lowered_script_blocks_install() {
        // A brace inside the message type closes the lowered guard's
        // braced condition early and breaks the outer script.
        let s = FaultSchedule {
            faults: vec![fault(
                0,
                FaultOp::DropAll {
                    msg_type: "HEART}BEAT".into(),
                },
            )],
        };
        let errs = install_errors(&s, 3);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("does not parse"), "{errs:?}");
    }

    #[test]
    fn inert_but_runnable_schedules_are_warnings_not_errors() {
        // These faults never fire, but they install and run: rejecting
        // them would desynchronize the filtered and unfiltered engines.
        let s = FaultSchedule {
            faults: vec![
                fault(
                    0,
                    FaultOp::DropToDest {
                        msg_type: "HEARTBEAT".into(),
                        dst: 99,
                    },
                ),
                fault(
                    1,
                    FaultOp::DropAll {
                        msg_type: "NO_SUCH_TYPE".into(),
                    },
                ),
                fault(
                    2,
                    FaultOp::CorruptByteAt {
                        msg_type: "ACK".into(),
                        offset: 0,
                        mask: 0,
                    },
                ),
            ],
        };
        assert!(install_errors(&s, 3).is_empty());
        let findings = validate_schedule(&s, &ProtocolSpec::gmp(), 3, 3);
        assert!(findings.len() >= 3, "{findings:?}");
        assert!(
            findings.iter().all(|f| f.severity < Severity::Error),
            "{findings:?}"
        );
    }

    #[test]
    fn lowered_scripts_lint_clean() {
        let s = FaultSchedule {
            faults: vec![
                fault(
                    0,
                    FaultOp::DropNth {
                        msg_type: "HEARTBEAT".into(),
                        nth: 3,
                    },
                ),
                fault(
                    0,
                    FaultOp::ReorderWindow {
                        msg_type: "COMMIT".into(),
                        hold: 2,
                    },
                ),
            ],
        };
        let findings = validate_schedule(&s, &ProtocolSpec::gmp(), 3, 3);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
