//! Reusable invariant oracles over the trace log.
//!
//! The paper's experiments each end with a human reading the packet log
//! and deciding whether the protocol misbehaved. An [`Oracle`] mechanises
//! one such judgement: it inspects a finished run's [`TraceLog`] and
//! either accepts or names the violated invariant. Oracles see *only* the
//! trace — no live world, no target internals — so a hand-built trace can
//! unit-test each one, and a replayed repro artifact re-judges itself with
//! the exact oracle that originally flagged it.

use pfi_core::PfiEvent;
use pfi_gmp::GmpEvent;
use pfi_sim::{SimDuration, TraceLog};
use pfi_tcp::{CloseReason, TcpEvent};
use pfi_tpc::TpcEvent;

/// One protocol invariant, checked against a finished run's trace.
pub trait Oracle {
    /// Stable name, used in verdicts and repro artifacts.
    fn name(&self) -> &'static str;
    /// `Err(message)` iff the invariant was violated.
    fn check(&self, trace: &TraceLog) -> Result<(), String>;
}

impl std::fmt::Debug for dyn Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Oracle({})", self.name())
    }
}

/// Runs oracles in order; returns the first violation as `(name, message)`.
pub fn first_violation(
    oracles: &[Box<dyn Oracle>],
    trace: &TraceLog,
) -> Option<(&'static str, String)> {
    for oracle in oracles {
        if let Err(msg) = oracle.check(trace) {
            return Some((oracle.name(), msg));
        }
    }
    None
}

// ---------------------------------------------------------------------
// Chaos oracle (resilience testing)
// ---------------------------------------------------------------------

/// A deliberately buggy oracle for resilience testing: it **panics** —
/// instead of returning a verdict — whenever the trace contains a dropped
/// message. Fault-free baselines judge clean, so campaigns start normally;
/// any schedule that installs a drop then crashes the judging phase, which
/// the runner must contain as a `Crashed` verdict without losing the run's
/// coverage. Installed by [`ChaosOracleTarget`](crate::ChaosOracleTarget)
/// and `pfi-campaign --inject-panic`.
#[derive(Debug, Clone, Default)]
pub struct ChaosPanicOracle;

impl Oracle for ChaosPanicOracle {
    fn name(&self) -> &'static str {
        "chaos-panic"
    }

    fn check(&self, trace: &TraceLog) -> Result<(), String> {
        let drops = trace
            .events_with_nodes::<PfiEvent>()
            .iter()
            .filter(|(_, _, e)| matches!(e, PfiEvent::Dropped { .. }))
            .count();
        if drops > 0 {
            panic!("chaos oracle injected panic: saw {drops} dropped message(s)");
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// TCP oracles
// ---------------------------------------------------------------------

/// The byte stream a target harvested from a receiver at the end of a run,
/// recorded into the trace so stream oracles can judge it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveredStream {
    /// Receiver-side connection id.
    pub conn: usize,
    /// Everything the receiving application took from the connection.
    pub data: Vec<u8>,
}

/// TCP integrity: every delivered stream must be an exact prefix of the
/// sent payload — faults may truncate delivery, never corrupt or extend it.
#[derive(Debug, Clone)]
pub struct TcpPrefixOracle {
    /// The payload the sender wrote.
    pub expected: Vec<u8>,
}

impl Oracle for TcpPrefixOracle {
    fn name(&self) -> &'static str {
        "tcp-prefix-delivery"
    }

    fn check(&self, trace: &TraceLog) -> Result<(), String> {
        for (_, node, stream) in trace.events_with_nodes::<DeliveredStream>() {
            let got = &stream.data;
            if got.len() > self.expected.len() || got[..] != self.expected[..got.len()] {
                return Err(format!(
                    "{node} conn {} delivered {} bytes that are not a prefix of the sent stream",
                    stream.conn,
                    got.len()
                ));
            }
        }
        Ok(())
    }
}

/// TCP liveness honesty: a connection may die of a timeout only after
/// visibly trying — a `Closed(Timeout)` with no retransmission attempt, or
/// a `Closed(KeepaliveTimeout)` with no keep-alive probe, is a silent
/// close.
#[derive(Debug, Clone, Default)]
pub struct TcpNoSilentCloseOracle;

impl Oracle for TcpNoSilentCloseOracle {
    fn name(&self) -> &'static str {
        "tcp-no-silent-close"
    }

    fn check(&self, trace: &TraceLog) -> Result<(), String> {
        for (_, node, e) in trace.events_with_nodes::<TcpEvent>() {
            let TcpEvent::Closed { conn, reason } = e else {
                continue;
            };
            let tried = |pred: &dyn Fn(&TcpEvent) -> bool| {
                trace
                    .events_of::<TcpEvent>(Some(node))
                    .iter()
                    .any(|(_, e)| pred(e))
            };
            match reason {
                CloseReason::Timeout => {
                    let retried = tried(&|e| {
                        matches!(
                            e,
                            TcpEvent::Retransmit { conn: c, .. }
                            | TcpEvent::FastRetransmit { conn: c, .. }
                            | TcpEvent::ZeroWindowProbe { conn: c, .. } if *c == conn
                        )
                    });
                    if !retried {
                        return Err(format!(
                            "{node} conn {conn} closed on timeout without a single retransmission"
                        ));
                    }
                }
                CloseReason::KeepaliveTimeout => {
                    let probed = tried(
                        &|e| matches!(e, TcpEvent::KeepaliveProbe { conn: c, .. } if *c == conn),
                    );
                    if !probed {
                        return Err(format!(
                            "{node} conn {conn} closed on keep-alive timeout without probing"
                        ));
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// TCP timer discipline: every retransmission's next RTO must stay inside
/// configured bounds (a superset of every bundled vendor profile's range).
#[derive(Debug, Clone)]
pub struct TcpRtoBoundsOracle {
    /// Inclusive lower bound.
    pub min: SimDuration,
    /// Inclusive upper bound.
    pub max: SimDuration,
}

impl Default for TcpRtoBoundsOracle {
    fn default() -> Self {
        // Wide enough for every bundled profile (330 ms floor, 64 s cap),
        // tight enough to catch a broken backoff.
        TcpRtoBoundsOracle {
            min: SimDuration::from_millis(100),
            max: SimDuration::from_secs(120),
        }
    }
}

impl Oracle for TcpRtoBoundsOracle {
    fn name(&self) -> &'static str {
        "tcp-rto-bounds"
    }

    fn check(&self, trace: &TraceLog) -> Result<(), String> {
        for (_, node, e) in trace.events_with_nodes::<TcpEvent>() {
            if let TcpEvent::Retransmit { conn, next_rto, .. } = e {
                if next_rto < self.min || next_rto > self.max {
                    return Err(format!(
                        "{node} conn {conn} scheduled an RTO of {next_rto} outside [{}, {}]",
                        self.min, self.max
                    ));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// GMP oracles
// ---------------------------------------------------------------------

/// GMP agreement and validity: every committed view with the same group id
/// must carry the same member list, the list must be non-empty, and the
/// recorded leader must be its minimum member.
#[derive(Debug, Clone, Default)]
pub struct GmpAgreementOracle;

impl Oracle for GmpAgreementOracle {
    fn name(&self) -> &'static str {
        "gmp-view-agreement"
    }

    fn check(&self, trace: &TraceLog) -> Result<(), String> {
        let mut by_gid: std::collections::BTreeMap<u64, Vec<u32>> =
            std::collections::BTreeMap::new();
        for (_, node, e) in trace.events_with_nodes::<GmpEvent>() {
            let GmpEvent::GroupView {
                gid,
                members,
                leader,
            } = e
            else {
                continue;
            };
            // let-else keeps this structurally panic-free: an empty member
            // list is itself the violation, never an unwrap on min().
            let Some(&min_member) = members.iter().min() else {
                return Err(format!("{node} committed an empty view for gid {gid}"));
            };
            if leader != min_member {
                return Err(format!(
                    "{node} committed gid {gid} with leader {leader} not the minimum of {members:?}"
                ));
            }
            match by_gid.get(&gid) {
                None => {
                    by_gid.insert(gid, members);
                }
                Some(existing) if *existing != members => {
                    return Err(format!(
                        "view disagreement for gid {gid}: {existing:?} vs {members:?}"
                    ));
                }
                Some(_) => {}
            }
        }
        Ok(())
    }
}

/// GMP leader uniqueness: all views committed for one group id must name
/// the same leader.
#[derive(Debug, Clone, Default)]
pub struct GmpLeaderUniquenessOracle;

impl Oracle for GmpLeaderUniquenessOracle {
    fn name(&self) -> &'static str {
        "gmp-leader-uniqueness"
    }

    fn check(&self, trace: &TraceLog) -> Result<(), String> {
        let mut leaders: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
        for (_, _, e) in trace.events_with_nodes::<GmpEvent>() {
            if let GmpEvent::GroupView { gid, leader, .. } = e {
                match leaders.get(&gid) {
                    None => {
                        leaders.insert(gid, leader);
                    }
                    Some(&l) if l != leader => {
                        return Err(format!("gid {gid} has rival leaders {l} and {leader}"));
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(())
    }
}

/// GMP sanity: a daemon must never declare itself dead (the paper's
/// experiment-1 bug symptom).
#[derive(Debug, Clone, Default)]
pub struct GmpNoSelfDeathOracle;

impl Oracle for GmpNoSelfDeathOracle {
    fn name(&self) -> &'static str {
        "gmp-no-self-death"
    }

    fn check(&self, trace: &TraceLog) -> Result<(), String> {
        for (_, node, e) in trace.events_with_nodes::<GmpEvent>() {
            if matches!(e, GmpEvent::SelfDeclaredDead) {
                return Err(format!("{node} declared itself dead"));
            }
        }
        Ok(())
    }
}

/// GMP routing: a leader must answer a `PROCLAIM` to its *originator*;
/// answering the forwarder instead (the experiment-3 bug) loops forever.
#[derive(Debug, Clone, Default)]
pub struct GmpProclaimRoutingOracle;

impl Oracle for GmpProclaimRoutingOracle {
    fn name(&self) -> &'static str {
        "gmp-proclaim-routing"
    }

    fn check(&self, trace: &TraceLog) -> Result<(), String> {
        for (_, node, e) in trace.events_with_nodes::<GmpEvent>() {
            if let GmpEvent::ProclaimAnswered { to, origin } = e {
                if to != origin {
                    return Err(format!(
                        "{node} answered n{origin}'s proclaim to n{to} instead of the originator"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// GMP timer discipline: no heartbeat-expect timer may fire while the
/// daemon is `IN_TRANSITION` (the experiment-4 bug symptom).
#[derive(Debug, Clone, Default)]
pub struct GmpTimerDisciplineOracle;

impl Oracle for GmpTimerDisciplineOracle {
    fn name(&self) -> &'static str {
        "gmp-timer-discipline"
    }

    fn check(&self, trace: &TraceLog) -> Result<(), String> {
        for (_, node, e) in trace.events_with_nodes::<GmpEvent>() {
            if let GmpEvent::SpuriousTimerInTransition { suspect } = e {
                return Err(format!(
                    "{node} saw a stale timer for n{suspect} while in transition"
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// 2PC oracle
// ---------------------------------------------------------------------

/// Two-phase-commit atomicity: for each transaction, every decision made
/// or applied anywhere must agree.
#[derive(Debug, Clone, Default)]
pub struct TpcAtomicityOracle;

impl Oracle for TpcAtomicityOracle {
    fn name(&self) -> &'static str {
        "tpc-atomicity"
    }

    fn check(&self, trace: &TraceLog) -> Result<(), String> {
        let mut decisions: std::collections::BTreeMap<u32, bool> =
            std::collections::BTreeMap::new();
        for (_, node, e) in trace.events_with_nodes::<TpcEvent>() {
            let (txid, commit) = match e {
                TpcEvent::DecisionMade { txid, commit }
                | TpcEvent::DecisionApplied { txid, commit } => (txid, commit),
                _ => continue,
            };
            match decisions.get(&txid) {
                None => {
                    decisions.insert(txid, commit);
                }
                Some(&d) if d != commit => {
                    return Err(format!(
                        "txid {txid} decision split: {d} vs {commit} (at {node})"
                    ));
                }
                Some(_) => {}
            }
        }
        Ok(())
    }
}
