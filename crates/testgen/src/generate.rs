//! The script generator: protocol specification × fault matrix → Tcl
//! filter scripts.
//!
//! This realises the paper's stated future direction (ii), "automatic
//! generation of test scripts from a protocol specification": every
//! generated case is an ordinary PFI filter script that could equally have
//! been written by hand, and each is verified to parse at generation time.

use pfi_core::lower::{Clause, FaultAction, FilterProgram, Window};
use pfi_core::Direction;
use pfi_script::Script;
use pfi_sim::SimDuration;

use crate::spec::ProtocolSpec;

/// A fault to apply to one message type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Drop every instance.
    Drop,
    /// Pass the first `n` instances, then drop the rest.
    DropAfter(u32),
    /// Delay every instance by the given duration.
    Delay(SimDuration),
    /// Forward one extra copy of every instance.
    Duplicate,
    /// Flip a byte at the given offset in every instance.
    CorruptByte(usize),
    /// Drop instances addressed to one destination node.
    DropToDest(u32),
}

impl FaultKind {
    fn id_fragment(self) -> String {
        match self {
            FaultKind::Drop => "drop".to_string(),
            FaultKind::DropAfter(n) => format!("drop-after-{n}"),
            FaultKind::Delay(d) => format!("delay-{}ms", d.as_millis()),
            FaultKind::Duplicate => "duplicate".to_string(),
            FaultKind::CorruptByte(o) => format!("corrupt-byte-{o}"),
            FaultKind::DropToDest(d) => format!("drop-to-n{d}"),
        }
    }

    /// The default fault matrix: one of each kind with representative
    /// parameters.
    pub fn default_matrix() -> Vec<FaultKind> {
        vec![
            FaultKind::Drop,
            FaultKind::DropAfter(10),
            FaultKind::Delay(SimDuration::from_secs(5)),
            FaultKind::Duplicate,
            FaultKind::CorruptByte(2),
            FaultKind::DropToDest(0),
        ]
    }
}

/// One generated test case.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// Stable identifier, e.g. `"gmp/recv/drop/COMMIT"`.
    pub id: String,
    /// Human-readable description.
    pub description: String,
    /// Which filter the script is installed as.
    pub dir: Direction,
    /// The targeted message type.
    pub message_type: String,
    /// The injected fault.
    pub fault: FaultKind,
    /// The generated Tcl filter script (guaranteed to parse).
    pub script: String,
}

/// A generated test campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Protocol under test.
    pub protocol: String,
    /// All generated cases.
    pub cases: Vec<TestCase>,
}

impl Campaign {
    /// Number of cases.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// Whether the campaign is empty.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }
}

impl FaultKind {
    /// The typed clause this fault lowers to, targeting one message type.
    pub fn to_clause(self, msg_type: &str) -> Clause {
        let (dst, window, action) = match self {
            FaultKind::Drop => (None, Window::All, FaultAction::Drop),
            FaultKind::DropAfter(n) => (None, Window::After(n), FaultAction::Drop),
            FaultKind::Delay(d) => (None, Window::All, FaultAction::DelayMs(d.as_millis())),
            FaultKind::Duplicate => (None, Window::All, FaultAction::Duplicate(1)),
            FaultKind::CorruptByte(off) => (
                None,
                Window::All,
                FaultAction::CorruptByte {
                    offset: off,
                    mask: 0x40,
                },
            ),
            FaultKind::DropToDest(dst) => (Some(dst), Window::All, FaultAction::Drop),
        };
        Clause {
            msg_type: Some(msg_type.to_string()),
            dst,
            window,
            action,
        }
    }
}

fn emit_script(msg_type: &str, fault: FaultKind) -> String {
    FilterProgram::new()
        .clause(fault.to_clause(msg_type))
        .emit()
}

/// Generates the full cross product of message types × faults × directions.
///
/// # Panics
///
/// Panics if a generated script fails to parse — that would be a bug in
/// the generator, caught immediately rather than at injection time.
pub fn generate(spec: &ProtocolSpec, matrix: &[FaultKind], dirs: &[Direction]) -> Campaign {
    let mut cases = Vec::new();
    for msg in &spec.messages {
        for &fault in matrix {
            for &dir in dirs {
                let script = emit_script(&msg.name, fault);
                Script::parse(&script).unwrap_or_else(|e| {
                    panic!(
                        "generator produced an unparseable script for {}: {e}\n{script}",
                        msg.name
                    )
                });
                cases.push(TestCase {
                    id: format!(
                        "{}/{}/{}/{}",
                        spec.name,
                        dir.as_str(),
                        fault.id_fragment(),
                        msg.name
                    ),
                    description: format!(
                        "{:?} {} messages on the {} path of {}",
                        fault, msg.name, dir, spec.name
                    ),
                    dir,
                    message_type: msg.name.clone(),
                    fault,
                    script,
                });
            }
        }
    }
    Campaign {
        protocol: spec.name.clone(),
        cases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cross_product_is_generated_and_parses() {
        let spec = ProtocolSpec::gmp();
        let campaign = generate(
            &spec,
            &FaultKind::default_matrix(),
            &[Direction::Send, Direction::Receive],
        );
        assert_eq!(campaign.len(), 8 * 6 * 2);
        for case in &campaign.cases {
            assert!(Script::parse(&case.script).is_ok(), "{}", case.id);
            assert!(case.script.contains(&case.message_type));
        }
    }

    #[test]
    fn ids_are_unique() {
        let campaign = generate(
            &ProtocolSpec::tcp(),
            &FaultKind::default_matrix(),
            &[Direction::Send, Direction::Receive],
        );
        let mut ids: Vec<&str> = campaign.cases.iter().map(|c| c.id.as_str()).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn drop_after_counts_before_dropping() {
        let spec = ProtocolSpec::new("toy", &[("A-B", crate::spec::Role::Data)]);
        let campaign = generate(&spec, &[FaultKind::DropAfter(3)], &[Direction::Send]);
        // Hyphens in type names must not break the lowering.
        let script = &campaign.cases[0].script;
        assert!(
            script.contains("incr") && script.contains("> 3"),
            "{script}"
        );
        assert!(Script::parse(script).is_ok());
    }

    #[test]
    fn paper_style_case_is_among_the_output() {
        // The paper's "drop COMMITs" test must fall out of the generator.
        let campaign = generate(
            &ProtocolSpec::gmp(),
            &[FaultKind::Drop],
            &[Direction::Receive],
        );
        assert!(campaign
            .cases
            .iter()
            .any(|c| c.id == "gmp/receive/drop/COMMIT"));
    }
}
