//! Replayable repro artifacts for campaign-found failures.
//!
//! When exploration finds and shrinks a failing schedule, the engine
//! writes a small hand-rolled text artifact — target, world seed, violated
//! oracle, and the 1-minimal fault lines — that replays byte-identically:
//! parsing the text and re-running the schedule against a fresh target
//! reproduces the same violation, and re-serializing reproduces the same
//! bytes. No serialization dependency, no versioned binary format; the
//! artifact is meant to be pasted into a bug report and read by a human.
//!
//! ```text
//! pfi-repro v1
//! target gmp
//! seed 4242
//! oracle gmp-no-self-death
//! message n1 declared itself dead
//! fault n1 send drop-all HEARTBEAT
//! end
//! ```

use crate::schedule::FaultSchedule;

/// The artifact's format-version header line.
const HEADER: &str = "pfi-repro v1";

/// One campaign-found failure, in replayable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// Target name ([`crate::TestTarget::name`]).
    pub target: String,
    /// The target's world seed (every run of a target reuses it).
    pub seed: u64,
    /// Name of the violated oracle.
    pub oracle: String,
    /// The violation message the oracle produced.
    pub message: String,
    /// The shrunk, 1-minimal fault schedule.
    pub schedule: FaultSchedule,
}

impl Repro {
    /// Renders the artifact text (stable: identical repros render
    /// identical bytes).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("target {}\n", self.target));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("oracle {}\n", self.oracle));
        out.push_str(&format!("message {}\n", self.message));
        for line in self.schedule.to_lines() {
            out.push_str(&format!("fault {line}\n"));
        }
        out.push_str("end\n");
        out
    }

    /// Parses an artifact back; inverse of [`to_text`](Repro::to_text).
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(format!("missing {HEADER:?} header"));
        }
        let mut target = None;
        let mut seed = None;
        let mut oracle = None;
        let mut message = None;
        let mut fault_lines = Vec::new();
        let mut ended = false;
        for line in lines {
            if ended {
                return Err(format!("content after end: {line:?}"));
            }
            match line.split_once(' ') {
                _ if line == "end" => ended = true,
                Some(("target", v)) => target = Some(v.to_string()),
                Some(("seed", v)) => {
                    seed = Some(
                        v.parse::<u64>()
                            .map_err(|e| format!("bad seed {v:?}: {e}"))?,
                    )
                }
                Some(("oracle", v)) => oracle = Some(v.to_string()),
                Some(("message", v)) => message = Some(v.to_string()),
                Some(("fault", v)) => fault_lines.push(v),
                _ => return Err(format!("unrecognised line: {line:?}")),
            }
        }
        if !ended {
            return Err("missing end line".to_string());
        }
        Ok(Repro {
            target: target.ok_or("missing target line")?,
            seed: seed.ok_or("missing seed line")?,
            oracle: oracle.ok_or("missing oracle line")?,
            message: message.ok_or("missing message line")?,
            schedule: FaultSchedule::from_lines(fault_lines)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultOp, ScheduledFault};
    use pfi_core::Direction;

    fn sample() -> Repro {
        Repro {
            target: "gmp".into(),
            seed: 4242,
            oracle: "gmp-no-self-death".into(),
            message: "n1 declared itself dead".into(),
            schedule: FaultSchedule {
                faults: vec![
                    ScheduledFault {
                        site: 1,
                        dir: Direction::Send,
                        op: FaultOp::DropAll {
                            msg_type: "HEARTBEAT".into(),
                        },
                    },
                    ScheduledFault {
                        site: 2,
                        dir: Direction::Receive,
                        op: FaultOp::DelayMs {
                            msg_type: "COMMIT".into(),
                            ms: 5_000,
                        },
                    },
                ],
            },
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let repro = sample();
        let text = repro.to_text();
        let parsed = Repro::from_text(&text).unwrap();
        assert_eq!(parsed, repro);
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn text_is_the_documented_shape() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "pfi-repro v1");
        assert_eq!(lines[1], "target gmp");
        assert_eq!(lines[2], "seed 4242");
        assert_eq!(lines[3], "oracle gmp-no-self-death");
        assert_eq!(lines[4], "message n1 declared itself dead");
        assert_eq!(lines[5], "fault n1 send drop-all HEARTBEAT");
        assert_eq!(lines[6], "fault n2 recv delay-ms COMMIT 5000");
        assert_eq!(lines[7], "end");
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        assert!(Repro::from_text("").is_err());
        assert!(Repro::from_text("pfi-repro v1\ntarget gmp\n").is_err());
        assert!(Repro::from_text("pfi-repro v2\nend\n").is_err());
        let mut truncated = sample().to_text();
        truncated.truncate(truncated.len() - 4);
        assert!(Repro::from_text(&truncated).is_err());
        let trailing = format!("{}junk\n", sample().to_text());
        assert!(Repro::from_text(&trailing).is_err());
    }
}
