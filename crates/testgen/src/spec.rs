//! Protocol specifications: the input to the script generator.
//!
//! A specification lists the message types a protocol exchanges and what
//! role each plays. That is exactly the knowledge a packet stub encodes for
//! recognition; here it drives systematic *test generation* instead.

/// The role a message type plays, which informs what a fault against it
/// should be expected to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Periodic liveness traffic (e.g. heartbeats): losing it should
    /// degrade membership/latency but never corrupt agreement.
    Liveness,
    /// Agreement/control traffic (e.g. `MEMBERSHIP_CHANGE`, `COMMIT`):
    /// the protocol must either make progress without it or park safely.
    Control,
    /// Bulk payload (e.g. TCP `DATA`): must be delivered exactly or not at
    /// all.
    Data,
    /// Acknowledgements: losing them must only cost retransmissions.
    Acknowledgement,
}

/// One message type of the protocol under test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageSpec {
    /// The type name exactly as the protocol's packet stub reports it
    /// (`msg_type`).
    pub name: String,
    /// Its role.
    pub role: Role,
}

/// A protocol specification: the complete list of message types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolSpec {
    /// Protocol name (matches the packet stub's `protocol()`).
    pub name: String,
    /// All message types.
    pub messages: Vec<MessageSpec>,
}

impl ProtocolSpec {
    /// Creates a specification from `(type name, role)` pairs.
    pub fn new(name: impl Into<String>, messages: &[(&str, Role)]) -> Self {
        ProtocolSpec {
            name: name.into(),
            messages: messages
                .iter()
                .map(|(n, r)| MessageSpec {
                    name: n.to_string(),
                    role: *r,
                })
                .collect(),
        }
    }

    /// The specification of the bundled group membership protocol.
    pub fn gmp() -> Self {
        Self::new(
            "gmp",
            &[
                ("HEARTBEAT", Role::Liveness),
                ("PROCLAIM", Role::Control),
                ("JOIN", Role::Control),
                ("MEMBERSHIP_CHANGE", Role::Control),
                ("ACK", Role::Acknowledgement),
                ("NAK", Role::Acknowledgement),
                ("COMMIT", Role::Control),
                ("FAILURE_REPORT", Role::Control),
            ],
        )
    }

    /// The specification of the bundled TCP.
    pub fn tcp() -> Self {
        Self::new(
            "tcp",
            &[
                ("SYN", Role::Control),
                ("SYN-ACK", Role::Control),
                ("DATA", Role::Data),
                ("ACK", Role::Acknowledgement),
                ("FIN", Role::Control),
                ("RST", Role::Control),
            ],
        )
    }

    /// The specification of the bundled two-phase commit protocol.
    pub fn two_phase_commit() -> Self {
        Self::new(
            "tpc",
            &[
                ("PREPARE", Role::Control),
                ("VOTE_YES", Role::Acknowledgement),
                ("VOTE_NO", Role::Acknowledgement),
                ("COMMIT", Role::Control),
                ("ABORT", Role::Control),
                ("ACK", Role::Acknowledgement),
            ],
        )
    }

    /// Message names, in declaration order.
    pub fn message_names(&self) -> Vec<&str> {
        self.messages.iter().map(|m| m.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_specs_cover_the_wire_types() {
        let gmp = ProtocolSpec::gmp();
        assert_eq!(gmp.messages.len(), 8);
        assert!(gmp.message_names().contains(&"COMMIT"));
        let tcp = ProtocolSpec::tcp();
        assert!(tcp.message_names().contains(&"DATA"));
        assert_eq!(tcp.name, "tcp");
    }

    #[test]
    fn custom_spec_construction() {
        let s = ProtocolSpec::new("toy", &[("PING", Role::Liveness), ("PONG", Role::Liveness)]);
        assert_eq!(s.message_names(), vec!["PING", "PONG"]);
    }
}
