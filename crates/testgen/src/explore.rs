//! The coverage-guided campaign engine, expressed as a fleet of epochs.
//!
//! Where [`crate::generate`] enumerates a fixed grid, [`explore`] *searches*:
//! starting from the fault-free baseline, it repeatedly picks a corpus
//! schedule, mutates it under a seeded RNG, runs the mutant against a fresh
//! target, and keeps it iff it reaches coverage no earlier schedule
//! reached. Violations are delta-debugged to 1-minimal fault sets and
//! rendered as replayable [`Repro`] artifacts.
//!
//! # Determinism across worker counts
//!
//! The search runs in **epochs** of [`ExploreConfig::epoch`] candidates:
//! the master generates the whole epoch serially (consuming the seeded RNG
//! against the epoch-start corpus), the candidates execute — inline, or
//! fanned out across a [`pfi_fleet::Fleet`] by [`explore_fleet`] — and the
//! results merge back in canonical schedule-id order. Every run is a pure
//! function of its schedule, so corpus evolution, coverage, `executed`
//! counts, and repro artifact bytes are a function of
//! `(seed, budget, max_faults, epoch)` and **never** of the worker count.
//! With `epoch == 1` the engine *is* the classic sequential explorer —
//! generate one, run one, merge one — reproducing its digests exactly;
//! larger epochs trade a little search adaptivity for dispatch width.
//!
//! Candidates cross the thread boundary as typed [`FaultSchedule`]s —
//! worlds are arena-backed and `Send`, so nothing needs a text round-trip.
//! With snapshot/fork execution on (the default), each candidate also
//! carries an `Arc` of the cached base-world snapshot, so workers *fork*
//! the prepared world instead of replaying `TestTarget::build` per run;
//! with it off, each worker builds its own worlds from the
//! [`TargetFactory`] it was handed at construction. Either way the
//! outcome bytes are identical — forking a snapshot continues exactly the
//! run a cold build would have produced.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

use pfi_fleet::{Fleet, FleetReport, JobRunner, DEFAULT_MAX_RETRIES};
use pfi_sim::SimRng;

use crate::coverage::Coverage;
use crate::journal::{
    Journal, JournalCase, JournalCounters, JournalMeta, JournalQuarantine, JournalWriter,
};
use crate::repro::Repro;
use crate::runner::{
    panic_text, run_schedule_limited, run_schedule_snapshotted, RunLimits, ScheduleRun,
    TargetFactory, TestTarget, Verdict,
};
use crate::schedule::{FaultSchedule, ScheduleMutator};
use crate::shrink::shrink_schedule;
use crate::snapshot::{prefix_digests, CaseSnapshot, SnapshotStats, SnapshotStore};
use crate::spec::ProtocolSpec;

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Seed for every mutation / corpus-selection decision.
    pub seed: u64,
    /// How many mutants to attempt (the run budget).
    pub budget: usize,
    /// Maximum faults per schedule.
    pub max_faults: usize,
    /// Mutation attempts per dispatch epoch — the determinism unit. One
    /// corpus parent is drawn per epoch and every candidate of the batch
    /// mutates it (batched corpus scheduling: siblings share the parent's
    /// schedule prefix, so the whole batch forks off one dispatched
    /// snapshot). Outcomes depend on it (corpus selection sees the
    /// epoch-start corpus) but never on the worker count executing the
    /// epoch. `1` reproduces the classic fully-sequential explorer
    /// byte-for-byte.
    pub epoch: usize,
    /// Statically reject uninstallable candidates (out-of-topology fault
    /// sites, lowered scripts that do not parse) before dispatching them
    /// to workers. Rejection uses exactly the install predicate the
    /// runner enforces ([`crate::validate::schedule_is_installable`]), so
    /// corpus, coverage, failures — the whole digest — are byte-identical
    /// with pre-filtering on or off; only `executed` shrinks (the
    /// unfiltered engine runs the candidate just to watch it refuse
    /// installation). Default `true`.
    pub prefilter: bool,
    /// Equivalence pruning: skip candidates whose *canonical form*
    /// ([`FaultSchedule::canonical`] — faults stably sorted by
    /// `(site, dir)`, which provably preserves the lowered scripts and
    /// therefore the run) already executed with a non-violating verdict.
    /// Such a candidate would replay a byte-identical run whose coverage
    /// the campaign has already merged, so skipping it changes nothing
    /// the campaign finds: corpus, coverage, failures — the whole digest —
    /// are byte-identical with pruning on or off (pinned in CI like
    /// `--no-prefilter`); only `executed` shrinks, by exactly the
    /// `pruned` count. Violating equivalents still execute (delta
    /// debugging a permuted fault vector can minimize to a *different*
    /// 1-minimal schedule, a distinct failure the unpruned engine would
    /// report), candidates are never pruned against others of the same
    /// epoch batch (only against merge-settled results), and only
    /// candidates passing the install predicate
    /// ([`crate::validate::schedule_is_installable`]) are canonicalized
    /// at all, so `rejected` accounting is untouched. Default `true`.
    pub pruning: bool,
    /// Semantic schedule pruning — the third prune tier, on top of
    /// `pruning`'s canonical dedup. Candidates are keyed by their
    /// [semantic quotient](crate::FlowModel::semantic_schedule) under the
    /// target's [`FlowModel`](crate::FlowModel): statically-inert faults
    /// stripped, corruption shadowed by an unconditional drop on the same
    /// flow removed. A candidate whose quotient id is already
    /// merge-settled (non-violating) is skipped and counted in `inert` —
    /// running it would be behaviour-indistinguishable from a run the
    /// campaign already merged, so corpus, coverage, failures — the whole
    /// digest — are byte-identical with this on or off;
    /// `executed_off == executed_on + pruned_on + inert_on` exactly.
    /// Effective only when `pruning` is on (a canonical duplicate is also
    /// a semantic duplicate; tiering keeps the counters disjoint), when
    /// the target publishes a flow model
    /// ([`TestTarget::flow_model`](crate::TestTarget::flow_model)), and
    /// when `step_budget` is 0 (inert clauses still consume interpreter
    /// steps, so at a budget boundary the quotient is *not* equivalent).
    /// Default `true`.
    pub semantic: bool,
    /// Record every pruned candidate (all tiers) into
    /// [`ExploreOutcome::skipped`] with the reason and the facts that
    /// proved it — what `pfi-campaign --explain-pruned` prints.
    /// Diagnostics only: never journaled, never part of the digest.
    /// Default `false`.
    pub explain: bool,
    /// Schedules to execute before the budgeted search begins — a corpus
    /// pool carried over from earlier campaigns against the same target
    /// (the pfi-serve store shares coverage-novel schedules across
    /// campaigns keyed by their snapshot prefix digests). Seeds run
    /// through the ordinary dispatch/merge machinery (journaled,
    /// replayable, prunable) right after the baseline: coverage-novel
    /// ones join the corpus and steer parent selection from epoch one.
    /// They count toward `executed` but consume no mutation budget and no
    /// RNG draws. Identity: the journal records a digest of the seed ids,
    /// and resume must be handed the same seeds. Default empty.
    pub seed_corpus: Vec<FaultSchedule>,
    /// How many times a candidate whose execution *panics* (escaping the
    /// runner's own containment) is retried before it is quarantined and
    /// its lineage dropped. Fleet workers retry with exponential virtual
    /// backoff; the inline engine quarantines on the first panic (a
    /// deterministic panic quarantines the same schedule either way, so
    /// corpus and coverage stay worker-count-independent). Default
    /// [`DEFAULT_MAX_RETRIES`].
    pub max_retries: u32,
    /// Interpreter step budget installed per run on every fault site's
    /// filter interpreters; a filter script that exhausts it is cut short
    /// and the run reports [`Verdict::Hung`]. `0` (the default) keeps the
    /// interpreter's own generous default fuel.
    pub step_budget: u64,
    /// Write-ahead journal path. When set, the campaign appends dispatch
    /// intent and every merged result to this file as it runs (creating
    /// or truncating it first), so an interrupted campaign can resume.
    /// Journal I/O failure panics: a crash-safety journal that silently
    /// stopped recording would be worse than none.
    pub journal: Option<PathBuf>,
    /// Snapshot/fork execution: capture the prepared fault-free base world
    /// once and fork it per candidate instead of replaying
    /// `TestTarget::build` for every run. Outcomes — digest included — are
    /// byte-identical with snapshots on or off (the differential tests
    /// prove it), so this is deliberately **not** part of the journal
    /// identity: a journal recorded with snapshots off resumes fine with
    /// them on, and vice versa. Default `true`.
    pub snapshots: bool,
    /// Capacity of each snapshot LRU store (the master's dispatch cache
    /// and every worker-local per-candidate store). Default 64.
    pub snapshot_cache: usize,
    /// A journal loaded from an interrupted run of the *same* campaign
    /// (the metadata is checked; a mismatch panics). Recorded results are
    /// replayed without re-execution; only unrecorded work runs. The
    /// resulting [`ExploreOutcome`] — digest included — is byte-identical
    /// to an uninterrupted run's, and a journal written alongside
    /// (`journal` may point at the same path) ends byte-identical to an
    /// uninterrupted run's journal.
    pub resume: Option<Journal>,
}

impl ExploreConfig {
    /// The per-run runaway-run watchdog budgets this config implies.
    pub fn limits(&self) -> RunLimits {
        RunLimits {
            step_budget: self.step_budget,
            ..RunLimits::default()
        }
    }

    /// The per-candidate snapshot-store capacity, `None` when snapshot/
    /// fork execution is off.
    fn cache(&self) -> Option<usize> {
        self.snapshots.then_some(self.snapshot_cache)
    }

    /// The journal metadata identifying this campaign on `target`.
    pub fn journal_meta(&self, target: &dyn TestTarget) -> JournalMeta {
        JournalMeta {
            target: target.name().to_string(),
            world_seed: target.seed(),
            seed: self.seed,
            budget: self.budget,
            max_faults: self.max_faults,
            epoch: self.epoch,
            prefilter: self.prefilter,
            pruning: self.pruning,
            semantic: self.semantic,
            seed_corpus: seed_corpus_digest(&self.seed_corpus),
            step_budget: self.step_budget,
            max_retries: self.max_retries,
        }
    }
}

/// FNV-1a digest over the seed-corpus schedule ids (newline-separated);
/// `0` for an empty seed corpus. This is the `seed-corpus` identity line
/// of the campaign journal: two campaigns handed different seed schedules
/// are different campaigns.
pub fn seed_corpus_digest(seeds: &[FaultSchedule]) -> u64 {
    if seeds.is_empty() {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for s in seeds {
        for b in s.id().bytes() {
            mix(b);
        }
        mix(b'\n');
    }
    h
}

/// The default epoch width: wide enough to keep a handful of workers busy,
/// narrow enough that corpus feedback still steers the search.
pub const DEFAULT_EPOCH: usize = 16;

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            seed: 0x7061_7065_7266_6975, // "paperfiu"
            budget: 48,
            max_faults: 3,
            epoch: DEFAULT_EPOCH,
            prefilter: true,
            pruning: true,
            semantic: true,
            explain: false,
            seed_corpus: Vec::new(),
            max_retries: DEFAULT_MAX_RETRIES,
            step_budget: 0,
            snapshots: true,
            snapshot_cache: DEFAULT_SNAPSHOT_CACHE,
            journal: None,
            resume: None,
        }
    }
}

/// The default snapshot LRU capacity — comfortably more than one base
/// world per (target, limits) pair a campaign ever uses, while bounding
/// memory if tests seed deeper prefixes.
pub const DEFAULT_SNAPSHOT_CACHE: usize = 64;

/// One campaign-found, shrunk failure.
#[derive(Debug, Clone)]
pub struct FoundFailure {
    /// The schedule as the search first found it.
    pub schedule: FaultSchedule,
    /// Its 1-minimal shrunk form.
    pub shrunk: FaultSchedule,
    /// Name of the violated oracle.
    pub oracle: String,
    /// The violation message.
    pub message: String,
    /// The replayable artifact.
    pub repro: Repro,
}

/// Everything an exploration produced.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Schedules that each reached new coverage, in discovery order
    /// (index 0 is the fault-free baseline).
    pub corpus: Vec<FaultSchedule>,
    /// The union of all reached coverage.
    pub coverage: Coverage,
    /// Shrunk failures, deduplicated by their minimal schedule.
    pub failures: Vec<FoundFailure>,
    /// How many schedules actually ran: the baseline plus every novel
    /// mutation (≤ budget + 1), plus the re-executions shrinking performs
    /// for each found failure.
    pub executed: usize,
    /// How many candidates were refused as uninstallable — statically by
    /// the pre-filter ([`ExploreConfig::prefilter`]), or at install time
    /// ([`crate::Verdict::Invalid`]) when pre-filtering is off. The same
    /// candidates are refused either way; with the pre-filter on they
    /// never consume a worker.
    pub rejected: usize,
    /// Candidates skipped by equivalence pruning
    /// ([`ExploreConfig::pruning`]): their canonical form already
    /// executed with a non-violating verdict, so running them would have
    /// replayed a byte-identical run and merged nothing new. Each one is
    /// an execution the unpruned engine pays for the same digest
    /// (`executed_off == executed_on + pruned_on`).
    pub pruned: usize,
    /// Candidates skipped by semantic pruning ([`ExploreConfig::semantic`]):
    /// canonically novel, but their semantic quotient under the target's
    /// flow model — inert faults stripped, shadowed corruption removed —
    /// matches a merge-settled non-violating result, so executing them
    /// could not be distinguished from a run already merged. Disjoint from
    /// `pruned` by construction (the canonical tier runs first);
    /// `executed_off == executed_on + pruned_on + inert_on` exactly.
    pub inert: usize,
    /// How many of the `executed` results were replayed from a resume
    /// journal instead of re-executed. An uninterrupted campaign reports
    /// 0; a resumed one reports the work the interruption did not lose.
    pub replayed: usize,
    /// Runs whose target or oracle panicked mid-run ([`Verdict::Crashed`]).
    /// Their pre-crash coverage still fed the corpus.
    pub crashed: usize,
    /// Runs a runaway-run watchdog cut short ([`Verdict::Hung`]): event-cap
    /// exhaustion or a filter script burning out its step budget.
    pub hung: usize,
    /// Candidates the worker supervisor quarantined after exhausting panic
    /// retries. They produced no result at all — each entry is a dropped
    /// search lineage, reported loudly so a crashing target cannot leave a
    /// silent hole in the explored space.
    pub quarantined: Vec<JournalQuarantine>,
    /// Snapshot/fork statistics: the master store's counters plus every
    /// executed candidate's worker-local counters. All zeros when
    /// [`ExploreConfig::snapshots`] is off. Statistics only — never part
    /// of the [`digest`](ExploreOutcome::digest), since replayed work
    /// legitimately skips the forks an uninterrupted run performs.
    pub snapshots: SnapshotStats,
    /// Why each skipped candidate was skipped, in skip order. Populated
    /// only under [`ExploreConfig::explain`]; diagnostics only — never
    /// journaled and never part of the digest.
    pub skipped: Vec<SkippedCandidate>,
}

/// One candidate a prune tier skipped, with the proof that skipping it
/// loses nothing ([`ExploreConfig::explain`] diagnostics).
#[derive(Debug, Clone)]
pub struct SkippedCandidate {
    /// The candidate as the mutator produced it.
    pub schedule: FaultSchedule,
    /// Which tier skipped it, and why.
    pub reason: SkipReason,
}

/// Why a candidate was skipped without executing.
#[derive(Debug, Clone)]
pub enum SkipReason {
    /// Canonical tier: the candidate's canonical form already executed
    /// with a non-violating verdict.
    CanonicalDuplicate {
        /// The settled canonical id the candidate rewrites to.
        canonical: String,
    },
    /// Semantic tier, no quotient rewrites: a *different* canonical form
    /// with the same semantic quotient already settled.
    SemanticDuplicate {
        /// The shared quotient id.
        quotient: String,
    },
    /// Semantic tier with quotient rewrites: statically-inert faults (with
    /// the reachability facts that proved each) and/or shadowed corruption
    /// were stripped, and the residue already settled.
    InertQuotient {
        /// The quotient id the candidate reduces to.
        quotient: String,
        /// Proofs for each stripped inert fault (shadow removals carry no
        /// per-fault fact; an empty list means only shadows were removed).
        facts: Vec<crate::reach::InertFact>,
    },
}

impl ExploreOutcome {
    /// A stable digest of the whole outcome; two explorations are
    /// byte-identical iff their digests are equal.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        out.push_str("corpus:\n");
        for s in &self.corpus {
            out.push_str(&format!("  {}\n", s.id()));
        }
        out.push_str("coverage:\n");
        for e in self.coverage.edges() {
            out.push_str(&format!("  {e}\n"));
        }
        out.push_str("failures:\n");
        for f in &self.failures {
            out.push_str(&f.repro.to_text());
        }
        out
    }

    /// A short fixed-width form of [`digest`](ExploreOutcome::digest)
    /// (FNV-1a, hex) for golden files and CI comparisons.
    pub fn digest64(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.digest().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

// ---------------------------------------------------------------------
// Worker-side candidate execution
// ---------------------------------------------------------------------

/// One dispatched candidate: the schedule to run, plus (with snapshots
/// on) the cached base-world snapshot the master attached so the worker
/// forks instead of rebuilding. The `Arc` crosses the fleet boundary
/// directly — world snapshots are `Send + Sync` plain data.
#[derive(Debug, Clone)]
struct CandidateJob {
    /// The candidate schedule.
    schedule: FaultSchedule,
    /// The longest cached prefix snapshot the master's store held at
    /// dispatch time; `None` with snapshots off (or when the target's
    /// world refuses to snapshot).
    prepared: Option<Arc<CaseSnapshot>>,
}

/// Everything one candidate execution produced. Computed entirely on the
/// worker that ran the candidate — a pure function of the schedule — so
/// the master can merge reports in canonical order without re-running
/// anything.
#[derive(Debug, Clone)]
struct CandidateReport {
    /// The candidate schedule (crosses the fleet boundary typed — no
    /// serialization round-trip).
    schedule: FaultSchedule,
    /// The run itself.
    run: ScheduleRun,
    /// Shrink results, when the run violated an oracle.
    shrink: Option<ShrinkReport>,
    /// Which worker ran it (statistics only; 0 inline).
    worker: usize,
    /// Snapshot counters from this candidate's worker-local store — a
    /// pure function of the candidate (each candidate gets a *fresh*
    /// store seeded with its dispatched snapshot), so totals are
    /// independent of job scheduling and worker count.
    snapshots: SnapshotStats,
}

#[derive(Debug, Clone)]
struct ShrinkReport {
    /// The violated oracle the shrink preserved.
    oracle: String,
    /// The 1-minimal schedule.
    shrunk: FaultSchedule,
    /// How many re-executions shrinking performed.
    runs: usize,
    /// The confirmed bare violation message, when this report was replayed
    /// from a journal (the original run already confirmed it on the
    /// master; replay must not re-execute). `None` on live runs — the
    /// master confirms as usual.
    message: Option<String>,
}

/// Runs one candidate: execute, and delta-debug to 1-minimal if it
/// violated an oracle. Shrinking re-runs against the *same* oracle: the
/// minimal schedule must reproduce this failure, not just any failure.
///
/// With a `cache` capacity, the candidate runs through a fresh
/// worker-local [`SnapshotStore`] seeded with the snapshot it was
/// dispatched with: the main run forks the base instead of rebuilding,
/// and every shrink re-run forks it again (shrunk schedules share the
/// same base `d_0`). A fresh store per candidate keeps the reported
/// counters a pure function of the candidate.
fn candidate_report(
    target: &dyn TestTarget,
    job: CandidateJob,
    limits: &RunLimits,
    cache: Option<usize>,
) -> CandidateReport {
    let CandidateJob { schedule, prepared } = job;
    let mut local = cache.map(SnapshotStore::new);
    if let (Some(store), Some(snap)) = (local.as_mut(), prepared) {
        store.seed(snap);
    }
    let run = run_schedule_snapshotted(target, &schedule, limits, local.as_mut());
    let shrink = match &run.verdict {
        Verdict::Violated(_) => {
            let oracle = run.oracle.clone().unwrap_or_else(|| "target".to_string());
            let mut runs = 0usize;
            let shrunk = shrink_schedule(&schedule, |s| {
                runs += 1;
                let rerun = run_schedule_snapshotted(target, s, limits, local.as_mut());
                rerun.verdict.is_violation() && rerun.oracle.as_deref() == Some(oracle.as_str())
            });
            Some(ShrinkReport {
                oracle,
                shrunk,
                runs,
                message: None,
            })
        }
        _ => None,
    };
    CandidateReport {
        schedule,
        run,
        shrink,
        worker: 0,
        snapshots: local.map(|s| s.stats().clone()).unwrap_or_default(),
    }
}

/// Rebuilds a candidate report from a journaled case — the no-execution
/// path resume takes for work the interrupted run already finished.
fn replayed_report(world_seed: u64, case: JournalCase) -> CandidateReport {
    let run = ScheduleRun {
        schedule_id: case.schedule.id(),
        seed: world_seed,
        scripts: case.schedule.lower(),
        verdict: case.verdict,
        oracle: case.oracle.clone(),
        coverage: Coverage::from_edges(case.coverage),
    };
    let shrink = case.shrink.map(|s| ShrinkReport {
        oracle: case.oracle.unwrap_or_else(|| "target".to_string()),
        shrunk: s.shrunk,
        runs: s.runs,
        message: s.message,
    });
    CandidateReport {
        schedule: case.schedule,
        run,
        shrink,
        worker: 0,
        // Replayed work performed no runs at all — no forks to count.
        snapshots: SnapshotStats::default(),
    }
}

// ---------------------------------------------------------------------
// Epoch execution strategies
// ---------------------------------------------------------------------

/// What became of one dispatched candidate: a report, or a quarantine
/// notice after the supervisor gave up retrying a panicking execution.
enum EpochResult {
    /// The candidate ran (possibly to a [`Verdict::Crashed`] — contained
    /// panics still yield reports) and reported back.
    Report(Box<CandidateReport>),
    /// Execution itself panicked past containment every time the
    /// supervisor tried it; the candidate produced nothing.
    Quarantined {
        schedule: FaultSchedule,
        attempts: u32,
        error: String,
    },
}

impl EpochResult {
    /// The candidate's schedule id — the canonical merge-order key.
    fn schedule_id(&self) -> String {
        match self {
            EpochResult::Report(r) => r.schedule.id(),
            EpochResult::Quarantined { schedule, .. } => schedule.id(),
        }
    }
}

/// How one epoch's candidates get executed. The master's search loop is
/// identical either way; only the dispatch differs.
trait EpochRunner {
    /// Runs every candidate of an epoch; order of the returned results is
    /// irrelevant (the merge step canonicalises it).
    fn run_epoch(&mut self, batch: Vec<CandidateJob>) -> Vec<EpochResult>;
    /// Statistics hook: the candidate run by `worker` reached new coverage.
    fn note_novel(&mut self, _worker: usize) {}
    /// The resolved worker count executing epochs — recorded in the
    /// journal as statistics (never part of the campaign identity, since
    /// outcomes are worker-count-independent by construction).
    fn workers(&self) -> usize {
        1
    }
}

/// In-place execution on the caller's target: the 1-worker fleet.
struct InlineEpochs<'a> {
    target: &'a dyn TestTarget,
    limits: RunLimits,
    cache: Option<usize>,
}

impl EpochRunner for InlineEpochs<'_> {
    fn run_epoch(&mut self, batch: Vec<CandidateJob>) -> Vec<EpochResult> {
        batch
            .into_iter()
            .map(|job| {
                // The runner contains target/oracle panics itself
                // (`Verdict::Crashed`); this outer net catches panics in
                // the engine plumbing around it, mirroring the fleet
                // supervisor so a pathological candidate quarantines
                // instead of killing the campaign. No retry inline: a
                // panic on this thread is deterministic by construction.
                match catch_unwind(AssertUnwindSafe(|| {
                    candidate_report(self.target, job.clone(), &self.limits, self.cache)
                })) {
                    Ok(report) => EpochResult::Report(Box::new(report)),
                    Err(payload) => EpochResult::Quarantined {
                        schedule: job.schedule,
                        attempts: 1,
                        error: panic_text(payload.as_ref()),
                    },
                }
            })
            .collect()
    }
}

/// Everything a fleet worker needs to execute one campaign's candidates —
/// attached to each dispatched job so the *same* long-lived worker pool
/// serves campaign after campaign (different targets, limits, and cache
/// settings) without respawning threads. Target construction from the
/// factory is cheap plain-data cloning; the expensive world build happens
/// inside the run (and rides the dispatched snapshot when one is
/// attached).
struct CampaignContext {
    factory: Arc<dyn TargetFactory>,
    limits: RunLimits,
    cache: Option<usize>,
}

/// One candidate paired with its campaign context, crossing the fleet's
/// thread boundary.
#[derive(Clone)]
struct FleetJob {
    job: CandidateJob,
    ctx: Arc<CampaignContext>,
}

/// Fan-out across a worker fleet. Candidates cross the thread boundary as
/// typed [`FaultSchedule`]s (plain data, `Send` — no text round-trip);
/// reports come back `Send`. Jobs whose worker dies repeatedly come back
/// as supervisor quarantine errors instead of aborting the epoch.
struct FleetEpochs<'a> {
    fleet: &'a mut Fleet<FleetJob, CandidateReport>,
    ctx: Arc<CampaignContext>,
}

impl EpochRunner for FleetEpochs<'_> {
    fn run_epoch(&mut self, batch: Vec<CandidateJob>) -> Vec<EpochResult> {
        let jobs: Vec<FleetJob> = batch
            .iter()
            .map(|job| FleetJob {
                job: job.clone(),
                ctx: Arc::clone(&self.ctx),
            })
            .collect();
        // `run_epoch_checked` returns items in dispatch (seq) order, which
        // is exactly `batch` order — zip to recover each job's schedule
        // without threading it through the failure path.
        self.fleet
            .run_epoch_checked(jobs)
            .into_iter()
            .zip(batch)
            .map(|(item, job)| match item.result {
                Ok(mut report) => {
                    report.worker = item.worker;
                    EpochResult::Report(Box::new(report))
                }
                Err(failure) => EpochResult::Quarantined {
                    schedule: job.schedule,
                    attempts: failure.attempts,
                    error: failure.error,
                },
            })
            .collect()
    }

    fn note_novel(&mut self, worker: usize) {
        self.fleet.note_novel(worker);
    }

    fn workers(&self) -> usize {
        self.fleet.workers()
    }
}

/// A long-lived campaign worker pool: one [`pfi_fleet::Fleet`] whose
/// threads outlive any single exploration, serving submitted campaigns
/// back to back — the execution tier under the pfi-serve daemon. Each
/// campaign hands its own target factory and limits along with every
/// dispatched candidate, so consecutive campaigns may target different
/// protocols entirely. Outcomes are byte-identical to a fresh
/// [`explore_fleet`] (or inline [`explore`]) at the same config: the pool
/// carries no campaign state across [`explore`](CampaignFleet::explore)
/// calls, only warm threads and cumulative statistics.
pub struct CampaignFleet {
    fleet: Fleet<FleetJob, CandidateReport>,
}

impl CampaignFleet {
    /// Spawns a pool of `jobs` worker threads (0 is clamped to 1).
    pub fn new(jobs: usize) -> Self {
        let fleet: Fleet<FleetJob, CandidateReport> = Fleet::new(jobs, |_worker| {
            Box::new(|fj: FleetJob| {
                let target = fj.ctx.factory.make();
                candidate_report(target.as_ref(), fj.job, &fj.ctx.limits, fj.ctx.cache)
            }) as Box<dyn JobRunner<FleetJob, CandidateReport>>
        });
        CampaignFleet { fleet }
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.fleet.workers()
    }

    /// Runs one campaign on the pool. Byte-identical to [`explore`] /
    /// [`explore_fleet`] at the same config, for any pool size and any
    /// number of campaigns run before it.
    pub fn explore(
        &mut self,
        factory: Arc<dyn TargetFactory>,
        spec: &ProtocolSpec,
        config: &ExploreConfig,
    ) -> ExploreOutcome {
        self.fleet.set_max_retries(config.max_retries);
        let master = factory.make();
        let ctx = Arc::new(CampaignContext {
            factory,
            limits: config.limits(),
            cache: config.cache(),
        });
        let mut epochs = FleetEpochs {
            fleet: &mut self.fleet,
            ctx,
        };
        explore_with(master.as_ref(), &mut epochs, spec, config)
    }

    /// Cumulative pool statistics since construction (non-consuming; the
    /// pool keeps running). Per-campaign accounting (`rejected`, `pruned`)
    /// lives on each campaign's [`ExploreOutcome`], not here.
    pub fn report(&self) -> FleetReport {
        self.fleet.report()
    }

    /// Stops the workers and returns the final cumulative statistics.
    pub fn shutdown(self) -> FleetReport {
        self.fleet.shutdown()
    }
}

// ---------------------------------------------------------------------
// The search loop
// ---------------------------------------------------------------------

/// The snapshot to attach to a dispatched candidate: the master store's
/// longest cached prefix (a non-counting peek — the executing worker's
/// own lookup does the hit accounting), lazily capturing the base world
/// on first need. The lazy capture covers resume: a resumed campaign may
/// replay the baseline without ever running it, leaving the master store
/// cold when the first live candidate dispatches.
fn dispatch_snapshot(
    master: &dyn TestTarget,
    limits: &RunLimits,
    store: &mut SnapshotStore,
    schedule: &FaultSchedule,
) -> Option<Arc<CaseSnapshot>> {
    let digests = prefix_digests(master, limits, schedule);
    if let Some(snap) = store.peek_longest(&digests) {
        return Some(snap);
    }
    let snap = Arc::new(crate::runner::capture_base(master, limits)?);
    store.insert(Arc::clone(&snap));
    Some(snap)
}

/// Appends one merged result to the write-ahead journal (no-op without a
/// writer). `message` is the confirmed bare violation message, present
/// exactly when this report first discovered its failure — its presence is
/// what lets resume skip the confirmation run.
fn journal_record(
    writer: Option<&mut JournalWriter>,
    report: &CandidateReport,
    message: Option<&str>,
) {
    let Some(w) = writer else { return };
    let case = JournalCase {
        schedule: report.schedule.clone(),
        verdict: report.run.verdict.clone(),
        oracle: report.run.oracle.clone(),
        coverage: report.run.coverage.edges().map(str::to_string).collect(),
        shrink: report
            .shrink
            .as_ref()
            .map(|s| crate::journal::JournalShrink {
                shrunk: s.shrunk.clone(),
                runs: s.runs,
                message: message.map(str::to_string),
            }),
    };
    w.case(&case)
        .unwrap_or_else(|e| panic!("cannot append to campaign journal: {e}"));
}

/// The epoch-synchronous search shared by [`explore`] and
/// [`explore_fleet`]. `master` handles everything that must stay serial:
/// candidate generation (the RNG), the baseline run, the final
/// confirmation run of each unique shrunk failure, and the write-ahead
/// journal.
fn explore_with(
    master: &dyn TestTarget,
    epochs: &mut dyn EpochRunner,
    spec: &ProtocolSpec,
    config: &ExploreConfig,
) -> ExploreOutcome {
    assert!(config.epoch > 0, "epoch width must be at least 1");
    let limits = config.limits();
    let meta = config.journal_meta(master);
    let mut replay: BTreeMap<String, JournalCase> = match &config.resume {
        Some(journal) => {
            assert_eq!(
                journal.meta, meta,
                "resume journal was recorded for a different campaign"
            );
            journal.replay_map()
        }
        None => BTreeMap::new(),
    };
    let mut writer = config.journal.as_ref().map(|path| {
        let mut w = JournalWriter::create(path, &meta)
            .unwrap_or_else(|e| panic!("cannot create campaign journal: {e}"));
        // Worker count is recorded for the campaign record but kept out of
        // the identity `meta` — outcomes never depend on it, so resuming
        // under a different `--jobs` is legitimate.
        w.jobs(epochs.workers())
            .unwrap_or_else(|e| panic!("cannot append to campaign journal: {e}"));
        // Snapshot/fork execution is likewise statistics, not identity:
        // outcomes are byte-identical with it on or off, so resume never
        // checks this line either.
        w.snapshots(config.snapshots, config.snapshot_cache)
            .unwrap_or_else(|e| panic!("cannot append to campaign journal: {e}"));
        w
    });

    let mut master_store = config.cache().map(SnapshotStore::new);
    let mut snap_stats = SnapshotStats::default();

    let mut rng = SimRng::seed_from(config.seed);
    let mutator = ScheduleMutator::new(spec, master.node_count(), master.fault_sites());

    let mut replayed = 0usize;
    let mut crashed = 0usize;
    let mut hung = 0usize;
    let mut quarantined: Vec<JournalQuarantine> = Vec::new();

    let baseline = FaultSchedule::empty();
    if let Some(w) = writer.as_mut() {
        w.dispatch(&baseline.id())
            .unwrap_or_else(|e| panic!("cannot append to campaign journal: {e}"));
    }
    let base_report = match replay.remove(&baseline.id()) {
        Some(case) => {
            replayed += 1;
            replayed_report(master.seed(), case)
        }
        None => CandidateReport {
            // The baseline's miss is what first captures the base world
            // into the master store (snapshots on).
            run: run_schedule_snapshotted(master, &baseline, &limits, master_store.as_mut()),
            schedule: baseline.clone(),
            shrink: None,
            worker: 0,
            snapshots: SnapshotStats::default(),
        },
    };
    journal_record(writer.as_mut(), &base_report, None);
    if base_report.run.verdict.is_crashed() {
        crashed += 1;
    }
    if base_report.run.verdict.is_hung() {
        hung += 1;
    }
    let mut coverage = base_report.run.coverage;
    let mut corpus = vec![baseline.clone()];
    let mut executed = 1usize;

    let mut seen = std::collections::BTreeSet::new();
    seen.insert(baseline.id());
    let mut failures: Vec<FoundFailure> = Vec::new();
    let mut failure_keys = std::collections::BTreeSet::new();
    let mut rejected = 0usize;

    let sites = master.fault_sites();
    let mut pruned = 0usize;
    let mut inert = 0usize;
    let mut skipped: Vec<SkippedCandidate> = Vec::new();
    // Canonical ids of merge-settled, non-violating results — what
    // equivalence pruning skips duplicates of. Updated only at merge
    // time, so candidates are never pruned against siblings of their own
    // epoch batch (which would race the canonical merge order).
    let mut settled = std::collections::BTreeSet::new();
    // Semantic-quotient ids of the same results, for the third tier. Only
    // maintained when the tier is active: it needs the canonical tier on
    // (so the counters stay disjoint), a flow model from the target, and
    // no interpreter step budget (inert clauses still burn steps, so at a
    // budget boundary the quotient is not behaviour-equivalent).
    let model = (config.pruning && config.semantic && config.step_budget == 0)
        .then(|| master.flow_model())
        .flatten();
    let mut settled_sem = std::collections::BTreeSet::new();
    if model.is_some() && !base_report.run.verdict.is_violation() {
        // The baseline settles the empty quotient: a candidate made of
        // nothing but statically-inert faults reduces to it and skips.
        // (No candidate *canonicalizes* to the baseline — canonical
        // rewrites never empty a schedule — so `settled` has no
        // baseline entry and the tiers stay disjoint.)
        settled_sem.insert(baseline.id());
    }
    let mut seeds_pending = !config.seed_corpus.is_empty();
    let mut attempted = 0usize;
    while seeds_pending || attempted < config.budget {
        let mut batch: Vec<FaultSchedule> = Vec::new();
        if seeds_pending {
            // The seed corpus is the zeroth batch: schedules carried over
            // from earlier campaigns run through the ordinary dispatch
            // and merge machinery (journaled, replayable, prunable), so
            // coverage-novel ones steer parent selection from epoch one.
            // They consume no mutation budget and no RNG draws.
            seeds_pending = false;
            for s in &config.seed_corpus {
                if !s.is_empty() && seen.insert(s.id()) {
                    batch.push(s.clone());
                }
            }
        } else {
            // Generate the epoch serially against the epoch-start corpus.
            // One parent is drawn per epoch and every candidate of the batch
            // mutates *it* — batched corpus scheduling: siblings share the
            // parent's schedule prefix, so the whole batch forks off one
            // dispatched snapshot. An epoch consumes up to `epoch` mutation
            // *attempts* (a mutant that re-derives an already-seen schedule
            // still consumes budget but is not re-run), which at `epoch == 1`
            // reproduces the classic sequential explorer's RNG stream
            // exactly: one parent draw per attempt.
            let parent = corpus[rng.uniform_u64(0, corpus.len() as u64) as usize].clone();
            let mut batch_attempts = 0usize;
            while attempted < config.budget && batch_attempts < config.epoch {
                batch_attempts += 1;
                attempted += 1;
                let candidate = mutator.mutate(&parent, config.max_faults, &mut rng);
                if seen.insert(candidate.id()) {
                    batch.push(candidate);
                }
            }
        }
        // Static pre-filter: drop uninstallable candidates before they
        // reach a worker. This happens *after* generation — the RNG and
        // the `seen` set have already advanced identically to the
        // unfiltered engine — so the surviving runs are the same runs.
        if config.prefilter {
            batch.retain(|candidate| {
                let ok = crate::validate::schedule_is_installable(candidate, sites);
                if !ok {
                    rejected += 1;
                }
                ok
            });
        }
        // Equivalence pruning: a candidate whose canonical form already
        // executed (with a non-violating verdict) would replay a
        // byte-identical run and merge nothing — skip it. Uninstallable
        // candidates are never canonicalized (with the pre-filter off
        // they must still reach the runner and be refused there, keeping
        // `rejected` identical in every mode), and violating equivalence
        // classes are deliberately absent from `settled` (delta-debugging
        // a permuted fault vector can minimize to a different 1-minimal
        // failure the unpruned engine would report).
        if config.pruning {
            batch.retain(|candidate| {
                if !crate::validate::schedule_is_installable(candidate, sites) {
                    return true;
                }
                let canonical = candidate.canonical_id();
                if settled.contains(&canonical) {
                    pruned += 1;
                    if config.explain {
                        skipped.push(SkippedCandidate {
                            schedule: candidate.clone(),
                            reason: SkipReason::CanonicalDuplicate { canonical },
                        });
                    }
                    return false;
                }
                true
            });
        }
        // Semantic pruning: a canonically-novel candidate whose semantic
        // quotient — inert faults stripped, shadowed corruption removed —
        // matches a settled non-violating result is behaviour-equivalent
        // to a run the campaign already merged. Same discipline as the
        // canonical tier: installable candidates only, settled results
        // only (never same-epoch siblings), violating classes never
        // settle.
        if let Some(model) = &model {
            batch.retain(|candidate| {
                if !crate::validate::schedule_is_installable(candidate, sites) {
                    return true;
                }
                let quotient = model.semantic_schedule(candidate);
                if settled_sem.contains(&quotient.id()) {
                    inert += 1;
                    if config.explain {
                        let reason = if quotient == candidate.canonical() {
                            SkipReason::SemanticDuplicate {
                                quotient: quotient.id(),
                            }
                        } else {
                            SkipReason::InertQuotient {
                                quotient: quotient.id(),
                                facts: model.inert_facts(candidate),
                            }
                        };
                        skipped.push(SkippedCandidate {
                            schedule: candidate.clone(),
                            reason,
                        });
                    }
                    return false;
                }
                true
            });
        }
        if batch.is_empty() {
            continue;
        }

        // Journal the epoch's dispatch intent before any of it executes —
        // replayed candidates included, so a resumed run's journal stays
        // byte-identical to an uninterrupted run's.
        if let Some(w) = writer.as_mut() {
            for candidate in &batch {
                w.dispatch(&candidate.id())
                    .unwrap_or_else(|e| panic!("cannot append to campaign journal: {e}"));
            }
        }

        // Split candidates the resume journal already settled from the
        // ones that must actually execute.
        let mut results: Vec<EpochResult> = Vec::new();
        let mut dispatch: Vec<CandidateJob> = Vec::new();
        for candidate in batch {
            match replay.remove(&candidate.id()) {
                Some(case) => {
                    replayed += 1;
                    results.push(EpochResult::Report(Box::new(replayed_report(
                        master.seed(),
                        case,
                    ))));
                }
                None => {
                    let prepared = master_store
                        .as_mut()
                        .and_then(|store| dispatch_snapshot(master, &limits, store, &candidate));
                    dispatch.push(CandidateJob {
                        schedule: candidate,
                        prepared,
                    });
                }
            }
        }
        // Execute anywhere, merge canonically: schedule-id order makes the
        // merge independent of completion order, worker count, and of how
        // the epoch split between replayed and live candidates.
        if !dispatch.is_empty() {
            results.extend(epochs.run_epoch(dispatch));
        }
        results.sort_by_key(EpochResult::schedule_id);

        for result in results {
            let report = match result {
                EpochResult::Report(report) => *report,
                EpochResult::Quarantined {
                    schedule,
                    attempts,
                    error,
                } => {
                    // The supervisor gave up on this candidate: no result,
                    // no coverage, a dropped search lineage. Record it
                    // loudly (journal + outcome) instead of leaving a
                    // silent hole in the explored space.
                    let q = JournalQuarantine {
                        schedule,
                        attempts,
                        error,
                    };
                    if let Some(w) = writer.as_mut() {
                        w.quarantine(&q)
                            .unwrap_or_else(|e| panic!("cannot append to campaign journal: {e}"));
                    }
                    quarantined.push(q);
                    continue;
                }
            };
            snap_stats.merge(&report.snapshots);
            executed += 1 + report.shrink.as_ref().map_or(0, |s| s.runs);
            if report.run.verdict.is_crashed() {
                crashed += 1;
            }
            if report.run.verdict.is_hung() {
                hung += 1;
            }
            if report.run.verdict.is_invalid() {
                // Only reachable with the pre-filter off: the runner
                // refused the same candidate the filter would have
                // dropped. Coverage is empty, so nothing downstream sees
                // a difference.
                rejected += 1;
                journal_record(writer.as_mut(), &report, None);
                continue;
            }
            if !report.run.verdict.is_violation() {
                // This equivalence class is settled: any later candidate
                // canonicalizing to the same form would replay this very
                // run. Violating classes stay unpruned (see above).
                settled.insert(report.schedule.canonical_id());
                if let Some(model) = &model {
                    settled_sem.insert(model.semantic_id(&report.schedule));
                }
            }
            if coverage.merge(&report.run.coverage) > 0 {
                corpus.push(report.schedule.clone());
                epochs.note_novel(report.worker);
            }
            let Some(shrink) = report.shrink.clone() else {
                journal_record(writer.as_mut(), &report, None);
                continue;
            };
            if !failure_keys.insert((shrink.oracle.clone(), shrink.shrunk.id())) {
                // Same minimal failure already reported.
                journal_record(writer.as_mut(), &report, None);
                continue;
            }
            let message = match &shrink.message {
                // Replayed first discovery: the interrupted run already
                // confirmed on its master and journaled the message. Count
                // the confirmation run it performed, don't repeat it.
                Some(m) => {
                    executed += 1;
                    m.clone()
                }
                // Confirm the shrunk schedule on the master and harvest
                // the violation message for the artifact.
                None => {
                    let final_run = run_schedule_snapshotted(
                        master,
                        &shrink.shrunk,
                        &limits,
                        master_store.as_mut(),
                    );
                    executed += 1;
                    match &final_run.verdict {
                        // The verdict text is "oracle-name: message"; the
                        // artifact keeps the oracle on its own line, so
                        // store the bare message.
                        Verdict::Violated(m) => m
                            .strip_prefix(&format!("{}: ", shrink.oracle))
                            .unwrap_or(m)
                            .to_string(),
                        other => unreachable!("shrunk schedule stopped failing: {other:?}"),
                    }
                }
            };
            journal_record(writer.as_mut(), &report, Some(&message));
            failures.push(FoundFailure {
                schedule: report.schedule,
                shrunk: shrink.shrunk.clone(),
                oracle: shrink.oracle.clone(),
                message: message.clone(),
                repro: Repro {
                    target: master.name().to_string(),
                    seed: master.seed(),
                    oracle: shrink.oracle,
                    message,
                    schedule: shrink.shrunk,
                },
            });
        }
    }

    if let Some(w) = writer.as_mut() {
        // The counters line is non-identity (a resumed run reports its
        // own `replayed`), written last so `results`-style tooling can
        // read the final accounting without replaying the campaign.
        w.counters(&JournalCounters {
            executed,
            rejected,
            pruned,
            inert,
            replayed,
            crashed,
            hung,
        })
        .unwrap_or_else(|e| panic!("cannot append to campaign journal: {e}"));
        w.complete()
            .unwrap_or_else(|e| panic!("cannot append to campaign journal: {e}"));
    }

    if let Some(store) = &master_store {
        snap_stats.merge(store.stats());
    }

    ExploreOutcome {
        corpus,
        coverage,
        failures,
        executed,
        rejected,
        pruned,
        inert,
        replayed,
        crashed,
        hung,
        quarantined,
        snapshots: snap_stats,
        skipped,
    }
}

/// Runs a coverage-guided exploration of `target` within `config.budget`,
/// executing candidates inline on the calling thread (the 1-worker fleet).
/// Byte-identical to [`explore_fleet`] at the same config for any job
/// count.
pub fn explore(
    target: &dyn TestTarget,
    spec: &ProtocolSpec,
    config: &ExploreConfig,
) -> ExploreOutcome {
    let mut epochs = InlineEpochs {
        target,
        limits: config.limits(),
        cache: config.cache(),
    };
    explore_with(target, &mut epochs, spec, config)
}

/// Runs the same exploration with candidate execution fanned out across
/// `jobs` worker threads. Every worker constructs its own target from the
/// `Send` factory; candidates travel as typed schedules. The outcome is
/// byte-identical to [`explore`] with the same config — worker count
/// affects only wall-clock time and the [`FleetReport`] statistics.
pub fn explore_fleet(
    factory: Arc<dyn TargetFactory>,
    spec: &ProtocolSpec,
    config: &ExploreConfig,
    jobs: usize,
) -> (ExploreOutcome, FleetReport) {
    let mut pool = CampaignFleet::new(jobs);
    let outcome = pool.explore(factory, spec, config);
    let mut report = pool.shutdown();
    report.rejected = outcome.rejected as u64;
    report.pruned = outcome.pruned as u64;
    report.inert = outcome.inert as u64;
    (outcome, report)
}

/// Replays a repro artifact against a target; the returned run should
/// reproduce the recorded violation (asserted by callers, not here).
pub fn replay(target: &dyn TestTarget, repro: &Repro) -> crate::runner::ScheduleRun {
    run_schedule_limited(target, &repro.schedule, &RunLimits::default())
}
