//! The coverage-guided campaign engine, expressed as a fleet of epochs.
//!
//! Where [`crate::generate`] enumerates a fixed grid, [`explore`] *searches*:
//! starting from the fault-free baseline, it repeatedly picks a corpus
//! schedule, mutates it under a seeded RNG, runs the mutant against a fresh
//! target, and keeps it iff it reaches coverage no earlier schedule
//! reached. Violations are delta-debugged to 1-minimal fault sets and
//! rendered as replayable [`Repro`] artifacts.
//!
//! # Determinism across worker counts
//!
//! The search runs in **epochs** of [`ExploreConfig::epoch`] candidates:
//! the master generates the whole epoch serially (consuming the seeded RNG
//! against the epoch-start corpus), the candidates execute — inline, or
//! fanned out across a [`pfi_fleet::Fleet`] by [`explore_fleet`] — and the
//! results merge back in canonical schedule-id order. Every run is a pure
//! function of its schedule, so corpus evolution, coverage, `executed`
//! counts, and repro artifact bytes are a function of
//! `(seed, budget, max_faults, epoch)` and **never** of the worker count.
//! With `epoch == 1` the engine *is* the classic sequential explorer —
//! generate one, run one, merge one — reproducing its digests exactly;
//! larger epochs trade a little search adaptivity for dispatch width.
//!
//! Workers never receive a built simulation world (worlds are
//! `Rc`/`RefCell`-based and `!Send`): [`explore_fleet`] ships each worker
//! a [`TargetFactory`] at construction and each candidate as serialized
//! fault-schedule text, and the worker builds everything on its own side
//! of the boundary.

use std::sync::Arc;

use pfi_fleet::{Fleet, FleetReport, JobRunner};
use pfi_sim::SimRng;

use crate::coverage::Coverage;
use crate::repro::Repro;
use crate::runner::{run_schedule, ScheduleRun, TargetFactory, TestTarget, Verdict};
use crate::schedule::{FaultSchedule, ScheduleMutator};
use crate::shrink::shrink_schedule;
use crate::spec::ProtocolSpec;

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Seed for every mutation / corpus-selection decision.
    pub seed: u64,
    /// How many mutants to attempt (the run budget).
    pub budget: usize,
    /// Maximum faults per schedule.
    pub max_faults: usize,
    /// Candidates generated per dispatch epoch — the determinism unit.
    /// Outcomes depend on it (corpus selection sees the epoch-start corpus)
    /// but never on the worker count executing the epoch. `1` reproduces
    /// the classic fully-sequential explorer byte-for-byte.
    pub epoch: usize,
    /// Statically reject uninstallable candidates (out-of-topology fault
    /// sites, lowered scripts that do not parse) before dispatching them
    /// to workers. Rejection uses exactly the install predicate the
    /// runner enforces ([`crate::validate::schedule_is_installable`]), so
    /// corpus, coverage, failures — the whole digest — are byte-identical
    /// with pre-filtering on or off; only `executed` shrinks (the
    /// unfiltered engine runs the candidate just to watch it refuse
    /// installation). Default `true`.
    pub prefilter: bool,
}

/// The default epoch width: wide enough to keep a handful of workers busy,
/// narrow enough that corpus feedback still steers the search.
pub const DEFAULT_EPOCH: usize = 16;

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            seed: 0x7061_7065_7266_6975, // "paperfiu"
            budget: 48,
            max_faults: 3,
            epoch: DEFAULT_EPOCH,
            prefilter: true,
        }
    }
}

/// One campaign-found, shrunk failure.
#[derive(Debug, Clone)]
pub struct FoundFailure {
    /// The schedule as the search first found it.
    pub schedule: FaultSchedule,
    /// Its 1-minimal shrunk form.
    pub shrunk: FaultSchedule,
    /// Name of the violated oracle.
    pub oracle: String,
    /// The violation message.
    pub message: String,
    /// The replayable artifact.
    pub repro: Repro,
}

/// Everything an exploration produced.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Schedules that each reached new coverage, in discovery order
    /// (index 0 is the fault-free baseline).
    pub corpus: Vec<FaultSchedule>,
    /// The union of all reached coverage.
    pub coverage: Coverage,
    /// Shrunk failures, deduplicated by their minimal schedule.
    pub failures: Vec<FoundFailure>,
    /// How many schedules actually ran: the baseline plus every novel
    /// mutation (≤ budget + 1), plus the re-executions shrinking performs
    /// for each found failure.
    pub executed: usize,
    /// How many candidates were refused as uninstallable — statically by
    /// the pre-filter ([`ExploreConfig::prefilter`]), or at install time
    /// ([`crate::Verdict::Invalid`]) when pre-filtering is off. The same
    /// candidates are refused either way; with the pre-filter on they
    /// never consume a worker.
    pub rejected: usize,
}

impl ExploreOutcome {
    /// A stable digest of the whole outcome; two explorations are
    /// byte-identical iff their digests are equal.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        out.push_str("corpus:\n");
        for s in &self.corpus {
            out.push_str(&format!("  {}\n", s.id()));
        }
        out.push_str("coverage:\n");
        for e in self.coverage.edges() {
            out.push_str(&format!("  {e}\n"));
        }
        out.push_str("failures:\n");
        for f in &self.failures {
            out.push_str(&f.repro.to_text());
        }
        out
    }

    /// A short fixed-width form of [`digest`](ExploreOutcome::digest)
    /// (FNV-1a, hex) for golden files and CI comparisons.
    pub fn digest64(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.digest().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

// ---------------------------------------------------------------------
// Worker-side candidate execution
// ---------------------------------------------------------------------

/// Everything one candidate execution produced. Computed entirely on the
/// worker that ran the candidate — a pure function of the schedule — so
/// the master can merge reports in canonical order without re-running
/// anything.
#[derive(Debug, Clone)]
struct CandidateReport {
    /// The candidate schedule (round-tripped through its text form when
    /// the run happened on a fleet worker).
    schedule: FaultSchedule,
    /// The run itself.
    run: ScheduleRun,
    /// Shrink results, when the run violated an oracle.
    shrink: Option<ShrinkReport>,
    /// Which worker ran it (statistics only; 0 inline).
    worker: usize,
}

#[derive(Debug, Clone)]
struct ShrinkReport {
    /// The violated oracle the shrink preserved.
    oracle: String,
    /// The 1-minimal schedule.
    shrunk: FaultSchedule,
    /// How many re-executions shrinking performed.
    runs: usize,
}

/// Runs one candidate: execute, and delta-debug to 1-minimal if it
/// violated an oracle. Shrinking re-runs against the *same* oracle: the
/// minimal schedule must reproduce this failure, not just any failure.
fn candidate_report(target: &dyn TestTarget, schedule: FaultSchedule) -> CandidateReport {
    let run = run_schedule(target, &schedule);
    let shrink = match &run.verdict {
        Verdict::Violated(_) => {
            let oracle = run.oracle.clone().unwrap_or_else(|| "target".to_string());
            let mut runs = 0usize;
            let shrunk = shrink_schedule(&schedule, |s| {
                runs += 1;
                let rerun = run_schedule(target, s);
                rerun.verdict.is_violation() && rerun.oracle.as_deref() == Some(oracle.as_str())
            });
            Some(ShrinkReport {
                oracle,
                shrunk,
                runs,
            })
        }
        _ => None,
    };
    CandidateReport {
        schedule,
        run,
        shrink,
        worker: 0,
    }
}

// ---------------------------------------------------------------------
// Epoch execution strategies
// ---------------------------------------------------------------------

/// How one epoch's candidates get executed. The master's search loop is
/// identical either way; only the dispatch differs.
trait EpochRunner {
    /// Runs every candidate of an epoch; order of the returned reports is
    /// irrelevant (the merge step canonicalises it).
    fn run_epoch(&mut self, batch: Vec<FaultSchedule>) -> Vec<CandidateReport>;
    /// Statistics hook: the candidate run by `worker` reached new coverage.
    fn note_novel(&mut self, _worker: usize) {}
}

/// In-place execution on the caller's target: the 1-worker fleet.
struct InlineEpochs<'a> {
    target: &'a dyn TestTarget,
}

impl EpochRunner for InlineEpochs<'_> {
    fn run_epoch(&mut self, batch: Vec<FaultSchedule>) -> Vec<CandidateReport> {
        batch
            .into_iter()
            .map(|s| candidate_report(self.target, s))
            .collect()
    }
}

/// Fan-out across a worker fleet. Candidates cross the thread boundary as
/// serialized fault lines; reports come back `Send`.
struct FleetEpochs {
    fleet: Fleet<Vec<String>, CandidateReport>,
}

impl EpochRunner for FleetEpochs {
    fn run_epoch(&mut self, batch: Vec<FaultSchedule>) -> Vec<CandidateReport> {
        let jobs: Vec<Vec<String>> = batch.iter().map(FaultSchedule::to_lines).collect();
        self.fleet
            .run_epoch(jobs)
            .into_iter()
            .map(|item| {
                let mut report = item.result;
                report.worker = item.worker;
                report
            })
            .collect()
    }

    fn note_novel(&mut self, worker: usize) {
        self.fleet.note_novel(worker);
    }
}

// ---------------------------------------------------------------------
// The search loop
// ---------------------------------------------------------------------

/// The epoch-synchronous search shared by [`explore`] and
/// [`explore_fleet`]. `master` handles everything that must stay serial:
/// candidate generation (the RNG), the baseline run, and the final
/// confirmation run of each unique shrunk failure.
fn explore_with(
    master: &dyn TestTarget,
    epochs: &mut dyn EpochRunner,
    spec: &ProtocolSpec,
    config: &ExploreConfig,
) -> ExploreOutcome {
    assert!(config.epoch > 0, "epoch width must be at least 1");
    let mut rng = SimRng::seed_from(config.seed);
    let mutator = ScheduleMutator::new(spec, master.node_count(), master.fault_sites());

    let baseline = FaultSchedule::empty();
    let base_run = run_schedule(master, &baseline);
    let mut coverage = base_run.coverage;
    let mut corpus = vec![baseline.clone()];
    let mut executed = 1usize;

    let mut seen = std::collections::BTreeSet::new();
    seen.insert(baseline.id());
    let mut failures: Vec<FoundFailure> = Vec::new();
    let mut failure_keys = std::collections::BTreeSet::new();
    let mut rejected = 0usize;

    let sites = master.fault_sites();
    let mut attempted = 0usize;
    while attempted < config.budget {
        // Generate the epoch serially against the epoch-start corpus; a
        // mutant that re-derives an already-seen schedule still consumes
        // budget but is not re-run.
        let mut batch: Vec<FaultSchedule> = Vec::new();
        while attempted < config.budget && batch.len() < config.epoch {
            attempted += 1;
            let parent = &corpus[rng.uniform_u64(0, corpus.len() as u64) as usize];
            let candidate = mutator.mutate(parent, config.max_faults, &mut rng);
            if seen.insert(candidate.id()) {
                batch.push(candidate);
            }
        }
        // Static pre-filter: drop uninstallable candidates before they
        // reach a worker. This happens *after* generation — the RNG and
        // the `seen` set have already advanced identically to the
        // unfiltered engine — so the surviving runs are the same runs.
        if config.prefilter {
            batch.retain(|candidate| {
                let ok = crate::validate::schedule_is_installable(candidate, sites);
                if !ok {
                    rejected += 1;
                }
                ok
            });
        }
        if batch.is_empty() {
            continue;
        }

        // Execute anywhere, merge canonically: schedule-id order makes the
        // merge independent of completion order and worker count.
        let mut reports = epochs.run_epoch(batch);
        reports.sort_by_key(|r| r.schedule.id());

        for report in reports {
            executed += 1 + report.shrink.as_ref().map_or(0, |s| s.runs);
            if report.run.verdict.is_invalid() {
                // Only reachable with the pre-filter off: the runner
                // refused the same candidate the filter would have
                // dropped. Coverage is empty, so nothing downstream sees
                // a difference.
                rejected += 1;
                continue;
            }
            if coverage.merge(&report.run.coverage) > 0 {
                corpus.push(report.schedule.clone());
                epochs.note_novel(report.worker);
            }
            let Some(shrink) = report.shrink else {
                continue;
            };
            if !failure_keys.insert((shrink.oracle.clone(), shrink.shrunk.id())) {
                continue; // Same minimal failure already reported.
            }
            // Confirm the shrunk schedule on the master and harvest the
            // violation message for the artifact.
            let final_run = run_schedule(master, &shrink.shrunk);
            executed += 1;
            let message = match &final_run.verdict {
                // The verdict text is "oracle-name: message"; the artifact
                // keeps the oracle on its own line, so store the bare
                // message.
                Verdict::Violated(m) => m
                    .strip_prefix(&format!("{}: ", shrink.oracle))
                    .unwrap_or(m)
                    .to_string(),
                other => unreachable!("shrunk schedule stopped failing: {other:?}"),
            };
            failures.push(FoundFailure {
                schedule: report.schedule,
                shrunk: shrink.shrunk.clone(),
                oracle: shrink.oracle.clone(),
                message: message.clone(),
                repro: Repro {
                    target: master.name().to_string(),
                    seed: master.seed(),
                    oracle: shrink.oracle,
                    message,
                    schedule: shrink.shrunk,
                },
            });
        }
    }

    ExploreOutcome {
        corpus,
        coverage,
        failures,
        executed,
        rejected,
    }
}

/// Runs a coverage-guided exploration of `target` within `config.budget`,
/// executing candidates inline on the calling thread (the 1-worker fleet).
/// Byte-identical to [`explore_fleet`] at the same config for any job
/// count.
pub fn explore(
    target: &dyn TestTarget,
    spec: &ProtocolSpec,
    config: &ExploreConfig,
) -> ExploreOutcome {
    let mut epochs = InlineEpochs { target };
    explore_with(target, &mut epochs, spec, config)
}

/// Runs the same exploration with candidate execution fanned out across
/// `jobs` worker threads. Every worker constructs its own target from the
/// `Send` factory; candidates travel as schedule text. The outcome is
/// byte-identical to [`explore`] with the same config — worker count
/// affects only wall-clock time and the [`FleetReport`] statistics.
pub fn explore_fleet(
    factory: Arc<dyn TargetFactory>,
    spec: &ProtocolSpec,
    config: &ExploreConfig,
    jobs: usize,
) -> (ExploreOutcome, FleetReport) {
    let master = factory.make();
    let worker_factory = Arc::clone(&factory);
    let fleet: Fleet<Vec<String>, CandidateReport> = Fleet::new(jobs, move |_worker| {
        let target = worker_factory.make();
        Box::new(move |lines: Vec<String>| {
            let schedule = FaultSchedule::from_lines(lines.iter().map(String::as_str))
                .expect("fleet jobs carry well-formed fault lines");
            candidate_report(target.as_ref(), schedule)
        }) as Box<dyn JobRunner<Vec<String>, CandidateReport>>
    });
    let mut epochs = FleetEpochs { fleet };
    let outcome = explore_with(master.as_ref(), &mut epochs, spec, config);
    let mut report = epochs.fleet.shutdown();
    report.rejected = outcome.rejected as u64;
    (outcome, report)
}

/// Replays a repro artifact against a target; the returned run should
/// reproduce the recorded violation (asserted by callers, not here).
pub fn replay(target: &dyn TestTarget, repro: &Repro) -> crate::runner::ScheduleRun {
    run_schedule(target, &repro.schedule)
}
