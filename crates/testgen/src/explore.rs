//! The coverage-guided campaign engine.
//!
//! Where [`crate::generate`] enumerates a fixed grid, [`explore`] *searches*:
//! starting from the fault-free baseline, it repeatedly picks a corpus
//! schedule, mutates it under a seeded RNG, runs the mutant against a fresh
//! target, and keeps it iff it reaches coverage no earlier schedule
//! reached. Violations are delta-debugged to 1-minimal fault sets and
//! rendered as replayable [`Repro`] artifacts. Everything — corpus order,
//! coverage, artifact bytes — is a pure function of the seed and budget.

use pfi_sim::SimRng;

use crate::coverage::Coverage;
use crate::repro::Repro;
use crate::runner::{run_schedule, TestTarget, Verdict};
use crate::schedule::{FaultSchedule, ScheduleMutator};
use crate::shrink::shrink_schedule;
use crate::spec::ProtocolSpec;

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Seed for every mutation / corpus-selection decision.
    pub seed: u64,
    /// How many mutants to attempt (the run budget).
    pub budget: usize,
    /// Maximum faults per schedule.
    pub max_faults: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            seed: 0x7061_7065_7266_6975, // "paperfiu"
            budget: 48,
            max_faults: 3,
        }
    }
}

/// One campaign-found, shrunk failure.
#[derive(Debug, Clone)]
pub struct FoundFailure {
    /// The schedule as the search first found it.
    pub schedule: FaultSchedule,
    /// Its 1-minimal shrunk form.
    pub shrunk: FaultSchedule,
    /// Name of the violated oracle.
    pub oracle: String,
    /// The violation message.
    pub message: String,
    /// The replayable artifact.
    pub repro: Repro,
}

/// Everything an exploration produced.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Schedules that each reached new coverage, in discovery order
    /// (index 0 is the fault-free baseline).
    pub corpus: Vec<FaultSchedule>,
    /// The union of all reached coverage.
    pub coverage: Coverage,
    /// Shrunk failures, deduplicated by their minimal schedule.
    pub failures: Vec<FoundFailure>,
    /// How many schedules actually ran: the baseline plus every novel
    /// mutation (≤ budget + 1), plus the re-executions shrinking performs
    /// for each found failure.
    pub executed: usize,
}

impl ExploreOutcome {
    /// A stable digest of the whole outcome; two explorations are
    /// byte-identical iff their digests are equal.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        out.push_str("corpus:\n");
        for s in &self.corpus {
            out.push_str(&format!("  {}\n", s.id()));
        }
        out.push_str("coverage:\n");
        for e in self.coverage.edges() {
            out.push_str(&format!("  {e}\n"));
        }
        out.push_str("failures:\n");
        for f in &self.failures {
            out.push_str(&f.repro.to_text());
        }
        out
    }
}

/// Runs a coverage-guided exploration of `target` within `config.budget`.
pub fn explore(
    target: &dyn TestTarget,
    spec: &ProtocolSpec,
    config: &ExploreConfig,
) -> ExploreOutcome {
    let mut rng = SimRng::seed_from(config.seed);
    let mutator = ScheduleMutator::new(spec, target.node_count(), target.fault_sites());

    let baseline = FaultSchedule::empty();
    let base_run = run_schedule(target, &baseline);
    let mut coverage = base_run.coverage;
    let mut corpus = vec![baseline.clone()];
    let mut executed = 1usize;

    let mut seen = std::collections::BTreeSet::new();
    seen.insert(baseline.id());
    let mut failures: Vec<FoundFailure> = Vec::new();
    let mut failure_keys = std::collections::BTreeSet::new();

    for _ in 0..config.budget {
        let parent = &corpus[rng.uniform_u64(0, corpus.len() as u64) as usize];
        let candidate = mutator.mutate(parent, config.max_faults, &mut rng);
        if !seen.insert(candidate.id()) {
            continue; // Already ran this exact schedule; the attempt still
                      // counts against the budget.
        }
        let run = run_schedule(target, &candidate);
        executed += 1;
        if coverage.merge(&run.coverage) > 0 {
            corpus.push(candidate.clone());
        }
        let Verdict::Violated(_) = &run.verdict else {
            continue;
        };
        let oracle = run.oracle.clone().unwrap_or_else(|| "target".to_string());
        // Shrink against the *same* oracle: the minimal schedule must
        // reproduce this failure, not just any failure.
        let shrunk = shrink_schedule(&candidate, |s| {
            let rerun = run_schedule(target, s);
            executed += 1;
            rerun.verdict.is_violation() && rerun.oracle.as_deref() == Some(oracle.as_str())
        });
        if !failure_keys.insert((oracle.clone(), shrunk.id())) {
            continue; // Same minimal failure already reported.
        }
        let final_run = run_schedule(target, &shrunk);
        executed += 1;
        let message = match &final_run.verdict {
            // The verdict text is "oracle-name: message"; the artifact keeps
            // the oracle on its own line, so store the bare message.
            Verdict::Violated(m) => m
                .strip_prefix(&format!("{oracle}: "))
                .unwrap_or(m)
                .to_string(),
            other => unreachable!("shrunk schedule stopped failing: {other:?}"),
        };
        failures.push(FoundFailure {
            schedule: candidate,
            shrunk: shrunk.clone(),
            oracle: oracle.clone(),
            message: message.clone(),
            repro: Repro {
                target: target.name().to_string(),
                seed: target.seed(),
                oracle,
                message,
                schedule: shrunk,
            },
        });
    }

    ExploreOutcome {
        corpus,
        coverage,
        failures,
        executed,
    }
}

/// Replays a repro artifact against a target; the returned run should
/// reproduce the recorded violation (asserted by callers, not here).
pub fn replay(target: &dyn TestTarget, repro: &Repro) -> crate::runner::ScheduleRun {
    run_schedule(target, &repro.schedule)
}
