//! Trace-derived behavioural coverage.
//!
//! A fault-injection campaign needs a feedback signal richer than the
//! final verdict: two schedules that both end in `Degraded` may have
//! pushed the target through very different behaviour. [`Coverage`]
//! extracts a set of string *edges* from a run's [`TraceLog`] — per-node
//! protocol-event transitions, retransmission-count buckets, and timer
//! life-cycle pairs — and the campaign engine keeps any schedule that
//! reaches an edge no earlier schedule reached.
//!
//! Edges are plain strings in a `BTreeSet`, so coverage is ordered,
//! mergeable, and byte-for-byte deterministic across runs.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use pfi_gmp::GmpEvent;
use pfi_sim::{NodeId, TimerTrace, TraceLog};
use pfi_tcp::TcpEvent;
use pfi_tpc::TpcEvent;

/// A set of behavioural edges observed in one or more runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    edges: BTreeSet<String>,
}

impl Coverage {
    /// An empty coverage map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts every supported coverage signal from a trace.
    pub fn from_trace(trace: &TraceLog) -> Self {
        let mut edges = BTreeSet::new();
        kind_edges(trace, "gmp", gmp_kind, &mut edges);
        kind_edges(trace, "tcp", tcp_kind, &mut edges);
        kind_edges(trace, "tpc", tpc_kind, &mut edges);
        retransmit_buckets(trace, &mut edges);
        timer_edges(trace, &mut edges);
        Coverage { edges }
    }

    /// Rebuilds coverage from a recorded edge list — the inverse of
    /// [`edges`](Coverage::edges), used when replaying journaled campaign
    /// results without re-executing them.
    pub fn from_edges<I>(edges: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        Coverage {
            edges: edges.into_iter().map(Into::into).collect(),
        }
    }

    /// Merges `other` in; returns how many of its edges were new.
    pub fn merge(&mut self, other: &Coverage) -> usize {
        let before = self.edges.len();
        self.edges.extend(other.edges.iter().cloned());
        self.edges.len() - before
    }

    /// Number of distinct edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been observed.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether a specific edge has been observed.
    pub fn contains(&self, edge: &str) -> bool {
        self.edges.contains(edge)
    }

    /// The edges, in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = &str> {
        self.edges.iter().map(String::as_str)
    }

    /// Edges in `self` that `other` lacks, in sorted order.
    pub fn difference<'a>(&'a self, other: &'a Coverage) -> impl Iterator<Item = &'a str> {
        self.edges.difference(&other.edges).map(String::as_str)
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} edges", self.edges.len())
    }
}

/// Per-node event-kind occurrence and transition edges for one protocol's
/// trace event type.
fn kind_edges<T: std::any::Any + Clone>(
    trace: &TraceLog,
    proto: &str,
    kind: fn(&T) -> String,
    out: &mut BTreeSet<String>,
) {
    let seqs = trace.sequences_of::<T, String>(|e| Some(kind(e)));
    for (node, seq) in seqs {
        for k in &seq {
            out.insert(format!("{proto}:{node}:{k}"));
        }
        for w in seq.windows(2) {
            out.insert(format!("{proto}:{node}:{}>{}", w[0], w[1]));
        }
    }
}

fn gmp_kind(e: &GmpEvent) -> String {
    match e {
        // Refine the variants whose payload distinguishes behaviour the
        // campaign should steer toward.
        GmpEvent::GroupView { members, .. } => format!("GroupView:{}", members.len()),
        GmpEvent::ProclaimAnswered { to, origin } => {
            if to == origin {
                "ProclaimAnswered:direct".to_string()
            } else {
                "ProclaimAnswered:misrouted".to_string()
            }
        }
        other => variant_name(other),
    }
}

fn tcp_kind(e: &TcpEvent) -> String {
    match e {
        TcpEvent::SegmentSent { kind, .. } => format!("SegmentSent:{kind}"),
        TcpEvent::Closed { reason, .. } => format!("Closed:{reason:?}"),
        TcpEvent::Reset { sent, .. } => {
            format!("Reset:{}", if *sent { "sent" } else { "recv" })
        }
        TcpEvent::PeerWindow { window, .. } => {
            format!("PeerWindow:{}", if *window == 0 { "zero" } else { "open" })
        }
        other => variant_name(other),
    }
}

fn tpc_kind(e: &TpcEvent) -> String {
    match e {
        TpcEvent::Voted { yes, .. } => format!("Voted:{yes}"),
        TpcEvent::DecisionMade { commit, .. } => format!("DecisionMade:{commit}"),
        TpcEvent::DecisionApplied { commit, .. } => format!("DecisionApplied:{commit}"),
        other => variant_name(other),
    }
}

/// The variant name of a `Debug`-printable enum value (the text before the
/// first payload delimiter).
fn variant_name(e: &impl fmt::Debug) -> String {
    let s = format!("{e:?}");
    s.split(['(', '{', ' '])
        .next()
        .unwrap_or_default()
        .to_string()
}

/// Buckets a count into a small stable label so coverage saturates instead
/// of growing one edge per count value.
fn bucket(n: usize) -> &'static str {
    match n {
        0 => "0",
        1 => "1",
        2 => "2",
        3..=4 => "le4",
        5..=8 => "le8",
        _ => "gt8",
    }
}

fn retransmit_buckets(trace: &TraceLog, out: &mut BTreeSet<String>) {
    let mut per_node: BTreeMap<NodeId, usize> = BTreeMap::new();
    for (_, node, e) in trace.events_with_nodes::<TcpEvent>() {
        if matches!(
            e,
            TcpEvent::Retransmit { .. } | TcpEvent::FastRetransmit { .. }
        ) {
            *per_node.entry(node).or_default() += 1;
        }
    }
    for (node, count) in per_node {
        out.insert(format!("tcp:{node}:retx:{}", bucket(count)));
    }
}

fn timer_edges(trace: &TraceLog, out: &mut BTreeSet<String>) {
    // Group the timer life-cycle stream per (node, owning layer); adjacent
    // pairs are the fire/cancel edges.
    let mut per_owner: BTreeMap<(NodeId, &'static str), Vec<&'static str>> = BTreeMap::new();
    let mut fired: BTreeMap<(NodeId, &'static str), usize> = BTreeMap::new();
    for (_, node, e) in trace.events_with_nodes::<TimerTrace>() {
        let (layer, kind) = match e {
            TimerTrace::Set { layer, .. } => (layer, "Set"),
            TimerTrace::Fired { layer, .. } => {
                *fired.entry((node, layer)).or_default() += 1;
                (layer, "Fired")
            }
            TimerTrace::Cancelled { layer } => (layer, "Cancelled"),
            TimerTrace::Suppressed { layer } => (layer, "Suppressed"),
        };
        per_owner.entry((node, layer)).or_default().push(kind);
    }
    for ((node, layer), seq) in per_owner {
        for k in &seq {
            out.insert(format!("timer:{node}:{layer}:{k}"));
        }
        for w in seq.windows(2) {
            out.insert(format!("timer:{node}:{layer}:{}>{}", w[0], w[1]));
        }
    }
    for ((node, layer), count) in fired {
        out.insert(format!("timer:{node}:{layer}:fired:{}", bucket(count)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfi_sim::SimTime;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn gmp_edges_include_occurrences_and_transitions() {
        let mut log = TraceLog::new();
        log.record(SimTime::from_micros(1), n(0), "gmd", GmpEvent::Started);
        log.record(
            SimTime::from_micros(2),
            n(0),
            "gmd",
            GmpEvent::GroupView {
                gid: 1,
                members: vec![0, 1, 2],
                leader: 0,
            },
        );
        let cov = Coverage::from_trace(&log);
        assert!(cov.contains("gmp:n0:Started"), "{:?}", cov);
        assert!(cov.contains("gmp:n0:GroupView:3"));
        assert!(cov.contains("gmp:n0:Started>GroupView:3"));
    }

    #[test]
    fn misrouted_proclaims_are_a_distinct_edge() {
        let mut log = TraceLog::new();
        log.record(
            SimTime::ZERO,
            n(0),
            "gmd",
            GmpEvent::ProclaimAnswered { to: 2, origin: 1 },
        );
        let cov = Coverage::from_trace(&log);
        assert!(cov.contains("gmp:n0:ProclaimAnswered:misrouted"));
        assert!(!cov.contains("gmp:n0:ProclaimAnswered:direct"));
    }

    #[test]
    fn retransmissions_bucket_per_node() {
        let mut log = TraceLog::new();
        for i in 0..6 {
            log.record(
                SimTime::from_micros(i),
                n(0),
                "tcp",
                TcpEvent::Retransmit {
                    conn: 0,
                    seq: i as u32,
                    nth: 1,
                    next_rto: pfi_sim::SimDuration::from_secs(1),
                },
            );
        }
        let cov = Coverage::from_trace(&log);
        assert!(cov.contains("tcp:n0:retx:le8"), "{:?}", cov);
    }

    #[test]
    fn timer_pairs_become_edges() {
        let mut log = TraceLog::new();
        log.record(
            SimTime::from_micros(1),
            n(1),
            "world",
            TimerTrace::Set {
                layer: "gmd",
                token: 1,
            },
        );
        log.record(
            SimTime::from_micros(2),
            n(1),
            "world",
            TimerTrace::Cancelled { layer: "gmd" },
        );
        log.record(
            SimTime::from_micros(3),
            n(1),
            "world",
            TimerTrace::Suppressed { layer: "gmd" },
        );
        let cov = Coverage::from_trace(&log);
        assert!(cov.contains("timer:n1:gmd:Set>Cancelled"), "{:?}", cov);
        assert!(cov.contains("timer:n1:gmd:Cancelled>Suppressed"));
    }

    #[test]
    fn merge_reports_only_new_edges() {
        let mut log = TraceLog::new();
        log.record(SimTime::ZERO, n(0), "gmd", GmpEvent::Started);
        let one = Coverage::from_trace(&log);
        let mut acc = Coverage::new();
        assert_eq!(acc.merge(&one), one.len());
        assert_eq!(acc.merge(&one), 0);
        log.record(
            SimTime::from_micros(1),
            n(0),
            "gmd",
            GmpEvent::FormedSingleton,
        );
        let two = Coverage::from_trace(&log);
        // Started>FormedSingleton and FormedSingleton are the new edges.
        assert_eq!(acc.merge(&two), 2);
        assert!(acc.difference(&one).count() == 2);
    }
}
