//! Snapshot/fork execution: stop replaying shared schedule prefixes.
//!
//! Every schedule run used to start from `TestTarget::build()` — for the
//! GMP target that means 40 virtual seconds of convergence traffic before
//! the first fault is even installed, repeated identically for every one
//! of a campaign's hundreds of candidates. Worlds are deep-clonable now
//! ([`pfi_sim::WorldSnapshot`]), so the campaign engine captures the
//! prepared world once and *forks* it per candidate instead.
//!
//! The cache key is a **prefix digest chain** over the schedule's faults:
//! `d_0` identifies the fault-free prepared base (target name, world seed,
//! step budget — everything that shapes the world before any filter is
//! installed), and `d_i` extends `d_{i-1}` with the i-th fault's stable
//! text line. Two schedules share a cached snapshot exactly when they
//! share a fault-vector prefix, so a fork only needs the *suffix* of
//! filters installed before driving. Lookup walks the chain longest-first;
//! the store is a bounded LRU so a long campaign cannot hoard worlds.
//!
//! Fork-equivalence is load-bearing: filter installation emits no trace
//! events and draws no RNG, and preparation never advances virtual time,
//! so a forked run is byte-identical to a cold one (the differential
//! tests in `tests/snapshot_fork.rs` and the property suite prove it).
//! [`Verdict::Invalid`](crate::Verdict::Invalid) schedules are refused
//! *before* the store is consulted — corrupted candidates never enter the
//! cache and never perturb its statistics.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use pfi_sim::{NodeId, World, WorldSnapshot};

use crate::runner::{RunLimits, TestTarget};
use crate::schedule::{FaultSchedule, SiteScripts};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn mix_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn mix_u64(h: u64, v: u64) -> u64 {
    mix_bytes(h, &v.to_le_bytes())
}

/// Length-prefixed, so `("ab", "c")` and `("a", "bc")` chain differently.
fn mix_str(h: u64, s: &str) -> u64 {
    mix_bytes(mix_u64(h, s.len() as u64), s.as_bytes())
}

/// The digest identifying `target`'s prepared fault-free base world under
/// `limits` — the `d_0` every schedule's prefix chain starts from. Covers
/// exactly what shapes the world before any filter is installed: the
/// target's name and world seed, and the interpreter step budget (armed on
/// every fault site at prepare time). The event cap is deliberately
/// excluded — it bounds the *drive*, not the prepared world's state.
pub fn base_digest(target: &dyn TestTarget, limits: &RunLimits) -> u64 {
    let mut h = FNV_OFFSET;
    h = mix_str(h, target.name());
    h = mix_u64(h, target.seed());
    h = mix_u64(h, limits.step_budget);
    h
}

/// The full prefix digest chain of `schedule`: `n + 1` digests for an
/// `n`-fault schedule, where `digests[i]` identifies the world state
/// "prepared base plus the first `i` faults installed". Two schedules
/// produce equal `digests[i]` iff they agree on target, limits, and their
/// first `i` faults in order.
pub fn prefix_digests(
    target: &dyn TestTarget,
    limits: &RunLimits,
    schedule: &FaultSchedule,
) -> Vec<u64> {
    let mut out = Vec::with_capacity(schedule.len() + 1);
    let mut d = base_digest(target, limits);
    out.push(d);
    for fault in &schedule.faults {
        d = mix_str(d, &fault.to_line());
        out.push(d);
    }
    out
}

/// How many leading faults `a` and `b` share (order-sensitive — the
/// number of chain digests they have in common, minus the base).
pub fn shared_prefix_len(a: &FaultSchedule, b: &FaultSchedule) -> usize {
    a.faults
        .iter()
        .zip(&b.faults)
        .take_while(|(x, y)| x == y)
        .count()
}

/// One cached, forkable world: the prepared base plus the schedule prefix
/// already installed on it. `Send + Sync` (the world snapshot is), so one
/// `Arc<CaseSnapshot>` is forked concurrently by many fleet workers.
pub struct CaseSnapshot {
    prefix_digest: u64,
    installed: FaultSchedule,
    sites: Vec<(NodeId, usize)>,
    world: WorldSnapshot,
}

// Compile-enforced: cached snapshots must stay dispatchable across fleet
// worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CaseSnapshot>();
};

impl CaseSnapshot {
    /// Wraps a captured world with the prefix it had installed when
    /// captured (`FaultSchedule::empty()` for the fault-free base).
    pub fn new(
        prefix_digest: u64,
        installed: FaultSchedule,
        sites: Vec<(NodeId, usize)>,
        world: WorldSnapshot,
    ) -> Self {
        CaseSnapshot {
            prefix_digest,
            installed,
            sites,
            world,
        }
    }

    /// The prefix-chain digest this snapshot is cached under.
    pub fn prefix_digest(&self) -> u64 {
        self.prefix_digest
    }

    /// The schedule prefix already installed on the captured world.
    pub fn installed(&self) -> &FaultSchedule {
        &self.installed
    }

    /// The lowered per-site scripts already installed — what a fork diffs
    /// against to install only the suffix.
    pub fn installed_scripts(&self) -> Vec<SiteScripts> {
        self.installed.lower()
    }

    /// The target's fault sites, as built.
    pub fn sites(&self) -> &[(NodeId, usize)] {
        &self.sites
    }

    /// Simulator events the captured world had already processed — the
    /// work a fork skips instead of replaying.
    pub fn events_processed(&self) -> u64 {
        self.world.events_processed()
    }

    /// A fresh world continuing byte-identically from the captured
    /// instant.
    pub fn fork(&self) -> World {
        self.world.fork()
    }
}

impl fmt::Debug for CaseSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CaseSnapshot")
            .field(
                "prefix_digest",
                &format_args!("{:016x}", self.prefix_digest),
            )
            .field("installed", &self.installed.id())
            .field("sites", &self.sites.len())
            .field("events_processed", &self.world.events_processed())
            .finish()
    }
}

/// Counters describing how much replayed work snapshot/fork execution
/// saved (or failed to save). Purely additive, so per-worker stats merge
/// in any order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Runs that forked a cached snapshot instead of building cold.
    pub hits: u64,
    /// Runs that found no usable prefix and built from scratch.
    pub misses: u64,
    /// Snapshots captured into a store (seeding a worker-local store with
    /// a dispatched snapshot does not count — it was stored once, on the
    /// master).
    pub stored: u64,
    /// Snapshots evicted by the LRU capacity bound.
    pub evicted: u64,
    /// Simulator events forks skipped re-processing, summed over hits.
    pub events_skipped: u64,
}

impl SnapshotStats {
    /// Hit fraction over all lookups; 0.0 before any lookup happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &SnapshotStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.stored += other.stored;
        self.evicted += other.evicted;
        self.events_skipped += other.events_skipped;
    }
}

/// A bounded LRU cache of forkable worlds, keyed by prefix digest.
///
/// The campaign master holds one for dispatch; each executing candidate
/// gets a fresh store seeded with the snapshot it was dispatched with, so
/// hit/miss statistics are a pure function of the candidate (never of how
/// candidates landed on workers).
#[derive(Debug)]
pub struct SnapshotStore {
    capacity: usize,
    map: HashMap<u64, Arc<CaseSnapshot>>,
    /// Recency order: front = least recently used, back = most.
    order: VecDeque<u64>,
    stats: SnapshotStats,
}

impl SnapshotStore {
    /// A store holding at most `capacity` snapshots (minimum 1).
    pub fn new(capacity: usize) -> Self {
        SnapshotStore {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
            stats: SnapshotStats::default(),
        }
    }

    /// How many snapshots are cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The store's counters so far.
    pub fn stats(&self) -> &SnapshotStats {
        &self.stats
    }

    fn touch(&mut self, digest: u64) {
        if let Some(pos) = self.order.iter().position(|&d| d == digest) {
            self.order.remove(pos);
        }
        self.order.push_back(digest);
    }

    fn insert_inner(&mut self, snap: Arc<CaseSnapshot>) {
        let digest = snap.prefix_digest();
        if self.map.insert(digest, snap).is_none() && self.map.len() > self.capacity {
            if let Some(lru) = self.order.pop_front() {
                self.map.remove(&lru);
                self.stats.evicted += 1;
            }
        }
        self.touch(digest);
    }

    /// Caches a snapshot, evicting the least recently used entry if the
    /// store is full. Counts toward [`SnapshotStats::stored`].
    pub fn insert(&mut self, snap: Arc<CaseSnapshot>) {
        self.stats.stored += 1;
        self.insert_inner(snap);
    }

    /// Caches a snapshot captured elsewhere (a dispatched `Arc` seeding a
    /// worker-local store) without counting it as newly stored.
    pub fn seed(&mut self, snap: Arc<CaseSnapshot>) {
        self.insert_inner(snap);
    }

    /// The cached snapshot for the *longest* prefix in `digests` (a chain
    /// from [`prefix_digests`], walked longest-first). Counts one hit or
    /// one miss and refreshes the hit entry's recency.
    pub fn lookup_longest(&mut self, digests: &[u64]) -> Option<Arc<CaseSnapshot>> {
        for &d in digests.iter().rev() {
            if let Some(snap) = self.map.get(&d) {
                let snap = Arc::clone(snap);
                self.stats.hits += 1;
                self.touch(d);
                return Some(snap);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// [`lookup_longest`](Self::lookup_longest) without counting or
    /// touching — what dispatch uses to attach a snapshot to a job
    /// (the executing worker's own lookup does the counting).
    pub fn peek_longest(&self, digests: &[u64]) -> Option<Arc<CaseSnapshot>> {
        digests
            .iter()
            .rev()
            .find_map(|d| self.map.get(d).map(Arc::clone))
    }

    /// Records that a fork skipped re-processing `events` simulator
    /// events.
    pub fn note_skipped(&mut self, events: u64) {
        self.stats.events_skipped += events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::GmpTarget;
    use crate::schedule::ScheduleMutator;
    use crate::spec::ProtocolSpec;
    use pfi_core::Direction;
    use pfi_sim::SimRng;

    fn fault(msg: &str) -> crate::schedule::ScheduledFault {
        crate::schedule::ScheduledFault {
            site: 1,
            dir: Direction::Receive,
            op: crate::schedule::FaultOp::DropAll {
                msg_type: msg.to_string(),
            },
        }
    }

    fn snap_with_digest(d: u64) -> Arc<CaseSnapshot> {
        let world = World::new(7);
        Arc::new(CaseSnapshot::new(
            d,
            FaultSchedule::empty(),
            Vec::new(),
            world.try_snapshot().unwrap(),
        ))
    }

    #[test]
    fn prefix_chain_shares_exactly_the_common_prefix() {
        let target = GmpTarget::default();
        let limits = RunLimits::default();
        let parent = FaultSchedule {
            faults: vec![fault("HEARTBEAT"), fault("COMMIT")],
        };
        let mut child = parent.clone();
        child.faults.push(fault("PROCLAIM"));
        let dp = prefix_digests(&target, &limits, &parent);
        let dc = prefix_digests(&target, &limits, &child);
        assert_eq!(dp.len(), 3);
        assert_eq!(dc.len(), 4);
        // An appended child shares the parent's entire chain...
        assert_eq!(&dc[..3], &dp[..]);
        assert_ne!(dc[3], dp[2]);
        // ...and order matters: swapping faults changes every digest past
        // the divergence point.
        let swapped = FaultSchedule {
            faults: vec![fault("COMMIT"), fault("HEARTBEAT")],
        };
        let ds = prefix_digests(&target, &limits, &swapped);
        assert_eq!(ds[0], dp[0]);
        assert_ne!(ds[1], dp[1]);
        assert_ne!(ds[2], dp[2]);
        assert_eq!(shared_prefix_len(&parent, &child), 2);
        assert_eq!(shared_prefix_len(&parent, &swapped), 0);
        assert_eq!(shared_prefix_len(&parent, &parent), 2);
    }

    #[test]
    fn base_digest_tracks_target_and_limits_but_not_event_cap() {
        let target = GmpTarget::default();
        let d = base_digest(&target, &RunLimits::default());
        let capped = RunLimits {
            event_cap: 10,
            ..RunLimits::default()
        };
        assert_eq!(
            d,
            base_digest(&target, &capped),
            "event cap is drive state, not world state"
        );
        let budgeted = RunLimits {
            step_budget: 500,
            ..RunLimits::default()
        };
        assert_ne!(d, base_digest(&target, &budgeted));
        assert_ne!(
            d,
            base_digest(&crate::runner::TcpTarget::default(), &RunLimits::default())
        );
    }

    #[test]
    fn digests_are_stable_across_text_round_trips() {
        let target = GmpTarget::default();
        let limits = RunLimits::default();
        let mutator = ScheduleMutator::new(&ProtocolSpec::gmp(), 3, 3);
        let mut rng = SimRng::seed_from(11);
        let mut schedule = FaultSchedule::empty();
        for _ in 0..20 {
            schedule = mutator.mutate(&schedule, 4, &mut rng);
            let back =
                FaultSchedule::from_lines(schedule.to_lines().iter().map(String::as_str)).unwrap();
            assert_eq!(
                prefix_digests(&target, &limits, &schedule),
                prefix_digests(&target, &limits, &back),
                "serializing a schedule must not move it in the cache"
            );
        }
    }

    #[test]
    fn mutated_children_report_the_expected_shared_prefix() {
        let target = GmpTarget::default();
        let limits = RunLimits::default();
        let mutator = ScheduleMutator::new(&ProtocolSpec::gmp(), 3, 3);
        let mut rng = SimRng::seed_from(5);
        let mut parent = FaultSchedule::empty();
        let mut appends = 0usize;
        for _ in 0..200 {
            let child = mutator.mutate(&parent, 4, &mut rng);
            let shared = shared_prefix_len(&parent, &child);
            // The manual count and the digest chain must agree exactly.
            let dp = prefix_digests(&target, &limits, &parent);
            let dc = prefix_digests(&target, &limits, &child);
            let chain_shared = dp.iter().zip(&dc).take_while(|(a, b)| a == b).count() - 1;
            assert_eq!(shared, chain_shared);
            if child.len() == parent.len() + 1 && shared == parent.len() {
                // A pure append: the child forks the parent's deepest
                // snapshot and installs one fault.
                appends += 1;
            }
            if crate::validate::schedule_is_installable(&child, 3) {
                parent = child;
            }
        }
        assert!(appends > 0, "mutator never appended in 200 draws");
    }

    #[test]
    fn store_evicts_least_recently_used() {
        let mut store = SnapshotStore::new(2);
        let (a, b, c) = (1u64, 2u64, 3u64);
        store.insert(snap_with_digest(a));
        store.insert(snap_with_digest(b));
        // Touch `a` so `b` becomes the eviction victim.
        assert!(store.lookup_longest(&[a]).is_some());
        store.insert(snap_with_digest(c));
        assert_eq!(store.len(), 2);
        assert!(store.peek_longest(&[a]).is_some());
        assert!(store.peek_longest(&[b]).is_none(), "b was LRU");
        assert!(store.peek_longest(&[c]).is_some());
        assert_eq!(store.stats().stored, 3);
        assert_eq!(store.stats().evicted, 1);
    }

    #[test]
    fn lookup_prefers_the_longest_prefix_and_counts_once() {
        let mut store = SnapshotStore::new(4);
        store.insert(snap_with_digest(10));
        store.insert(snap_with_digest(20));
        let hit = store.lookup_longest(&[10, 20, 30]).unwrap();
        assert_eq!(hit.prefix_digest(), 20, "longest cached prefix wins");
        assert!(store.lookup_longest(&[99]).is_none());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        store.note_skipped(1234);
        assert_eq!(store.stats().events_skipped, 1234);
        assert!((store.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn seeding_does_not_count_as_stored() {
        let mut store = SnapshotStore::new(4);
        store.seed(snap_with_digest(1));
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().stored, 0);
        let mut merged = SnapshotStats::default();
        merged.merge(store.stats());
        merged.merge(&SnapshotStats {
            hits: 2,
            misses: 1,
            stored: 1,
            evicted: 0,
            events_skipped: 50,
        });
        assert_eq!(merged.hits, 2);
        assert_eq!(merged.stored, 1);
        assert_eq!(merged.events_skipped, 50);
    }
}
