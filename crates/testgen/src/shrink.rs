//! Delta-debugging failing fault schedules down to 1-minimal fault sets.
//!
//! A coverage-guided search usually finds a bug with a *composed* schedule
//! — three or four faults, most of them incidental. [`shrink_schedule`]
//! repeatedly re-runs the target with single faults removed, keeping any
//! reduction that still fails, until a fixpoint: the result is 1-minimal
//! (removing any one remaining fault makes the failure disappear), which
//! is exactly the property the repro artifacts advertise.

use crate::schedule::FaultSchedule;

/// Greedily removes faults from `failing` while `still_fails` holds.
///
/// `still_fails` must be deterministic (re-running the same schedule gives
/// the same answer — true of every simulator target here). The returned
/// schedule satisfies `still_fails`, and removing any single remaining
/// fault from it does not; callers get that guarantee without a second
/// verification pass because the final fixpoint round has already re-run
/// every single-fault removal.
pub fn shrink_schedule(
    failing: &FaultSchedule,
    mut still_fails: impl FnMut(&FaultSchedule) -> bool,
) -> FaultSchedule {
    let mut current = failing.clone();
    loop {
        let mut reduced = false;
        for i in 0..current.faults.len() {
            let mut candidate = current.clone();
            candidate.faults.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultOp, ScheduledFault};
    use pfi_core::Direction;

    fn fault(msg: &str) -> ScheduledFault {
        ScheduledFault {
            site: 0,
            dir: Direction::Send,
            op: FaultOp::DropAll {
                msg_type: msg.into(),
            },
        }
    }

    fn schedule(msgs: &[&str]) -> FaultSchedule {
        FaultSchedule {
            faults: msgs.iter().map(|m| fault(m)).collect(),
        }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        // Failure iff the HEARTBEAT fault is present.
        let start = schedule(&["ACK", "HEARTBEAT", "COMMIT", "NAK"]);
        let shrunk = shrink_schedule(&start, |s| {
            s.faults.iter().any(|f| f.op.msg_type() == "HEARTBEAT")
        });
        assert_eq!(shrunk, schedule(&["HEARTBEAT"]));
    }

    #[test]
    fn keeps_a_required_pair_and_is_one_minimal() {
        // Failure needs BOTH faults — neither alone suffices.
        let start = schedule(&["ACK", "HEARTBEAT", "PROCLAIM", "COMMIT"]);
        let needs_both = |s: &FaultSchedule| {
            let has = |m: &str| s.faults.iter().any(|f| f.op.msg_type() == m);
            has("HEARTBEAT") && has("PROCLAIM")
        };
        let shrunk = shrink_schedule(&start, needs_both);
        assert_eq!(shrunk, schedule(&["HEARTBEAT", "PROCLAIM"]));
        // 1-minimality: removing either remaining fault breaks the failure.
        for i in 0..shrunk.faults.len() {
            let mut cand = shrunk.clone();
            cand.faults.remove(i);
            assert!(!needs_both(&cand));
        }
    }

    #[test]
    fn counts_runs_linearly_not_exponentially() {
        let start = schedule(&["A", "B", "C", "D", "E", "F"]);
        let mut runs = 0;
        let shrunk = shrink_schedule(&start, |s| {
            runs += 1;
            s.faults.iter().any(|f| f.op.msg_type() == "F")
        });
        assert_eq!(shrunk.len(), 1);
        // Greedy one-at-a-time: well under 2^n for n = 6.
        assert!(runs <= 36, "took {runs} runs");
    }

    #[test]
    fn already_minimal_schedules_are_returned_unchanged() {
        let start = schedule(&["HEARTBEAT"]);
        let shrunk = shrink_schedule(&start, |s| !s.is_empty());
        assert_eq!(shrunk, start);
    }
}
