//! Acceptance tests for the coverage-guided campaign engine: the seeded
//! exploration loop must rediscover every seeded GMP bug within a fixed
//! budget, shrink each failure to a 1-minimal fault set, emit a repro
//! artifact that replays byte-identically, beat the legacy grid on
//! coverage at equal case count, and be bit-for-bit deterministic.

use std::sync::Arc;

use pfi_core::Direction;
use pfi_gmp::GmpBugs;
use pfi_testgen::{
    explore, explore_fleet, generate, replay, run_campaign, run_schedule, Coverage, ExploreConfig,
    FaultKind, GmpTarget, ProtocolSpec, TestTarget,
};

/// The fixed seed the rediscovery tests run under. The budgets below were
/// sized so each bug is found well inside them at this seed; bumping a
/// budget is fine, silently changing the seed is not (it would invalidate
/// the sizing).
const SEED: u64 = 42;

fn buggy(bug: &str) -> GmpTarget {
    GmpTarget {
        bugs: GmpBugs {
            self_death: bug == "self_death",
            proclaim_forward: bug == "proclaim_forward",
            timer_unset: bug == "timer_unset",
        },
        fault_secs: 60,
    }
}

/// Runs the full rediscovery contract for one seeded bug: explore finds a
/// violation of `oracle`, the shrunk schedule is 1-minimal under
/// re-execution, and the repro artifact round-trips and replays.
fn rediscovers(bug: &str, oracle: &str, budget: usize) {
    let target = buggy(bug);
    let spec = ProtocolSpec::gmp();
    let outcome = explore(
        &target,
        &spec,
        // epoch: 1 pins the classic sequential trajectory these budgets
        // were sized against (epoch width changes the search walk).
        &ExploreConfig {
            seed: SEED,
            budget,
            max_faults: 3,
            epoch: 1,
            prefilter: true,
            ..ExploreConfig::default()
        },
    );
    let failure = outcome
        .failures
        .iter()
        .find(|f| f.oracle == oracle)
        .unwrap_or_else(|| {
            panic!(
                "{bug}: no {oracle} violation in budget {budget}; found {:?}",
                outcome
                    .failures
                    .iter()
                    .map(|f| f.oracle.as_str())
                    .collect::<Vec<_>>()
            )
        });

    // The shrunk schedule still reproduces the violation from scratch.
    assert!(
        !failure.shrunk.faults.is_empty(),
        "{bug}: empty shrunk schedule"
    );
    assert!(failure.shrunk.len() <= failure.schedule.len());
    let rerun = run_schedule(&target, &failure.shrunk);
    assert!(
        rerun.verdict.is_violation() && rerun.oracle.as_deref() == Some(oracle),
        "{bug}: shrunk schedule no longer violates {oracle}: {:?}",
        rerun.verdict
    );

    // 1-minimality: dropping any single fault loses this violation.
    for i in 0..failure.shrunk.faults.len() {
        let mut cand = failure.shrunk.clone();
        let removed = cand.faults.remove(i);
        let run = run_schedule(&target, &cand);
        assert!(
            !(run.verdict.is_violation() && run.oracle.as_deref() == Some(oracle)),
            "{bug}: still violates {oracle} without fault {}",
            removed.to_line()
        );
    }

    // The repro artifact round-trips byte-identically and replays to the
    // same verdict against a fresh target.
    let text = failure.repro.to_text();
    let parsed = pfi_testgen::Repro::from_text(&text).expect("repro parses back");
    assert_eq!(parsed, failure.repro, "{bug}: repro round-trip changed it");
    assert_eq!(parsed.to_text(), text, "{bug}: re-serialization differs");
    assert_eq!(parsed.target, "gmp");
    assert_eq!(parsed.seed, target.seed());
    let replayed = replay(&target, &parsed);
    assert!(
        replayed.verdict.is_violation() && replayed.oracle.as_deref() == Some(oracle),
        "{bug}: replayed repro gave {:?}",
        replayed.verdict
    );
}

#[test]
fn explore_rediscovers_gmp_self_death() {
    rediscovers("self_death", "gmp-no-self-death", 60);
}

#[test]
fn explore_rediscovers_gmp_proclaim_forwarding() {
    rediscovers("proclaim_forward", "gmp-proclaim-routing", 60);
}

#[test]
fn explore_rediscovers_gmp_timer_unset() {
    // Needs two coordinated faults on different sites (park one node in
    // transition, induce churn from another), hence the larger budget.
    rediscovers("timer_unset", "gmp-timer-discipline", 150);
}

#[test]
fn coverage_guided_search_beats_the_grid() {
    let spec = ProtocolSpec::gmp();
    let target = GmpTarget {
        bugs: GmpBugs::none(),
        fault_secs: 60,
    };
    let campaign = generate(
        &spec,
        &FaultKind::default_matrix(),
        &[Direction::Send, Direction::Receive],
    );
    let mut grid = Coverage::new();
    for result in run_campaign(&target, &campaign) {
        grid.merge(&result.coverage);
    }

    // Equal case count: the grid ran campaign.len() cases, exploration
    // gets a budget of campaign.len() - 1 mutations plus its baseline.
    // The fixed target yields no failures — so no shrink re-runs inflate
    // the count and exploration can never out-run the grid.
    let outcome = explore(
        &target,
        &spec,
        &ExploreConfig {
            seed: SEED,
            budget: campaign.len() - 1,
            max_faults: 3,
            epoch: 1,
            prefilter: true,
            ..ExploreConfig::default()
        },
    );
    assert!(outcome.executed <= campaign.len());
    assert!(
        outcome.coverage.len() > grid.len(),
        "explore reached {} edges in {} runs, grid reached {} in {}",
        outcome.coverage.len(),
        outcome.executed,
        grid.len(),
        campaign.len()
    );
    // Not just more edges: edges the whole grid never reaches at all
    // (composed multi-fault schedules drive states single faults cannot).
    assert!(outcome.coverage.difference(&grid).next().is_some());
}

#[test]
fn exploration_is_deterministic() {
    let target = buggy("self_death");
    let spec = ProtocolSpec::gmp();
    let config = ExploreConfig {
        seed: 7,
        budget: 40,
        max_faults: 3,
        epoch: 1,
        prefilter: true,
        ..ExploreConfig::default()
    };
    let a = explore(&target, &spec, &config);
    let b = explore(&target, &spec, &config);
    assert_eq!(
        a.digest(),
        b.digest(),
        "same seed must give identical outcomes"
    );
    // And a different seed actually changes the walk (digest is not a
    // constant function).
    let c = explore(&target, &spec, &ExploreConfig { seed: 8, ..config });
    assert_ne!(a.digest(), c.digest());
}

/// The pre-filter contract: statically rejecting uninstallable mutants
/// must not change *anything* the campaign produces — an unfiltered run
/// ships the same candidates to the runner, which refuses them at install
/// time with empty coverage, and both engines reach byte-identical
/// corpus, coverage, and failures. Only the executed/rejected accounting
/// moves.
#[test]
fn prefiltering_preserves_the_unfiltered_outcome() {
    let target = buggy("self_death");
    let spec = ProtocolSpec::gmp();
    let base = ExploreConfig {
        seed: SEED,
        budget: 24,
        max_faults: 3,
        epoch: 1,
        prefilter: true,
        ..ExploreConfig::default()
    };
    let filtered = explore(&target, &spec, &base);
    let unfiltered = explore(
        &target,
        &spec,
        &ExploreConfig {
            prefilter: false,
            ..base
        },
    );

    assert!(
        filtered.rejected > 0,
        "seed {SEED} must draw at least one statically-invalid mutant for \
         this comparison to mean anything"
    );
    // Same mutants fail statically as fail at install time.
    assert_eq!(filtered.rejected, unfiltered.rejected);
    // The filtered engine saved exactly that many executions.
    assert_eq!(unfiltered.executed, filtered.executed + filtered.rejected);
    // And nothing the campaign *found* is different.
    assert_eq!(filtered.digest(), unfiltered.digest());
}

/// Pre-filtering happens on the master thread before dispatch, so a
/// filtered campaign stays byte-stable across worker counts, and the
/// fleet report carries the rejection count.
#[test]
fn prefiltered_exploration_is_worker_count_invariant() {
    let spec = ProtocolSpec::gmp();
    let config = ExploreConfig {
        seed: SEED,
        budget: 24,
        max_faults: 3,
        epoch: 8,
        prefilter: true,
        ..ExploreConfig::default()
    };
    let mut outcomes = Vec::new();
    for jobs in [1, 4] {
        let (outcome, report) = explore_fleet(Arc::new(buggy("self_death")), &spec, &config, jobs);
        assert_eq!(
            report.rejected, outcome.rejected as u64,
            "fleet report must carry the campaign's rejection count"
        );
        outcomes.push((jobs, outcome));
    }
    let (_, first) = &outcomes[0];
    assert!(first.rejected > 0, "seed {SEED} must reject some mutants");
    for (jobs, outcome) in &outcomes {
        assert_eq!(outcome.digest(), first.digest(), "jobs={jobs} diverged");
        assert_eq!(outcome.rejected, first.rejected, "jobs={jobs} diverged");
        assert_eq!(outcome.executed, first.executed, "jobs={jobs} diverged");
    }
}

#[test]
fn clean_target_yields_no_failures() {
    let outcome = explore(
        &GmpTarget {
            bugs: GmpBugs::none(),
            fault_secs: 60,
        },
        &ProtocolSpec::gmp(),
        &ExploreConfig {
            seed: SEED,
            budget: 24,
            max_faults: 3,
            epoch: 1,
            prefilter: true,
            ..ExploreConfig::default()
        },
    );
    assert!(
        outcome.failures.is_empty(),
        "fixed GMP violated an oracle: {:?}",
        outcome
            .failures
            .iter()
            .map(|f| (&f.oracle, &f.message))
            .collect::<Vec<_>>()
    );
    assert!(!outcome.coverage.is_empty());
}
