//! Crash-safety end-to-end: the write-ahead journal's kill/resume
//! contract, panic containment, and the runaway-run watchdogs.
//!
//! The campaign engine's durability promise has three parts, each pinned
//! here: (1) a campaign killed mid-epoch and resumed from its torn journal
//! reproduces the uninterrupted run byte-for-byte — digest, executed
//! counts, and the journal it writes — without re-executing any completed
//! case; (2) a panicking oracle is contained per-run (`Verdict::Crashed`),
//! its pre-crash coverage salvaged, so sabotage cannot abort the campaign
//! *or* skew its search; (3) a filter script that burns out its step
//! budget escalates to `Verdict::Hung` instead of wedging a worker.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use pfi_testgen::{
    explore, explore_fleet, ChaosOracleTarget, ExploreConfig, GmpTarget, Journal, ProtocolSpec,
};

/// The seed the acceptance criteria pin: resumed digest == uninterrupted
/// digest at seed 42.
const SEED: u64 = 42;

fn config() -> ExploreConfig {
    ExploreConfig {
        seed: SEED,
        budget: 24,
        max_faults: 3,
        epoch: 8,
        prefilter: true,
        ..ExploreConfig::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pfi_resilience_{}_{name}", std::process::id()))
}

/// Journal equality modulo the `counters` line. Counters are non-identity
/// by design — a resumed run truthfully reports `replayed > 0` where the
/// uninterrupted run reports 0 — so byte-identity is demanded for every
/// line *except* `counters `, and the counters themselves are compared
/// field-by-field with `replayed` exempted.
fn assert_journals_equivalent(resumed_text: &str, full_text: &str) {
    let strip = |text: &str| -> String {
        text.lines()
            .filter(|l| !l.starts_with("counters "))
            .map(|l| format!("{l}\n"))
            .collect()
    };
    assert_eq!(
        strip(resumed_text),
        strip(full_text),
        "journals must be byte-identical outside the non-identity counters line"
    );
    let resumed = Journal::from_text(resumed_text).unwrap().counters.unwrap();
    let full = Journal::from_text(full_text).unwrap().counters.unwrap();
    assert_eq!(resumed.executed, full.executed);
    assert_eq!(resumed.rejected, full.rejected);
    assert_eq!(resumed.pruned, full.pruned);
    assert_eq!(resumed.crashed, full.crashed);
    assert_eq!(resumed.hung, full.hung);
}

/// The tentpole acceptance test: write a journal while exploring, simulate
/// a SIGKILL by tearing that journal mid-record at 50%, resume from the
/// torn journal, and demand the resumed campaign is indistinguishable from
/// the uninterrupted one — same digest, same executed count, zero
/// completed cases re-executed, and a byte-identical journal on disk.
#[test]
fn killed_campaign_resumes_to_identical_digest_and_journal() {
    let target = GmpTarget::default();
    let spec = ProtocolSpec::gmp();

    let full_path = tmp("full.journal");
    let mut cfg = config();
    cfg.journal = Some(full_path.clone());
    let uninterrupted = explore(&target, &spec, &cfg);
    assert_eq!(uninterrupted.replayed, 0);
    let full_bytes = fs::read_to_string(&full_path).unwrap();
    assert!(
        full_bytes.ends_with("complete\n"),
        "an uninterrupted journal must carry the completion terminator"
    );

    // A process kill tears the journal at an arbitrary byte; cutting at
    // 50% lands mid-record, which the loader must tolerate by dropping
    // only the partial trailing block.
    let cut = full_bytes.len() / 2;
    let torn = Journal::from_text(&full_bytes[..cut]).unwrap();
    assert!(!torn.complete, "a torn journal must not read as complete");
    let survivors = torn.cases.len();
    assert!(
        survivors > 0,
        "the 50% cut must leave completed work worth resuming"
    );

    let resumed_path = tmp("resumed.journal");
    let mut cfg = config();
    cfg.journal = Some(resumed_path.clone());
    cfg.resume = Some(torn.clone());
    let resumed = explore(&target, &spec, &cfg);

    assert_eq!(resumed.digest(), uninterrupted.digest());
    assert_eq!(resumed.executed, uninterrupted.executed);
    assert_eq!(
        resumed.replayed, survivors,
        "every journaled case must be replayed, never re-executed"
    );
    let resumed_bytes = fs::read_to_string(&resumed_path).unwrap();
    assert_journals_equivalent(&resumed_bytes, &full_bytes);

    // The same resume fanned out across fleet workers merges to the same
    // outcome: replay happens on the master, before dispatch.
    let mut cfg = config();
    cfg.resume = Some(torn);
    let (fleet_resumed, _) = explore_fleet(Arc::new(GmpTarget::default()), &spec, &cfg, 2);
    assert_eq!(fleet_resumed.digest(), uninterrupted.digest());
    assert_eq!(fleet_resumed.replayed, survivors);

    fs::remove_file(&full_path).ok();
    fs::remove_file(&resumed_path).ok();
}

/// Crash containment is not just survival — it must not skew the search.
/// An oracle that panics whenever a run drops a message turns verdicts
/// into `Crashed`, but coverage is salvaged from the pre-crash trace and
/// violations are judged before the saboteur runs, so corpus evolution,
/// coverage, and repro artifacts are byte-identical to the unsabotaged
/// campaign. No quarantine, no lost lineage, no silent corpus hole.
#[test]
fn panicking_oracle_cannot_abort_or_skew_the_campaign() {
    let spec = ProtocolSpec::gmp();
    let cfg = config();
    let plain = explore(&GmpTarget::default(), &spec, &cfg);
    let chaos = explore(
        &ChaosOracleTarget {
            inner: GmpTarget::default(),
        },
        &spec,
        &cfg,
    );
    assert!(
        chaos.crashed > 0,
        "seed {SEED} must produce at least one dropping schedule for the saboteur"
    );
    assert_eq!(plain.crashed, 0);
    assert_eq!(
        chaos.digest(),
        plain.digest(),
        "contained crashes must salvage coverage: the sabotaged campaign \
         explores exactly the same space"
    );
    assert_eq!(chaos.executed, plain.executed);
    assert!(chaos.quarantined.is_empty());
}

/// The same sabotage across a worker fleet: every crash is contained on
/// its worker, counters surface in the fleet report, and the merged
/// outcome still matches the inline one.
#[test]
fn fleet_contains_crashes_identically() {
    let spec = ProtocolSpec::gmp();
    let cfg = config();
    let inline = explore(
        &ChaosOracleTarget {
            inner: GmpTarget::default(),
        },
        &spec,
        &cfg,
    );
    let (fleet, _report) = explore_fleet(
        Arc::new(ChaosOracleTarget {
            inner: GmpTarget::default(),
        }),
        &spec,
        &cfg,
        3,
    );
    assert_eq!(fleet.digest(), inline.digest());
    assert_eq!(fleet.crashed, inline.crashed);
    assert_eq!(fleet.executed, inline.executed);
}

/// A starvation-level interpreter step budget makes every filter script
/// burn out, and the watchdog escalates those runs to `Hung` — the
/// campaign still runs to completion instead of wedging.
#[test]
fn step_budget_watchdog_escalates_instead_of_wedging() {
    let spec = ProtocolSpec::gmp();
    let mut cfg = config();
    cfg.budget = 16;
    cfg.step_budget = 1;
    let outcome = explore(&GmpTarget::default(), &spec, &cfg);
    assert!(
        outcome.hung > 0,
        "a 1-step budget must starve at least one filter script"
    );
    assert!(!outcome.corpus.is_empty());
    assert!(outcome.quarantined.is_empty());
}

/// Hung and Crashed verdicts round-trip through the journal: a campaign
/// with watchdog escalations resumes to the same digest and journal bytes
/// like any other.
#[test]
fn resume_replays_watchdog_verdicts_too() {
    let spec = ProtocolSpec::gmp();
    let full_path = tmp("hung_full.journal");
    let mut cfg = config();
    cfg.budget = 16;
    cfg.step_budget = 1;
    cfg.journal = Some(full_path.clone());
    let target = ChaosOracleTarget {
        inner: GmpTarget::default(),
    };
    let uninterrupted = explore(&target, &spec, &cfg);
    let full_bytes = fs::read_to_string(&full_path).unwrap();

    let torn = Journal::from_text(&full_bytes[..full_bytes.len() / 2]).unwrap();
    let survivors = torn.cases.len();
    assert!(survivors > 0);

    let resumed_path = tmp("hung_resumed.journal");
    cfg.journal = Some(resumed_path.clone());
    cfg.resume = Some(torn);
    let resumed = explore(&target, &spec, &cfg);

    assert_eq!(resumed.digest(), uninterrupted.digest());
    assert_eq!(resumed.hung, uninterrupted.hung);
    assert_eq!(resumed.crashed, uninterrupted.crashed);
    assert_eq!(resumed.replayed, survivors);
    assert_journals_equivalent(&fs::read_to_string(&resumed_path).unwrap(), &full_bytes);

    fs::remove_file(&full_path).ok();
    fs::remove_file(&resumed_path).ok();
}

/// Resuming under a journal recorded for a different campaign must refuse
/// loudly, not silently replay the wrong results.
#[test]
#[should_panic(expected = "different campaign")]
fn resume_refuses_a_mismatched_journal() {
    let spec = ProtocolSpec::gmp();
    let full_path = tmp("mismatch.journal");
    let mut cfg = config();
    cfg.journal = Some(full_path.clone());
    explore(&GmpTarget::default(), &spec, &cfg);
    let journal = Journal::load(&full_path).unwrap();
    fs::remove_file(&full_path).ok();

    let mut other = config();
    other.seed = SEED + 1; // not the campaign the journal records
    other.journal = None;
    other.resume = Some(journal);
    explore(&GmpTarget::default(), &spec, &other);
}
