//! Unit suite for the invariant oracles: every oracle is exercised against
//! one hand-built trace that violates it and one clean trace that does not.
//! Oracles only ever see a [`TraceLog`], so no simulation is needed here —
//! the traces are constructed record by record.

use pfi_gmp::GmpEvent;
use pfi_sim::{NodeId, SimDuration, SimTime, TraceLog};
use pfi_tcp::{CloseReason, TcpEvent};
use pfi_testgen::{
    first_violation, DeliveredStream, GmpAgreementOracle, GmpLeaderUniquenessOracle,
    GmpNoSelfDeathOracle, GmpProclaimRoutingOracle, GmpTimerDisciplineOracle, Oracle,
    TcpNoSilentCloseOracle, TcpPrefixOracle, TcpRtoBoundsOracle, TpcAtomicityOracle,
};
use pfi_tpc::TpcEvent;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn t(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// Asserts the oracle flags `bad` (with `expect_in` in the message) and
/// passes `good`.
fn check(oracle: &dyn Oracle, bad: &TraceLog, good: &TraceLog, expect_in: &str) {
    let err = oracle
        .check(bad)
        .expect_err(&format!("{} accepted the violating trace", oracle.name()));
    assert!(
        err.contains(expect_in),
        "{}: message {err:?} does not mention {expect_in:?}",
        oracle.name()
    );
    if let Err(msg) = oracle.check(good) {
        panic!("{} rejected the clean trace: {msg}", oracle.name());
    }
}

// ------------------------------------------------------------------ TCP

#[test]
fn tcp_prefix_oracle() {
    let expected = vec![10u8, 20, 30, 40];
    let mut bad = TraceLog::new();
    bad.record(
        t(1),
        n(1),
        "testgen",
        DeliveredStream {
            conn: 0,
            data: vec![10, 99], // second byte differs
        },
    );
    let mut good = TraceLog::new();
    good.record(
        t(1),
        n(1),
        "testgen",
        DeliveredStream {
            conn: 0,
            data: vec![10, 20], // truncated prefix is fine
        },
    );
    check(&TcpPrefixOracle { expected }, &bad, &good, "not a prefix");
}

#[test]
fn tcp_prefix_oracle_rejects_overlong_streams() {
    let oracle = TcpPrefixOracle {
        expected: vec![1, 2],
    };
    let mut bad = TraceLog::new();
    bad.record(
        t(1),
        n(1),
        "testgen",
        DeliveredStream {
            conn: 0,
            data: vec![1, 2, 3],
        },
    );
    assert!(oracle.check(&bad).is_err());
}

#[test]
fn tcp_no_silent_close_oracle() {
    let mut bad = TraceLog::new();
    bad.record(
        t(5),
        n(0),
        "tcp",
        TcpEvent::Closed {
            conn: 0,
            reason: CloseReason::Timeout,
        },
    );
    let mut good = TraceLog::new();
    good.record(
        t(1),
        n(0),
        "tcp",
        TcpEvent::Retransmit {
            conn: 0,
            seq: 1,
            nth: 1,
            next_rto: SimDuration::from_secs(2),
        },
    );
    good.record(
        t(5),
        n(0),
        "tcp",
        TcpEvent::Closed {
            conn: 0,
            reason: CloseReason::Timeout,
        },
    );
    check(
        &TcpNoSilentCloseOracle,
        &bad,
        &good,
        "without a single retransmission",
    );
}

#[test]
fn tcp_no_silent_close_oracle_keepalive_variant() {
    let mut bad = TraceLog::new();
    bad.record(
        t(5),
        n(0),
        "tcp",
        TcpEvent::Closed {
            conn: 3,
            reason: CloseReason::KeepaliveTimeout,
        },
    );
    let mut good = TraceLog::new();
    good.record(
        t(1),
        n(0),
        "tcp",
        TcpEvent::KeepaliveProbe {
            conn: 3,
            nth: 1,
            garbage_bytes: 1,
        },
    );
    good.record(
        t(5),
        n(0),
        "tcp",
        TcpEvent::Closed {
            conn: 3,
            reason: CloseReason::KeepaliveTimeout,
        },
    );
    check(&TcpNoSilentCloseOracle, &bad, &good, "without probing");
}

#[test]
fn tcp_rto_bounds_oracle() {
    let retransmit = |rto: SimDuration| TcpEvent::Retransmit {
        conn: 0,
        seq: 7,
        nth: 2,
        next_rto: rto,
    };
    let mut bad = TraceLog::new();
    bad.record(t(1), n(0), "tcp", retransmit(SimDuration::from_secs(600)));
    let mut good = TraceLog::new();
    good.record(t(1), n(0), "tcp", retransmit(SimDuration::from_secs(4)));
    check(&TcpRtoBoundsOracle::default(), &bad, &good, "outside");
    // Below the floor is just as illegal as above the cap.
    let mut too_small = TraceLog::new();
    too_small.record(t(1), n(0), "tcp", retransmit(SimDuration::from_millis(1)));
    assert!(TcpRtoBoundsOracle::default().check(&too_small).is_err());
}

// ------------------------------------------------------------------ GMP

fn view(gid: u64, members: &[u32]) -> GmpEvent {
    GmpEvent::GroupView {
        gid,
        members: members.to_vec(),
        leader: *members.iter().min().unwrap(),
    }
}

#[test]
fn gmp_agreement_oracle_flags_member_disagreement() {
    let mut bad = TraceLog::new();
    bad.record(t(1), n(0), "gmd", view(7, &[0, 1, 2]));
    bad.record(t(2), n(1), "gmd", view(7, &[0, 1]));
    let mut good = TraceLog::new();
    good.record(t(1), n(0), "gmd", view(7, &[0, 1, 2]));
    good.record(t(2), n(1), "gmd", view(7, &[0, 1, 2]));
    good.record(t(3), n(1), "gmd", view(8, &[0, 1])); // new gid may differ
    check(&GmpAgreementOracle, &bad, &good, "disagreement");
}

#[test]
fn gmp_agreement_oracle_flags_invalid_views() {
    let mut empty = TraceLog::new();
    empty.record(
        t(1),
        n(0),
        "gmd",
        GmpEvent::GroupView {
            gid: 7,
            members: vec![],
            leader: 0,
        },
    );
    assert!(GmpAgreementOracle.check(&empty).is_err());

    let mut wrong_leader = TraceLog::new();
    wrong_leader.record(
        t(1),
        n(0),
        "gmd",
        GmpEvent::GroupView {
            gid: 7,
            members: vec![0, 1, 2],
            leader: 2,
        },
    );
    assert!(GmpAgreementOracle.check(&wrong_leader).is_err());
}

#[test]
fn gmp_leader_uniqueness_oracle() {
    let mut bad = TraceLog::new();
    bad.record(
        t(1),
        n(0),
        "gmd",
        GmpEvent::GroupView {
            gid: 7,
            members: vec![0, 1],
            leader: 0,
        },
    );
    bad.record(
        t(2),
        n(1),
        "gmd",
        GmpEvent::GroupView {
            gid: 7,
            members: vec![1, 2],
            leader: 1,
        },
    );
    let mut good = TraceLog::new();
    good.record(t(1), n(0), "gmd", view(7, &[0, 1]));
    good.record(t(2), n(1), "gmd", view(7, &[0, 1]));
    check(&GmpLeaderUniquenessOracle, &bad, &good, "rival leaders");
}

#[test]
fn gmp_no_self_death_oracle() {
    let mut bad = TraceLog::new();
    bad.record(t(1), n(1), "gmd", GmpEvent::SelfDeclaredDead);
    let mut good = TraceLog::new();
    good.record(t(1), n(1), "gmd", GmpEvent::MemberSuspected { suspect: 2 });
    check(&GmpNoSelfDeathOracle, &bad, &good, "itself");
}

#[test]
fn gmp_proclaim_routing_oracle() {
    let mut bad = TraceLog::new();
    bad.record(
        t(1),
        n(0),
        "gmd",
        GmpEvent::ProclaimAnswered { to: 1, origin: 2 },
    );
    let mut good = TraceLog::new();
    good.record(
        t(1),
        n(0),
        "gmd",
        GmpEvent::ProclaimAnswered { to: 2, origin: 2 },
    );
    check(&GmpProclaimRoutingOracle, &bad, &good, "instead of");
}

#[test]
fn gmp_timer_discipline_oracle() {
    let mut bad = TraceLog::new();
    bad.record(
        t(1),
        n(2),
        "gmd",
        GmpEvent::SpuriousTimerInTransition { suspect: 1 },
    );
    let mut good = TraceLog::new();
    good.record(t(1), n(2), "gmd", GmpEvent::InTransition { gid: 9 });
    check(&GmpTimerDisciplineOracle, &bad, &good, "stale timer");
}

// ------------------------------------------------------------------ 2PC

#[test]
fn tpc_atomicity_oracle() {
    let mut bad = TraceLog::new();
    bad.record(
        t(1),
        n(0),
        "tpc",
        TpcEvent::DecisionMade {
            txid: 1,
            commit: true,
        },
    );
    bad.record(
        t(2),
        n(2),
        "tpc",
        TpcEvent::DecisionApplied {
            txid: 1,
            commit: false,
        },
    );
    let mut good = TraceLog::new();
    good.record(
        t(1),
        n(0),
        "tpc",
        TpcEvent::DecisionMade {
            txid: 1,
            commit: true,
        },
    );
    good.record(
        t(2),
        n(2),
        "tpc",
        TpcEvent::DecisionApplied {
            txid: 1,
            commit: true,
        },
    );
    // A different transaction may decide differently.
    good.record(
        t(3),
        n(0),
        "tpc",
        TpcEvent::DecisionMade {
            txid: 2,
            commit: false,
        },
    );
    check(&TpcAtomicityOracle, &bad, &good, "decision split");
}

// ------------------------------------------------- first_violation order

#[test]
fn first_violation_reports_the_first_failing_oracle() {
    let mut trace = TraceLog::new();
    trace.record(t(1), n(1), "gmd", GmpEvent::SelfDeclaredDead);
    trace.record(
        t(2),
        n(0),
        "gmd",
        GmpEvent::ProclaimAnswered { to: 1, origin: 2 },
    );
    let oracles: Vec<Box<dyn Oracle>> = vec![
        Box::new(GmpProclaimRoutingOracle),
        Box::new(GmpNoSelfDeathOracle),
    ];
    let (name, _) = first_violation(&oracles, &trace).unwrap();
    assert_eq!(name, "gmp-proclaim-routing");

    let mut clean = TraceLog::new();
    clean.record(t(1), n(1), "gmd", GmpEvent::Started);
    assert!(first_violation(&oracles, &clean).is_none());
}
