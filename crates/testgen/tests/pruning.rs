//! Equivalence pruning end-to-end: skipping candidates whose canonical
//! schedule was already executed — or whose *semantic quotient* under the
//! target's flow model matches a settled result — must be a pure
//! execution-saving measure: byte-identical corpus, coverage, and repro
//! digests with pruning on or off, at any worker count, while the saved
//! executions surface in the `pruned` and `inert` counters and round-trip
//! through the journal.

use std::sync::Arc;

use pfi_testgen::{
    explore, explore_fleet, CampaignFleet, ExploreConfig, GmpTarget, Journal, ProtocolSpec,
};

/// The loop-heavy target: short post-fault horizon, so big-budget
/// campaigns (where canonical collisions actually occur) stay fast.
fn heavy() -> GmpTarget {
    GmpTarget {
        fault_secs: 5,
        ..GmpTarget::default()
    }
}

/// A config at which seed 42 provably generates canonical duplicates
/// (asserted below), so the pruning-on arm has something to skip.
fn config(budget: usize) -> ExploreConfig {
    ExploreConfig {
        seed: 42,
        budget,
        max_faults: 2,
        epoch: 8,
        ..ExploreConfig::default()
    }
}

const PRUNING_BUDGET: usize = 1024;

/// The budget at which the semantic-vs-syntactic strictness acceptance is
/// pinned (loop-heavy corpus; see `semantic_pruning_strictly_exceeds…`).
const STRICTNESS_BUDGET: usize = 2048;

/// The tentpole invariance pin, mirroring `--no-prefilter`: all three
/// pruning tiers on, semantic off (syntactic-only), and pruning fully off
/// are digest-identical at jobs 1, 2, and 4, and the off arm's execution
/// count decomposes exactly: `executed_off == executed_on + pruned_on +
/// inert_on`.
#[test]
fn pruning_on_off_digests_agree_across_jobs() {
    let spec = ProtocolSpec::gmp();
    let on_cfg = config(PRUNING_BUDGET);
    let syn_cfg = ExploreConfig {
        semantic: false,
        ..config(PRUNING_BUDGET)
    };
    let off_cfg = ExploreConfig {
        pruning: false,
        ..config(PRUNING_BUDGET)
    };

    let on = explore(&heavy(), &spec, &on_cfg);
    let syn = explore(&heavy(), &spec, &syn_cfg);
    let off = explore(&heavy(), &spec, &off_cfg);
    assert!(
        on.pruned > 0,
        "budget {PRUNING_BUDGET} must generate at least one canonical duplicate \
         or this test pins nothing"
    );
    assert!(
        on.inert > 0,
        "budget {PRUNING_BUDGET} must generate at least one semantically-inert \
         candidate or the third tier pins nothing"
    );
    assert_eq!(syn.inert, 0, "semantic off must never skip semantically");
    assert_eq!(off.pruned, 0, "pruning off must never prune");
    assert_eq!(off.inert, 0, "pruning off disables the semantic tier too");
    assert_eq!(on.digest(), off.digest());
    assert_eq!(syn.digest(), off.digest());
    assert_eq!(
        off.executed,
        on.executed + on.pruned + on.inert,
        "every skipped candidate must be an execution the off arm actually spent"
    );
    assert_eq!(
        off.executed,
        syn.executed + syn.pruned,
        "the syntactic-only arm keeps the PR 8 decomposition"
    );
    assert_eq!(on.rejected, off.rejected);
    assert_eq!(on.rejected, syn.rejected);

    for jobs in [1usize, 2, 4] {
        let (fleet_on, report) = explore_fleet(Arc::new(heavy()), &spec, &on_cfg, jobs);
        let (fleet_syn, _) = explore_fleet(Arc::new(heavy()), &spec, &syn_cfg, jobs);
        let (fleet_off, _) = explore_fleet(Arc::new(heavy()), &spec, &off_cfg, jobs);
        assert_eq!(fleet_on.digest(), off.digest(), "jobs={jobs} semantic on");
        assert_eq!(fleet_syn.digest(), off.digest(), "jobs={jobs} semantic off");
        assert_eq!(fleet_off.digest(), off.digest(), "jobs={jobs} pruning off");
        assert_eq!(fleet_on.pruned, on.pruned, "jobs={jobs} pruned count");
        assert_eq!(fleet_on.inert, on.inert, "jobs={jobs} inert count");
        assert_eq!(report.pruned, on.pruned as u64);
        assert_eq!(report.inert, on.inert as u64);
    }
}

/// The ISSUE 9 acceptance bar: on the loop-heavy 2048-budget corpus,
/// semantic+inert pruning skips strictly more executions than the
/// syntactic-only canonical tier — while staying digest-identical.
#[test]
fn semantic_pruning_strictly_exceeds_syntactic_only() {
    let spec = ProtocolSpec::gmp();
    let sem = explore(&heavy(), &spec, &config(STRICTNESS_BUDGET));
    let syn = explore(
        &heavy(),
        &spec,
        &ExploreConfig {
            semantic: false,
            ..config(STRICTNESS_BUDGET)
        },
    );
    assert_eq!(sem.digest(), syn.digest());
    assert!(sem.inert > 0);
    assert!(
        sem.pruned + sem.inert > syn.pruned,
        "semantic pruning ({} + {}) must strictly exceed syntactic-only ({})",
        sem.pruned,
        sem.inert,
        syn.pruned
    );
    assert_eq!(
        sem.executed + sem.pruned + sem.inert,
        syn.executed + syn.pruned,
        "both arms account for the same candidate stream"
    );
}

/// Campaign counters are non-identity journal lines: a completed journal
/// carries them, and `Journal::reconstruct` rebuilds the outcome — digest
/// included — without re-executing anything, which is what lets the serve
/// daemon answer `results` after a restart.
#[test]
fn journal_counters_round_trip_and_reconstruct_matches_the_live_outcome() {
    let spec = ProtocolSpec::gmp();
    let path = std::env::temp_dir().join(format!(
        "pfi_pruning_counters_{}.journal",
        std::process::id()
    ));
    let mut cfg = config(PRUNING_BUDGET);
    cfg.journal = Some(path.clone());
    let live = explore(&heavy(), &spec, &cfg);

    let journal = Journal::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let counters = journal
        .counters
        .expect("a complete journal records counters");
    assert_eq!(counters.executed, live.executed);
    assert_eq!(counters.rejected, live.rejected);
    assert_eq!(counters.pruned, live.pruned);
    assert!(counters.pruned > 0);
    assert_eq!(counters.inert, live.inert);
    assert!(counters.inert > 0);
    assert_eq!(counters.replayed, live.replayed);
    assert_eq!(counters.crashed, live.crashed);
    assert_eq!(counters.hung, live.hung);

    let rebuilt = journal.reconstruct();
    assert_eq!(rebuilt.digest(), live.digest());
    assert_eq!(rebuilt.executed, live.executed);
    assert_eq!(rebuilt.pruned, live.pruned);
    assert_eq!(rebuilt.inert, live.inert);
    assert_eq!(rebuilt.failures.len(), live.failures.len());
}

/// A seed corpus executes as the zeroth batch through the normal
/// machinery: deterministic digest, seeds counted in `executed`, and the
/// seeded exploration merges identically across worker counts.
#[test]
fn seed_corpus_is_deterministic_and_counts_toward_executed() {
    let spec = ProtocolSpec::gmp();
    let donor = explore(&heavy(), &spec, &config(24));
    let seeds: Vec<_> = donor
        .corpus
        .iter()
        .filter(|s| !s.is_empty())
        .cloned()
        .collect();
    assert!(!seeds.is_empty());

    let mut cfg = config(24);
    cfg.seed_corpus = seeds.clone();
    let a = explore(&heavy(), &spec, &cfg);
    let b = explore(&heavy(), &spec, &cfg);
    assert_eq!(
        a.digest(),
        b.digest(),
        "seeded exploration must be deterministic"
    );
    assert!(
        a.executed > seeds.len(),
        "seeds ({}) must count toward executed ({}) on top of the baseline \
         and the budgeted search",
        seeds.len(),
        a.executed
    );

    // The seeded config is a different campaign identity than the unseeded
    // one — resume matching pins that via the seed-corpus digest in the
    // journal meta, not via the outcome digest (seeding a run with its own
    // corpus legitimately converges to the same outcome).
    assert_ne!(
        pfi_testgen::seed_corpus_digest(&seeds),
        pfi_testgen::seed_corpus_digest(&[])
    );

    // Fleet execution of the same seeded config merges identically.
    let (fleet, _) = explore_fleet(Arc::new(heavy()), &spec, &cfg, 3);
    assert_eq!(fleet.digest(), a.digest());
}

/// One long-lived pool serves consecutive campaigns — different targets
/// and configs, same threads — and each outcome is byte-identical to a
/// fresh fleet's.
#[test]
fn campaign_fleet_reuse_is_outcome_invariant() {
    let spec = ProtocolSpec::gmp();
    let mut pool = CampaignFleet::new(3);
    assert_eq!(pool.workers(), 3);

    let first = pool.explore(Arc::new(GmpTarget::default()), &spec, &config(24));
    let second = pool.explore(Arc::new(heavy()), &spec, &config(40));
    let report = pool.shutdown();
    assert_eq!(report.workers.len(), 3);

    let (fresh_first, _) = explore_fleet(Arc::new(GmpTarget::default()), &spec, &config(24), 3);
    let (fresh_second, _) = explore_fleet(Arc::new(heavy()), &spec, &config(40), 3);
    assert_eq!(first.digest(), fresh_first.digest());
    assert_eq!(second.digest(), fresh_second.digest());
    // The baseline runs on the master; everything else was dispatched
    // through the shared pool.
    assert_eq!(
        report.dispatched,
        (first.executed - 1 + second.executed - 1) as u64,
        "the shared pool dispatched exactly both campaigns' work"
    );
}
