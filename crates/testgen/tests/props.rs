// QUARANTINED: this property-based suite depends on the external `proptest`
// crate, which the offline build environment cannot fetch from crates.io.
// The whole file is compiled out unless the crate's `proptest` feature is
// enabled (after restoring the proptest dev-dependency in Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests for the campaign engine's pure parts: the
//! delta-debugging shrinker, the schedule text codec, and the mutator.

use pfi_core::Direction;
use pfi_script::Script;
use pfi_sim::SimRng;
use pfi_testgen::{
    schedule_is_installable, shrink_schedule, FaultOp, FaultSchedule, Journal, JournalCase,
    JournalMeta, JournalQuarantine, JournalShrink, ProtocolSpec, ScheduleMutator, ScheduledFault,
    Verdict,
};
use proptest::prelude::*;

const MSGS: [&str; 4] = ["HEARTBEAT", "COMMIT", "PROCLAIM", "ACK"];

/// Builds one fault from small generated integers (a poor man's strategy —
/// the shim has no `prop_oneof` over heterogeneous structs).
fn fault(site: u32, dir_bit: bool, kind: u8, msg_ix: usize, param: u32) -> ScheduledFault {
    let msg_type = MSGS[msg_ix % MSGS.len()].to_string();
    let op = match kind % 6 {
        0 => FaultOp::DropAll { msg_type },
        1 => FaultOp::DropNth {
            msg_type,
            nth: 1 + param % 9,
        },
        2 => FaultOp::DelayMs {
            msg_type,
            ms: 100 * (1 + param as u64 % 50),
        },
        3 => FaultOp::Duplicate {
            msg_type,
            copies: 1 + param % 3,
        },
        4 => FaultOp::CorruptByteAt {
            msg_type,
            offset: (param % 12) as usize,
            mask: 0x40,
        },
        _ => FaultOp::ReorderWindow {
            msg_type,
            hold: 1 + param % 4,
        },
    };
    ScheduledFault {
        site: site % 3,
        dir: if dir_bit {
            Direction::Send
        } else {
            Direction::Receive
        },
        op,
    }
}

fn schedule_from(raw: &[(u32, bool, u8, usize, u32)]) -> FaultSchedule {
    FaultSchedule {
        faults: raw
            .iter()
            .map(|&(s, d, k, m, p)| fault(s, d, k, m, p))
            .collect(),
    }
}

proptest! {
    /// Whatever the failing predicate, the shrunk schedule still fails it.
    #[test]
    fn shrunk_schedule_still_fails(
        raw in proptest::collection::vec(
            (0u32..3, any::<bool>(), 0u8..6, 0usize..4, 0u32..100), 1..7),
        culprit_ix in 0usize..7,
    ) {
        let start = schedule_from(&raw);
        let culprit = start.faults[culprit_ix % start.faults.len()].clone();
        let fails = |s: &FaultSchedule| s.faults.contains(&culprit);
        let shrunk = shrink_schedule(&start, fails);
        prop_assert!(fails(&shrunk));
    }

    /// For a predicate that needs an exact subset of faults, the shrinker
    /// returns that subset and nothing else — and the result is 1-minimal.
    #[test]
    fn shrinking_is_one_minimal(
        raw in proptest::collection::vec(
            (0u32..3, any::<bool>(), 0u8..6, 0usize..4, 0u32..100), 2..7),
        picks in proptest::collection::vec(any::<bool>(), 7..8),
    ) {
        let start = schedule_from(&raw);
        // The culprit set: every fault whose index is picked; when the
        // picks select nothing, fall back to the first fault (the shim has
        // no prop_assume).
        let mut culprits: Vec<ScheduledFault> = start
            .faults
            .iter()
            .enumerate()
            .filter(|(i, _)| picks[*i % picks.len()])
            .map(|(_, f)| f.clone())
            .collect();
        if culprits.is_empty() {
            culprits.push(start.faults[0].clone());
        }
        let fails = |s: &FaultSchedule| culprits.iter().all(|c| s.faults.contains(c));
        let shrunk = shrink_schedule(&start, fails);
        prop_assert!(fails(&shrunk));
        // 1-minimality: removing any single remaining fault breaks it.
        for i in 0..shrunk.faults.len() {
            let mut cand = shrunk.clone();
            cand.faults.remove(i);
            prop_assert!(!fails(&cand), "removing fault {i} still fails");
        }
    }

    /// Shrinking is deterministic: same input, same predicate, same result.
    #[test]
    fn shrinking_is_deterministic(
        raw in proptest::collection::vec(
            (0u32..3, any::<bool>(), 0u8..6, 0usize..4, 0u32..100), 1..7),
        culprit_ix in 0usize..7,
    ) {
        let start = schedule_from(&raw);
        let culprit = start.faults[culprit_ix % start.faults.len()].clone();
        let fails = |s: &FaultSchedule| s.faults.contains(&culprit);
        let a = shrink_schedule(&start, fails);
        let b = shrink_schedule(&start, fails);
        prop_assert_eq!(a, b);
    }

    /// Every schedule round-trips through its text form byte-identically.
    #[test]
    fn schedule_text_round_trips(
        raw in proptest::collection::vec(
            (0u32..3, any::<bool>(), 0u8..6, 0usize..4, 0u32..100), 0..7),
    ) {
        let sched = schedule_from(&raw);
        let lines = sched.to_lines();
        let back = FaultSchedule::from_lines(lines.iter().map(String::as_str)).unwrap();
        prop_assert_eq!(&back, &sched);
        prop_assert_eq!(back.to_lines(), lines);
    }

    /// Any mutation chain stays within bounds, and every child the static
    /// pre-filter admits lowers to parseable filter scripts, whatever the
    /// seed. (One mutation roll in ten is a deliberate *scramble* — an
    /// out-of-topology site or a brace-breaking message type — so "every
    /// child is lowerable" is intentionally false; `schedule_is_installable`
    /// is exactly the predicate that keeps those off the workers, and a
    /// scrambled child must always be caught by it.)
    #[test]
    fn mutation_chains_stay_lowerable(seed in any::<u64>(), steps in 1usize..30) {
        let mutator = ScheduleMutator::new(&ProtocolSpec::gmp(), 3, 3);
        let mut rng = SimRng::seed_from(seed);
        let mut sched = FaultSchedule::empty();
        for _ in 0..steps {
            sched = mutator.mutate(&sched, 4, &mut rng);
            prop_assert!(sched.len() <= 4);
            if schedule_is_installable(&sched, 3) {
                for site in sched.lower() {
                    prop_assert!(Script::parse(&site.send).is_ok(), "{}", site.send);
                    prop_assert!(Script::parse(&site.recv).is_ok(), "{}", site.recv);
                }
            }
        }
    }

    /// Every journal round-trips through its text form value-identically —
    /// whatever mix of verdicts, shrink records, and quarantines it holds.
    #[test]
    fn journal_text_round_trips(
        raw_cases in proptest::collection::vec(
            (proptest::collection::vec(
                (0u32..3, any::<bool>(), 0u8..6, 0usize..4, 0u32..100), 0..4),
             0u8..6, any::<bool>(), 0usize..8, 0u32..4),
            0..5),
        raw_quarantines in proptest::collection::vec(
            (proptest::collection::vec(
                (0u32..3, any::<bool>(), 0u8..6, 0usize..4, 0u32..100), 1..4),
             1u32..5, 0usize..4),
            0..3),
        complete in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut journal = Journal::new(journal_meta(seed));
        for (raw, verdict_kind, with_oracle, msg_ix, cover_n) in &raw_cases {
            let schedule = schedule_from(raw);
            journal.dispatched.push(schedule.id());
            journal.cases.push(journal_case(
                schedule, *verdict_kind, *with_oracle, *msg_ix, *cover_n));
        }
        for (raw, attempts, msg_ix) in &raw_quarantines {
            let schedule = schedule_from(raw);
            journal.dispatched.push(schedule.id());
            journal.quarantined.push(JournalQuarantine {
                schedule,
                attempts: *attempts,
                error: MESSAGES[*msg_ix % MESSAGES.len()].to_string(),
            });
        }
        journal.complete = complete;
        let text = journal.to_text();
        let back = Journal::from_text(&text).unwrap();
        prop_assert_eq!(&back, &journal);
        prop_assert_eq!(back.to_text(), text);
    }

    /// Cutting a journal anywhere after its metadata never makes it
    /// unreadable: the torn tail drops at most the partial trailing record,
    /// and everything parsed is a prefix of the full journal.
    #[test]
    fn torn_journals_stay_loadable(
        raw_cases in proptest::collection::vec(
            (proptest::collection::vec(
                (0u32..3, any::<bool>(), 0u8..6, 0usize..4, 0u32..100), 0..4),
             0u8..6, any::<bool>(), 0usize..8, 0u32..4),
            1..5),
        cut_frac in 0u32..1000,
        seed in any::<u64>(),
    ) {
        let mut journal = Journal::new(journal_meta(seed));
        for (raw, verdict_kind, with_oracle, msg_ix, cover_n) in &raw_cases {
            let schedule = schedule_from(raw);
            journal.dispatched.push(schedule.id());
            journal.cases.push(journal_case(
                schedule, *verdict_kind, *with_oracle, *msg_ix, *cover_n));
        }
        journal.complete = true;
        let text = journal.to_text();
        let meta_len = Journal::new(journal_meta(seed)).to_text().len();
        let cut = meta_len + (text.len() - meta_len) * cut_frac as usize / 1000;
        let torn = Journal::from_text(&text[..cut]).unwrap();
        prop_assert_eq!(&torn.meta, &journal.meta);
        prop_assert!(torn.cases.len() <= journal.cases.len());
        prop_assert_eq!(
            &torn.cases[..],
            &journal.cases[..torn.cases.len()],
            "torn cases must be a prefix of the full journal's"
        );
        prop_assert!(!torn.complete || cut == text.len());
    }
}

const MESSAGES: [&str; 4] = [
    "leader vanished",
    "oracle gmp-agreement: views diverged",
    "panic: index out of bounds",
    "drive exhausted its 250000 simulator-event budget",
];

fn journal_meta(seed: u64) -> JournalMeta {
    JournalMeta {
        target: "gmp".to_string(),
        world_seed: seed.wrapping_mul(3),
        seed,
        budget: (seed % 100) as usize,
        max_faults: 3,
        epoch: 1 + (seed % 16) as usize,
        prefilter: seed.is_multiple_of(2),
        pruning: seed.is_multiple_of(3),
        semantic: seed.is_multiple_of(5),
        seed_corpus: seed.wrapping_mul(7),
        step_budget: seed % 5000,
        max_retries: (seed % 4) as u32,
    }
}

/// Builds one journal case from small generated integers, honouring the
/// codec's validity rules (shrink data only on violated verdicts).
fn journal_case(
    schedule: FaultSchedule,
    verdict_kind: u8,
    with_oracle: bool,
    msg_ix: usize,
    cover_n: u32,
) -> JournalCase {
    let msg = MESSAGES[msg_ix % MESSAGES.len()].to_string();
    let verdict = match verdict_kind % 6 {
        0 => Verdict::Pass,
        1 => Verdict::Degraded(msg.clone()),
        2 => Verdict::Violated(msg.clone()),
        3 => Verdict::Invalid(msg.clone()),
        4 => Verdict::Crashed(msg.clone()),
        _ => Verdict::Hung(msg.clone()),
    };
    let shrink = matches!(verdict, Verdict::Violated(_)).then(|| JournalShrink {
        shrunk: FaultSchedule {
            faults: schedule.faults.first().cloned().into_iter().collect(),
        },
        runs: schedule.len() * 2,
        message: msg_ix.is_multiple_of(2).then(|| msg.clone()),
    });
    JournalCase {
        schedule,
        verdict,
        oracle: with_oracle.then(|| "gmp-agreement".to_string()),
        coverage: (0..cover_n).map(|i| format!("gmp:n{i}:Started")).collect(),
        shrink,
    }
}

// ---------------------------------------------------------------------------
// Master-thread vs worker-thread execution equality. Exploration outcomes
// are a pure function of the campaign config; shipping candidates to fleet
// worker threads (arena worlds, Send payloads) must not perturb the digest
// for any seed. Budgets are tiny — each case runs two real explorations.

// ---------------------------------------------------------------------------
// Snapshot/fork differential. Forking a candidate run off a cached world
// snapshot (restore the longest shared schedule prefix, install only the
// suffix) must be observationally identical to replaying it cold from t=0 —
// verdict, oracle, and coverage edges — for any seed-derived mutation
// chain. The store-accounting property rides along: the base snapshot is
// captured at most once, after which every installable run forks.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn forked_runs_match_cold_replays(seed in any::<u64>(), steps in 1usize..8) {
        use pfi_testgen::{
            run_schedule_limited, run_schedule_snapshotted, GmpTarget, RunLimits, SnapshotStore,
            TestTarget,
        };

        let target = GmpTarget::default();
        let limits = RunLimits::default();
        let mutator = ScheduleMutator::new(
            &ProtocolSpec::gmp(),
            target.node_count(),
            target.fault_sites(),
        );
        let mut rng = SimRng::seed_from(seed);
        let mut store = SnapshotStore::new(8);
        let mut sched = FaultSchedule::empty();
        let mut installable = 0u64;
        for _ in 0..steps {
            sched = mutator.mutate(&sched, 3, &mut rng);
            if schedule_is_installable(&sched, target.fault_sites()) {
                installable += 1;
            }
            let forked = run_schedule_snapshotted(&target, &sched, &limits, Some(&mut store));
            let cold = run_schedule_limited(&target, &sched, &limits);
            prop_assert_eq!(&forked.verdict, &cold.verdict);
            prop_assert_eq!(&forked.oracle, &cold.oracle);
            prop_assert_eq!(
                forked.coverage.edges().collect::<Vec<_>>(),
                cold.coverage.edges().collect::<Vec<_>>()
            );
        }
        let stats = store.stats();
        prop_assert!(stats.misses <= 1, "only the first installable run may miss");
        prop_assert_eq!(
            stats.hits + stats.misses,
            installable,
            "uninstallable schedules must never touch the store"
        );
    }
}

// ---------------------------------------------------------------------------
// Semantic quotient differential. A fault the flow model proves statically
// inert must be *unobservable*: executing the schedule with the inert fault
// installed and executing its quotient (the inert fault stripped) must give
// byte-identical verdicts, oracles, and coverage edges. This is the
// soundness obligation the explorer's third prune tier rests on.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn inert_faults_are_execution_equivalent_to_their_quotient(
        seed in any::<u64>(), steps in 1usize..10,
    ) {
        use pfi_testgen::{run_schedule, FlowModel, GmpTarget, TestTarget};

        let target = GmpTarget { fault_secs: 5, ..GmpTarget::default() };
        let model = FlowModel::gmp();
        let mutator = ScheduleMutator::new(
            &ProtocolSpec::gmp(),
            target.node_count(),
            target.fault_sites(),
        );
        let mut rng = SimRng::seed_from(seed);
        let mut sched = FaultSchedule::empty();
        for _ in 0..steps {
            sched = mutator.mutate(&sched, 3, &mut rng);
            if !schedule_is_installable(&sched, target.fault_sites()) {
                continue;
            }
            let quotient = model.semantic_schedule(&sched);
            if quotient == sched.canonical() {
                continue; // nothing was stripped; nothing to differentiate
            }
            let full = run_schedule(&target, &sched);
            let stripped = run_schedule(&target, &quotient);
            prop_assert_eq!(&full.verdict, &stripped.verdict);
            prop_assert_eq!(&full.oracle, &stripped.oracle);
            prop_assert_eq!(
                full.coverage.edges().collect::<Vec<_>>(),
                stripped.coverage.edges().collect::<Vec<_>>()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn explore_digest_is_worker_thread_independent(seed in 0u64..1_000_000, jobs in 2usize..4) {
        use std::sync::Arc;
        use pfi_testgen::{explore, explore_fleet, ExploreConfig, GmpTarget, TargetFactory};

        let config = ExploreConfig {
            seed,
            budget: 8,
            epoch: 4,
            ..ExploreConfig::default()
        };
        let spec = ProtocolSpec::gmp();
        let inline = explore(&GmpTarget::default(), &spec, &config);
        let factory: Arc<dyn TargetFactory> = Arc::new(GmpTarget::default());
        let (fleet, _report) = explore_fleet(factory, &spec, &config, jobs);
        prop_assert_eq!(inline.digest64(), fleet.digest64());
    }
}
