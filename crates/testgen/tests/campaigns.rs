//! End-to-end campaigns: generated scripts actually find the paper's bugs.

use pfi_core::Direction;
use pfi_gmp::GmpBugs;
use pfi_sim::SimDuration;
use pfi_testgen::{
    generate, run_campaign, run_case, FaultKind, GmpTarget, ProtocolSpec, TcpTarget, Verdict,
};

#[test]
fn fixed_gmp_passes_the_full_drop_campaign() {
    // Every single-message-type drop, both directions, against the fixed
    // implementation: plenty of degradation, zero invariant violations.
    let campaign = generate(
        &ProtocolSpec::gmp(),
        &[FaultKind::Drop],
        &[Direction::Send, Direction::Receive],
    );
    let target = GmpTarget {
        bugs: GmpBugs::none(),
        fault_secs: 60,
    };
    let results = run_campaign(&target, &campaign);
    assert_eq!(results.len(), 16);
    let violations: Vec<_> = results
        .iter()
        .filter(|r| r.verdict.is_violation())
        .collect();
    assert!(
        violations.is_empty(),
        "fixed GMP must not violate invariants: {violations:?}"
    );
}

#[test]
fn campaign_discovers_the_self_death_bug_automatically() {
    // The same generated campaign against the buggy implementation finds
    // the self-death bug: dropping outgoing heartbeats (which includes the
    // daemon's own loopback heartbeat) trips it.
    let campaign = generate(&ProtocolSpec::gmp(), &[FaultKind::Drop], &[Direction::Send]);
    let target = GmpTarget {
        bugs: GmpBugs {
            self_death: true,
            ..GmpBugs::none()
        },
        fault_secs: 60,
    };
    let results = run_campaign(&target, &campaign);
    let heartbeat_case = results
        .iter()
        .find(|r| r.case_id == "gmp/send/drop/HEARTBEAT")
        .expect("the heartbeat case exists");
    assert!(
        heartbeat_case.verdict.is_violation(),
        "the generated heartbeat-drop case must find the bug: {heartbeat_case:?}"
    );
    // And the discovery is *selective*: dropping e.g. NAKs does not trip it.
    let nak_case = results
        .iter()
        .find(|r| r.case_id == "gmp/send/drop/NAK")
        .unwrap();
    assert!(!nak_case.verdict.is_violation(), "{nak_case:?}");
}

#[test]
fn delay_campaign_matches_the_papers_delayed_equals_dropped_observation() {
    // "Delayed heartbeats are like dropped ones": a 5-second delay (beyond
    // the 3.5-second timeout) gets the member expelled exactly like a drop
    // would. (A *constant* delay then resumes regular arrival, so the
    // member is eventually readmitted; probing mid-expulsion shows the
    // degradation.)
    let campaign = generate(
        &ProtocolSpec::gmp(),
        &[FaultKind::Delay(SimDuration::from_secs(5))],
        &[Direction::Send],
    );
    let target = GmpTarget::default();
    let hb = campaign
        .cases
        .iter()
        .find(|c| c.message_type == "HEARTBEAT")
        .unwrap();
    let result = run_case(&target, hb);
    match &result.verdict {
        Verdict::Degraded(_) => {}
        other => panic!("expected degradation from delayed heartbeats, got {other:?}"),
    }
}

#[test]
fn tcp_campaign_corruption_never_violates_integrity() {
    // Corrupting bytes in DATA/ACK segments must never corrupt the
    // delivered stream — the checksum is the invariant's enforcer.
    let campaign = generate(
        &ProtocolSpec::tcp(),
        &[
            FaultKind::CorruptByte(6),
            FaultKind::Duplicate,
            FaultKind::Drop,
        ],
        &[Direction::Receive],
    );
    let target = TcpTarget {
        fault_secs: 120,
        payload_len: 4_096,
        ..TcpTarget::default()
    };
    let results = run_campaign(&target, &campaign);
    for r in &results {
        assert!(!r.verdict.is_violation(), "integrity violated: {r:?}");
    }
    // Duplicating DATA must be fully transparent.
    let dup = results
        .iter()
        .find(|r| r.case_id == "tcp/receive/duplicate/DATA")
        .unwrap();
    assert_eq!(dup.verdict, Verdict::Pass, "{dup:?}");
    // Dropping all DATA degrades but does not violate.
    let drop = results
        .iter()
        .find(|r| r.case_id == "tcp/receive/drop/DATA")
        .unwrap();
    assert!(matches!(drop.verdict, Verdict::Degraded(_)), "{drop:?}");
}

#[test]
fn tcp_syn_drop_prevents_connection_degraded_only() {
    let campaign = generate(
        &ProtocolSpec::tcp(),
        &[FaultKind::Drop],
        &[Direction::Receive],
    );
    let syn = campaign
        .cases
        .iter()
        .find(|c| c.message_type == "SYN")
        .unwrap();
    let target = TcpTarget {
        fault_secs: 60,
        ..TcpTarget::default()
    };
    let result = run_case(&target, syn);
    assert!(
        matches!(result.verdict, Verdict::Degraded(ref m) if m.contains("never established")),
        "{result:?}"
    );
}

#[test]
fn destination_selective_drops_are_generated_and_run() {
    // The paper's partition experiments drop by destination; the generator
    // covers that dimension too.
    let campaign = generate(
        &ProtocolSpec::gmp(),
        &[FaultKind::DropToDest(0)],
        &[Direction::Send],
    );
    let hb = campaign
        .cases
        .iter()
        .find(|c| c.message_type == "HEARTBEAT")
        .unwrap();
    assert!(hb.script.contains("msg_dst"));
    let result = run_case(&GmpTarget::default(), hb);
    // Node 1 mute toward the leader only: it gets expelled (leader can't
    // hear it) but no invariant breaks.
    assert!(!result.verdict.is_violation(), "{result:?}");
}

#[test]
fn tpc_campaign_never_splits_the_decision() {
    // Every generated fault against 2PC may abort or block, never split
    // the commit/abort decision between nodes.
    let campaign = generate(
        &ProtocolSpec::two_phase_commit(),
        &FaultKind::default_matrix(),
        &[Direction::Send, Direction::Receive],
    );
    let results = run_campaign(&pfi_testgen::TpcTarget, &campaign);
    assert_eq!(results.len(), 6 * 6 * 2);
    for r in &results {
        assert!(
            !r.verdict.is_violation(),
            "decision agreement violated: {r:?}"
        );
    }
    // The blocking window is discovered by the campaign, not hand-staged:
    // at least one generated case leaves a participant blocked.
    let blocked = results
        .iter()
        .filter(|r| matches!(&r.verdict, Verdict::Degraded(m) if m.contains("blocked")))
        .count();
    assert!(blocked > 0, "some case must expose the blocking window");
}
