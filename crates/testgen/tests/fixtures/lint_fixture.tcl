# pfi-lint golden fixture: one instance of every defect class.
xDorp cur_msg
incr
if {$tcp_port > 1024} { set maybe 1 }
puts $maybe
if {0} { msg_log cur_msg }
coin 0.5
return
msg_log cur_msg
