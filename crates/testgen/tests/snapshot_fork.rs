//! Golden-digest acceptance for snapshot/fork execution: a campaign that
//! forks candidate runs from cached world snapshots must be byte-for-byte
//! indistinguishable from one that rebuilds every world from scratch —
//! same digest, same corpus order, same repro artifact bytes — at every
//! worker count, under cache pressure, and composed with journal resume.
//! Snapshots are an execution strategy, never an outcome input.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use pfi_testgen::{
    explore, explore_fleet, ExploreConfig, ExploreOutcome, FaultSchedule, GmpTarget, Journal,
    ProtocolSpec,
};

/// The seed the acceptance criteria pin (same as the CI smoke job and the
/// committed golden digest).
const SEED: u64 = 42;

fn config(snapshots: bool) -> ExploreConfig {
    ExploreConfig {
        seed: SEED,
        budget: 24,
        max_faults: 3,
        epoch: 8,
        prefilter: true,
        snapshots,
        ..ExploreConfig::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pfi_snapshot_fork_{}_{name}", std::process::id()))
}

fn corpus_ids(outcome: &ExploreOutcome) -> Vec<String> {
    outcome.corpus.iter().map(FaultSchedule::id).collect()
}

fn repro_bytes(outcome: &ExploreOutcome) -> Vec<String> {
    outcome.failures.iter().map(|f| f.repro.to_text()).collect()
}

/// The acceptance test proper: at seed 42, the snapshot-forking campaign
/// and the cold-rebuild campaign produce byte-identical outcomes at jobs
/// 1, 2, and 4 — and the forking one actually forks (nonzero hit rate,
/// nonzero prefix events skipped), so the equality is not vacuous. The
/// digest is additionally pinned to the committed golden line shared with
/// the fleet determinism suite and the CI smoke job.
#[test]
fn snapshot_and_cold_campaigns_are_byte_identical() {
    let target = Arc::new(GmpTarget::default());
    let spec = ProtocolSpec::gmp();

    for jobs in [1, 2, 4] {
        let (on, _) = explore_fleet(Arc::clone(&target) as _, &spec, &config(true), jobs);
        let (off, _) = explore_fleet(Arc::clone(&target) as _, &spec, &config(false), jobs);

        assert_eq!(on.digest(), off.digest(), "digest diverged at jobs={jobs}");
        assert_eq!(
            corpus_ids(&on),
            corpus_ids(&off),
            "corpus order diverged at jobs={jobs}"
        );
        assert_eq!(
            repro_bytes(&on),
            repro_bytes(&off),
            "repro artifact bytes diverged at jobs={jobs}"
        );
        assert_eq!(on.executed, off.executed, "executed count, jobs={jobs}");

        assert!(
            on.snapshots.hits > 0,
            "the forking campaign must reuse cached prefixes (jobs={jobs})"
        );
        assert!(
            on.snapshots.events_skipped > 0,
            "forking must skip replayed prefix events (jobs={jobs})"
        );
        assert_eq!(
            off.snapshots,
            Default::default(),
            "the cold campaign must never touch a snapshot store (jobs={jobs})"
        );

        // Pin the digest to the committed golden line so this suite fails
        // alongside the fleet determinism suite if the walk ever changes.
        let golden = include_str!("../../fleet/tests/golden_campaign_digest.txt");
        let line = format!(
            "pfi-campaign digest gmp seed={SEED} budget=24 epoch=8 {}",
            on.digest64()
        );
        assert_eq!(line, golden.trim_end(), "golden digest, jobs={jobs}");
    }
}

/// Snapshot stats are a pure function of the campaign, not of how it was
/// scheduled: the per-candidate stores make hit/miss counts identical at
/// every worker count, and an LRU squeezed to capacity 1 still reproduces
/// the same digest while actually evicting.
#[test]
fn snapshot_stats_are_worker_count_invariant_and_survive_cache_pressure() {
    let target = Arc::new(GmpTarget::default());
    let spec = ProtocolSpec::gmp();

    let (reference, _) = explore_fleet(Arc::clone(&target) as _, &spec, &config(true), 1);
    for jobs in [2, 4] {
        let (outcome, _) = explore_fleet(Arc::clone(&target) as _, &spec, &config(true), jobs);
        assert_eq!(
            outcome.snapshots, reference.snapshots,
            "snapshot stats diverged at jobs={jobs}"
        );
    }

    let mut squeezed = config(true);
    squeezed.snapshot_cache = 1;
    let (outcome, _) = explore_fleet(Arc::clone(&target) as _, &spec, &squeezed, 2);
    assert_eq!(
        outcome.digest(),
        reference.digest(),
        "cache capacity must never change the outcome"
    );
    assert!(
        outcome.snapshots.hits > 0,
        "capacity 1 still serves the hot base"
    );
}

/// Journal resume composes with snapshot forking: tear a journal written
/// by a forking campaign at 50%, resume it — with forking on and with it
/// off — and both resumed runs land on the uninterrupted digest with the
/// journaled prefix replayed, not re-executed.
#[test]
fn resume_composes_with_snapshot_fork() {
    let target = GmpTarget::default();
    let spec = ProtocolSpec::gmp();

    let full_path = tmp("full.journal");
    let mut cfg = config(true);
    cfg.journal = Some(full_path.clone());
    let uninterrupted = explore(&target, &spec, &cfg);
    assert!(uninterrupted.snapshots.hits > 0);
    let full_bytes = fs::read_to_string(&full_path).unwrap();
    let _ = fs::remove_file(&full_path);

    let torn = Journal::from_text(&full_bytes[..full_bytes.len() / 2]).unwrap();
    assert!(!torn.cases.is_empty(), "the cut must leave work to replay");

    for snapshots in [true, false] {
        let mut cfg = config(snapshots);
        cfg.resume = Some(torn.clone());
        let resumed = explore(&target, &spec, &cfg);
        assert_eq!(
            resumed.digest(),
            uninterrupted.digest(),
            "resumed digest diverged (snapshots={snapshots})"
        );
        assert_eq!(resumed.executed, uninterrupted.executed);
        assert_eq!(
            resumed.replayed,
            torn.cases.len(),
            "journaled cases must be replayed, never re-executed"
        );
    }
}
