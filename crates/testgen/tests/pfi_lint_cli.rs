//! End-to-end tests of the `pfi-lint` CLI: a golden snapshot of the
//! rendered diagnostics (byte-exact, so output format changes are a
//! deliberate golden-file update), exit codes, `--deny` promotion, and
//! the schedule / repro input modes.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixtures() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures"))
}

fn scripts() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../scripts"))
}

fn run(args: &[&str], cwd: &PathBuf) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pfi-lint"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("pfi-lint runs")
}

/// Writes `text` to a unique temp file and returns its path.
fn temp_file(name: &str, text: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("pfi_lint_{}_{name}", std::process::id()));
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn golden_diagnostic_snapshot() {
    let out = run(&["lint_fixture.tcl"], &fixtures());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let golden = include_str!("fixtures/lint_fixture.golden");
    assert_eq!(
        stdout, golden,
        "CLI output changed; if intentional, regenerate \
         crates/testgen/tests/fixtures/lint_fixture.golden by running \
         pfi-lint on the fixture from its own directory"
    );
    assert_eq!(out.status.code(), Some(1), "errors must exit nonzero");
}

#[test]
fn clean_script_exits_zero() {
    let out = run(&["drop_acks.tcl"], &scripts());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn deny_promotes_a_warning_to_a_failing_error() {
    let dir = scripts();
    let ok = run(&["probabilistic_loss.tcl"], &dir);
    assert_eq!(ok.status.code(), Some(0), "warnings alone must pass");
    let denied = run(
        &["--deny", "nondeterministic", "probabilistic_loss.tcl"],
        &dir,
    );
    assert_eq!(denied.status.code(), Some(1));
    let stdout = String::from_utf8(denied.stdout).unwrap();
    assert!(stdout.contains("error[nondeterministic]"), "{stdout}");
}

#[test]
fn schedule_text_is_validated_against_the_target() {
    let dir = fixtures();
    let bad = temp_file("bad_schedule.txt", "n9 send drop-all HEARTBEAT\n");
    let out = run(&[bad.to_str().unwrap()], &dir);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("out of range"), "{stdout}");

    let good = temp_file("good_schedule.txt", "n1 send drop-all HEARTBEAT\n");
    let out = run(&[good.to_str().unwrap()], &dir);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");

    // The same site is valid on gmp (3 sites) but not on tcp (1 site).
    let out = run(&["--target", "tcp", good.to_str().unwrap()], &dir);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn repro_artifacts_validate_their_own_target() {
    let dir = fixtures();
    let good = temp_file(
        "good.repro",
        "pfi-repro v1\ntarget gmp\nseed 4242\noracle gmp-no-self-death\n\
         message n1 declared itself dead\nfault n1 send drop-all HEARTBEAT\nend\n",
    );
    let out = run(&[good.to_str().unwrap()], &dir);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("target gmp"), "{stdout}");

    let bad = temp_file(
        "bad.repro",
        "pfi-repro v1\ntarget gmp\nseed 4242\noracle gmp-no-self-death\n\
         message n1 declared itself dead\nfault n9 send drop-all HEARTBEAT\nend\n",
    );
    let out = run(&[bad.to_str().unwrap()], &dir);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("out of range"), "{stdout}");
}

#[test]
fn unknown_category_is_a_usage_error() {
    let out = run(&["--deny", "nonsense", "drop_acks.tcl"], &scripts());
    assert_eq!(out.status.code(), Some(2));
}
