//! The in-tree script corpus must stay lint-clean: every checked-in
//! filter script and every machine-generated campaign script passes
//! `pfi-lint` with zero error-severity findings. CI runs the same check
//! through the CLI; this test pins it from inside the suite. It doubles
//! as the zero-false-positive acceptance gate: these scripts all run
//! today, so any `error` the analyzer reports against them is by
//! definition a false positive.

use pfi_core::Direction;
use pfi_lint::{Linter, Severity};
use pfi_testgen::{generate, FaultKind, ProtocolSpec};

fn assert_no_errors(linter: &Linter, name: &str, src: &str) {
    let errors: Vec<_> = linter
        .lint(src)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "{name}: error-severity lint findings on working corpus code \
         (false positives): {errors:?}"
    );
}

#[test]
fn checked_in_scripts_have_no_error_findings() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scripts");
    let linter = Linter::filter();
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("scripts/ directory") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("tcl") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        assert_no_errors(&linter, &path.display().to_string(), &src);
        seen += 1;
    }
    assert!(seen >= 5, "expected the paper's scripts, found {seen}");
}

#[test]
fn probabilistic_scripts_warn_nondeterministic_but_still_pass() {
    // The corpus deliberately contains one RNG-drawing script; the
    // determinism lint must flag it as a warning, never an error.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scripts/probabilistic_loss.tcl"
    );
    let src = std::fs::read_to_string(path).unwrap();
    let diags = Linter::filter().lint(&src);
    assert!(
        diags
            .iter()
            .any(|d| d.category == pfi_lint::Category::Nondeterministic
                && d.severity == Severity::Warning),
        "{diags:?}"
    );
    assert!(
        diags.iter().all(|d| d.severity < Severity::Error),
        "{diags:?}"
    );
}

#[test]
fn generated_grid_scripts_lint_perfectly_clean() {
    // Machine-generated scripts have no excuse for *any* finding.
    let linter = Linter::filter();
    for spec in [
        ProtocolSpec::gmp(),
        ProtocolSpec::tcp(),
        ProtocolSpec::two_phase_commit(),
    ] {
        let campaign = generate(
            &spec,
            &FaultKind::default_matrix(),
            &[Direction::Send, Direction::Receive],
        );
        assert!(!campaign.cases.is_empty());
        for case in &campaign.cases {
            let diags = linter.lint(&case.script);
            assert!(diags.is_empty(), "{}: {diags:?}", case.id);
        }
    }
}
