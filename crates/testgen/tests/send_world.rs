//! The Send boundary, compile-enforced and exercised.
//!
//! The arena-world refactor's contract: a fully-constructed simulation
//! `World` — and everything the campaign layer wraps around one — is plain
//! data that crosses fleet worker threads by *moving*, and executing a
//! case on another thread is byte-identical to executing it on the thread
//! that prepared it. The type-level half lives in `const` assertions (a
//! regression reintroducing `Rc`/`RefCell` into the world fails to
//! compile here); the behavioural half actually ships prepared cases
//! across `std::thread::spawn`.

use std::sync::Arc;

use pfi_core::Direction;
use pfi_sim::World;
use pfi_testgen::{
    generate, prepare, run_case, run_case_prepared, run_prepared, run_schedule, FaultKind,
    FaultSchedule, GmpTarget, PreparedCase, ProtocolSpec, RunLimits, SiteScripts, TestCase,
    TestTarget, Verdict,
};

const _: () = {
    const fn assert_send<T: Send>() {}
    // The world itself, and the two fleet job payload shapes built on it:
    // prepared grid cases (run_campaign_fleet) and typed fault schedules
    // (explore_fleet).
    assert_send::<World>();
    assert_send::<PreparedCase>();
    assert_send::<FaultSchedule>();
    assert_send::<(TestCase, Result<PreparedCase, Verdict>)>();
};

/// The exact placement [`run_case`] uses for a grid case — duplicated
/// here so the test can prepare the case itself and ship it.
fn placement(target: &dyn TestTarget, case: &TestCase) -> SiteScripts {
    SiteScripts {
        site: target.primary_site() as u32,
        send: match case.dir {
            Direction::Send => case.script.clone(),
            Direction::Receive => String::new(),
        },
        recv: match case.dir {
            Direction::Send => String::new(),
            Direction::Receive => case.script.clone(),
        },
    }
}

/// A schedule prepared on this thread and driven on a spawned one must
/// reproduce the inline run exactly: verdict, oracle, and coverage are
/// pure functions of the prepared world, wherever it is driven.
#[test]
fn prepared_schedule_driven_on_another_thread_matches_inline() {
    let target = GmpTarget::default();
    let schedule = FaultSchedule::from_lines(["n1 recv drop-all HEARTBEAT"]).unwrap();
    let inline = run_schedule(&target, &schedule);

    let limits = RunLimits::default();
    let scripts = schedule.lower();
    let prepared = prepare(&target, &scripts, &limits).expect("schedule installs");
    let worker_target = target.clone();
    let (verdict, oracle, coverage) =
        std::thread::spawn(move || run_prepared(&worker_target, prepared, &limits))
            .join()
            .expect("worker thread must not panic");

    assert_eq!(verdict, inline.verdict);
    assert_eq!(oracle, inline.oracle);
    assert_eq!(coverage, inline.coverage);
    assert!(
        !coverage.is_empty(),
        "the comparison must be over a run that actually covered something"
    );
}

/// The prebuilt-grid-case dispatch seam: master-side [`prepare`] plus
/// worker-side [`run_case_prepared`] on a moved world equals the
/// single-threaded [`run_case`], case for case.
#[test]
fn prebuilt_grid_cases_cross_threads_without_drifting() {
    let target = GmpTarget::default();
    let campaign = generate(
        &ProtocolSpec::gmp(),
        &FaultKind::default_matrix(),
        &[Direction::Send, Direction::Receive],
    );
    let limits = RunLimits::default();
    for case in campaign.cases.iter().take(3) {
        let inline = run_case(&target, case);
        let scripts = placement(&target, case);
        let prepared = prepare(&target, std::slice::from_ref(&scripts), &limits);
        let (worker_target, worker_case) = (target.clone(), case.clone());
        let shipped =
            std::thread::spawn(move || run_case_prepared(&worker_target, &worker_case, prepared))
                .join()
                .expect("worker thread must not panic");
        assert_eq!(shipped.verdict, inline.verdict, "{}", case.id);
        assert_eq!(shipped.oracle, inline.oracle, "{}", case.id);
        assert_eq!(shipped.coverage, inline.coverage, "{}", case.id);
    }
}

/// A world can even migrate threads *mid-campaign*: prepare on the main
/// thread, drive on a worker, and hand the factory-built target around as
/// an `Arc` — the shape `run_campaign_fleet` relies on.
#[test]
fn prepared_cases_fan_out_across_many_threads() {
    let target: Arc<GmpTarget> = Arc::new(GmpTarget::default());
    let limits = RunLimits::default();
    let schedules = [
        "n0 send delay-ms COMMIT 500",
        "n1 recv drop-all HEARTBEAT",
        "n2 recv duplicate PROCLAIM 2",
    ];
    let handles: Vec<_> = schedules
        .iter()
        .map(|line| {
            let schedule = FaultSchedule::from_lines([*line]).unwrap();
            let scripts = schedule.lower();
            let prepared = prepare(target.as_ref(), &scripts, &limits).expect("schedule installs");
            let worker_target = Arc::clone(&target);
            std::thread::spawn(move || run_prepared(worker_target.as_ref(), prepared, &limits))
        })
        .collect();
    for (line, handle) in schedules.iter().zip(handles) {
        let (verdict, _, coverage) = handle.join().expect("worker thread must not panic");
        assert!(
            !matches!(verdict, Verdict::Invalid(_) | Verdict::Crashed(_)),
            "{line}: {verdict:?}"
        );
        assert!(!coverage.is_empty(), "{line} reached no coverage");
    }
}
