//! **TCP Experiment 2 — RTO with delayed ACKs (paper Table 2 + Figure 4),
//! and the Solaris global-error-counter probe.**
//!
//! "The send script of the fault injection layer was set up to delay each
//! outgoing ACK for 30 ACKs in a row. After doing this, the receive filter
//! started dropping all incoming packets." The BSD family adapts its RTO to
//! the apparent network delay (first retransmission later than the injected
//! delay); Solaris does not (first retransmission far *below* the delay).
//!
//! The follow-up probe delays a single ACK by 35 s: Solaris's global fault
//! counter makes the connection die after only three retransmissions of
//! the *next* segment (6 of m1 + 3 of m2 = 9), revealing an implementation
//! detail that crash-only active probing cannot discover.

use std::collections::BTreeMap;

use pfi_sim::SimDuration;
use pfi_tcp::{TcpEvent, TcpProfile};

use crate::common::{intervals_secs, TcpTestbed};

/// Result row for one vendor at one ACK delay (Table 2; one Figure 4
/// series).
#[derive(Debug, Clone)]
pub struct Exp2Row {
    /// Vendor name.
    pub vendor: String,
    /// Injected ACK delay in seconds.
    pub ack_delay_secs: u64,
    /// Seconds from the last fresh transmission of the first black-holed
    /// segment to its first retransmission (the adapted RTO).
    pub first_retx_gap_secs: f64,
    /// Whether the RTO adapted to the injected delay (gap > delay).
    pub adapted: bool,
    /// The retransmission-interval series (Figure 4 data: RTO per
    /// retransmission number).
    pub series: Vec<f64>,
}

/// Runs one delay variation for one vendor.
pub fn run_delay(profile: TcpProfile, ack_delay_secs: u64) -> Exp2Row {
    let name = profile.name.to_string();
    let mut tb = TcpTestbed::new(profile);
    // Send filter: delay 30 ACKs, then tell the receive filter to black-hole.
    tb.send_script(&format!(
        r#"
        if {{[msg_type] == "ACK"}} {{
            incr acks
            if {{$acks <= 30}} {{ xDelay {} }}
            if {{$acks == 30}} {{ peer_set dropping 1 }}
        }}
    "#,
        ack_delay_secs * 1_000
    ));
    tb.recv_script(
        r#"
        msg_log cur_msg
        if {[info exists dropping]} { xDrop cur_msg }
    "#,
    );
    tb.vendor_stream(512, 80, SimDuration::from_millis(400));
    tb.world.run_for(SimDuration::from_secs(4_000));

    // The first black-holed segment: the one whose retransmissions ran to
    // exhaustion. Reconstruct per-seq series from the trace.
    let events = tb.vendor_events();
    let mut sent_at: BTreeMap<u32, pfi_sim::SimTime> = BTreeMap::new();
    let mut retx: BTreeMap<u32, Vec<pfi_sim::SimTime>> = BTreeMap::new();
    for (t, e) in &events {
        match e {
            TcpEvent::SegmentSent { seq, .. } => {
                sent_at.entry(*seq).or_insert(*t);
            }
            TcpEvent::Retransmit { seq, .. } => retx.entry(*seq).or_default().push(*t),
            _ => {}
        }
    }
    // The most-retransmitted segment is the black-holed one.
    let (&seq, times) = retx
        .iter()
        .max_by_key(|(_, v)| v.len())
        .expect("a retransmitted segment");
    let first_gap = times[0].saturating_since(sent_at[&seq]).as_secs_f64();
    let mut series = vec![first_gap];
    series.extend(intervals_secs(times));
    // Adaptation test: the timer-driven gap between the first and second
    // retransmission is the (once backed-off) RTO, independent of when the
    // segment happened to be queued. An adapted RTO exceeds the injected
    // delay; Solaris's pinned-estimator RTO stays well below it.
    let rto_gap = series.get(1).copied().unwrap_or(first_gap);
    Exp2Row {
        vendor: name,
        ack_delay_secs,
        first_retx_gap_secs: first_gap,
        adapted: rto_gap > ack_delay_secs as f64,
        series,
    }
}

/// Runs all vendors at the paper's 0/3/8-second delays (Figure 4's three
/// graphs; the 0-second baseline reuses the experiment-1 setup implicitly).
pub fn run_all() -> Vec<Exp2Row> {
    let mut rows = Vec::new();
    for delay in [0u64, 3, 8] {
        for profile in TcpProfile::vendors() {
            rows.push(run_delay(profile, delay));
        }
    }
    rows
}

/// Result of the global-error-counter probe.
#[derive(Debug, Clone)]
pub struct CounterProbe {
    /// Vendor name.
    pub vendor: String,
    /// Retransmissions of m1 (the segment whose ACK was delayed 35 s).
    pub m1_retx: usize,
    /// Retransmissions of m2 (the next segment) before the close.
    pub m2_retx: usize,
    /// Whether the connection was closed.
    pub closed: bool,
}

/// Runs the 35-second single-ACK-delay probe for one vendor.
///
/// Thirty packets pass; the next segment (m1) is ACKed with a 35 s delay;
/// everything after m1 is dropped on arrival.
pub fn run_counter_probe(profile: TcpProfile) -> CounterProbe {
    let name = profile.name.to_string();
    let mut tb = TcpTestbed::new(profile);
    tb.recv_script(
        r#"
        msg_log cur_msg
        if {[msg_type] == "DATA"} {
            incr data_in
            if {$data_in == 31} { peer_set delay_m1_ack 1 }
            if {$data_in > 31} { xDrop cur_msg }
        }
    "#,
    );
    tb.send_script(
        r#"
        if {[msg_type] == "ACK" && [info exists delay_m1_ack]} {
            unset delay_m1_ack
            xDelay 35000
        }
    "#,
    );
    // One segment at a time so segment 31 is exactly m1 and segment 32 m2.
    tb.vendor_stream(512, 40, SimDuration::from_millis(400));
    tb.world.run_for(SimDuration::from_secs(4_000));

    let events = tb.vendor_events();
    let mut retx: BTreeMap<u32, usize> = BTreeMap::new();
    for (_, e) in &events {
        if let TcpEvent::Retransmit { seq, .. } = e {
            *retx.entry(*seq).or_default() += 1;
        }
    }
    let closed = events
        .iter()
        .any(|(_, e)| matches!(e, TcpEvent::Closed { .. }));
    // m1 and m2 are the two most-retransmitted sequence numbers, in order.
    let mut hot: Vec<(u32, usize)> = retx.into_iter().filter(|(_, n)| *n > 0).collect();
    hot.sort_by_key(|(seq, _)| *seq);
    // Keep the final two (the black-holed tail).
    let tail: Vec<(u32, usize)> = hot.iter().rev().take(2).rev().copied().collect();
    let (m1_retx, m2_retx) = match tail.as_slice() {
        [(_, a), (_, b)] => (*a, *b),
        [(_, a)] => (*a, 0),
        _ => (0, 0),
    };
    CounterProbe {
        vendor: name,
        m1_retx,
        m2_retx,
        closed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsd_adapts_to_three_second_delay() {
        for profile in [
            TcpProfile::sunos_4_1_3(),
            TcpProfile::aix_3_2_3(),
            TcpProfile::next_mach(),
        ] {
            let row = run_delay(profile, 3);
            assert!(
                row.adapted,
                "{} must adapt: first retx after {:.2}s",
                row.vendor, row.first_retx_gap_secs
            );
            // Paper saw 5–8 s first retransmissions for a 3 s delay.
            assert!(
                (3.0..20.0).contains(&row.first_retx_gap_secs),
                "{}: {:.2}",
                row.vendor,
                row.first_retx_gap_secs
            );
        }
    }

    #[test]
    fn bsd_adapts_to_eight_second_delay() {
        let row = run_delay(TcpProfile::sunos_4_1_3(), 8);
        assert!(
            row.adapted,
            "first retx after {:.2}s",
            row.first_retx_gap_secs
        );
    }

    #[test]
    fn solaris_does_not_adapt() {
        for delay in [3u64, 8] {
            let row = run_delay(TcpProfile::solaris_2_3(), delay);
            assert!(
                !row.adapted,
                "Solaris must not adapt (delay {delay}s, series {:?})",
                row.series
            );
            // Its (backed-off) RTO stays far below the injected delay.
            let rto_gap = row.series[1];
            assert!(rto_gap < delay as f64 / 2.0, "{:?}", row.series);
        }
    }

    #[test]
    fn figure4_series_back_off_exponentially() {
        let row = run_delay(TcpProfile::sunos_4_1_3(), 3);
        assert!(row.series.len() >= 8, "{:?}", row.series);
        for pair in row.series.windows(2) {
            assert!(
                pair[1] >= pair[0] * 0.85,
                "series must grow: {:?}",
                row.series
            );
        }
        assert!(
            row.series.iter().any(|g| (63.0..65.0).contains(g)),
            "{:?}",
            row.series
        );
    }

    #[test]
    fn solaris_global_counter_kills_connection_early() {
        let probe = run_counter_probe(TcpProfile::solaris_2_3());
        assert!(probe.closed);
        // The paper observed exactly 6 + 3.
        assert_eq!(probe.m1_retx, 6, "{probe:?}");
        assert_eq!(probe.m2_retx, 3, "{probe:?}");
    }

    #[test]
    fn bsd_per_segment_counter_gives_m2_full_budget() {
        let probe = run_counter_probe(TcpProfile::sunos_4_1_3());
        assert!(probe.closed);
        assert_eq!(probe.m2_retx, 12, "{probe:?}");
    }
}
