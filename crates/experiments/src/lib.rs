//! # pfi-experiments — the paper's evaluation, regenerated
//!
//! One module per table/figure of Dawson & Jahanian's evaluation section,
//! each staging the experiment with PFI filter scripts on the simulated
//! testbeds and reducing the trace to the paper's reported observables.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`tcp_exp1`] | Table 1 — retransmission intervals |
//! | [`tcp_exp2`] | Table 2 + Figure 4 — RTO with delayed ACKs; global error counter |
//! | [`tcp_exp3`] | Table 3 — keep-alive |
//! | [`tcp_exp4`] | Table 4 — zero-window probes |
//! | [`tcp_exp5`] | §4.1 experiment 5 — reordering |
//! | [`gmp_exp1`] | Table 5 — packet interruption |
//! | [`gmp_exp2`] | Table 6 — network partitions |
//! | [`gmp_exp3`] | Table 7 — proclaim forwarding |
//! | [`gmp_exp4`] | Table 8 — timer test |
//! | [`identify`] | §4 aspect (iii) — vendor identification from behaviour alone |
//! | [`baseline`] | §5 comparator — Comer & Lin crash-only active probing |
//!
//! The `repro` binary prints every table; `EXPERIMENTS.md` in the
//! repository root records paper-vs-measured values.

#![warn(missing_docs)]

pub mod baseline;
pub mod common;
pub mod gmp_exp1;
pub mod gmp_exp2;
pub mod gmp_exp3;
pub mod gmp_exp4;
pub mod identify;
pub mod report;
pub mod tcp_exp1;
pub mod tcp_exp2;
pub mod tcp_exp3;
pub mod tcp_exp4;
pub mod tcp_exp5;
