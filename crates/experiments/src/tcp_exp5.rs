//! **TCP Experiment 5 — reordering of messages (paper §4.1, exp 5).**
//!
//! "The send filter of the fault injection layer was configured to send
//! two outgoing segments out of order … the first segment was delayed by
//! three seconds, and any retransmissions of the second segment were
//! dropped." All four vendors queued the out-of-order segment and, when
//! the first segment finally arrived, ACKed the data from both segments
//! with a single cumulative acknowledgement.

use pfi_sim::SimDuration;
use pfi_tcp::{TcpControl, TcpEvent, TcpProfile, TcpReply};

use crate::common::{TcpTestbed, TCP};

/// Result row for one vendor (acting as the receiver).
#[derive(Debug, Clone)]
pub struct Exp5Row {
    /// Vendor name.
    pub vendor: String,
    /// Whether the vendor queued the early out-of-order segment.
    pub queued: bool,
    /// Whether both segments were acknowledged by one cumulative ACK
    /// (rather than the second being retransmitted end-to-end).
    pub single_cumulative_ack: bool,
    /// Whether the application data arrived complete and in order.
    pub data_intact: bool,
}

/// Runs experiment 5 with the given vendor as receiver. The x-Kernel side
/// sends two segments; its send filter delays the first by 3 s and drops
/// any retransmission of the second.
pub fn run_vendor(profile: TcpProfile) -> Exp5Row {
    let name = profile.name.to_string();
    let mut tb = TcpTestbed::new(profile);
    tb.send_script(
        r#"
        if {[msg_type] == "DATA"} {
            set seq [msg_field seq]
            if {![info exists first_seq]} {
                set first_seq $seq
                xDelay 3000
            } elseif {$seq == $first_seq} {
                # retransmission of the delayed first segment: drop it so
                # the 3-second-late original is what completes the stream
                xDrop cur_msg
            } elseif {![info exists second_seq]} {
                set second_seq $seq
            } elseif {$seq == $second_seq} {
                # a retransmission of the second segment
                xDrop cur_msg
            }
        }
    "#,
    );
    // Two MSS-sized segments from the x-Kernel machine toward the vendor.
    let xc = tb.xk_conn();
    let payload: Vec<u8> = (0..1_024u32).map(|i| (i % 256) as u8).collect();
    tb.world.control::<TcpReply>(
        tb.xk,
        TCP,
        TcpControl::Send {
            conn: xc,
            data: payload.clone(),
        },
    );
    tb.world.run_for(SimDuration::from_secs(30));

    let vendor_events = tb.vendor_events();
    let queued = vendor_events
        .iter()
        .any(|(_, e)| matches!(e, TcpEvent::OutOfOrderQueued { .. }));
    // The second segment's data must have been delivered from the queue,
    // not from a retransmission (those were all dropped).
    let conn = tb.conn;
    let got = tb
        .world
        .control::<TcpReply>(tb.vendor, TCP, TcpControl::RecvTake { conn })
        .expect_data();
    let data_intact = got == payload;
    // Cumulative ACK: after the delayed first segment arrives, the very
    // next ACK the vendor sends covers both segments. Since retransmissions
    // of segment 2 never got through, intact data implies the queue+single
    // cumulative ACK did the job; double-check by counting deliveries.
    let delivered_events = vendor_events
        .iter()
        .filter(|(_, e)| matches!(e, TcpEvent::DataDelivered { .. }))
        .count();
    let single_cumulative_ack = data_intact && delivered_events == 2 && queued;
    Exp5Row {
        vendor: name,
        queued,
        single_cumulative_ack,
        data_intact,
    }
}

/// Runs experiment 5 for all four vendors.
pub fn run_all() -> Vec<Exp5Row> {
    TcpProfile::vendors().into_iter().map(run_vendor).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_vendors_queue_out_of_order_segments() {
        for row in run_all() {
            assert!(row.queued, "{} must queue the early segment", row.vendor);
            assert!(row.data_intact, "{} must deliver intact data", row.vendor);
            assert!(
                row.single_cumulative_ack,
                "{} must ack both at once",
                row.vendor
            );
        }
    }
}
