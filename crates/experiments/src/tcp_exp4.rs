//! **TCP Experiment 4 — zero-window probing (paper Table 4).**
//!
//! The x-Kernel driver stops consuming received data, so the advertised
//! window closes. All vendors back their persist probes off to a cap (60 s
//! BSD family, 56 s Solaris) and keep probing. The variations show probes
//! continue *forever* even when unACKed — through 90 minutes of dropped
//! responses and a two-day unplugged ethernet — which the paper flags as a
//! potential problem (a crashed receiver pins the sender in the probing
//! state indefinitely).

use pfi_sim::{SimDuration, SimTime};
use pfi_tcp::{TcpControl, TcpEvent, TcpProfile, TcpReply};

use crate::common::{intervals_secs, TcpTestbed, TCP};

/// Result row for one vendor and one variant.
#[derive(Debug, Clone)]
pub struct Exp4Row {
    /// Vendor name.
    pub vendor: String,
    /// Which variant ran.
    pub variant: Exp4Variant,
    /// Zero-window probes observed.
    pub probes: usize,
    /// Gaps between successive probes, in seconds.
    pub intervals: Vec<f64>,
    /// The stable (capped) probe interval, in seconds.
    pub cap_secs: f64,
    /// Whether probing was still going at the end of the observation.
    pub still_probing: bool,
    /// Whether the connection survived.
    pub still_open: bool,
}

/// The three variations of experiment 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exp4Variant {
    /// Probes are ACKed (window stays zero).
    Acked,
    /// Once the window closes, all incoming packets are dropped: probes go
    /// unACKed for 90 minutes.
    Unacked,
    /// The ethernet is unplugged for two days mid-probing, then replugged.
    Unplugged,
}

fn stage(profile: TcpProfile) -> TcpTestbed {
    let mut tb = TcpTestbed::new(profile);
    let xc = tb.xk_conn();
    // The driver does not reset the receive buffer space: the window fills.
    tb.world.control::<TcpReply>(
        tb.xk,
        TCP,
        TcpControl::SetConsume {
            conn: xc,
            on: false,
        },
    );
    tb.vendor_stream(512, 30, SimDuration::from_millis(50));
    tb
}

fn analyse(tb: &TcpTestbed, variant: Exp4Variant, observe_until: SimTime) -> Exp4Row {
    let events = tb.vendor_events();
    let times: Vec<SimTime> = events
        .iter()
        .filter(|(_, e)| matches!(e, TcpEvent::ZeroWindowProbe { .. }))
        .map(|(t, _)| *t)
        .collect();
    let intervals = intervals_secs(&times);
    let cap_secs = intervals.iter().copied().fold(0.0, f64::max);
    let last_probe = times.last().copied().unwrap_or(SimTime::ZERO);
    // "Still probing": a probe within two cap intervals of the end.
    let still_probing =
        observe_until.saturating_since(last_probe).as_secs_f64() < cap_secs * 2.0 + 1.0;
    Exp4Row {
        vendor: String::new(),
        variant,
        probes: times.len(),
        intervals,
        cap_secs,
        still_probing,
        still_open: false,
    }
}

/// Runs one variant for one vendor.
pub fn run_vendor(profile: TcpProfile, variant: Exp4Variant) -> Exp4Row {
    let name = profile.name.to_string();
    let mut tb = stage(profile);
    // Let the window close and probing reach steady state.
    tb.world.run_for(SimDuration::from_secs(400));
    match variant {
        Exp4Variant::Acked => {
            tb.world.run_for(SimDuration::from_secs(3_600));
        }
        Exp4Variant::Unacked => {
            // Receive filter drops everything: probes now go unACKed for
            // 90 minutes.
            tb.recv_script("msg_log cur_msg; xDrop cur_msg");
            tb.world.run_for(SimDuration::from_secs(90 * 60));
        }
        Exp4Variant::Unplugged => {
            let (v, x) = (tb.vendor, tb.xk);
            tb.world.network_mut().set_link_down(v, x);
            tb.world.run_for(SimDuration::from_secs(48 * 3_600));
            tb.world.network_mut().set_link_up(v, x);
            tb.world.run_for(SimDuration::from_secs(600));
        }
    }
    let end = tb.world.now();
    let mut row = analyse(&tb, variant, end);
    row.vendor = name;
    row.still_open = tb.vendor_state() == "Established";
    row
}

/// Runs the ACKed variant for all vendors (Table 4's headline numbers).
pub fn run_all() -> Vec<Exp4Row> {
    TcpProfile::vendors()
        .into_iter()
        .map(|p| run_vendor(p, Exp4Variant::Acked))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_caps_60s_bsd_56s_solaris() {
        let sun = run_vendor(TcpProfile::sunos_4_1_3(), Exp4Variant::Acked);
        assert!((59.0..61.0).contains(&sun.cap_secs), "{:?}", sun.intervals);
        assert!(sun.still_probing && sun.still_open, "{sun:?}");
        // Backoff grows up to the cap.
        assert!(
            sun.intervals.first().unwrap() < &20.0,
            "{:?}",
            sun.intervals
        );

        let sol = run_vendor(TcpProfile::solaris_2_3(), Exp4Variant::Acked);
        assert!((55.0..57.0).contains(&sol.cap_secs), "{:?}", sol.intervals);
        assert!(sol.still_probing && sol.still_open, "{sol:?}");
    }

    #[test]
    fn table4_unacked_probes_continue_90_minutes() {
        for profile in [TcpProfile::sunos_4_1_3(), TcpProfile::solaris_2_3()] {
            let row = run_vendor(profile, Exp4Variant::Unacked);
            assert!(
                row.still_probing,
                "{}: probing must never give up",
                row.vendor
            );
            assert!(
                row.still_open,
                "{}: the connection must stay up",
                row.vendor
            );
            assert!(
                row.probes > 80,
                "{}: only {} probes",
                row.vendor,
                row.probes
            );
        }
    }

    #[test]
    fn table4_probes_survive_two_day_unplug() {
        let row = run_vendor(TcpProfile::aix_3_2_3(), Exp4Variant::Unplugged);
        assert!(row.still_probing, "{row:?}");
        assert!(row.still_open, "{row:?}");
        // Two days of probes at the 60 s cap is ~2880 probes.
        assert!(row.probes > 2_000, "{row:?}");
    }
}
