//! **GMP Experiment 3 — proclaim forwarding (paper Table 7).**
//!
//! A newcomer's send filter drops `PROCLAIM`s addressed to the group
//! leader, so only the crown prince receives them and must forward them.
//! The buggy leader replies to the *forwarder* instead of the originator:
//! the reply is itself a proclaim, which the forwarder dutifully forwards
//! back to the leader — a vicious proclaim cycle, while the newcomer never
//! hears an answer. The fixed leader replies to the originator and the
//! newcomer joins.

use pfi_gmp::{GmpBugs, GmpEvent};
use pfi_sim::SimDuration;

use crate::common::GmpTestbed;

/// Result of the proclaim-forwarding test.
#[derive(Debug, Clone)]
pub struct Exp3Row {
    /// Whether the bug was injected.
    pub buggy: bool,
    /// Forwards from the crown prince to the leader.
    pub forwards: usize,
    /// Leader answers addressed to the crown prince (loop traffic).
    pub answers_to_forwarder: usize,
    /// Leader answers addressed to the newcomer.
    pub answers_to_originator: usize,
    /// Whether the newcomer made it into the group.
    pub newcomer_admitted: bool,
}

/// Runs the test with or without the forwarding bug.
pub fn run(buggy: bool) -> Exp3Row {
    let bugs = if buggy {
        GmpBugs {
            proclaim_forward: true,
            ..GmpBugs::none()
        }
    } else {
        GmpBugs::none()
    };
    let mut tb = GmpTestbed::new(3, bugs);
    // Nodes 0 (leader) and 1 (crown prince) form a group.
    tb.start(tb.peers[0]);
    tb.start(tb.peers[1]);
    tb.run(SimDuration::from_secs(30));
    // The newcomer's proclaims to the leader are dropped at the sender.
    tb.send_script(
        tb.peers[2],
        r#"if {[msg_type] == "PROCLAIM" && [msg_dst] == 0} { xDrop }"#,
    );
    tb.start(tb.peers[2]);
    tb.run(SimDuration::from_secs(30));

    let cp = tb.peers[1].as_u32();
    let newcomer = tb.peers[2].as_u32();
    let mut forwards = 0;
    let mut answers_to_forwarder = 0;
    let mut answers_to_originator = 0;
    tb.world.trace().for_each(|r| {
        // Only traffic after the newcomer appears is part of the test (the
        // initial group formation also answers proclaims).
        if r.time.as_secs_f64() <= 30.0 {
            return;
        }
        if let Some(e) = r.event.as_ref().as_any().downcast_ref::<GmpEvent>() {
            match e {
                GmpEvent::ProclaimForwarded { .. } if r.node == tb.peers[1] => forwards += 1,
                GmpEvent::ProclaimAnswered { to, .. } if r.node == tb.peers[0] => {
                    if *to == cp {
                        answers_to_forwarder += 1;
                    } else if *to == newcomer {
                        answers_to_originator += 1;
                    }
                }
                _ => {}
            }
        }
    });
    let newcomer_admitted = tb.members(tb.peers[0]).contains(&newcomer);
    Exp3Row {
        buggy,
        forwards,
        answers_to_forwarder,
        answers_to_originator,
        newcomer_admitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_bug_causes_proclaim_loop_and_starves_the_originator() {
        let row = run(true);
        assert!(
            row.answers_to_forwarder > 5,
            "vicious cycle expected: {row:?}"
        );
        assert!(row.forwards > 5, "{row:?}");
        // "The original sender of the proclaim never received a proclaim in
        // response" — the serious problem the paper reports. (The newcomer
        // may still sneak in later through the leader's own discovery
        // proclaims; the broken *response* path is the finding.)
        assert_eq!(row.answers_to_originator, 0, "{row:?}");
    }

    #[test]
    fn table7_fix_admits_the_newcomer() {
        let row = run(false);
        assert!(row.newcomer_admitted, "{row:?}");
        assert_eq!(row.answers_to_forwarder, 0, "{row:?}");
        assert!(row.answers_to_originator >= 1, "{row:?}");
    }
}
