//! Vendor identification by probing — the paper's third demonstrated
//! aspect, "insight into design decisions made by the implementors",
//! turned into a classifier.
//!
//! The evaluation showed each vendor stack leaves a distinctive external
//! fingerprint. This module probes an *unknown* implementation with the
//! paper's experiments and identifies it purely from observable behaviour:
//! no source, no version strings, just packets.

use pfi_tcp::TcpProfile;

use crate::{tcp_exp1, tcp_exp3};

/// Externally observable fingerprint of a TCP implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    /// Data retransmissions before the connection is abandoned.
    pub data_retransmissions: usize,
    /// Whether a RST is sent when giving up.
    pub reset_on_timeout: bool,
    /// Idle seconds before the first keep-alive probe.
    pub keepalive_threshold_secs: f64,
    /// Garbage bytes carried by keep-alive probes.
    pub keepalive_garbage_bytes: usize,
    /// Whether keep-alive retransmissions back off exponentially (vs a
    /// fixed interval).
    pub keepalive_backoff: bool,
}

/// Probes an implementation (handed over as a black box) and extracts its
/// fingerprint by running the retransmission and keep-alive experiments.
pub fn fingerprint(profile: TcpProfile) -> Fingerprint {
    let exp1 = tcp_exp1::run_vendor(profile.clone());
    let exp3 = tcp_exp3::run_vendor(profile);
    // Fixed-interval probes have (nearly) equal gaps; exponential ones
    // at least double.
    let keepalive_backoff = exp3.probe_intervals.windows(2).any(|p| p[1] > p[0] * 1.5);
    Fingerprint {
        data_retransmissions: exp1.retransmissions,
        reset_on_timeout: exp1.reset_sent,
        keepalive_threshold_secs: exp3.first_probe_secs,
        keepalive_garbage_bytes: exp3.garbage_bytes,
        keepalive_backoff,
    }
}

/// Classifies a fingerprint against the four 1995 vendors.
///
/// Returns `"unknown"` when nothing matches — e.g. for a stack with
/// non-1995 parameters.
pub fn classify(fp: &Fingerprint) -> &'static str {
    if !fp.reset_on_timeout
        && fp.keepalive_backoff
        && fp.keepalive_threshold_secs < 7_000.0
        && fp.data_retransmissions < 12
    {
        return "Solaris 2.3";
    }
    if fp.reset_on_timeout && fp.data_retransmissions == 12 && !fp.keepalive_backoff {
        return match fp.keepalive_garbage_bytes {
            1 => "SunOS 4.1.3",
            // AIX and NeXT are externally indistinguishable in the paper's
            // tables ("same as SunOS" minus the garbage byte).
            0 => "AIX 3.2.3 / NeXT Mach",
            _ => "unknown",
        };
    }
    "unknown"
}

/// Result row for the identification experiment.
#[derive(Debug, Clone)]
pub struct IdentifyRow {
    /// The ground-truth vendor.
    pub actual: String,
    /// The classifier's verdict.
    pub identified: &'static str,
    /// Whether the verdict covers the ground truth.
    pub correct: bool,
    /// The extracted fingerprint.
    pub fingerprint: Fingerprint,
}

/// Probes and classifies all four vendors.
pub fn run_all() -> Vec<IdentifyRow> {
    TcpProfile::vendors()
        .into_iter()
        .map(|p| {
            let actual = p.name.to_string();
            let fp = fingerprint(p);
            let identified = classify(&fp);
            let correct = identified.contains(actual.split(' ').next().unwrap_or(""));
            IdentifyRow {
                actual,
                identified,
                correct,
                fingerprint: fp,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_vendors_are_identified_from_behaviour_alone() {
        for row in run_all() {
            assert!(
                row.correct,
                "{} misidentified as {} — fingerprint {:?}",
                row.actual, row.identified, row.fingerprint
            );
        }
    }

    #[test]
    fn aix_and_next_collapse_to_the_same_class() {
        let a = fingerprint(TcpProfile::aix_3_2_3());
        let n = fingerprint(TcpProfile::next_mach());
        assert_eq!(classify(&a), classify(&n));
        assert_eq!(classify(&a), "AIX 3.2.3 / NeXT Mach");
    }

    #[test]
    fn an_unseen_configuration_is_not_misattributed() {
        // A Tahoe-flavoured stack with modern-ish parameters should not be
        // claimed as one of the 1995 four.
        let mut profile = TcpProfile::tahoe();
        profile.max_data_retx = 15;
        let fp = fingerprint(profile);
        assert_eq!(classify(&fp), "unknown", "{fp:?}");
    }
}
