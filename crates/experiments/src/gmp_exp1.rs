//! **GMP Experiment 1 — packet interruption (paper Table 5).**
//!
//! Four sub-experiments on a three-daemon group, all driven by send/receive
//! filter scripts:
//!
//! 1. drop a daemon's heartbeats *to itself* (and equivalently, suspend
//!    the daemon with `SIGTSTP`) — uncovers the self-death bug;
//! 2. drop a daemon's heartbeats *to the others* — it is kicked out,
//!    rejoins, and is kicked again, cyclically (behaved as specified);
//! 3. drop the `ACK`s of `MEMBERSHIP_CHANGE` from one machine at the
//!    leader — that machine is never admitted to any group;
//! 4. drop `COMMIT`s at one machine — it stays `IN_TRANSITION`, everyone
//!    else commits it into the view, then kicks it for not heartbeating.

use pfi_gmp::{GmpBugs, GmpEvent, GmpStatus};
use pfi_sim::SimDuration;

use crate::common::GmpTestbed;

/// Result of the self-heartbeat-drop sub-experiment.
#[derive(Debug, Clone)]
pub struct SelfHeartbeatRow {
    /// Whether the bugs were injected.
    pub buggy: bool,
    /// Whether the daemon declared itself dead (the bug's signature).
    pub declared_self_dead: bool,
    /// Whether it correctly fell back to a singleton group.
    pub formed_singleton: bool,
    /// Whether the broken forwarding path swallowed a proclaim.
    pub proclaim_lost_in_forwarding: bool,
    /// The others' final view still contains the victim.
    pub victim_still_in_others_view: bool,
}

/// Filter dropping heartbeats whose destination is the filtering node
/// itself (the paper's first Table 5 row).
const DROP_SELF_HB: &str = r#"
    if {[msg_type] == "HEARTBEAT" && [msg_dst] == [node_id]} { xDrop }
"#;

/// Runs the self-heartbeat-drop test with or without the bugs.
pub fn run_self_heartbeat(buggy: bool) -> SelfHeartbeatRow {
    let bugs = if buggy {
        GmpBugs {
            self_death: true,
            ..GmpBugs::none()
        }
    } else {
        GmpBugs::none()
    };
    let mut tb = GmpTestbed::new(3, bugs);
    tb.start_all();
    tb.run(SimDuration::from_secs(60));
    let victim = tb.peers[1];
    tb.send_script(victim, DROP_SELF_HB);
    tb.run(SimDuration::from_secs(40));
    // A fourth party proclaim tests the (possibly broken) forwarding path:
    // node 2, if it ends up outside the victim's group, will proclaim at it.
    // Simpler and deterministic: inject a forged proclaim at the victim.
    let evs = tb.world.trace().events_of::<GmpEvent>(Some(victim));
    let declared_self_dead = evs
        .iter()
        .any(|(_, e)| matches!(e, GmpEvent::SelfDeclaredDead));
    let formed_singleton = evs
        .iter()
        .any(|(t, e)| matches!(e, GmpEvent::FormedSingleton) && t.as_secs_f64() > 60.0);
    let proclaim_lost_in_forwarding = evs
        .iter()
        .any(|(_, e)| matches!(e, GmpEvent::ProclaimForwardDroppedByBug));
    let leader_view = tb.members(tb.peers[0]);
    SelfHeartbeatRow {
        buggy,
        declared_self_dead,
        formed_singleton,
        proclaim_lost_in_forwarding,
        victim_still_in_others_view: leader_view.contains(&victim.as_u32()),
    }
}

/// Runs the `SIGTSTP` variant: suspend the daemon 30 s, then resume; all
/// its timers fire at once on resume, triggering the same path.
pub fn run_suspend(buggy: bool) -> SelfHeartbeatRow {
    let bugs = if buggy {
        GmpBugs {
            self_death: true,
            ..GmpBugs::none()
        }
    } else {
        GmpBugs::none()
    };
    let mut tb = GmpTestbed::new(3, bugs);
    tb.start_all();
    tb.run(SimDuration::from_secs(60));
    let victim = tb.peers[1];
    tb.world.suspend(victim);
    tb.run(SimDuration::from_secs(30));
    tb.world.resume(victim);
    tb.run(SimDuration::from_secs(40));
    let evs = tb.world.trace().events_of::<GmpEvent>(Some(victim));
    let declared_self_dead = evs
        .iter()
        .any(|(_, e)| matches!(e, GmpEvent::SelfDeclaredDead));
    let formed_singleton = evs
        .iter()
        .any(|(t, e)| matches!(e, GmpEvent::FormedSingleton) && t.as_secs_f64() > 60.0);
    let proclaim_lost_in_forwarding = evs
        .iter()
        .any(|(_, e)| matches!(e, GmpEvent::ProclaimForwardDroppedByBug));
    let leader_view = tb.members(tb.peers[0]);
    SelfHeartbeatRow {
        buggy,
        declared_self_dead,
        formed_singleton,
        proclaim_lost_in_forwarding,
        victim_still_in_others_view: leader_view.contains(&victim.as_u32()),
    }
}

/// Result of the drop-heartbeats-to-others sub-experiment.
#[derive(Debug, Clone)]
pub struct KickCycleRow {
    /// Times the victim was kicked out of the group.
    pub kicked_out: usize,
    /// Times the victim was re-admitted after a kick.
    pub readmitted: usize,
}

/// Runs the oscillating drop-to-others test: 15 s dropping, 15 s passing.
pub fn run_kick_cycle() -> KickCycleRow {
    let mut tb = GmpTestbed::new(3, GmpBugs::none());
    tb.start_all();
    tb.run(SimDuration::from_secs(60));
    let victim = tb.peers[1];
    // Oscillate by virtual time: odd 15-second windows drop heartbeats to
    // *other* machines only.
    tb.send_script(
        victim,
        r#"
        if {[msg_type] == "HEARTBEAT" && [msg_dst] != [node_id]} {
            set phase [expr {([now_ms] / 15000) % 2}]
            if {$phase == 1} { xDrop }
        }
    "#,
    );
    tb.run(SimDuration::from_secs(180));
    // Count transitions of the leader's view: excluding then re-including
    // the victim.
    let leader = tb.peers[0];
    let views = tb.world.trace().events_of::<GmpEvent>(Some(leader));
    let mut kicked = 0;
    let mut readmitted = 0;
    let mut inside = true;
    for (_, e) in views {
        if let GmpEvent::GroupView { members, .. } = e {
            let has = members.contains(&victim.as_u32());
            if inside && !has {
                kicked += 1;
            }
            if !inside && has {
                readmitted += 1;
            }
            inside = has;
        }
    }
    KickCycleRow {
        kicked_out: kicked,
        readmitted,
    }
}

/// Result of the drop-ACK sub-experiment.
#[derive(Debug, Clone)]
pub struct DropAckRow {
    /// Whether the victim ever appeared in a committed view of the others.
    pub ever_admitted: bool,
    /// How many times the victim gave up waiting for a `COMMIT`.
    pub commit_timeouts: usize,
    /// The stable group of the two original machines.
    pub core_group: Vec<u32>,
}

/// Runs the drop-`ACK`s-of-`MEMBERSHIP_CHANGE` test: the leader's receive
/// filter drops `ACK`s from the newcomer, so the newcomer is never
/// committed into a group.
pub fn run_drop_ack() -> DropAckRow {
    let mut tb = GmpTestbed::new(3, GmpBugs::none());
    // Start the two originals, let them form a group.
    tb.start(tb.peers[0]);
    tb.start(tb.peers[1]);
    tb.run(SimDuration::from_secs(30));
    // The leader drops MC-ACKs from the newcomer (node 2).
    tb.recv_script(
        tb.peers[0],
        r#"
        if {[msg_type] == "ACK" && [msg_field sender] == 2} { xDrop }
    "#,
    );
    tb.start(tb.peers[2]);
    tb.run(SimDuration::from_secs(120));
    let newcomer = tb.peers[2].as_u32();
    let mut ever_admitted = false;
    for p in [tb.peers[0], tb.peers[1]] {
        for (_, e) in tb.world.trace().events_of::<GmpEvent>(Some(p)) {
            if let GmpEvent::GroupView { members, .. } = e {
                if members.contains(&newcomer) {
                    ever_admitted = true;
                }
            }
        }
    }
    let commit_timeouts = tb
        .world
        .trace()
        .events_of::<GmpEvent>(Some(tb.peers[2]))
        .iter()
        .filter(|(_, e)| matches!(e, GmpEvent::CommitTimedOut))
        .count();
    let core_group = tb.members(tb.peers[0]);
    DropAckRow {
        ever_admitted,
        commit_timeouts,
        core_group,
    }
}

/// Result of the drop-COMMIT sub-experiment.
#[derive(Debug, Clone)]
pub struct DropCommitRow {
    /// Whether the victim was (transiently) committed into the others'
    /// view.
    pub transiently_admitted: bool,
    /// Whether the others then kicked the silent victim out again.
    pub kicked_after_admission: bool,
    /// Whether the victim was observed parked in `IN_TRANSITION`.
    pub stuck_in_transition: bool,
    /// How many times the victim gave up waiting for a `COMMIT`.
    pub commit_timeouts: usize,
}

/// Runs the drop-`COMMIT` test: the newcomer ACKs changes but never sees
/// the commit, so everyone else briefly counts it as a member until its
/// missing heartbeats get it expelled.
pub fn run_drop_commit() -> DropCommitRow {
    let mut tb = GmpTestbed::new(3, GmpBugs::none());
    tb.start(tb.peers[0]);
    tb.start(tb.peers[1]);
    tb.run(SimDuration::from_secs(30));
    let victim = tb.peers[2];
    tb.recv_script(victim, r#"if {[msg_type] == "COMMIT"} { xDrop }"#);
    tb.start(victim);
    // Probe the victim's status while it should be in transition (it acks
    // the MEMBERSHIP_CHANGE within ~0.3 s and gives up on the COMMIT only
    // after the 6 s commit timeout).
    tb.run(SimDuration::from_secs(3));
    let mid_status = tb.view(victim).status;
    tb.run(SimDuration::from_secs(120));
    let victim_id = victim.as_u32();
    let mut transiently_admitted = false;
    let mut kicked_after_admission = false;
    let mut admitted = false;
    for (_, e) in tb.world.trace().events_of::<GmpEvent>(Some(tb.peers[0])) {
        if let GmpEvent::GroupView { members, .. } = e {
            let has = members.contains(&victim_id);
            if has {
                transiently_admitted = true;
                admitted = true;
            }
            if admitted && !has {
                kicked_after_admission = true;
            }
        }
    }
    let commit_timeouts = tb
        .world
        .trace()
        .events_of::<GmpEvent>(Some(victim))
        .iter()
        .filter(|(_, e)| matches!(e, GmpEvent::CommitTimedOut))
        .count();
    DropCommitRow {
        transiently_admitted,
        kicked_after_admission,
        stuck_in_transition: mid_status == GmpStatus::InTransition,
        commit_timeouts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_self_heartbeat_bug_and_fix() {
        let buggy = run_self_heartbeat(true);
        assert!(buggy.declared_self_dead, "{buggy:?}");
        assert!(
            !buggy.formed_singleton,
            "the bug keeps the old group: {buggy:?}"
        );
        let fixed = run_self_heartbeat(false);
        assert!(!fixed.declared_self_dead, "{fixed:?}");
        assert!(fixed.formed_singleton, "{fixed:?}");
    }

    #[test]
    fn table5_suspend_resume_triggers_same_bug() {
        let buggy = run_suspend(true);
        assert!(buggy.declared_self_dead, "{buggy:?}");
        assert!(!buggy.formed_singleton, "{buggy:?}");
        let fixed = run_suspend(false);
        assert!(!fixed.declared_self_dead, "{fixed:?}");
    }

    #[test]
    fn table5_kick_and_readmit_cycle() {
        let row = run_kick_cycle();
        assert!(row.kicked_out >= 2, "{row:?}");
        assert!(row.readmitted >= 1, "{row:?}");
    }

    #[test]
    fn table5_dropped_acks_block_admission() {
        let row = run_drop_ack();
        assert!(!row.ever_admitted, "{row:?}");
        assert!(
            row.commit_timeouts >= 2,
            "the newcomer keeps retrying: {row:?}"
        );
        assert_eq!(row.core_group, vec![0, 1], "{row:?}");
    }

    #[test]
    fn table5_dropped_commits_leave_victim_in_transition() {
        let row = run_drop_commit();
        assert!(row.stuck_in_transition, "{row:?}");
        assert!(row.transiently_admitted, "{row:?}");
        assert!(row.kicked_after_admission, "{row:?}");
        assert!(row.commit_timeouts >= 1, "{row:?}");
    }
}
