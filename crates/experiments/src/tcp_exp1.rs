//! **TCP Experiment 1 — retransmission intervals (paper Table 1).**
//!
//! "The receive filter script of the PFI layer was configured such that
//! after allowing thirty packets through without dropping or delaying
//! their ACKs, all incoming packets were dropped … each packet was logged
//! with a timestamp by the receive filter script before it was dropped."
//!
//! Paper findings: SunOS/AIX/NeXT retransmit the segment 12 times with
//! exponentially increasing timeouts capped at 64 s, then send a RST and
//! close; Solaris retransmits 9 times from a ~330 ms floor and closes
//! abruptly without a reset.

use pfi_sim::SimDuration;
use pfi_tcp::{CloseReason, TcpEvent, TcpProfile};

use crate::common::{intervals_secs, is_exponential_backoff, TcpTestbed};

/// Result row for one vendor.
#[derive(Debug, Clone)]
pub struct Exp1Row {
    /// Vendor name.
    pub vendor: String,
    /// Number of retransmissions of the black-holed segment.
    pub retransmissions: usize,
    /// Gaps between consecutive retransmissions, in seconds.
    pub intervals: Vec<f64>,
    /// The largest stable retransmission interval (the RTO upper bound).
    pub rto_upper_bound_secs: f64,
    /// Whether the timeouts grew exponentially until the cap.
    pub exponential_backoff: bool,
    /// Whether a RST was sent when the connection was abandoned.
    pub reset_sent: bool,
    /// Whether the connection was closed with a timeout.
    pub timed_out: bool,
}

/// The paper's receive filter: log everything, pass 30 packets, then drop.
pub const RECV_FILTER: &str = r#"
    msg_log cur_msg
    incr count
    if {$count > 30} { xDrop cur_msg }
"#;

/// Runs experiment 1 for one vendor profile.
pub fn run_vendor(profile: TcpProfile) -> Exp1Row {
    let name = profile.name.to_string();
    let mut tb = TcpTestbed::new(profile);
    tb.recv_script(RECV_FILTER);
    // Driver workload: a steady stream from the vendor machine.
    tb.vendor_stream(512, 60, SimDuration::from_millis(100));
    tb.world.run_for(SimDuration::from_secs(3_000));

    let retx_times = tb.vendor_retransmit_times();
    let intervals = intervals_secs(&retx_times);
    let events = tb.vendor_events();
    let reset_sent = events
        .iter()
        .any(|(_, e)| matches!(e, TcpEvent::Reset { sent: true, .. }));
    let timed_out = events.iter().any(|(_, e)| {
        matches!(
            e,
            TcpEvent::Closed {
                reason: CloseReason::Timeout,
                ..
            }
        )
    });
    let rto_upper_bound_secs = intervals.iter().copied().fold(0.0, f64::max);
    Exp1Row {
        vendor: name,
        retransmissions: retx_times.len(),
        exponential_backoff: is_exponential_backoff(&intervals),
        intervals,
        rto_upper_bound_secs,
        reset_sent,
        timed_out,
    }
}

/// Runs experiment 1 for all four vendors (Table 1).
pub fn run_all() -> Vec<Exp1Row> {
    TcpProfile::vendors().into_iter().map(run_vendor).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_bsd_family() {
        for profile in [
            TcpProfile::sunos_4_1_3(),
            TcpProfile::aix_3_2_3(),
            TcpProfile::next_mach(),
        ] {
            let row = run_vendor(profile);
            assert_eq!(
                row.retransmissions, 12,
                "{}: {:?}",
                row.vendor, row.intervals
            );
            assert!(
                row.exponential_backoff,
                "{}: {:?}",
                row.vendor, row.intervals
            );
            assert!(
                (row.rto_upper_bound_secs - 64.0).abs() < 1.0,
                "{}: upper bound {}",
                row.vendor,
                row.rto_upper_bound_secs
            );
            assert!(row.reset_sent, "{} must send a RST", row.vendor);
            assert!(row.timed_out);
        }
    }

    #[test]
    fn table1_solaris() {
        let row = run_vendor(TcpProfile::solaris_2_3());
        assert_eq!(row.retransmissions, 9, "{:?}", row.intervals);
        assert!(!row.reset_sent, "Solaris closes without a reset");
        assert!(row.timed_out);
        assert!(row.exponential_backoff, "{:?}", row.intervals);
        // Exponential backoff from the very short 330 ms floor: the first
        // interval is sub-second…
        assert!(row.intervals[0] < 1.0, "{:?}", row.intervals);
        // …and the connection dies before *stabilising* at an upper bound:
        // never two consecutive intervals pinned at the 64 s cap.
        let stable_at_cap = row
            .intervals
            .windows(2)
            .any(|p| (p[0] - 64.0).abs() < 0.5 && (p[1] - 64.0).abs() < 0.5);
        assert!(
            !stable_at_cap,
            "Solaris must not stabilise at a cap: {:?}",
            row.intervals
        );
    }
}
