//! **Baseline: active probing à la Comer & Lin (paper §5, related work).**
//!
//! The paper's main comparator treats a TCP "as a black box" probed with
//! *crash failures only*, observed by a passive network analyzer
//! (NetMetrix). We implement that technique — crash the peer, watch the
//! wire — and reproduce what it *can* do (Table 1's retransmission counts,
//! which the paper notes duplicates Comer & Lin's result) and demonstrate
//! what it *cannot*: distinguishing RTO adaptability requires manipulating
//! ACK timing, which a monitor-only technique has no way to do.

use std::collections::BTreeMap;

use pfi_sim::{SimDuration, SimTime, World};
use pfi_tcp::{Segment, TcpControl, TcpLayer, TcpProfile, TcpReply};

use crate::common::intervals_secs;

/// Result of a crash-failure active probe, measured purely from the wire.
#[derive(Debug, Clone)]
pub struct CrashProbeRow {
    /// Vendor name.
    pub vendor: String,
    /// Retransmissions of the black-holed segment, counted by a passive
    /// wire monitor (repeated transmissions of the same sequence number).
    pub retransmissions: usize,
    /// Gaps between the repeated transmissions, in seconds.
    pub intervals: Vec<f64>,
    /// Whether a RST was observed on the wire at the end.
    pub reset_observed: bool,
}

/// Wire-level observation of one vendor: open a connection, stream data,
/// crash the receiver (the only fault active probing can induce), and
/// passively record every packet the vendor puts on the wire through a
/// `WireTap` — our NetMetrix.
pub fn run_crash_probe(profile: TcpProfile) -> CrashProbeRow {
    run_crash_probe_with_tap_profile(profile)
}

/// A passive wire tap: a pass-through layer that records every segment it
/// carries. It has no ability to drop, delay, duplicate, modify, or inject
/// — the structural limitation of monitoring-based approaches.
/// (`Arc<Mutex<…>>` because layers must be `Send`; the harness reads the
/// capture back out after the run.)
#[derive(Debug, Default)]
struct WireTap {
    captured: std::sync::Arc<std::sync::Mutex<Vec<(SimTime, Segment)>>>,
}

impl pfi_sim::Layer for WireTap {
    fn name(&self) -> &'static str {
        "tap"
    }
    fn push(&mut self, msg: pfi_sim::Message, ctx: &mut pfi_sim::Context<'_>) {
        if let Ok(seg) = Segment::decode(&msg) {
            self.captured.lock().unwrap().push((ctx.now(), seg));
        }
        ctx.send_down(msg);
    }
    fn pop(&mut self, msg: pfi_sim::Message, ctx: &mut pfi_sim::Context<'_>) {
        ctx.send_up(msg);
    }
}

/// The technique gap the paper claims: under crash-only probing, an
/// RTT-adaptive stack and an identical-but-non-adaptive stack leave
/// indistinguishable wire traces (on a fast LAN both sit at the RTO floor),
/// while PFI's delayed-ACK experiment separates them immediately.
///
/// Returns `(passive_distinguishes, pfi_distinguishes)`.
pub fn adaptability_distinguishability() -> (bool, bool) {
    let adaptive = TcpProfile::sunos_4_1_3();
    let non_adaptive = TcpProfile {
        rtt_adaptive: false,
        ..TcpProfile::sunos_4_1_3()
    };

    // Passive crash probe on both: compare the retransmission interval
    // series (what a wire monitor can measure).
    let a = run_crash_probe(adaptive.clone());
    let b = {
        // run_crash_probe resolves by name; run the non-adaptive variant
        // through the tap directly.
        let mut row = run_crash_probe_with_tap_profile(non_adaptive.clone());
        row.vendor = "SunOS (non-adaptive variant)".to_string();
        row
    };
    let quantise =
        |v: &[f64]| -> Vec<i64> { v.iter().map(|x| (x * 10.0).round() as i64).collect() };
    let passive_distinguishes = quantise(&a.intervals) != quantise(&b.intervals);

    // PFI's experiment 2 on both: the adapted first-retransmission gap.
    let pa = crate::tcp_exp2::run_delay(adaptive, 3);
    let pb = crate::tcp_exp2::run_delay(non_adaptive, 3);
    let pfi_distinguishes = pa.adapted != pb.adapted;
    (passive_distinguishes, pfi_distinguishes)
}

fn run_crash_probe_with_tap_profile(profile: TcpProfile) -> CrashProbeRow {
    let name = profile.name.to_string();
    let mut world = World::new(1995);
    let captured = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let vendor = world.add_node(vec![
        Box::new(TcpLayer::new(profile)),
        Box::new(WireTap {
            captured: captured.clone(),
        }),
    ]);
    let peer = world.add_node(vec![Box::new(TcpLayer::new(TcpProfile::rfc_reference()))]);
    world.control::<TcpReply>(peer, 0, TcpControl::Listen { port: 80 });
    let conn = world
        .control::<TcpReply>(
            vendor,
            0,
            TcpControl::Open {
                local_port: 0,
                remote: peer,
                remote_port: 80,
            },
        )
        .expect_conn();
    world.run_for(SimDuration::from_millis(50));
    for i in 0..40u32 {
        let at = SimDuration::from_millis(100 * i as u64);
        world.schedule_in(at, move |w| {
            w.control::<TcpReply>(
                vendor,
                0,
                TcpControl::Send {
                    conn,
                    data: vec![7u8; 512],
                },
            );
        });
    }
    world.schedule_in(SimDuration::from_secs(3), move |w| w.crash(peer));
    world.run_for(SimDuration::from_secs(3_000));
    let captured = captured.lock().unwrap();
    let mut tx_times: BTreeMap<u32, Vec<SimTime>> = BTreeMap::new();
    let mut reset_observed = false;
    for (t, seg) in captured.iter() {
        if seg.has(pfi_tcp::flags::RST) {
            reset_observed = true;
        }
        if !seg.payload.is_empty() {
            tx_times.entry(seg.seq).or_default().push(*t);
        }
    }
    let times = tx_times
        .values()
        .max_by_key(|v| v.len())
        .cloned()
        .unwrap_or_default();
    CrashProbeRow {
        vendor: name,
        retransmissions: times.len().saturating_sub(1),
        intervals: intervals_secs(&times),
        reset_observed,
    }
}

/// Runs the crash probe for all four vendors.
pub fn run_all() -> Vec<CrashProbeRow> {
    TcpProfile::vendors()
        .into_iter()
        .map(run_crash_probe)
        .collect()
}

/// Something a monitor cannot ever express: `NetTrace` events record what
/// crossed the wire, never offering a verdict hook. This function exists to
/// document the structural limitation in one sentence for the `repro`
/// output.
pub fn monitoring_limitation() -> &'static str {
    "a passive monitor can count and time packets, but cannot delay a \
     specific ACK, reorder two segments, or inject a probe — the paper's \
     experiments 2, 4 (variations), and 5 are out of its reach"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_probe_duplicates_comer_lin_counts() {
        // The paper: "Comer & Lin did show that for a crash failure, a
        // packet is retransmitted nine times before the connection is
        // dropped. We duplicated this result."
        let sun = run_crash_probe(TcpProfile::sunos_4_1_3());
        assert_eq!(sun.retransmissions, 12, "{sun:?}");
        assert!(sun.reset_observed, "{sun:?}");
        let sol = run_crash_probe(TcpProfile::solaris_2_3());
        assert_eq!(sol.retransmissions, 9, "{sol:?}");
        assert!(!sol.reset_observed, "{sol:?}");
    }

    #[test]
    fn passive_probing_cannot_distinguish_rtt_adaptability_but_pfi_can() {
        let (passive, pfi) = adaptability_distinguishability();
        assert!(
            !passive,
            "crash-only probing must not separate the two stacks"
        );
        assert!(pfi, "the delayed-ACK experiment must separate them");
    }
}
