//! **GMP Experiment 2 — network partitions (paper Table 6).**
//!
//! Partitions are induced exactly as in the paper: *send filters dropping
//! messages based on destination address*, toggled through the shared
//! script blackboard. Five machines split into {0,1,2} and {3,4}; two
//! disjoint groups form; when the filters pass traffic again, a single
//! group re-forms; the cycle repeats.
//!
//! The second row separates the leader and the crown prince only. Two
//! orders of events are possible (the paper describes both); the end state
//! is the same: the original leader leads everyone else, and the crown
//! prince is out of the group.

use pfi_gmp::{GmpBugs, GmpEvent};
use pfi_sim::SimDuration;

use crate::common::GmpTestbed;

/// Result of the two-group partition test.
#[derive(Debug, Clone)]
pub struct PartitionRow {
    /// Views of nodes 0..2 while partitioned.
    pub left_partition_view: Vec<u32>,
    /// Views of nodes 3..4 while partitioned.
    pub right_partition_view: Vec<u32>,
    /// View of everyone after healing.
    pub healed_view: Vec<u32>,
    /// Views while partitioned the second time (the cycle repeats).
    pub second_partition_left: Vec<u32>,
}

/// Runs the {0,1,2} | {3,4} partition cycle using destination-based send
/// filters controlled through the global blackboard.
pub fn run_partition_cycle() -> PartitionRow {
    let mut tb = GmpTestbed::new(5, GmpBugs::none());
    tb.start_all();
    // Every node's send filter consults the shared "partition" flag and its
    // own side assignment: when partitioned, cross-side messages are
    // dropped at the sender.
    for &p in tb.peers.clone().iter() {
        let side = if p.as_u32() <= 2 { 0 } else { 1 };
        tb.send_script(
            p,
            &format!(
                r#"
                if {{[global_get partition 0] == 1}} {{
                    set dst [msg_dst]
                    set dst_side [expr {{$dst <= 2 ? 0 : 1}}]
                    if {{$dst_side != {side}}} {{ xDrop }}
                }}
            "#
            ),
        );
    }
    tb.run(SimDuration::from_secs(60));
    // Partition on.
    tb.board.set(tb.world.boards_mut(), "partition", "1");
    tb.run(SimDuration::from_secs(60));
    let left_partition_view = tb.members(tb.peers[0]);
    let right_partition_view = tb.members(tb.peers[3]);
    // Heal.
    tb.board.set(tb.world.boards_mut(), "partition", "0");
    tb.run(SimDuration::from_secs(60));
    let healed_view = tb.members(tb.peers[4]);
    // Partition again: the cycle repeats.
    tb.board.set(tb.world.boards_mut(), "partition", "1");
    tb.run(SimDuration::from_secs(60));
    let second_partition_left = tb.members(tb.peers[2]);
    PartitionRow {
        left_partition_view,
        right_partition_view,
        healed_view,
        second_partition_left,
    }
}

/// Result of the leader/crown-prince separation test.
#[derive(Debug, Clone)]
pub struct LeaderCpRow {
    /// The final group around the original leader.
    pub leader_view: Vec<u32>,
    /// The crown prince's final group.
    pub crown_prince_view: Vec<u32>,
    /// Whether the crown prince transiently led a group of the others
    /// (the paper's "second course of action").
    pub cp_ever_led_others: bool,
}

/// Separates leader (node 0) and crown prince (node 1): each drops
/// messages destined for the other.
pub fn run_leader_cp_separation() -> LeaderCpRow {
    let mut tb = GmpTestbed::new(5, GmpBugs::none());
    tb.start_all();
    tb.run(SimDuration::from_secs(60));
    tb.send_script(tb.peers[0], r#"if {[msg_dst] == 1} { xDrop }"#);
    tb.send_script(tb.peers[1], r#"if {[msg_dst] == 0} { xDrop }"#);
    tb.run(SimDuration::from_secs(120));
    let leader_view = tb.members(tb.peers[0]);
    let crown_prince_view = tb.members(tb.peers[1]);
    // Did the crown prince ever commit a view in which it led the others?
    // Only views committed after the separation count (initial cluster
    // formation also passes through transient small groups).
    let mut cp_ever_led_others = false;
    for (t, e) in tb.world.trace().events_of::<GmpEvent>(Some(tb.peers[1])) {
        if t.as_secs_f64() <= 60.0 {
            continue;
        }
        if let GmpEvent::GroupView {
            leader, members, ..
        } = e
        {
            if leader == 1 && members.len() > 1 {
                cp_ever_led_others = true;
            }
        }
    }
    LeaderCpRow {
        leader_view,
        crown_prince_view,
        cp_ever_led_others,
    }
}

/// Which of the paper's "two possible courses of action" to force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Course {
    /// The original leader's `MEMBERSHIP_CHANGE` goes out first: everyone
    /// but the crown prince immediately joins the leader's new group.
    LeaderFirst,
    /// The crown prince's `MEMBERSHIP_CHANGE` goes out first: the others
    /// briefly join the crown prince's group, until the original leader's
    /// proclaim pulls them back.
    CrownPrinceFirst,
}

/// Forces one specific ordering of the two concurrent membership changes by
/// delaying the *other* contender's `MEMBERSHIP_CHANGE` messages — the
/// paper's deterministic orchestration of "hard-to-reach global states",
/// applied to its own experiment.
pub fn run_leader_cp_separation_forced(course: Course) -> LeaderCpRow {
    let mut tb = GmpTestbed::new(5, GmpBugs::none());
    tb.start_all();
    tb.run(SimDuration::from_secs(60));
    // The separation itself.
    tb.send_script(tb.peers[0], r#"if {[msg_dst] == 1} { xDrop }"#);
    tb.send_script(tb.peers[1], r#"if {[msg_dst] == 0} { xDrop }"#);
    // The orchestration: park the losing contender's MEMBERSHIP_CHANGEs for
    // ten seconds so the chosen course is taken deterministically.
    let delay_mc = r#"
        if {[msg_type] == "MEMBERSHIP_CHANGE"} {
            incr held
            if {$held <= 4} { xDelay 10000 }
        }
    "#;
    match course {
        Course::LeaderFirst => {
            // Re-install node 1's filter to ALSO delay its MCs.
            tb.send_script(
                tb.peers[1],
                &format!(r#"if {{[msg_dst] == 0}} {{ xDrop }}{delay_mc}"#),
            );
        }
        Course::CrownPrinceFirst => {
            tb.send_script(
                tb.peers[0],
                &format!(r#"if {{[msg_dst] == 1}} {{ xDrop }}{delay_mc}"#),
            );
        }
    }
    tb.run(SimDuration::from_secs(120));
    let leader_view = tb.members(tb.peers[0]);
    let crown_prince_view = tb.members(tb.peers[1]);
    // Only views committed after the separation count (initial cluster
    // formation also passes through transient small groups).
    let mut cp_ever_led_others = false;
    for (t, e) in tb.world.trace().events_of::<GmpEvent>(Some(tb.peers[1])) {
        if t.as_secs_f64() <= 60.0 {
            continue;
        }
        if let GmpEvent::GroupView {
            leader, members, ..
        } = e
        {
            if leader == 1 && members.len() > 1 {
                cp_ever_led_others = true;
            }
        }
    }
    LeaderCpRow {
        leader_view,
        crown_prince_view,
        cp_ever_led_others,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_partition_and_heal_cycle() {
        let row = run_partition_cycle();
        assert_eq!(row.left_partition_view, vec![0, 1, 2], "{row:?}");
        assert_eq!(row.right_partition_view, vec![3, 4], "{row:?}");
        assert_eq!(row.healed_view, vec![0, 1, 2, 3, 4], "{row:?}");
        assert_eq!(
            row.second_partition_left,
            vec![0, 1, 2],
            "cycle must repeat: {row:?}"
        );
    }

    #[test]
    fn table6_leader_crown_prince_separation_end_state() {
        let row = run_leader_cp_separation();
        // End state per the paper: everyone but the crown prince with the
        // original leader; the crown prince alone.
        assert_eq!(row.leader_view, vec![0, 2, 3, 4], "{row:?}");
        assert_eq!(row.crown_prince_view, vec![1], "{row:?}");
    }

    #[test]
    fn table6_both_courses_of_action_reach_the_same_end_state() {
        // The paper: "There were two courses of action, but the result was
        // the same for both." Force each ordering deterministically and
        // check the distinguishing intermediate state plus the common end
        // state.
        let leader_first = run_leader_cp_separation_forced(Course::LeaderFirst);
        assert!(
            !leader_first.cp_ever_led_others,
            "when the leader's change goes first the CP never leads: {leader_first:?}"
        );
        assert_eq!(
            leader_first.leader_view,
            vec![0, 2, 3, 4],
            "{leader_first:?}"
        );
        assert_eq!(leader_first.crown_prince_view, vec![1], "{leader_first:?}");

        let cp_first = run_leader_cp_separation_forced(Course::CrownPrinceFirst);
        assert!(
            cp_first.cp_ever_led_others,
            "when the CP's change goes first it transiently leads the others: {cp_first:?}"
        );
        assert_eq!(cp_first.leader_view, vec![0, 2, 3, 4], "{cp_first:?}");
        assert_eq!(cp_first.crown_prince_view, vec![1], "{cp_first:?}");
    }
}
