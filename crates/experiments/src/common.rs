//! Shared experiment infrastructure: the paper's two testbeds.
//!
//! **TCP testbed** (paper Figure 3): one *vendor machine* running a vendor
//! TCP talks to the *x-Kernel machine*, whose stack carries the PFI layer
//! directly between TCP and the wire. Connections are opened from the
//! vendor machine to the x-Kernel machine, and filters on the x-Kernel side
//! manipulate what the vendor sees.
//!
//! **GMP testbed** (paper Figure 5): `n` group membership daemons, each
//! with a PFI layer between the daemon and its reliable datagram layer.

use pfi_core::{Filter, GlobalBoard, PfiControl, PfiLayer, PfiReply};
use pfi_gmp::{GmpBugs, GmpConfig, GmpControl, GmpLayer, GmpReply, GmpStatusReport, GmpStub};
use pfi_rudp::RudpLayer;
use pfi_sim::{NodeId, SimDuration, SimTime, World};
use pfi_tcp::{ConnId, TcpControl, TcpEvent, TcpLayer, TcpProfile, TcpReply, TcpStub};

/// The TCP testbed.
#[derive(Debug)]
pub struct TcpTestbed {
    /// The simulation world.
    pub world: World,
    /// The vendor machine (node 0).
    pub vendor: NodeId,
    /// The x-Kernel machine (node 1); layer 0 is TCP, layer 1 the PFI
    /// layer.
    pub xk: NodeId,
    /// The vendor-side connection handle.
    pub conn: ConnId,
}

/// Stack layer index of the PFI layer on the x-Kernel machine.
pub const XK_PFI: usize = 1;
/// Stack layer index of TCP on either machine.
pub const TCP: usize = 0;
/// Port the x-Kernel machine listens on.
pub const XK_PORT: u16 = 7777;

impl TcpTestbed {
    /// Builds the testbed and opens a connection from the vendor machine
    /// to the x-Kernel machine (completing the handshake).
    pub fn new(vendor_profile: TcpProfile) -> Self {
        let mut world = World::new(1995);
        let vendor = world.add_node(vec![Box::new(TcpLayer::new(vendor_profile))]);
        let xk = world.add_node(vec![
            Box::new(TcpLayer::new(TcpProfile::rfc_reference())),
            Box::new(PfiLayer::new(Box::new(TcpStub))),
        ]);
        world.control::<TcpReply>(xk, TCP, TcpControl::Listen { port: XK_PORT });
        let conn = world
            .control::<TcpReply>(
                vendor,
                TCP,
                TcpControl::Open {
                    local_port: 0,
                    remote: xk,
                    remote_port: XK_PORT,
                },
            )
            .expect_conn();
        world.run_for(SimDuration::from_millis(50));
        TcpTestbed {
            world,
            vendor,
            xk,
            conn,
        }
    }

    /// The x-Kernel side's accepted connection.
    pub fn xk_conn(&mut self) -> ConnId {
        match self
            .world
            .control::<TcpReply>(self.xk, TCP, TcpControl::AcceptedOn { port: XK_PORT })
        {
            TcpReply::MaybeConn(Some(c)) => c,
            other => panic!("handshake did not complete: {other:?}"),
        }
    }

    /// Installs a receive filter on the x-Kernel PFI layer.
    pub fn set_recv_filter(&mut self, f: Filter) {
        let _: PfiReply = self
            .world
            .control(self.xk, XK_PFI, PfiControl::SetRecvFilter(f));
    }

    /// Installs a send filter on the x-Kernel PFI layer.
    pub fn set_send_filter(&mut self, f: Filter) {
        let _: PfiReply = self
            .world
            .control(self.xk, XK_PFI, PfiControl::SetSendFilter(f));
    }

    /// Installs a parsed script as the receive filter.
    ///
    /// # Panics
    ///
    /// Panics on script parse errors.
    pub fn recv_script(&mut self, src: &str) {
        self.set_recv_filter(Filter::script(src).expect("receive filter script"));
    }

    /// Installs a parsed script as the send filter.
    ///
    /// # Panics
    ///
    /// Panics on script parse errors.
    pub fn send_script(&mut self, src: &str) {
        self.set_send_filter(Filter::script(src).expect("send filter script"));
    }

    /// Queues a stream of `count` segments of `seg_size` bytes on the
    /// vendor connection, one every `interval` (the driver workload).
    pub fn vendor_stream(&mut self, seg_size: usize, count: u32, interval: SimDuration) {
        let vendor = self.vendor;
        let conn = self.conn;
        for i in 0..count {
            self.world.schedule_in(interval * i as u64, move |w| {
                let data = vec![(i % 251) as u8; seg_size];
                w.control::<TcpReply>(vendor, TCP, TcpControl::Send { conn, data });
            });
        }
    }

    /// Times of every retransmission on the vendor connection.
    pub fn vendor_retransmit_times(&self) -> Vec<SimTime> {
        self.world
            .trace()
            .events_of::<TcpEvent>(Some(self.vendor))
            .into_iter()
            .filter(|(_, e)| matches!(e, TcpEvent::Retransmit { .. }))
            .map(|(t, _)| t)
            .collect()
    }

    /// All TCP events on the vendor node.
    pub fn vendor_events(&self) -> Vec<(SimTime, TcpEvent)> {
        self.world.trace().events_of::<TcpEvent>(Some(self.vendor))
    }

    /// The vendor connection's state name.
    pub fn vendor_state(&mut self) -> &'static str {
        let conn = self.conn;
        self.world
            .control::<TcpReply>(self.vendor, TCP, TcpControl::State { conn })
            .expect_state()
    }
}

/// Gaps between consecutive instants, in seconds.
pub fn intervals_secs(times: &[SimTime]) -> Vec<f64> {
    times
        .windows(2)
        .map(|p| (p[1] - p[0]).as_secs_f64())
        .collect()
}

/// Whether a series of gaps is (approximately) exponentially increasing
/// until it saturates: every step either roughly doubles or stays at the
/// cap.
pub fn is_exponential_backoff(gaps: &[f64]) -> bool {
    gaps.windows(2).all(|p| {
        let ratio = p[1] / p[0];
        (0.85..=2.3).contains(&ratio)
    }) && gaps.windows(2).all(|p| p[1] >= p[0] * 0.85)
}

/// The GMP testbed.
#[derive(Debug)]
pub struct GmpTestbed {
    /// The simulation world.
    pub world: World,
    /// All daemon nodes in id order.
    pub peers: Vec<NodeId>,
    /// Shared script blackboard across all PFI layers.
    pub board: GlobalBoard,
}

/// Stack layer index of the daemon.
pub const GMD: usize = 0;
/// Stack layer index of the PFI layer on GMP nodes.
pub const GMP_PFI: usize = 1;

impl GmpTestbed {
    /// Builds `n` daemons (not yet started) with the given bugs.
    pub fn new(n: u32, bugs: GmpBugs) -> Self {
        let mut world = World::new(1995);
        let board = GlobalBoard::alloc_in(world.boards_mut());
        let peers: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        for _ in 0..n {
            let gmd = GmpLayer::new(GmpConfig::new(peers.clone()).with_bugs(bugs));
            let pfi = PfiLayer::new(Box::new(GmpStub)).with_globals(board);
            world.add_node(vec![
                Box::new(gmd),
                Box::new(pfi),
                Box::new(RudpLayer::default()),
            ]);
        }
        GmpTestbed {
            world,
            peers,
            board,
        }
    }

    /// Starts one daemon.
    pub fn start(&mut self, node: NodeId) {
        self.world.control::<GmpReply>(node, GMD, GmpControl::Start);
    }

    /// Starts every daemon.
    pub fn start_all(&mut self) {
        for p in self.peers.clone() {
            self.start(p);
        }
    }

    /// A daemon's current view.
    pub fn view(&mut self, node: NodeId) -> GmpStatusReport {
        self.world
            .control::<GmpReply>(node, GMD, GmpControl::Status)
            .expect_status()
    }

    /// A daemon's member list as raw ids.
    pub fn members(&mut self, node: NodeId) -> Vec<u32> {
        self.view(node)
            .group
            .members
            .iter()
            .map(|m| m.as_u32())
            .collect()
    }

    /// Installs a send filter on one daemon's PFI layer.
    pub fn send_script(&mut self, node: NodeId, src: &str) {
        let f = Filter::script(src).expect("send filter script");
        let _: PfiReply = self
            .world
            .control(node, GMP_PFI, PfiControl::SetSendFilter(f));
    }

    /// Installs a receive filter on one daemon's PFI layer.
    pub fn recv_script(&mut self, node: NodeId, src: &str) {
        let f = Filter::script(src).expect("receive filter script");
        let _: PfiReply = self
            .world
            .control(node, GMP_PFI, PfiControl::SetRecvFilter(f));
    }

    /// Runs the world forward.
    pub fn run(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }
}
