//! **GMP Experiment 4 — timer hygiene (paper Table 8).**
//!
//! A node that has joined one group receives a second `MEMBERSHIP_CHANGE`
//! while its receive filter drops the following `COMMIT`s, parking it in
//! `IN_TRANSITION` — a phase in which "no timers (except for the
//! membership-change timer) were supposed to be set". The buggy
//! unregistration routine (inverted NULL/non-NULL logic) cancels only one
//! heartbeat-expect timer, so the stale ones fire mid-transition; the
//! fixed routine stays quiet.

use pfi_gmp::{GmpBugs, GmpEvent};
use pfi_sim::SimDuration;

use crate::common::GmpTestbed;

/// Result of the timer test.
#[derive(Debug, Clone)]
pub struct Exp4Row {
    /// Whether the bug was injected.
    pub buggy: bool,
    /// Whether the victim entered a second transition.
    pub entered_transition: bool,
    /// Stale heartbeat-expect timers that fired mid-transition.
    pub spurious_timer_fires: usize,
}

/// Runs the timer test with or without the bug.
pub fn run(buggy: bool) -> Exp4Row {
    let bugs = if buggy {
        GmpBugs {
            timer_unset: true,
            ..GmpBugs::none()
        }
    } else {
        GmpBugs::none()
    };
    let mut tb = GmpTestbed::new(3, bugs);
    tb.start_all();
    tb.run(SimDuration::from_secs(60));
    let victim = tb.peers[2];
    // Park the victim in IN_TRANSITION by dropping the COMMITs of the next
    // change…
    tb.recv_script(victim, r#"if {[msg_type] == "COMMIT"} { xDrop }"#);
    // …which is triggered by isolating node 1 (the leader proposes {0, 2}).
    let peers = tb.peers.clone();
    tb.world.network_mut().isolate(peers[1], &peers);
    tb.run(SimDuration::from_secs(30));

    let evs = tb.world.trace().events_of::<GmpEvent>(Some(victim));
    let entered_transition = evs
        .iter()
        .any(|(t, e)| matches!(e, GmpEvent::InTransition { .. }) && t.as_secs_f64() > 60.0);
    let spurious_timer_fires = evs
        .iter()
        .filter(|(_, e)| matches!(e, GmpEvent::SpuriousTimerInTransition { .. }))
        .count();
    Exp4Row {
        buggy,
        entered_transition,
        spurious_timer_fires,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_bug_fires_stale_timers() {
        let row = run(true);
        assert!(row.entered_transition, "{row:?}");
        assert!(row.spurious_timer_fires > 0, "{row:?}");
    }

    #[test]
    fn table8_fix_behaves_as_specified() {
        let row = run(false);
        assert!(row.entered_transition, "{row:?}");
        assert_eq!(row.spurious_timer_fires, 0, "{row:?}");
    }
}
