//! Plain-text table rendering for the `repro` binary, mirroring the
//! paper's result tables.

/// A rendered table: title, column headers, and rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table caption (e.g. `"Table 1: TCP Retransmission Timeout Results"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let ncols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!(" {cell:w$} ", w = w));
                if i + 1 < widths.len() {
                    line.push('|');
                }
            }
            line
        };
        out.push_str(&format!("{}\n", fmt_row(&self.headers)));
        out.push_str(&format!("{sep}\n"));
        for row in &self.rows {
            out.push_str(&format!("{}\n", fmt_row(row)));
        }
        out
    }
}

/// Formats a float series compactly (`"1.0, 2.0, 4.0, …"`), keeping the
/// first `max` values.
pub fn series(vals: &[f64], max: usize) -> String {
    let shown: Vec<String> = vals.iter().take(max).map(|v| format!("{v:.2}")).collect();
    let mut s = shown.join(", ");
    if vals.len() > max {
        s.push_str(", …");
    }
    s
}

/// Renders a boolean as yes/no.
pub fn yn(v: bool) -> String {
    if v { "yes" } else { "no" }.to_string()
}

/// Renders labelled series as an ASCII chart (value vs index), linear
/// y-axis — the shape of the paper's Figure 4 graphs.
pub fn ascii_chart(title: &str, series: &[(&str, &[f64])], height: usize) -> String {
    let max = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(1.0f64, f64::max);
    let width = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    let mut grid = vec![vec![' '; width * 3]; height];
    let marks = ['o', 'x', '+', '*', '#'];
    for (si, (_, vals)) in series.iter().enumerate() {
        for (i, &v) in vals.iter().enumerate() {
            let row = ((v / max) * (height - 1) as f64).round() as usize;
            let col = i * 3 + 1;
            grid[height - 1 - row][col] = marks[si % marks.len()];
        }
    }
    let mut out = format!("{title}\n");
    for (ri, row) in grid.iter().enumerate() {
        let y = max * (height - 1 - ri) as f64 / (height - 1) as f64;
        let line: String = row.iter().collect();
        out.push_str(&format!("{y:7.1} |{}\n", line.trim_end()));
    }
    out.push_str(&format!("        +{}\n", "-".repeat(width * 3)));
    out.push_str("         retransmission number →\n");
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!(
            "         {} = {}\n",
            marks[si % marks.len()],
            name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Test Table", &["name", "value"]);
        t.row(&["short".to_string(), "1".to_string()]);
        t.row(&["a much longer name".to_string(), "22".to_string()]);
        let out = t.render();
        assert!(out.starts_with("Test Table\n"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        // All body lines have equal width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert!(out.contains("a much longer name"));
    }

    #[test]
    fn series_truncates() {
        assert_eq!(series(&[1.0, 2.0], 5), "1.00, 2.00");
        assert_eq!(series(&[1.0, 2.0, 3.0], 2), "1.00, 2.00, …");
    }

    #[test]
    fn yn_formats() {
        assert_eq!(yn(true), "yes");
        assert_eq!(yn(false), "no");
    }
}

#[cfg(test)]
mod chart_tests {
    use super::*;

    #[test]
    fn ascii_chart_places_series_marks() {
        let a = [1.0, 2.0, 4.0, 8.0];
        let b = [1.0, 1.0, 1.0];
        let out = ascii_chart("t", &[("A", &a[..]), ("B", &b[..])], 8);
        assert!(out.starts_with("t\n"));
        assert!(out.contains("o = A"));
        assert!(out.contains("x = B"));
        // The max value labels the top row.
        assert!(out.contains("    8.0 |"), "{out}");
        // Four data marks plus the one in the legend line "o = A".
        assert_eq!(out.matches('o').count(), 5, "{out}");
    }
}
