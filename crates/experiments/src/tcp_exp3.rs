//! **TCP Experiment 3 — keep-alive probing (paper Table 3).**
//!
//! "The receive filter of the PFI layer was configured to drop all incoming
//! packets" while the vendor machine kept an idle connection with
//! keep-alive enabled. BSD-family stacks probe ~7200 s after the connection
//! goes idle, retransmit eight times at 75 s intervals, then reset; Solaris
//! probes at 6752 s (violating the ≥7200 s spec threshold), retransmits
//! with exponential backoff seven times, and drops the connection silently.
//! A variation ACKs the probes instead: probing then continues at the idle
//! interval indefinitely (the paper ran 8–112 hours per vendor).

use pfi_sim::{SimDuration, SimTime};
use pfi_tcp::{TcpControl, TcpEvent, TcpProfile, TcpReply};

use crate::common::{intervals_secs, TcpTestbed, TCP};

/// Result row for one vendor (probes dropped).
#[derive(Debug, Clone)]
pub struct Exp3Row {
    /// Vendor name.
    pub vendor: String,
    /// Seconds of idle time before the first keep-alive probe.
    pub first_probe_secs: f64,
    /// Total probes sent before giving up.
    pub probes: usize,
    /// Gaps between successive probes, in seconds.
    pub probe_intervals: Vec<f64>,
    /// Garbage bytes carried by the probes (1 on SunOS, 0 elsewhere).
    pub garbage_bytes: usize,
    /// Whether a RST was sent when the connection was dropped.
    pub reset_sent: bool,
    /// Whether the idle threshold violates the spec's 7200 s minimum.
    pub spec_violation: bool,
}

fn probe_times(events: &[(SimTime, TcpEvent)]) -> (Vec<SimTime>, usize) {
    let mut times = Vec::new();
    let mut garbage = 0;
    for (t, e) in events {
        if let TcpEvent::KeepaliveProbe { garbage_bytes, .. } = e {
            times.push(*t);
            garbage = *garbage_bytes;
        }
    }
    (times, garbage)
}

/// Runs the probes-dropped variant for one vendor.
pub fn run_vendor(profile: TcpProfile) -> Exp3Row {
    let name = profile.name.to_string();
    let mut tb = TcpTestbed::new(profile);
    let conn = tb.conn;
    tb.world
        .control::<TcpReply>(tb.vendor, TCP, TcpControl::SetKeepalive { conn, on: true });
    let idle_start = tb.world.now();
    tb.recv_script(
        r#"
        msg_log cur_msg
        xDrop cur_msg
    "#,
    );
    tb.world.run_for(SimDuration::from_secs(12_000));
    let events = tb.vendor_events();
    let (times, garbage_bytes) = probe_times(&events);
    let first_probe_secs = times
        .first()
        .map(|t| t.saturating_since(idle_start).as_secs_f64())
        .unwrap_or(f64::NAN);
    Exp3Row {
        vendor: name,
        first_probe_secs,
        probes: times.len(),
        probe_intervals: intervals_secs(&times),
        garbage_bytes,
        reset_sent: events
            .iter()
            .any(|(_, e)| matches!(e, TcpEvent::Reset { sent: true, .. })),
        spec_violation: first_probe_secs < 7_200.0 - 1.0,
    }
}

/// Result row for the ACKed variant.
#[derive(Debug, Clone)]
pub struct Exp3AckedRow {
    /// Vendor name.
    pub vendor: String,
    /// Hours of virtual time the connection was observed (paper: 8 h SunOS
    /// … 112 h Solaris).
    pub observed_hours: u64,
    /// Probes observed.
    pub probes: usize,
    /// Mean gap between probes, in seconds.
    pub mean_interval_secs: f64,
    /// Whether the connection was still established at the end.
    pub still_open: bool,
}

/// Runs the probes-ACKed variant: probes pass, the connection stays open,
/// and probes continue at the idle interval for the whole observation.
pub fn run_vendor_acked(profile: TcpProfile, observed_hours: u64) -> Exp3AckedRow {
    let name = profile.name.to_string();
    let mut tb = TcpTestbed::new(profile);
    let conn = tb.conn;
    tb.world
        .control::<TcpReply>(tb.vendor, TCP, TcpControl::SetKeepalive { conn, on: true });
    tb.world
        .run_for(SimDuration::from_secs(observed_hours * 3_600));
    let events = tb.vendor_events();
    let (times, _) = probe_times(&events);
    let gaps = intervals_secs(&times);
    let mean = if gaps.is_empty() {
        f64::NAN
    } else {
        gaps.iter().sum::<f64>() / gaps.len() as f64
    };
    Exp3AckedRow {
        vendor: name,
        observed_hours,
        probes: times.len(),
        mean_interval_secs: mean,
        still_open: tb.vendor_state() == "Established",
    }
}

/// Runs the dropped variant for all vendors (Table 3).
pub fn run_all() -> Vec<Exp3Row> {
    TcpProfile::vendors().into_iter().map(run_vendor).collect()
}

/// Runs the ACKed variant with the paper's per-vendor observation windows.
pub fn run_all_acked() -> Vec<Exp3AckedRow> {
    vec![
        run_vendor_acked(TcpProfile::sunos_4_1_3(), 8),
        run_vendor_acked(TcpProfile::aix_3_2_3(), 14),
        run_vendor_acked(TcpProfile::next_mach(), 20),
        run_vendor_acked(TcpProfile::solaris_2_3(), 112),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_bsd_family() {
        for profile in [
            TcpProfile::sunos_4_1_3(),
            TcpProfile::aix_3_2_3(),
            TcpProfile::next_mach(),
        ] {
            let row = run_vendor(profile);
            assert!(
                (7_195.0..7_210.0).contains(&row.first_probe_secs),
                "{}: first probe at {}",
                row.vendor,
                row.first_probe_secs
            );
            assert!(!row.spec_violation, "{}", row.vendor);
            // First probe + 8 retransmissions at 75 s intervals.
            assert_eq!(row.probes, 9, "{}: {:?}", row.vendor, row.probe_intervals);
            for gap in &row.probe_intervals {
                assert!(
                    (74.0..76.0).contains(gap),
                    "{}: {:?}",
                    row.vendor,
                    row.probe_intervals
                );
            }
            assert!(row.reset_sent, "{}", row.vendor);
        }
    }

    #[test]
    fn table3_garbage_byte_distinguishes_sunos() {
        assert_eq!(run_vendor(TcpProfile::sunos_4_1_3()).garbage_bytes, 1);
        assert_eq!(run_vendor(TcpProfile::aix_3_2_3()).garbage_bytes, 0);
        assert_eq!(run_vendor(TcpProfile::next_mach()).garbage_bytes, 0);
    }

    #[test]
    fn table3_solaris() {
        let row = run_vendor(TcpProfile::solaris_2_3());
        assert!(
            (6_745.0..6_760.0).contains(&row.first_probe_secs),
            "first probe at {}",
            row.first_probe_secs
        );
        assert!(
            row.spec_violation,
            "6752 s violates the 7200 s spec threshold"
        );
        assert_eq!(row.probes, 8, "{:?}", row.probe_intervals);
        // Exponential backoff between retransmissions.
        for pair in row.probe_intervals.windows(2) {
            assert!(pair[1] > pair[0] * 1.5, "{:?}", row.probe_intervals);
        }
        assert!(!row.reset_sent, "Solaris drops silently");
    }

    #[test]
    fn acked_probes_continue_indefinitely() {
        let sun = run_vendor_acked(TcpProfile::sunos_4_1_3(), 8);
        assert!(sun.still_open);
        assert!((3..=4).contains(&sun.probes), "{sun:?}");
        assert!(
            (7_190.0..7_215.0).contains(&sun.mean_interval_secs),
            "{sun:?}"
        );

        let sol = run_vendor_acked(TcpProfile::solaris_2_3(), 112);
        assert!(sol.still_open);
        // 112 h / 6752 s ≈ 59 probes (the paper counted 60).
        assert!((55..=62).contains(&sol.probes), "{sol:?}");
        assert!(
            (6_745.0..6_765.0).contains(&sol.mean_interval_secs),
            "{sol:?}"
        );
    }
}
