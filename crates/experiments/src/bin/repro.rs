//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro            # all experiments
//! repro tcp1       # one experiment: tcp1..tcp5, gmp1..gmp4
//! ```

use pfi_experiments::report::{ascii_chart, series, yn, Table};
use pfi_experiments::{
    baseline, gmp_exp1, gmp_exp2, gmp_exp3, gmp_exp4, identify, tcp_exp1, tcp_exp2, tcp_exp3,
    tcp_exp4, tcp_exp5,
};
use pfi_tcp::TcpProfile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    if want("tcp1") {
        table1();
    }
    if want("tcp2") {
        table2_fig4();
    }
    if want("tcp3") {
        table3();
    }
    if want("tcp4") {
        table4();
    }
    if want("tcp5") {
        exp5();
    }
    if want("gmp1") {
        table5();
    }
    if want("gmp2") {
        table6();
    }
    if want("gmp3") {
        table7();
    }
    if want("gmp4") {
        table8();
    }
    if want("identify") {
        identification();
    }
    if want("baseline") {
        baseline_comparison();
    }
}

fn baseline_comparison() {
    let mut t = Table::new(
        "Baseline: crash-only active probing (Comer & Lin, paper §5)",
        &[
            "Vendor",
            "Retx (wire count)",
            "RST observed",
            "Intervals (s)",
        ],
    );
    for row in baseline::run_all() {
        t.row(&[
            row.vendor.clone(),
            row.retransmissions.to_string(),
            yn(row.reset_observed),
            series(&row.intervals, 7),
        ]);
    }
    println!("{}", t.render());
    let (passive, pfi) = baseline::adaptability_distinguishability();
    println!(
        "technique gap: passive crash probing distinguishes an RTT-adaptive stack \
         from a non-adaptive one: {} — the PFI delayed-ACK experiment: {}",
        yn(passive),
        yn(pfi)
    );
    println!("({})\n", baseline::monitoring_limitation());
}

fn identification() {
    let mut t = Table::new(
        "Vendor identification from behaviour alone (paper aspect iii)",
        &[
            "Actual",
            "Identified as",
            "Correct",
            "Retx",
            "RST",
            "KA threshold (s)",
            "KA garbage",
        ],
    );
    for row in identify::run_all() {
        t.row(&[
            row.actual.clone(),
            row.identified.to_string(),
            yn(row.correct),
            row.fingerprint.data_retransmissions.to_string(),
            yn(row.fingerprint.reset_on_timeout),
            format!("{:.0}", row.fingerprint.keepalive_threshold_secs),
            row.fingerprint.keepalive_garbage_bytes.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn table1() {
    let mut t = Table::new(
        "Table 1: TCP Retransmission Timeout Results (drop all incoming after 30 packets)",
        &[
            "Vendor",
            "Retx",
            "Upper bound (s)",
            "Exponential",
            "RST sent",
            "Intervals (s)",
        ],
    );
    for row in tcp_exp1::run_all() {
        t.row(&[
            row.vendor.clone(),
            row.retransmissions.to_string(),
            format!("{:.1}", row.rto_upper_bound_secs),
            yn(row.exponential_backoff),
            yn(row.reset_sent),
            series(&row.intervals, 8),
        ]);
    }
    println!("{}", t.render());
}

fn table2_fig4() {
    let mut t = Table::new(
        "Table 2 / Figure 4: Retransmission timeouts with delayed ACKs",
        &[
            "Vendor",
            "ACK delay (s)",
            "First retx (s)",
            "Adapted",
            "RTO series (s)",
        ],
    );
    for row in tcp_exp2::run_all() {
        t.row(&[
            row.vendor.clone(),
            row.ack_delay_secs.to_string(),
            format!("{:.2}", row.first_retx_gap_secs),
            yn(row.adapted),
            series(&row.series, 7),
        ]);
    }
    println!("{}", t.render());

    // Figure 4 proper: retransmission timeout value vs retransmission
    // number, one graph per injected delay.
    for delay in [0u64, 3, 8] {
        let sun = tcp_exp2::run_delay(TcpProfile::sunos_4_1_3(), delay);
        let sol = tcp_exp2::run_delay(TcpProfile::solaris_2_3(), delay);
        let chart = ascii_chart(
            &format!("Figure 4 ({delay} s ACK delay): RTO (s) per retransmission"),
            &[
                ("BSD family (SunOS)", &sun.series),
                ("Solaris 2.3", &sol.series),
            ],
            12,
        );
        println!("{chart}");
    }

    let mut p = Table::new(
        "Global error counter probe (one ACK delayed 35 s, everything after dropped)",
        &["Vendor", "m1 retx", "m2 retx", "Connection dropped"],
    );
    for probe in [
        tcp_exp2::run_counter_probe(TcpProfile::solaris_2_3()),
        tcp_exp2::run_counter_probe(TcpProfile::sunos_4_1_3()),
    ] {
        p.row(&[
            probe.vendor.clone(),
            probe.m1_retx.to_string(),
            probe.m2_retx.to_string(),
            yn(probe.closed),
        ]);
    }
    println!("{}", p.render());
}

fn table3() {
    let mut t = Table::new(
        "Table 3: TCP Keep-alive Results (probes dropped)",
        &[
            "Vendor",
            "First probe (s)",
            "Probes",
            "Garbage bytes",
            "RST",
            "Spec violation",
        ],
    );
    for row in tcp_exp3::run_all() {
        t.row(&[
            row.vendor.clone(),
            format!("{:.0}", row.first_probe_secs),
            row.probes.to_string(),
            row.garbage_bytes.to_string(),
            yn(row.reset_sent),
            yn(row.spec_violation),
        ]);
    }
    println!("{}", t.render());

    let mut v = Table::new(
        "Table 3 variation: probes ACKed (indefinite probing at the idle interval)",
        &[
            "Vendor",
            "Observed (h)",
            "Probes",
            "Mean interval (s)",
            "Still open",
        ],
    );
    for row in tcp_exp3::run_all_acked() {
        v.row(&[
            row.vendor.clone(),
            row.observed_hours.to_string(),
            row.probes.to_string(),
            format!("{:.0}", row.mean_interval_secs),
            yn(row.still_open),
        ]);
    }
    println!("{}", v.render());
}

fn table4() {
    let mut t = Table::new(
        "Table 4: TCP Zero Window Probe Results (probes ACKed)",
        &["Vendor", "Probes", "Cap (s)", "Still probing", "Still open"],
    );
    for row in tcp_exp4::run_all() {
        t.row(&[
            row.vendor.clone(),
            row.probes.to_string(),
            format!("{:.0}", row.cap_secs),
            yn(row.still_probing),
            yn(row.still_open),
        ]);
    }
    println!("{}", t.render());

    let mut v = Table::new(
        "Table 4 variations: unACKed (90 min) and two-day unplug",
        &["Vendor", "Variant", "Probes", "Still probing", "Still open"],
    );
    for (profile, variant) in [
        (TcpProfile::sunos_4_1_3(), tcp_exp4::Exp4Variant::Unacked),
        (TcpProfile::solaris_2_3(), tcp_exp4::Exp4Variant::Unacked),
        (TcpProfile::aix_3_2_3(), tcp_exp4::Exp4Variant::Unplugged),
    ] {
        let row = tcp_exp4::run_vendor(profile, variant);
        v.row(&[
            row.vendor.clone(),
            format!("{:?}", row.variant),
            row.probes.to_string(),
            yn(row.still_probing),
            yn(row.still_open),
        ]);
    }
    println!("{}", v.render());
}

fn exp5() {
    let mut t = Table::new(
        "Experiment 5: Reordering of messages",
        &[
            "Vendor",
            "Queued OOO segment",
            "Single cumulative ACK",
            "Data intact",
        ],
    );
    for row in tcp_exp5::run_all() {
        t.row(&[
            row.vendor.clone(),
            yn(row.queued),
            yn(row.single_cumulative_ack),
            yn(row.data_intact),
        ]);
    }
    println!("{}", t.render());
}

fn table5() {
    let mut t = Table::new("Table 5: GMP Packet Interruption", &["Test", "Finding"]);
    let buggy = gmp_exp1::run_self_heartbeat(true);
    let fixed = gmp_exp1::run_self_heartbeat(false);
    t.row(&[
        "Drop heartbeats to self (buggy)".to_string(),
        format!(
            "declared self dead: {}, formed singleton: {}, still in others' view: {}",
            yn(buggy.declared_self_dead),
            yn(buggy.formed_singleton),
            yn(buggy.victim_still_in_others_view)
        ),
    ]);
    t.row(&[
        "Drop heartbeats to self (fixed)".to_string(),
        format!(
            "declared self dead: {}, formed singleton: {}",
            yn(fixed.declared_self_dead),
            yn(fixed.formed_singleton)
        ),
    ]);
    let susp = gmp_exp1::run_suspend(true);
    t.row(&[
        "Suspend gmd 30 s (buggy)".to_string(),
        format!("declared self dead: {}", yn(susp.declared_self_dead)),
    ]);
    let cycle = gmp_exp1::run_kick_cycle();
    t.row(&[
        "Drop heartbeats to others".to_string(),
        format!(
            "kicked out {} times, readmitted {} times",
            cycle.kicked_out, cycle.readmitted
        ),
    ]);
    let ack = gmp_exp1::run_drop_ack();
    t.row(&[
        "Drop ACKs of MEMBERSHIP_CHANGE".to_string(),
        format!(
            "ever admitted: {}, commit timeouts: {}, core group: {:?}",
            yn(ack.ever_admitted),
            ack.commit_timeouts,
            ack.core_group
        ),
    ]);
    let commit = gmp_exp1::run_drop_commit();
    t.row(&[
        "Drop COMMITs".to_string(),
        format!(
            "stuck in transition: {}, transiently admitted: {}, then kicked: {}",
            yn(commit.stuck_in_transition),
            yn(commit.transiently_admitted),
            yn(commit.kicked_after_admission)
        ),
    ]);
    println!("{}", t.render());
}

fn table6() {
    let mut t = Table::new(
        "Table 6: Network Partition Experiment",
        &["Test", "Finding"],
    );
    let part = gmp_exp2::run_partition_cycle();
    t.row(&[
        "Partition into two groups".to_string(),
        format!(
            "partitioned: {:?} | {:?}; healed: {:?}; repeated: {:?}",
            part.left_partition_view,
            part.right_partition_view,
            part.healed_view,
            part.second_partition_left
        ),
    ]);
    let lcp = gmp_exp2::run_leader_cp_separation();
    t.row(&[
        "Leader/Crown-prince separation".to_string(),
        format!(
            "leader's group: {:?}; crown prince: {:?}; CP transiently led: {}",
            lcp.leader_view,
            lcp.crown_prince_view,
            yn(lcp.cp_ever_led_others)
        ),
    ]);
    // Both of the paper's "two possible courses of action", forced
    // deterministically by delaying the losing contender's change.
    for (label, course) in [
        (
            "Forced course A (leader first)",
            gmp_exp2::Course::LeaderFirst,
        ),
        (
            "Forced course B (crown prince first)",
            gmp_exp2::Course::CrownPrinceFirst,
        ),
    ] {
        let row = gmp_exp2::run_leader_cp_separation_forced(course);
        t.row(&[
            label.to_string(),
            format!(
                "leader's group: {:?}; crown prince: {:?}; CP transiently led: {}",
                row.leader_view,
                row.crown_prince_view,
                yn(row.cp_ever_led_others)
            ),
        ]);
    }
    println!("{}", t.render());
}

fn table7() {
    let mut t = Table::new(
        "Table 7: Proclaim Forwarding Experiment",
        &["Variant", "Finding"],
    );
    for buggy in [true, false] {
        let row = gmp_exp3::run(buggy);
        t.row(&[
            if buggy { "buggy" } else { "fixed" }.to_string(),
            format!(
                "forwards: {}, answers→forwarder: {}, answers→originator: {}, admitted: {}",
                row.forwards,
                row.answers_to_forwarder,
                row.answers_to_originator,
                yn(row.newcomer_admitted)
            ),
        ]);
    }
    println!("{}", t.render());
}

fn table8() {
    let mut t = Table::new("Table 8: GMP Timer Test", &["Variant", "Finding"]);
    for buggy in [true, false] {
        let row = gmp_exp4::run(buggy);
        t.row(&[
            if buggy { "buggy" } else { "fixed" }.to_string(),
            format!(
                "entered transition: {}, spurious timer fires: {}",
                yn(row.entered_transition),
                row.spurious_timer_fires
            ),
        ]);
    }
    println!("{}", t.render());
}
