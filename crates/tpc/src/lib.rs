//! # pfi-tpc — two-phase commit under fault injection
//!
//! The paper's future work (iii) is "experimental studies of other
//! commercial and prototype distributed protocols". This crate is such a
//! study target: a textbook two-phase commit (2PC) — `PREPARE` →
//! `VOTE_YES`/`VOTE_NO` → `COMMIT`/`ABORT` → `ACK` — whose classic
//! weaknesses the PFI toolkit exposes on demand:
//!
//! * a lost or negative vote aborts the transaction globally;
//! * a coordinator crash *after* `PREPARE` leaves prepared participants
//!   **blocked in uncertainty** (the protocol's fundamental flaw — they may
//!   neither commit nor abort unilaterally);
//! * dropped decisions are retried by the coordinator until acknowledged,
//!   so type-selective `COMMIT` drops turn into a live blocking window.
//!
//! Agreement (no two participants decide differently) holds under every
//! message fault; the price is blocking, and the trace shows exactly where.
//!
//! Runs over [`pfi_rudp`] like the GMP; interpose the PFI layer between
//! this layer and the reliable layer.

#![warn(missing_docs)]

use std::any::Any;
use std::collections::{HashMap, HashSet};

use pfi_core::PacketStub;
use pfi_sim::{Context, Layer, Message, NodeId, SimDuration, TimerId};

/// First byte of every 2PC packet.
pub const MAGIC: u8 = 0xB4;

/// 2PC message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpcType {
    /// Phase 1 request.
    Prepare,
    /// Positive vote.
    VoteYes,
    /// Negative vote.
    VoteNo,
    /// Phase 2 decision: commit.
    Commit,
    /// Phase 2 decision: abort.
    Abort,
    /// Decision acknowledgement.
    Ack,
}

impl TpcType {
    fn to_byte(self) -> u8 {
        match self {
            TpcType::Prepare => 1,
            TpcType::VoteYes => 2,
            TpcType::VoteNo => 3,
            TpcType::Commit => 4,
            TpcType::Abort => 5,
            TpcType::Ack => 6,
        }
    }

    fn from_byte(b: u8) -> Option<TpcType> {
        Some(match b {
            1 => TpcType::Prepare,
            2 => TpcType::VoteYes,
            3 => TpcType::VoteNo,
            4 => TpcType::Commit,
            5 => TpcType::Abort,
            6 => TpcType::Ack,
            _ => return None,
        })
    }

    /// Script-visible name.
    pub fn name(self) -> &'static str {
        match self {
            TpcType::Prepare => "PREPARE",
            TpcType::VoteYes => "VOTE_YES",
            TpcType::VoteNo => "VOTE_NO",
            TpcType::Commit => "COMMIT",
            TpcType::Abort => "ABORT",
            TpcType::Ack => "ACK",
        }
    }
}

/// A decoded 2PC packet: `magic | type | txid(4) | sender(4)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpcPacket {
    /// Message type.
    pub ty: TpcType,
    /// Transaction id.
    pub txid: u32,
    /// Transmitting node.
    pub sender: NodeId,
}

impl TpcPacket {
    /// Serialises (without the rudp service selector).
    pub fn to_bytes(&self) -> [u8; 10] {
        let mut b = [0u8; 10];
        b[0] = MAGIC;
        b[1] = self.ty.to_byte();
        b[2..6].copy_from_slice(&self.txid.to_be_bytes());
        b[6..10].copy_from_slice(&self.sender.as_u32().to_be_bytes());
        b
    }

    /// Parses, tolerating a one-byte rudp service selector in front.
    pub fn parse(bytes: &[u8]) -> Option<TpcPacket> {
        let b = if bytes.first() == Some(&MAGIC) {
            bytes
        } else if bytes.get(1) == Some(&MAGIC) {
            &bytes[1..]
        } else {
            return None;
        };
        if b.len() != 10 {
            return None;
        }
        Some(TpcPacket {
            ty: TpcType::from_byte(b[1])?,
            txid: u32::from_be_bytes([b[2], b[3], b[4], b[5]]),
            sender: NodeId::new(u32::from_be_bytes([b[6], b[7], b[8], b[9]])),
        })
    }
}

/// Timing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpcConfig {
    /// How long the coordinator collects votes before aborting.
    pub vote_timeout: SimDuration,
    /// Gap between decision retransmissions to unacked participants.
    pub decision_retry: SimDuration,
    /// Decision retransmissions before the coordinator gives up.
    pub max_decision_retries: u32,
    /// How long a prepared participant waits for a decision before it is
    /// counted as *blocked* (it stays blocked — 2PC offers it no safe exit).
    pub uncertainty_timeout: SimDuration,
}

impl Default for TpcConfig {
    fn default() -> Self {
        TpcConfig {
            vote_timeout: SimDuration::from_secs(2),
            decision_retry: SimDuration::from_secs(1),
            max_decision_retries: 10,
            uncertainty_timeout: SimDuration::from_secs(5),
        }
    }
}

/// Observable protocol actions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TpcEvent {
    /// The coordinator started a transaction.
    Started {
        /// Transaction id.
        txid: u32,
    },
    /// A participant voted.
    Voted {
        /// Transaction id.
        txid: u32,
        /// Whether the vote was yes.
        yes: bool,
    },
    /// The coordinator reached a decision.
    DecisionMade {
        /// Transaction id.
        txid: u32,
        /// Whether the decision was commit.
        commit: bool,
    },
    /// A participant applied a decision.
    DecisionApplied {
        /// Transaction id.
        txid: u32,
        /// Whether the decision was commit.
        commit: bool,
    },
    /// A prepared participant has waited out the uncertainty timeout with
    /// no decision: it is blocked (the classic 2PC window).
    Blocked {
        /// Transaction id.
        txid: u32,
    },
    /// The coordinator exhausted decision retries toward some participant.
    DecisionRetriesExhausted {
        /// Transaction id.
        txid: u32,
    },
}

/// Participant-side transaction state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpcState {
    /// Voted yes; awaiting the decision. **May not unilaterally proceed.**
    Prepared,
    /// Decision commit applied.
    Committed,
    /// Decision abort applied (or voted no).
    Aborted,
    /// Prepared and past the uncertainty timeout with no decision.
    Blocked,
}

/// Control operations.
#[derive(Debug)]
pub enum TpcControl {
    /// Start a transaction as coordinator across the given participants.
    Begin {
        /// Transaction id.
        txid: u32,
        /// The participants (not including the coordinator).
        participants: Vec<NodeId>,
    },
    /// Configure this participant to vote no on future transactions.
    SetVote {
        /// `false` = vote no.
        yes: bool,
    },
    /// Query local state for a transaction; replies [`TpcReply::State`].
    State {
        /// Transaction id.
        txid: u32,
    },
    /// Query the coordinator's decision; replies [`TpcReply::Decision`].
    Decision {
        /// Transaction id.
        txid: u32,
    },
}

/// Control replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TpcReply {
    /// Nothing to report.
    Unit,
    /// Participant state, if the transaction is known here.
    State(Option<TpcState>),
    /// The coordinator's decision, if reached (`commit?`).
    Decision(Option<bool>),
}

impl TpcReply {
    /// Unwraps a `State` reply.
    ///
    /// # Panics
    ///
    /// Panics if the reply is of a different kind.
    pub fn expect_state(self) -> Option<TpcState> {
        match self {
            TpcReply::State(s) => s,
            other => panic!("expected State reply, got {other:?}"),
        }
    }

    /// Unwraps a `Decision` reply.
    ///
    /// # Panics
    ///
    /// Panics if the reply is of a different kind.
    pub fn expect_decision(self) -> Option<bool> {
        match self {
            TpcReply::Decision(d) => d,
            other => panic!("expected Decision reply, got {other:?}"),
        }
    }
}

#[derive(Debug, Clone)]
struct CoordTx {
    participants: Vec<NodeId>,
    votes: HashMap<NodeId, bool>,
    decision: Option<bool>,
    acked: HashSet<NodeId>,
    retries: u32,
    vote_timer: Option<TimerId>,
}

#[derive(Debug, Clone)]
struct PartTx {
    coordinator: NodeId,
    state: TpcState,
}

const TIMER_VOTE: u64 = 0;
const TIMER_RETRY: u64 = 1;
const TIMER_UNCERTAIN: u64 = 2;

fn token(txid: u32, kind: u64) -> u64 {
    ((txid as u64) << 2) | kind
}
fn token_parts(t: u64) -> (u32, u64) {
    ((t >> 2) as u32, t & 0x3)
}

/// The two-phase commit layer (coordinator and participant roles in one).
#[derive(Debug, Clone)]
pub struct TpcLayer {
    config: TpcConfig,
    vote_yes: bool,
    coord: HashMap<u32, CoordTx>,
    part: HashMap<u32, PartTx>,
}

impl TpcLayer {
    /// Creates a layer with the given timing configuration.
    pub fn new(config: TpcConfig) -> Self {
        TpcLayer {
            config,
            vote_yes: true,
            coord: HashMap::new(),
            part: HashMap::new(),
        }
    }

    fn send(&self, ctx: &mut Context<'_>, dst: NodeId, ty: TpcType, txid: u32) {
        let pkt = TpcPacket {
            ty,
            txid,
            sender: ctx.node(),
        };
        let mut body = vec![pfi_rudp::service::RELIABLE];
        body.extend_from_slice(&pkt.to_bytes());
        ctx.send_down(Message::new(ctx.node(), dst, &body));
    }

    fn decide(&mut self, ctx: &mut Context<'_>, txid: u32, commit: bool) {
        let Some(tx) = self.coord.get_mut(&txid) else {
            return;
        };
        if tx.decision.is_some() {
            return;
        }
        tx.decision = Some(commit);
        if let Some(t) = tx.vote_timer.take() {
            ctx.cancel_timer(t);
        }
        ctx.emit(TpcEvent::DecisionMade { txid, commit });
        let ty = if commit {
            TpcType::Commit
        } else {
            TpcType::Abort
        };
        let targets: Vec<NodeId> = tx.participants.clone();
        for p in targets {
            self.send(ctx, p, ty, txid);
        }
        ctx.set_timer(self.config.decision_retry, token(txid, TIMER_RETRY));
    }
}

impl Default for TpcLayer {
    fn default() -> Self {
        Self::new(TpcConfig::default())
    }
}

impl Layer for TpcLayer {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "tpc"
    }

    fn push(&mut self, msg: Message, ctx: &mut Context<'_>) {
        let _ = (msg, ctx);
    }

    fn pop(&mut self, msg: Message, ctx: &mut Context<'_>) {
        let Some(pkt) = TpcPacket::parse(msg.bytes()) else {
            return;
        };
        let txid = pkt.txid;
        match pkt.ty {
            TpcType::Prepare => {
                if self.part.contains_key(&txid) {
                    return; // duplicate prepare
                }
                let yes = self.vote_yes;
                let state = if yes {
                    TpcState::Prepared
                } else {
                    TpcState::Aborted
                };
                self.part.insert(
                    txid,
                    PartTx {
                        coordinator: pkt.sender,
                        state,
                    },
                );
                ctx.emit(TpcEvent::Voted { txid, yes });
                self.send(
                    ctx,
                    pkt.sender,
                    if yes {
                        TpcType::VoteYes
                    } else {
                        TpcType::VoteNo
                    },
                    txid,
                );
                if yes {
                    ctx.set_timer(
                        self.config.uncertainty_timeout,
                        token(txid, TIMER_UNCERTAIN),
                    );
                }
            }
            TpcType::VoteYes | TpcType::VoteNo => {
                let all_yes = {
                    let Some(tx) = self.coord.get_mut(&txid) else {
                        return;
                    };
                    if tx.decision.is_some() {
                        return;
                    }
                    tx.votes.insert(pkt.sender, pkt.ty == TpcType::VoteYes);
                    if pkt.ty == TpcType::VoteNo {
                        Some(false)
                    } else if tx.votes.len() == tx.participants.len()
                        && tx.votes.values().all(|v| *v)
                    {
                        Some(true)
                    } else {
                        None
                    }
                };
                if let Some(commit) = all_yes {
                    self.decide(ctx, txid, commit);
                }
            }
            TpcType::Commit | TpcType::Abort => {
                let commit = pkt.ty == TpcType::Commit;
                let Some(tx) = self.part.get_mut(&txid) else {
                    return;
                };
                match tx.state {
                    TpcState::Prepared | TpcState::Blocked => {
                        tx.state = if commit {
                            TpcState::Committed
                        } else {
                            TpcState::Aborted
                        };
                        ctx.emit(TpcEvent::DecisionApplied { txid, commit });
                    }
                    _ => {}
                }
                self.send(ctx, pkt.sender, TpcType::Ack, txid);
            }
            TpcType::Ack => {
                if let Some(tx) = self.coord.get_mut(&txid) {
                    tx.acked.insert(pkt.sender);
                }
            }
        }
    }

    fn timer(&mut self, t: u64, ctx: &mut Context<'_>) {
        let (txid, kind) = token_parts(t);
        match kind {
            TIMER_VOTE => {
                // Votes incomplete: abort.
                let undecided = self
                    .coord
                    .get(&txid)
                    .is_some_and(|tx| tx.decision.is_none());
                if undecided {
                    self.decide(ctx, txid, false);
                }
            }
            TIMER_RETRY => {
                let Some(tx) = self.coord.get_mut(&txid) else {
                    return;
                };
                let Some(commit) = tx.decision else {
                    return;
                };
                let pending: Vec<NodeId> = tx
                    .participants
                    .iter()
                    .copied()
                    .filter(|p| !tx.acked.contains(p))
                    .collect();
                if pending.is_empty() {
                    return;
                }
                tx.retries += 1;
                if tx.retries > self.config.max_decision_retries {
                    ctx.emit(TpcEvent::DecisionRetriesExhausted { txid });
                    return;
                }
                let ty = if commit {
                    TpcType::Commit
                } else {
                    TpcType::Abort
                };
                for p in pending {
                    self.send(ctx, p, ty, txid);
                }
                ctx.set_timer(self.config.decision_retry, token(txid, TIMER_RETRY));
            }
            TIMER_UNCERTAIN => {
                if let Some(tx) = self.part.get_mut(&txid) {
                    if tx.state == TpcState::Prepared {
                        tx.state = TpcState::Blocked;
                        ctx.emit(TpcEvent::Blocked { txid });
                    }
                    let _ = tx.coordinator;
                }
            }
            _ => {}
        }
    }

    fn control(&mut self, op: Box<dyn Any>, ctx: &mut Context<'_>) -> Box<dyn Any> {
        let Ok(op) = op.downcast::<TpcControl>() else {
            return Box::new(TpcReply::Unit);
        };
        let reply = match *op {
            TpcControl::Begin { txid, participants } => {
                ctx.emit(TpcEvent::Started { txid });
                for &p in &participants {
                    self.send(ctx, p, TpcType::Prepare, txid);
                }
                let vote_timer = ctx.set_timer(self.config.vote_timeout, token(txid, TIMER_VOTE));
                self.coord.insert(
                    txid,
                    CoordTx {
                        participants,
                        votes: HashMap::new(),
                        decision: None,
                        acked: HashSet::new(),
                        retries: 0,
                        vote_timer: Some(vote_timer),
                    },
                );
                TpcReply::Unit
            }
            TpcControl::SetVote { yes } => {
                self.vote_yes = yes;
                TpcReply::Unit
            }
            TpcControl::State { txid } => TpcReply::State(self.part.get(&txid).map(|t| t.state)),
            TpcControl::Decision { txid } => {
                TpcReply::Decision(self.coord.get(&txid).and_then(|t| t.decision))
            }
        };
        Box::new(reply)
    }
}

/// Packet stub for PFI layers at the 2PC ↔ rudp boundary.
#[derive(Debug, Clone, Copy, Default)]
pub struct TpcStub;

impl PacketStub for TpcStub {
    fn clone_box(&self) -> Option<Box<dyn PacketStub>> {
        Some(Box::new(*self))
    }

    fn protocol(&self) -> &'static str {
        "tpc"
    }

    fn type_of(&self, msg: &Message) -> Option<String> {
        TpcPacket::parse(msg.bytes()).map(|p| p.ty.name().to_string())
    }

    fn field(&self, msg: &Message, name: &str) -> Option<i64> {
        let p = TpcPacket::parse(msg.bytes())?;
        match name {
            "txid" => Some(p.txid as i64),
            "sender" => Some(p.sender.index() as i64),
            _ => None,
        }
    }

    fn set_field(&self, _msg: &mut Message, _name: &str, _value: i64) -> bool {
        false
    }

    fn generate(&self, src: NodeId, args: &[String]) -> Result<Message, String> {
        // `xInject down <TYPE> <dst> <txid>` — e.g. a forged ABORT probe.
        let ty = match args.first().map(|s| s.to_ascii_uppercase()).as_deref() {
            Some("PREPARE") => TpcType::Prepare,
            Some("COMMIT") => TpcType::Commit,
            Some("ABORT") => TpcType::Abort,
            Some("ACK") => TpcType::Ack,
            other => return Err(format!("tpc stub cannot generate {other:?}")),
        };
        let dst: u32 = args
            .get(1)
            .ok_or("missing dst")?
            .parse()
            .map_err(|_| "bad dst".to_string())?;
        let txid: u32 = args
            .get(2)
            .ok_or("missing txid")?
            .parse()
            .map_err(|_| "bad txid".to_string())?;
        let pkt = TpcPacket {
            ty,
            txid,
            sender: src,
        };
        let mut body = vec![pfi_rudp::service::RELIABLE];
        body.extend_from_slice(&pkt.to_bytes());
        Ok(Message::new(src, NodeId::new(dst), &body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_roundtrip_and_framing() {
        let p = TpcPacket {
            ty: TpcType::Commit,
            txid: 42,
            sender: NodeId::new(3),
        };
        assert_eq!(TpcPacket::parse(&p.to_bytes()), Some(p));
        let mut framed = vec![0u8];
        framed.extend_from_slice(&p.to_bytes());
        assert_eq!(TpcPacket::parse(&framed), Some(p));
        assert_eq!(TpcPacket::parse(&[1, 2, 3]), None);
        assert_eq!(TpcPacket::parse(&p.to_bytes()[..9]), None);
    }

    #[test]
    fn type_names() {
        for ty in [
            TpcType::Prepare,
            TpcType::VoteYes,
            TpcType::VoteNo,
            TpcType::Commit,
            TpcType::Abort,
            TpcType::Ack,
        ] {
            assert_eq!(TpcType::from_byte(ty.to_byte()), Some(ty));
            assert!(!ty.name().is_empty());
        }
        assert_eq!(TpcType::from_byte(0), None);
    }

    #[test]
    fn stub_recognises_and_generates() {
        let p = TpcPacket {
            ty: TpcType::Prepare,
            txid: 7,
            sender: NodeId::new(0),
        };
        let m = Message::new(NodeId::new(0), NodeId::new(1), &p.to_bytes());
        assert_eq!(TpcStub.type_of(&m).as_deref(), Some("PREPARE"));
        assert_eq!(TpcStub.field(&m, "txid"), Some(7));
        let args: Vec<String> = ["ABORT", "2", "9"].iter().map(|s| s.to_string()).collect();
        let forged = TpcStub.generate(NodeId::new(0), &args).unwrap();
        let parsed = TpcPacket::parse(forged.bytes()).unwrap();
        assert_eq!(parsed.ty, TpcType::Abort);
        assert_eq!(parsed.txid, 9);
    }
}
