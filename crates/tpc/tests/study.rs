//! The fault-injection study of two-phase commit — the paper's technique
//! applied to one more prototype distributed protocol (future work (iii)).
//!
//! Stack per node: `[TpcLayer, PfiLayer(TpcStub), RudpLayer]`.

use pfi_core::{Filter, PfiControl, PfiLayer, PfiReply};
use pfi_rudp::RudpLayer;
use pfi_sim::{NodeId, SimDuration, World};
use pfi_tpc::{TpcControl, TpcEvent, TpcLayer, TpcReply, TpcState, TpcStub};

const TPC: usize = 0;
const PFI: usize = 1;

fn cluster(n: u32) -> (World, Vec<NodeId>) {
    let mut w = World::new(2);
    let nodes: Vec<NodeId> = (0..n)
        .map(|_| {
            w.add_node(vec![
                Box::new(TpcLayer::default()),
                Box::new(PfiLayer::new(Box::new(TpcStub))),
                Box::new(RudpLayer::default()),
            ])
        })
        .collect();
    (w, nodes)
}

fn begin(w: &mut World, coord: NodeId, txid: u32, participants: &[NodeId]) {
    w.control::<TpcReply>(
        coord,
        TPC,
        TpcControl::Begin {
            txid,
            participants: participants.to_vec(),
        },
    );
}

fn state(w: &mut World, node: NodeId, txid: u32) -> Option<TpcState> {
    w.control::<TpcReply>(node, TPC, TpcControl::State { txid })
        .expect_state()
}

fn decision(w: &mut World, coord: NodeId, txid: u32) -> Option<bool> {
    w.control::<TpcReply>(coord, TPC, TpcControl::Decision { txid })
        .expect_decision()
}

#[test]
fn happy_path_commits_everywhere() {
    let (mut w, n) = cluster(4);
    begin(&mut w, n[0], 1, &n[1..]);
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(decision(&mut w, n[0], 1), Some(true));
    for &p in &n[1..] {
        assert_eq!(state(&mut w, p, 1), Some(TpcState::Committed), "{p}");
    }
}

#[test]
fn one_no_vote_aborts_globally() {
    let (mut w, n) = cluster(4);
    w.control::<TpcReply>(n[2], TPC, TpcControl::SetVote { yes: false });
    begin(&mut w, n[0], 1, &n[1..]);
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(decision(&mut w, n[0], 1), Some(false));
    assert_eq!(state(&mut w, n[1], 1), Some(TpcState::Aborted));
    assert_eq!(state(&mut w, n[2], 1), Some(TpcState::Aborted));
    assert_eq!(state(&mut w, n[3], 1), Some(TpcState::Aborted));
}

#[test]
fn dropped_vote_times_out_into_abort() {
    let (mut w, n) = cluster(3);
    // The PFI layer on participant 2 swallows its outgoing vote.
    let drop_votes = Filter::script(r#"if {[msg_type] == "VOTE_YES"} { xDrop }"#).unwrap();
    let _: PfiReply = w.control(n[2], PFI, PfiControl::SetSendFilter(drop_votes));
    begin(&mut w, n[0], 1, &n[1..]);
    w.run_for(SimDuration::from_secs(10));
    assert_eq!(
        decision(&mut w, n[0], 1),
        Some(false),
        "missing vote must abort"
    );
    assert_eq!(state(&mut w, n[1], 1), Some(TpcState::Aborted));
    // Participant 2 is prepared and receives the abort decision too.
    assert_eq!(state(&mut w, n[2], 1), Some(TpcState::Aborted));
}

#[test]
fn coordinator_crash_after_prepare_blocks_participants() {
    // THE classic 2PC flaw, staged deterministically: the coordinator dies
    // after its PREPAREs leave but before any decision can go out. The
    // PFI layer pins the crash point exactly — phase-2 traffic never
    // leaves — then the node halts for good; prepared participants are
    // stuck in uncertainty, allowed to neither commit nor abort.
    let (mut w, n) = cluster(3);
    let die_before_phase2 =
        Filter::script(r#"if {[msg_type] == "COMMIT" || [msg_type] == "ABORT"} { xDrop }"#)
            .unwrap();
    let _: PfiReply = w.control(n[0], PFI, PfiControl::SetSendFilter(die_before_phase2));
    begin(&mut w, n[0], 1, &n[1..]);
    let coord = n[0];
    w.schedule_in(SimDuration::from_secs(1), move |w| w.crash(coord));
    w.run_for(SimDuration::from_secs(30));
    for &p in &n[1..] {
        assert_eq!(
            state(&mut w, p, 1),
            Some(TpcState::Blocked),
            "{p} must be blocked"
        );
    }
    let blocked_events = n[1..]
        .iter()
        .flat_map(|p| w.trace().events_of::<TpcEvent>(Some(*p)))
        .filter(|(_, e)| matches!(e, TpcEvent::Blocked { .. }))
        .count();
    assert_eq!(blocked_events, 2);
}

#[test]
fn dropped_commit_is_retried_until_delivered() {
    // The receive filter on participant 2 drops the first two COMMITs; the
    // coordinator's retry loop pushes the decision through anyway.
    let (mut w, n) = cluster(3);
    let drop_two = Filter::script(
        r#"
        if {[msg_type] == "COMMIT"} {
            incr seen
            if {$seen <= 2} { xDrop }
        }
    "#,
    )
    .unwrap();
    let _: PfiReply = w.control(n[2], PFI, PfiControl::SetRecvFilter(drop_two));
    begin(&mut w, n[0], 1, &n[1..]);
    w.run_for(SimDuration::from_secs(20));
    assert_eq!(state(&mut w, n[2], 1), Some(TpcState::Committed));
}

#[test]
fn commit_blackhole_blocks_one_participant_but_never_diverges() {
    // All COMMITs to participant 2 vanish forever: it blocks; the others
    // commit. Agreement still holds — nobody *decides* differently, one
    // node just cannot learn the decision (the liveness/blocking price).
    let (mut w, n) = cluster(3);
    let drop_all_commits = Filter::script(r#"if {[msg_type] == "COMMIT"} { xDrop }"#).unwrap();
    let _: PfiReply = w.control(n[2], PFI, PfiControl::SetRecvFilter(drop_all_commits));
    begin(&mut w, n[0], 1, &n[1..]);
    w.run_for(SimDuration::from_secs(60));
    assert_eq!(state(&mut w, n[1], 1), Some(TpcState::Committed));
    assert_eq!(state(&mut w, n[2], 1), Some(TpcState::Blocked));
    // The coordinator noticed its retries were exhausted.
    let gave_up = w
        .trace()
        .events_of::<TpcEvent>(Some(n[0]))
        .iter()
        .any(|(_, e)| matches!(e, TpcEvent::DecisionRetriesExhausted { .. }));
    assert!(gave_up);
    // Agreement invariant: no participant ever applied a conflicting
    // decision.
    let mut applied = std::collections::HashMap::new();
    for &p in &n[1..] {
        for (_, e) in w.trace().events_of::<TpcEvent>(Some(p)) {
            if let TpcEvent::DecisionApplied { txid, commit } = e {
                let prev = applied.insert(txid, commit);
                assert!(
                    prev.is_none_or(|c| c == commit),
                    "conflicting decisions for {txid}"
                );
            }
        }
    }
}

#[test]
fn forged_abort_probe_is_ignored_by_unprepared_participants() {
    // Probing: inject a spurious ABORT for an unknown transaction at a
    // participant — it must be ignored (no state is created).
    let (mut w, n) = cluster(2);
    let inject = Filter::script(
        r#"
        if {![info exists probed]} {
            set probed 1
            xInject down ABORT 1 99
        }
    "#,
    )
    .unwrap();
    let _: PfiReply = w.control(n[0], PFI, PfiControl::SetSendFilter(inject));
    // Trigger the send filter with an unrelated transaction.
    begin(&mut w, n[0], 1, &n[1..]);
    w.run_for(SimDuration::from_secs(5));
    assert_eq!(
        state(&mut w, n[1], 99),
        None,
        "forged tx must not materialise"
    );
    assert_eq!(state(&mut w, n[1], 1), Some(TpcState::Committed));
}

#[test]
fn delayed_prepare_still_commits() {
    // Timing failure on the PREPAREs: 1.5 s delay is inside the 2 s vote
    // timeout, so the transaction still commits.
    let (mut w, n) = cluster(3);
    let delay = Filter::script(r#"if {[msg_type] == "PREPARE"} { xDelay 1500 }"#).unwrap();
    let _: PfiReply = w.control(n[0], PFI, PfiControl::SetSendFilter(delay));
    begin(&mut w, n[0], 1, &n[1..]);
    w.run_for(SimDuration::from_secs(10));
    assert_eq!(decision(&mut w, n[0], 1), Some(true));
    // But a delay beyond the vote timeout aborts:
    let (mut w2, n2) = cluster(3);
    let delay_long = Filter::script(r#"if {[msg_type] == "PREPARE"} { xDelay 3000 }"#).unwrap();
    let _: PfiReply = w2.control(n2[0], PFI, PfiControl::SetSendFilter(delay_long));
    begin(&mut w2, n2[0], 1, &n2[1..]);
    w2.run_for(SimDuration::from_secs(10));
    assert_eq!(decision(&mut w2, n2[0], 1), Some(false));
}

#[test]
fn concurrent_transactions_are_independent() {
    let (mut w, n) = cluster(4);
    w.control::<TpcReply>(n[3], TPC, TpcControl::SetVote { yes: false });
    begin(&mut w, n[0], 1, &[n[1], n[2]]); // all yes → commit
    begin(&mut w, n[0], 2, &[n[2], n[3]]); // n3 votes no → abort
    w.run_for(SimDuration::from_secs(10));
    assert_eq!(decision(&mut w, n[0], 1), Some(true));
    assert_eq!(decision(&mut w, n[0], 2), Some(false));
    assert_eq!(state(&mut w, n[2], 1), Some(TpcState::Committed));
    assert_eq!(state(&mut w, n[2], 2), Some(TpcState::Aborted));
}
