//! Offline drop-in replacement for the subset of the `criterion` crate API
//! that the `pfi-bench` targets use.
//!
//! The build environment has no access to crates.io, so the real criterion
//! cannot be fetched; this shim keeps the bench sources unchanged while
//! providing a real measurement harness: per-bench calibration, warm-up,
//! repeated samples, and a median ns/iteration estimate. Results are
//! printed to stdout and written as JSON (one file per bench) so
//! `scripts/bench.sh` can assemble a tracked `BENCH_N.json`.
//!
//! Environment knobs:
//!
//! * `PFI_BENCH_SAMPLE_MS` — target wall time per sample (default 60).
//! * `PFI_BENCH_WARMUP_MS` — warm-up wall time per bench (default 150).
//! * `PFI_BENCH_SAMPLES` — overrides the per-group sample count.
//! * `PFI_BENCH_OUT` — directory for JSON results (default
//!   `<cwd>/target/pfi-bench`).
//!
//! A positional CLI argument (as passed by `cargo bench -- <filter>`)
//! selects benches whose `group/name` contains the substring; flag
//! arguments from cargo (`--bench`, …) are ignored.

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// How a group's element count relates to one iteration, for reporting
/// throughput next to latency.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// One iteration processes this many logical elements.
    Elements(u64),
    /// One iteration processes this many bytes.
    Bytes(u64),
}

/// Measurement state handed to each bench closure; drives the timed loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f` (the criterion fast-path protocol).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One finished measurement, as recorded to JSON.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    bench: String,
    median_ns: f64,
    mean_ns: f64,
    samples: usize,
    iters_per_sample: u64,
    throughput: Option<Throughput>,
}

impl Record {
    fn elems_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if self.median_ns > 0.0 => {
                Some(n as f64 * 1e9 / self.median_ns)
            }
            _ => None,
        }
    }

    fn to_json(&self) -> String {
        let thrpt = match self.elems_per_sec() {
            Some(t) => format!(", \"elements_per_sec\": {t:.1}"),
            None => String::new(),
        };
        format!(
            "{{\"group\": \"{}\", \"bench\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}{}}}",
            self.group, self.bench, self.median_ns, self.mean_ns, self.samples, self.iters_per_sample, thrpt
        )
    }
}

/// The harness entry point (mirrors `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    out_dir: PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        let out_dir = std::env::var("PFI_BENCH_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/pfi-bench"));
        Criterion { filter, out_dir }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            harness: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 12,
        }
    }

    /// Benches a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }

    fn record(&self, rec: &Record) {
        let label = if rec.group.is_empty() {
            rec.bench.clone()
        } else {
            format!("{}/{}", rec.group, rec.bench)
        };
        let thrpt = match rec.elems_per_sec() {
            Some(t) => format!("  ({:.0} elem/s)", t),
            None => String::new(),
        };
        println!("{label:<55} median {:>12.1} ns/iter{thrpt}", rec.median_ns);
        let dir = self.out_dir.join(if rec.group.is_empty() {
            "_"
        } else {
            &rec.group
        });
        if fs::create_dir_all(&dir).is_ok() {
            let _ = fs::write(dir.join(format!("{}.json", rec.bench)), rec.to_json());
        }
    }
}

/// A group of related benches (mirrors `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares how many elements one iteration processes.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measures one bench function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.harness.filter {
            if !label.contains(filter.as_str()) {
                return self;
            }
        }
        let sample_ms = env_u64("PFI_BENCH_SAMPLE_MS", 60);
        let warmup_ms = env_u64("PFI_BENCH_WARMUP_MS", 150);
        let samples = env_u64("PFI_BENCH_SAMPLES", 0) as usize;
        let samples = if samples > 0 {
            samples
        } else {
            self.sample_size
        };

        // Calibrate: how many iterations fit in one sample window?
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters = ((sample_ms as f64 * 1e6) / per_iter.as_nanos() as f64).clamp(1.0, 1e9) as u64;

        // Warm up (caches, allocator, branch predictors).
        let warm_deadline = Instant::now() + Duration::from_millis(warmup_ms);
        while Instant::now() < warm_deadline {
            let mut wb = Bencher {
                iters: iters.clamp(1, 1_000),
                elapsed: Duration::ZERO,
            };
            f(&mut wb);
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut sb = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut sb);
            per_iter_ns.push(sb.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = if per_iter_ns.len() % 2 == 1 {
            per_iter_ns[per_iter_ns.len() / 2]
        } else {
            (per_iter_ns[per_iter_ns.len() / 2 - 1] + per_iter_ns[per_iter_ns.len() / 2]) / 2.0
        };
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;

        let rec = Record {
            group: self.name.clone(),
            bench: id.to_string(),
            median_ns: median,
            mean_ns: mean,
            samples,
            iters_per_sample: iters,
            throughput: self.throughput,
        };
        self.harness.record(&rec);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Builds a function that runs each target against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Builds `main` from one or more group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        std::env::set_var("PFI_BENCH_SAMPLE_MS", "1");
        std::env::set_var("PFI_BENCH_WARMUP_MS", "1");
        let tmp = std::env::temp_dir().join("pfi-criterion-shim-test");
        std::env::set_var("PFI_BENCH_OUT", &tmp);
        let mut c = Criterion {
            filter: None,
            out_dir: tmp.clone(),
        };
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        g.sample_size(3);
        g.bench_function("count", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
        let json = fs::read_to_string(tmp.join("shim").join("count.json")).unwrap();
        assert!(json.contains("\"group\": \"shim\""), "{json}");
        assert!(json.contains("median_ns"), "{json}");
        assert!(json.contains("elements_per_sec"), "{json}");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let tmp = std::env::temp_dir().join("pfi-criterion-shim-filtered");
        let _ = fs::remove_dir_all(&tmp);
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            out_dir: tmp.clone(),
        };
        let mut g = c.benchmark_group("skipped");
        g.bench_function("bench", |b| b.iter(|| 1 + 1));
        g.finish();
        assert!(!tmp.join("skipped").exists());
    }
}
