//! Compile-once caches for scripts and expressions.
//!
//! The interpreter historically re-parsed `while`/`for`/`foreach`/`if`
//! bodies, `expr` arguments, and `proc` bodies from source on every
//! evaluation — the classic pre-Tcl-8.0 performance trap. These caches key
//! compiled artifacts by their source string so each distinct source parses
//! exactly once per interpreter, no matter how many times the per-message
//! eval loop re-enters it.
//!
//! Invariants:
//!
//! * Entries are immutable once inserted (`Arc<Script>` / `Arc<ExprAst>`);
//!   a hit and a fresh parse of the same source are observationally
//!   identical, so caching can never change evaluation results.
//! * The cache is bounded: when `capacity` entries are exceeded, the oldest
//!   insertion is evicted (FIFO). Filters loop over a small, fixed set of
//!   bodies, so recency tracking buys nothing over insertion order here.
//! * A capacity of 0 disables caching entirely (every lookup is a miss);
//!   this is the "cold path" used to cross-check determinism.
//! * Hit/miss counters are monotonic and observable via [`CacheStats`] so
//!   embedders can assert that warm paths never re-parse.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A snapshot of one cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to parse (includes lookups with caching disabled).
    pub misses: u64,
    /// Entries evicted to stay within the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Maximum resident entries (0 = caching disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded, source-keyed, FIFO-evicting cache of compiled artifacts.
#[derive(Debug)]
pub(crate) struct SourceCache<V> {
    map: HashMap<Arc<str>, Arc<V>>,
    /// Insertion order; front = oldest = next eviction victim.
    order: VecDeque<Arc<str>>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Manual impl: cloning shares the `Arc`-held artifacts (they are immutable
/// once inserted), so no `V: Clone` bound is needed — which is what lets an
/// interpreter holding caches of non-`Clone` ASTs be cloned for snapshots.
impl<V> Clone for SourceCache<V> {
    fn clone(&self) -> Self {
        SourceCache {
            map: self.map.clone(),
            order: self.order.clone(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

impl<V> SourceCache<V> {
    pub(crate) fn new(capacity: usize) -> Self {
        SourceCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `src`, compiling with `compile` on a miss. The compiled
    /// artifact is shared (`Arc`), so callers keep it alive across evictions.
    pub(crate) fn get_or_insert<E>(
        &mut self,
        src: &str,
        compile: impl FnOnce(&str) -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        if let Some(v) = self.map.get(src) {
            self.hits += 1;
            return Ok(Arc::clone(v));
        }
        self.misses += 1;
        let v = Arc::new(compile(src)?);
        if self.capacity == 0 {
            return Ok(v);
        }
        if self.map.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        let key: Arc<str> = Arc::from(src);
        self.order.push_back(Arc::clone(&key));
        self.map.insert(key, Arc::clone(&v));
        Ok(v)
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.map.len(),
            capacity: self.capacity,
        }
    }

    /// Drops all entries; counters survive so regressions stay visible.
    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Changes the bound, evicting oldest entries if the new bound is
    /// tighter. A capacity of 0 disables caching.
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.map.len() > capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
                self.evictions += 1;
            } else {
                break;
            }
        }
        if capacity == 0 {
            self.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_compile(s: &str) -> Result<String, ()> {
        Ok(s.to_uppercase())
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c: SourceCache<String> = SourceCache::new(8);
        assert_eq!(
            c.stats(),
            CacheStats {
                capacity: 8,
                ..Default::default()
            }
        );
        c.get_or_insert("a", ok_compile).unwrap();
        c.get_or_insert("a", ok_compile).unwrap();
        c.get_or_insert("b", ok_compile).unwrap();
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 2, 2));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn same_source_compiles_once() {
        let mut c: SourceCache<String> = SourceCache::new(4);
        let mut compiles = 0;
        for _ in 0..10 {
            c.get_or_insert("src", |s| -> Result<String, ()> {
                compiles += 1;
                Ok(s.to_string())
            })
            .unwrap();
        }
        assert_eq!(compiles, 1);
        assert_eq!(c.stats().hits, 9);
    }

    #[test]
    fn fifo_eviction_at_bound() {
        let mut c: SourceCache<String> = SourceCache::new(2);
        c.get_or_insert("a", ok_compile).unwrap();
        c.get_or_insert("b", ok_compile).unwrap();
        c.get_or_insert("c", ok_compile).unwrap(); // evicts "a"
        let s = c.stats();
        assert_eq!((s.len, s.evictions), (2, 1));
        c.get_or_insert("a", ok_compile).unwrap(); // re-miss: was evicted
        assert_eq!(c.stats().misses, 4);
        c.get_or_insert("c", ok_compile).unwrap(); // still resident
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: SourceCache<String> = SourceCache::new(0);
        c.get_or_insert("a", ok_compile).unwrap();
        c.get_or_insert("a", ok_compile).unwrap();
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (0, 2, 0));
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let mut c: SourceCache<String> = SourceCache::new(4);
        assert!(c.get_or_insert("bad", |_| Err::<String, ()>(())).is_err());
        assert_eq!(c.stats().len, 0);
        // A later good compile of the same source is a miss, not a hit.
        c.get_or_insert("bad", ok_compile).unwrap();
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 0,
                misses: 2,
                evictions: 0,
                len: 1,
                capacity: 4
            }
        );
    }

    #[test]
    fn shrinking_capacity_evicts_oldest() {
        let mut c: SourceCache<String> = SourceCache::new(4);
        for k in ["a", "b", "c", "d"] {
            c.get_or_insert(k, ok_compile).unwrap();
        }
        c.set_capacity(2);
        let s = c.stats();
        assert_eq!((s.len, s.evictions, s.capacity), (2, 2, 2));
        c.get_or_insert("d", ok_compile).unwrap();
        assert_eq!(c.stats().hits, 1, "newest entries survive the shrink");
    }

    #[test]
    fn rc_survives_eviction() {
        let mut c: SourceCache<String> = SourceCache::new(1);
        let a = c.get_or_insert("a", ok_compile).unwrap();
        c.get_or_insert("b", ok_compile).unwrap(); // evicts "a"
        assert_eq!(*a, "A", "caller's Arc outlives the cache entry");
    }
}
