//! The `expr` evaluator.
//!
//! Tcl's `expr` takes a string (typically a braced word, so substitutions
//! are deferred) and evaluates it with its own `$var`/`[cmd]` substitution,
//! numeric coercion, short-circuiting boolean operators, and math functions.
//!
//! Evaluation is split into two phases so expression sources compile once:
//! [`parse_expr`] turns a source string into a resolver-free [`ExprAst`]
//! (cacheable, shareable), and [`eval_ast`] walks that tree resolving
//! `$var`/`[cmd]` substitutions lazily through a [`Resolver`]. Laziness means
//! `&&`/`||`/`?:` short-circuit both arithmetic errors *and* substitutions in
//! the untaken branch (e.g. `$n != 0 && $x / $n > 2` never reads the second
//! `$n` when the guard fails), matching Tcl's deferred-substitution
//! semantics for braced expressions.

use crate::error::ScriptError;

/// Resolves `$var` and `[command]` substitutions inside an expression.
pub(crate) trait Resolver {
    fn var(&mut self, name: &str) -> Result<String, ScriptError>;
    fn cmd(&mut self, script: &str) -> Result<String, ScriptError>;

    /// A variable as an `expr` operand. The default goes through
    /// [`var`](Resolver::var); the interpreter overrides it to parse from
    /// a borrowed value, skipping the clone on the hot operand path.
    fn var_value(&mut self, name: &str) -> Result<Value, ScriptError> {
        Ok(Value::from_tcl(&self.var(name)?))
    }
}

/// A Tcl value as seen by `expr`: integer, double, or string.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Int(i64),
    Dbl(f64),
    Str(String),
}

impl Value {
    /// Interprets a Tcl string as a value (integers, hex integers, doubles,
    /// otherwise string).
    pub(crate) fn from_tcl(s: &str) -> Value {
        let t = s.trim();
        if t.is_empty() {
            return Value::Str(s.to_string());
        }
        if let Some(i) = parse_int(t) {
            return Value::Int(i);
        }
        if let Ok(d) = t.parse::<f64>() {
            // Reject strings like "nan" propagating silently? Tcl accepts Inf/NaN forms; keep.
            return Value::Dbl(d);
        }
        Value::Str(s.to_string())
    }

    pub(crate) fn to_output(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Dbl(d) => fmt_double(*d),
            Value::Str(s) => s.clone(),
        }
    }

    fn truthy(&self) -> Result<bool, ScriptError> {
        match self {
            Value::Int(i) => Ok(*i != 0),
            Value::Dbl(d) => Ok(*d != 0.0),
            Value::Str(s) => match s.trim().to_ascii_lowercase().as_str() {
                "true" | "yes" | "on" => Ok(true),
                "false" | "no" | "off" => Ok(false),
                other => Err(ScriptError::new(format!(
                    "expected boolean value but got \"{other}\""
                ))),
            },
        }
    }

    fn numeric(&self) -> Option<Value> {
        match self {
            Value::Int(_) | Value::Dbl(_) => Some(self.clone()),
            Value::Str(s) => match Value::from_tcl(s) {
                v @ (Value::Int(_) | Value::Dbl(_)) => Some(v),
                Value::Str(_) => None,
            },
        }
    }
}

fn parse_int(t: &str) -> Option<i64> {
    let (neg, body) = match t.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, t.strip_prefix('+').unwrap_or(t)),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        if body.is_empty() || !body.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

/// Formats a double the way Tcl prints expr results: integral values keep a
/// trailing `.0` so the type stays visible.
pub(crate) fn fmt_double(d: f64) -> String {
    if d.is_finite() && d.fract() == 0.0 && d.abs() < 1e16 {
        format!("{d:.1}")
    } else {
        format!("{d}")
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Val(Value),
    /// `$name` — resolved through the [`Resolver`] at eval time.
    Var(String),
    /// `$name(index)` — the raw index text may itself contain `$vars`,
    /// resolved at eval time.
    ArrVar(String, String),
    /// `[script]` — run through the [`Resolver`] at eval time.
    Cmd(String),
    Ident(String),
    Op(&'static str),
    LParen,
    RParen,
    Comma,
}

fn tokenize(src: &str) -> Result<Vec<Tok>, ScriptError> {
    let chars: Vec<char> = src.chars().collect();
    let mut pos = 0usize;
    let mut toks = Vec::new();
    while pos < chars.len() {
        let c = chars[pos];
        if c.is_whitespace() {
            pos += 1;
            continue;
        }
        if c.is_ascii_digit()
            || (c == '.' && chars.get(pos + 1).is_some_and(|n| n.is_ascii_digit()))
        {
            let start = pos;
            let mut is_dbl = false;
            while pos < chars.len() {
                let c = chars[pos];
                if c.is_ascii_digit() {
                    pos += 1;
                } else if c == '.' {
                    is_dbl = true;
                    pos += 1;
                } else if c == 'e' || c == 'E' {
                    // Exponent (only if followed by digit or sign+digit).
                    let next = chars.get(pos + 1).copied();
                    let next2 = chars.get(pos + 2).copied();
                    if next.is_some_and(|n| n.is_ascii_digit())
                        || (matches!(next, Some('+') | Some('-'))
                            && next2.is_some_and(|n| n.is_ascii_digit()))
                    {
                        is_dbl = true;
                        pos += 2;
                    } else {
                        break;
                    }
                } else if (c == 'x' || c == 'X') && pos == start + 1 && chars[start] == '0' {
                    pos += 1;
                    while pos < chars.len() && chars[pos].is_ascii_hexdigit() {
                        pos += 1;
                    }
                    break;
                } else {
                    break;
                }
            }
            let text: String = chars[start..pos].iter().collect();
            let v = if is_dbl {
                Value::Dbl(
                    text.parse::<f64>()
                        .map_err(|_| ScriptError::new(format!("invalid number \"{text}\"")))?,
                )
            } else {
                Value::Int(
                    parse_int(&text)
                        .ok_or_else(|| ScriptError::new(format!("invalid number \"{text}\"")))?,
                )
            };
            toks.push(Tok::Val(v));
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = pos;
            while pos < chars.len() && (chars[pos].is_ascii_alphanumeric() || chars[pos] == '_') {
                pos += 1;
            }
            toks.push(Tok::Ident(chars[start..pos].iter().collect()));
            continue;
        }
        match c {
            '$' => {
                pos += 1;
                let name = if chars.get(pos) == Some(&'{') {
                    pos += 1;
                    let start = pos;
                    while pos < chars.len() && chars[pos] != '}' {
                        pos += 1;
                    }
                    if pos >= chars.len() {
                        return Err(ScriptError::new("missing close-brace for variable name"));
                    }
                    let n: String = chars[start..pos].iter().collect();
                    pos += 1;
                    n
                } else {
                    let start = pos;
                    while pos < chars.len()
                        && (chars[pos].is_ascii_alphanumeric() || chars[pos] == '_')
                    {
                        pos += 1;
                    }
                    if pos == start {
                        return Err(ScriptError::new("invalid character \"$\" in expression"));
                    }
                    chars[start..pos].iter().collect()
                };
                // `$name(index)`: an array element; `$vars` inside the
                // index are resolved too (e.g. `$counts($type)`), but only
                // at eval time so the token stream stays cacheable.
                if chars.get(pos) == Some(&'(') {
                    pos += 1;
                    let mut index = String::new();
                    let mut depth = 1usize;
                    while pos < chars.len() {
                        let c = chars[pos];
                        match c {
                            '(' => depth += 1,
                            ')' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        index.push(c);
                        pos += 1;
                    }
                    if depth != 0 {
                        return Err(ScriptError::new("missing close-paren for array index"));
                    }
                    pos += 1;
                    toks.push(Tok::ArrVar(name, index));
                } else {
                    toks.push(Tok::Var(name));
                }
            }
            '[' => {
                pos += 1;
                let start = pos;
                let mut depth = 1usize;
                while pos < chars.len() {
                    match chars[pos] {
                        '\\' => pos += 1,
                        '[' => depth += 1,
                        ']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    pos += 1;
                }
                if depth != 0 {
                    return Err(ScriptError::new("missing close-bracket in expression"));
                }
                let script: String = chars[start..pos].iter().collect();
                pos += 1;
                toks.push(Tok::Cmd(script));
            }
            '"' => {
                pos += 1;
                let mut s = String::new();
                loop {
                    if pos >= chars.len() {
                        return Err(ScriptError::new("missing close-quote in expression"));
                    }
                    match chars[pos] {
                        '"' => {
                            pos += 1;
                            break;
                        }
                        '\\' if pos + 1 < chars.len() => {
                            s.push(chars[pos + 1]);
                            pos += 2;
                        }
                        c => {
                            s.push(c);
                            pos += 1;
                        }
                    }
                }
                toks.push(Tok::Val(Value::Str(s)));
            }
            '{' => {
                pos += 1;
                let mut depth = 1usize;
                let mut s = String::new();
                loop {
                    if pos >= chars.len() {
                        return Err(ScriptError::new("missing close-brace in expression"));
                    }
                    match chars[pos] {
                        '{' => {
                            depth += 1;
                            s.push('{');
                        }
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                pos += 1;
                                break;
                            }
                            s.push('}');
                        }
                        c => s.push(c),
                    }
                    pos += 1;
                }
                toks.push(Tok::Val(Value::Str(s)));
            }
            '(' => {
                toks.push(Tok::LParen);
                pos += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                pos += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                pos += 1;
            }
            _ => {
                let two: String = chars[pos..(pos + 2).min(chars.len())].iter().collect();
                let op2 = ["**", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||"]
                    .iter()
                    .find(|&&o| o == two);
                if let Some(&op) = op2 {
                    toks.push(Tok::Op(op));
                    pos += 2;
                } else {
                    let op1 = [
                        "+", "-", "*", "/", "%", "<", ">", "!", "~", "&", "|", "^", "?", ":",
                    ]
                    .iter()
                    .find(|&&o| o.starts_with(c));
                    match op1 {
                        Some(&op) => {
                            toks.push(Tok::Op(op));
                            pos += 1;
                        }
                        None => {
                            return Err(ScriptError::new(format!(
                                "invalid character \"{c}\" in expression"
                            )))
                        }
                    }
                }
            }
        }
    }
    Ok(toks)
}

/// Resolves `$name` substitutions inside an array index.
fn resolve_index_vars(index: &str, r: &mut dyn Resolver) -> Result<String, ScriptError> {
    let chars: Vec<char> = index.chars().collect();
    let mut out = String::new();
    let mut pos = 0usize;
    while pos < chars.len() {
        if chars[pos] == '$' {
            pos += 1;
            let start = pos;
            while pos < chars.len() && (chars[pos].is_ascii_alphanumeric() || chars[pos] == '_') {
                pos += 1;
            }
            if pos == start {
                out.push('$');
                continue;
            }
            let name: String = chars[start..pos].iter().collect();
            out.push_str(&r.var(&name)?);
        } else {
            out.push(chars[pos]);
            pos += 1;
        }
    }
    Ok(out)
}

#[derive(Debug)]
enum Node {
    Val(Value),
    /// Lazy `$name` substitution.
    Var(String),
    /// Lazy `$name(index)` substitution; the index may contain `$vars`.
    ArrVar(String, String),
    /// Lazy `[script]` substitution.
    Cmd(String),
    Unary(&'static str, Box<Node>),
    Bin(&'static str, Box<Node>, Box<Node>),
    Ternary(Box<Node>, Box<Node>, Box<Node>),
    Func(String, Vec<Node>),
}

/// A compiled expression: the parsed tree for one `expr` source string,
/// independent of any interpreter state. Compile once, evaluate many times
/// against different [`Resolver`]s.
#[derive(Debug)]
pub(crate) struct ExprAst {
    root: Node,
}

struct ExprParser {
    toks: Vec<Tok>,
    pos: usize,
}

impl ExprParser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_op(&mut self, op: &str) -> Result<(), ScriptError> {
        match self.bump() {
            Some(Tok::Op(o)) if o == op => Ok(()),
            other => Err(ScriptError::new(format!(
                "expected \"{op}\", got {other:?}"
            ))),
        }
    }

    fn parse_primary(&mut self) -> Result<Node, ScriptError> {
        match self.bump() {
            Some(Tok::Val(v)) => Ok(Node::Val(v)),
            Some(Tok::Var(name)) => Ok(Node::Var(name)),
            Some(Tok::ArrVar(name, index)) => Ok(Node::ArrVar(name, index)),
            Some(Tok::Cmd(script)) => Ok(Node::Cmd(script)),
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.parse_bp(1)?);
                            match self.bump() {
                                Some(Tok::Comma) => continue,
                                Some(Tok::RParen) => break,
                                other => {
                                    return Err(ScriptError::new(format!(
                                    "expected \",\" or \")\" in function arguments, got {other:?}"
                                )))
                                }
                            }
                        }
                    } else {
                        self.bump();
                    }
                    Ok(Node::Func(name, args))
                } else {
                    match name.to_ascii_lowercase().as_str() {
                        "true" | "yes" | "on" => Ok(Node::Val(Value::Int(1))),
                        "false" | "no" | "off" => Ok(Node::Val(Value::Int(0))),
                        "eq" | "ne" => {
                            Err(ScriptError::new(format!("misplaced operator \"{name}\"")))
                        }
                        _ => Err(ScriptError::new(format!(
                            "unknown identifier \"{name}\" in expression"
                        ))),
                    }
                }
            }
            Some(Tok::LParen) => {
                let node = self.parse_bp(1)?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(node),
                    other => Err(ScriptError::new(format!("expected \")\", got {other:?}"))),
                }
            }
            Some(Tok::Op(op)) if matches!(op, "-" | "+" | "!" | "~") => {
                let operand = self.parse_bp(13)?;
                Ok(Node::Unary(op, Box::new(operand)))
            }
            other => Err(ScriptError::new(format!(
                "unexpected token {other:?} in expression"
            ))),
        }
    }

    fn parse_bp(&mut self, min_bp: u8) -> Result<Node, ScriptError> {
        let mut lhs = self.parse_primary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op(o)) => *o,
                Some(Tok::Ident(i)) if i == "eq" || i == "ne" => {
                    if i == "eq" {
                        "eq"
                    } else {
                        "ne"
                    }
                }
                _ => break,
            };
            if op == ":" {
                break;
            }
            if op == "?" {
                if min_bp > 1 {
                    break;
                }
                self.bump();
                let mid = self.parse_bp(1)?;
                self.expect_op(":")?;
                let rhs = self.parse_bp(1)?;
                lhs = Node::Ternary(Box::new(lhs), Box::new(mid), Box::new(rhs));
                continue;
            }
            let (l_bp, r_bp) = match op {
                "||" => (2, 3),
                "&&" => (3, 4),
                "|" => (4, 5),
                "^" => (5, 6),
                "&" => (6, 7),
                "==" | "!=" | "eq" | "ne" => (7, 8),
                "<" | ">" | "<=" | ">=" => (8, 9),
                "<<" | ">>" => (9, 10),
                "+" | "-" => (10, 11),
                "*" | "/" | "%" => (11, 12),
                "**" => (14, 13), // right-associative
                _ => return Err(ScriptError::new(format!("unexpected operator \"{op}\""))),
            };
            if l_bp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.parse_bp(r_bp)?;
            lhs = Node::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }
}

/// What a static pass can learn about an `expr` source without evaluating
/// it against interpreter state: the variables it reads, the `[command]`
/// substitution scripts it would run, and — when it contains no
/// substitutions at all — its constant truth value.
///
/// Produced by [`analyze_expr`]; consumed by `pfi-lint`'s dataflow and
/// constant-condition passes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExprSummary {
    /// Names of `$var` / `$arr(index)` reads, in first-occurrence order,
    /// deduplicated. For array reads this is the bare array name.
    pub vars: Vec<String>,
    /// Raw source text of each `[command]` substitution, in order.
    pub cmd_scripts: Vec<String>,
    /// `Some(truth)` when the expression has no substitutions and folds to
    /// a value with a defined truthiness; `None` otherwise.
    pub constant: Option<bool>,
}

/// Statically analyzes an expression source string. See [`ExprSummary`].
///
/// # Errors
///
/// Returns a [`ScriptError`] if the source does not parse as an expression.
pub fn analyze_expr(src: &str) -> Result<ExprSummary, ScriptError> {
    let ast = parse_expr(src)?;
    let mut summary = ExprSummary::default();
    collect_summary(&ast.root, &mut summary);
    if summary.vars.is_empty() && summary.cmd_scripts.is_empty() {
        // No substitutions: the expression is a pure function of literals.
        // Fold it with a resolver that can never be reached.
        struct NoSubst;
        impl Resolver for NoSubst {
            fn var(&mut self, name: &str) -> Result<String, ScriptError> {
                Err(ScriptError::new(format!("unexpected var \"{name}\"")))
            }
            fn cmd(&mut self, script: &str) -> Result<String, ScriptError> {
                Err(ScriptError::new(format!("unexpected cmd \"{script}\"")))
            }
        }
        if let Ok(v) = eval_node(&ast.root, &mut NoSubst) {
            summary.constant = v.truthy().ok();
        }
    }
    let mut seen = Vec::new();
    summary.vars.retain(|v| {
        if seen.contains(v) {
            false
        } else {
            seen.push(v.clone());
            true
        }
    });
    Ok(summary)
}

/// A comparison operator as it appears in a guard atom, normalized so the
/// substitution (`[cmd]` or `$var`) is always the left-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==` / `eq`
    Eq,
    /// `!=` / `ne`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The mirror operator: what `a OP b` becomes when rewritten `b OP' a`.
    fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluates the comparison over a concrete integer pair.
    pub fn holds(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// One conjunct of a guard expression, as recovered by [`analyze_guard`].
///
/// The PFI campaign lowerer emits filter guards of the shape
/// `[msg_type] == "COMMIT" && [msg_dst] == 2` and counter tests like
/// `$c1 == 3`; this type is the static view of such conjuncts. Anything a
/// pass cannot prove the shape of degrades to [`GuardAtom::Opaque`], which
/// consumers must treat as "may be true or false".
#[derive(Debug, Clone, PartialEq)]
pub enum GuardAtom {
    /// `[cmd] == "literal"` (or the mirrored / `eq` spelling).
    CmdEqStr {
        /// The command-substitution source text, e.g. `msg_type`.
        cmd: String,
        /// The string literal it is compared against.
        value: String,
        /// `false` for `==`/`eq`, `true` for `!=`/`ne`.
        negated: bool,
    },
    /// `[cmd] OP int` (or the mirrored spelling), e.g. `[msg_len] > 8`.
    CmdCmpInt {
        /// The command-substitution source text, e.g. `msg_dst`.
        cmd: String,
        /// The normalized operator with the command on the left.
        op: CmpOp,
        /// The integer literal.
        value: i64,
    },
    /// `$var OP int` (or the mirrored spelling), e.g. `$c1 == 3`.
    VarCmpInt {
        /// The variable name.
        var: String,
        /// The normalized operator with the variable on the left.
        op: CmpOp,
        /// The integer literal.
        value: i64,
    },
    /// A conjunct no static shape was recovered for.
    Opaque,
}

/// Splits a guard expression into its top-level `&&` conjuncts and
/// classifies each as a [`GuardAtom`]. Disjunctions, ternaries, and any
/// other shape collapse to a single [`GuardAtom::Opaque`] conjunct —
/// sound for consumers that only act on atoms they fully recognize.
///
/// # Errors
///
/// Returns a [`ScriptError`] if the source does not parse as an expression.
pub fn analyze_guard(src: &str) -> Result<Vec<GuardAtom>, ScriptError> {
    let ast = parse_expr(src)?;
    let mut atoms = Vec::new();
    collect_guard(&ast.root, &mut atoms);
    Ok(atoms)
}

fn collect_guard(n: &Node, out: &mut Vec<GuardAtom>) {
    match n {
        Node::Bin("&&", a, b) => {
            collect_guard(a, out);
            collect_guard(b, out);
        }
        other => out.push(classify_atom(other)),
    }
}

fn classify_atom(n: &Node) -> GuardAtom {
    let Node::Bin(op, a, b) = n else {
        return GuardAtom::Opaque;
    };
    let cmp = match *op {
        "==" | "eq" => CmpOp::Eq,
        "!=" | "ne" => CmpOp::Ne,
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        _ => return GuardAtom::Opaque,
    };
    // Normalize so the substitution sits on the left.
    let (lhs, rhs, cmp) = match (&**a, &**b) {
        (Node::Cmd(_) | Node::Var(_), Node::Val(_)) => (&**a, &**b, cmp),
        (Node::Val(_), Node::Cmd(_) | Node::Var(_)) => (&**b, &**a, cmp.flip()),
        _ => return GuardAtom::Opaque,
    };
    let Node::Val(val) = rhs else {
        return GuardAtom::Opaque;
    };
    match (lhs, val) {
        (Node::Cmd(cmd), Value::Int(i)) => GuardAtom::CmdCmpInt {
            cmd: cmd.clone(),
            op: cmp,
            value: *i,
        },
        (Node::Cmd(cmd), Value::Str(s)) => match cmp {
            CmpOp::Eq | CmpOp::Ne => GuardAtom::CmdEqStr {
                cmd: cmd.clone(),
                value: s.clone(),
                negated: cmp == CmpOp::Ne,
            },
            _ => GuardAtom::Opaque,
        },
        (Node::Var(var), Value::Int(i)) => GuardAtom::VarCmpInt {
            var: var.clone(),
            op: cmp,
            value: *i,
        },
        _ => GuardAtom::Opaque,
    }
}

fn collect_summary(n: &Node, out: &mut ExprSummary) {
    match n {
        Node::Val(_) => {}
        Node::Var(name) => out.vars.push(name.clone()),
        Node::ArrVar(name, index) => {
            out.vars.push(name.clone());
            // `$vars` inside the index are reads too.
            collect_index_vars(index, &mut out.vars);
        }
        Node::Cmd(script) => out.cmd_scripts.push(script.clone()),
        Node::Unary(_, a) => collect_summary(a, out),
        Node::Bin(_, a, b) => {
            collect_summary(a, out);
            collect_summary(b, out);
        }
        Node::Ternary(c, t, f) => {
            collect_summary(c, out);
            collect_summary(t, out);
            collect_summary(f, out);
        }
        Node::Func(_, args) => {
            for a in args {
                collect_summary(a, out);
            }
        }
    }
}

/// Extracts `$name` reads from an array-index source fragment (mirrors
/// [`resolve_index_vars`], but statically).
fn collect_index_vars(index: &str, out: &mut Vec<String>) {
    let chars: Vec<char> = index.chars().collect();
    let mut pos = 0usize;
    while pos < chars.len() {
        if chars[pos] == '$' {
            pos += 1;
            let start = pos;
            while pos < chars.len() && (chars[pos].is_ascii_alphanumeric() || chars[pos] == '_') {
                pos += 1;
            }
            if pos > start {
                out.push(chars[start..pos].iter().collect());
            }
        } else {
            pos += 1;
        }
    }
}

/// Compiles an expression source string into a reusable [`ExprAst`].
pub(crate) fn parse_expr(src: &str) -> Result<ExprAst, ScriptError> {
    let toks = tokenize(src)?;
    if toks.is_empty() {
        return Err(ScriptError::new("empty expression"));
    }
    let mut p = ExprParser { toks, pos: 0 };
    let root = p.parse_bp(1)?;
    if p.pos != p.toks.len() {
        return Err(ScriptError::new("trailing tokens in expression"));
    }
    Ok(ExprAst { root })
}

/// Evaluates a compiled expression, resolving substitutions through `r`.
pub(crate) fn eval_ast(ast: &ExprAst, r: &mut dyn Resolver) -> Result<Value, ScriptError> {
    eval_node(&ast.root, r)
}

/// Evaluates a Tcl expression string, resolving substitutions through `r`.
/// One-shot convenience for tests; production paths compile with
/// [`parse_expr`] and reuse the [`ExprAst`] through the interpreter's cache.
#[cfg(test)]
pub(crate) fn eval_expr(src: &str, r: &mut dyn Resolver) -> Result<Value, ScriptError> {
    eval_ast(&parse_expr(src)?, r)
}

fn eval_node(n: &Node, r: &mut dyn Resolver) -> Result<Value, ScriptError> {
    match n {
        Node::Val(v) => Ok(v.clone()),
        Node::Var(name) => r.var_value(name),
        Node::ArrVar(name, index) => {
            let resolved = resolve_index_vars(index, r)?;
            Ok(Value::from_tcl(&r.var(&format!("{name}({resolved})"))?))
        }
        Node::Cmd(script) => Ok(Value::from_tcl(&r.cmd(script)?)),
        Node::Unary(op, a) => {
            let v = eval_node(a, r)?;
            match *op {
                "!" => Ok(Value::Int(if v.truthy()? { 0 } else { 1 })),
                "~" => match v.numeric() {
                    Some(Value::Int(i)) => Ok(Value::Int(!i)),
                    _ => Err(non_numeric(&v, "~")),
                },
                "-" => match v.numeric() {
                    Some(Value::Int(i)) => Ok(Value::Int(i.checked_neg().ok_or_else(overflow)?)),
                    Some(Value::Dbl(d)) => Ok(Value::Dbl(-d)),
                    _ => Err(non_numeric(&v, "-")),
                },
                "+" => v.numeric().ok_or_else(|| non_numeric(&v, "+")),
                _ => unreachable!(),
            }
        }
        Node::Bin(op, a, b) => eval_bin(op, a, b, r),
        Node::Ternary(c, t, f) => {
            if eval_node(c, r)?.truthy()? {
                eval_node(t, r)
            } else {
                eval_node(f, r)
            }
        }
        Node::Func(name, args) => eval_func(name, args, r),
    }
}

fn non_numeric(v: &Value, op: &str) -> ScriptError {
    ScriptError::new(format!(
        "can't use non-numeric string \"{}\" as operand of \"{op}\"",
        v.to_output()
    ))
}

fn overflow() -> ScriptError {
    ScriptError::new("integer overflow")
}

/// Tcl's integer division floors toward negative infinity.
fn floor_div(a: i64, b: i64) -> Result<i64, ScriptError> {
    if b == 0 {
        return Err(ScriptError::new("divide by zero"));
    }
    let q = a.checked_div(b).ok_or_else(overflow)?;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        Ok(q - 1)
    } else {
        Ok(q)
    }
}

/// Tcl's `%` takes the sign of the divisor.
fn floor_mod(a: i64, b: i64) -> Result<i64, ScriptError> {
    if b == 0 {
        return Err(ScriptError::new("divide by zero"));
    }
    let r = a.checked_rem(b).ok_or_else(overflow)?;
    if r != 0 && ((r < 0) != (b < 0)) {
        Ok(r + b)
    } else {
        Ok(r)
    }
}

fn eval_bin(op: &str, an: &Node, bn: &Node, r: &mut dyn Resolver) -> Result<Value, ScriptError> {
    // Short-circuit operators evaluate lazily — including substitutions.
    match op {
        "&&" => {
            if !eval_node(an, r)?.truthy()? {
                return Ok(Value::Int(0));
            }
            return Ok(Value::Int(if eval_node(bn, r)?.truthy()? { 1 } else { 0 }));
        }
        "||" => {
            if eval_node(an, r)?.truthy()? {
                return Ok(Value::Int(1));
            }
            return Ok(Value::Int(if eval_node(bn, r)?.truthy()? { 1 } else { 0 }));
        }
        _ => {}
    }
    let a = eval_node(an, r)?;
    let b = eval_node(bn, r)?;
    match op {
        "eq" => return Ok(Value::Int((a.to_output() == b.to_output()) as i64)),
        "ne" => return Ok(Value::Int((a.to_output() != b.to_output()) as i64)),
        _ => {}
    }
    // Comparisons: numeric when both are numeric, else string compare.
    if matches!(op, "==" | "!=" | "<" | ">" | "<=" | ">=") {
        let ord = match (a.numeric(), b.numeric()) {
            (Some(x), Some(y)) => match (x, y) {
                (Value::Int(i), Value::Int(j)) => i.cmp(&j),
                (x, y) => {
                    let xf = as_f64(&x);
                    let yf = as_f64(&y);
                    xf.partial_cmp(&yf).unwrap_or(std::cmp::Ordering::Equal)
                }
            },
            _ => a.to_output().cmp(&b.to_output()),
        };
        use std::cmp::Ordering::*;
        let result = match op {
            "==" => ord == Equal,
            "!=" => ord != Equal,
            "<" => ord == Less,
            ">" => ord == Greater,
            "<=" => ord != Greater,
            ">=" => ord != Less,
            _ => unreachable!(),
        };
        return Ok(Value::Int(result as i64));
    }
    // Arithmetic / bitwise: numeric operands required.
    let x = a.numeric().ok_or_else(|| non_numeric(&a, op))?;
    let y = b.numeric().ok_or_else(|| non_numeric(&b, op))?;
    match (x, y) {
        (Value::Int(i), Value::Int(j)) => {
            let v = match op {
                "+" => Value::Int(i.checked_add(j).ok_or_else(overflow)?),
                "-" => Value::Int(i.checked_sub(j).ok_or_else(overflow)?),
                "*" => Value::Int(i.checked_mul(j).ok_or_else(overflow)?),
                "/" => Value::Int(floor_div(i, j)?),
                "%" => Value::Int(floor_mod(i, j)?),
                "**" => {
                    if j < 0 {
                        Value::Dbl((i as f64).powf(j as f64))
                    } else {
                        let e: u32 = j
                            .try_into()
                            .map_err(|_| ScriptError::new("exponent too large"))?;
                        Value::Int(i.checked_pow(e).ok_or_else(overflow)?)
                    }
                }
                "<<" => {
                    check_shift(j)?;
                    Value::Int(i.checked_shl(j as u32).ok_or_else(overflow)?)
                }
                ">>" => {
                    check_shift(j)?;
                    Value::Int(i >> (j as u32))
                }
                "&" => Value::Int(i & j),
                "|" => Value::Int(i | j),
                "^" => Value::Int(i ^ j),
                _ => return Err(ScriptError::new(format!("unknown operator \"{op}\""))),
            };
            Ok(v)
        }
        (x, y) => {
            let i = as_f64(&x);
            let j = as_f64(&y);
            let v = match op {
                "+" => i + j,
                "-" => i - j,
                "*" => i * j,
                "/" => {
                    if j == 0.0 {
                        return Err(ScriptError::new("divide by zero"));
                    }
                    i / j
                }
                "**" => i.powf(j),
                "%" | "<<" | ">>" | "&" | "|" | "^" => {
                    return Err(ScriptError::new(format!(
                        "can't use floating-point value as operand of \"{op}\""
                    )))
                }
                _ => return Err(ScriptError::new(format!("unknown operator \"{op}\""))),
            };
            Ok(Value::Dbl(v))
        }
    }
}

fn check_shift(j: i64) -> Result<(), ScriptError> {
    if !(0..64).contains(&j) {
        return Err(ScriptError::new("shift amount out of range"));
    }
    Ok(())
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Dbl(d) => *d,
        Value::Str(_) => f64::NAN,
    }
}

fn eval_func(name: &str, args: &[Node], r: &mut dyn Resolver) -> Result<Value, ScriptError> {
    let vals: Vec<Value> = args
        .iter()
        .map(|a| eval_node(a, r))
        .collect::<Result<_, _>>()?;
    let need = |n: usize| -> Result<(), ScriptError> {
        if vals.len() == n {
            Ok(())
        } else {
            Err(ScriptError::new(format!(
                "wrong # args for math function \"{name}\""
            )))
        }
    };
    let numeric = |i: usize| -> Result<Value, ScriptError> {
        vals[i].numeric().ok_or_else(|| non_numeric(&vals[i], name))
    };
    let f = |i: usize| -> Result<f64, ScriptError> { Ok(as_f64(&numeric(i)?)) };
    match name {
        "abs" => {
            need(1)?;
            match numeric(0)? {
                Value::Int(i) => Ok(Value::Int(i.checked_abs().ok_or_else(overflow)?)),
                Value::Dbl(d) => Ok(Value::Dbl(d.abs())),
                Value::Str(_) => unreachable!(),
            }
        }
        "int" => {
            need(1)?;
            match numeric(0)? {
                Value::Int(i) => Ok(Value::Int(i)),
                Value::Dbl(d) => Ok(Value::Int(d.trunc() as i64)),
                Value::Str(_) => unreachable!(),
            }
        }
        "double" => {
            need(1)?;
            Ok(Value::Dbl(f(0)?))
        }
        "round" => {
            need(1)?;
            Ok(Value::Int(f(0)?.round() as i64))
        }
        "floor" => {
            need(1)?;
            Ok(Value::Dbl(f(0)?.floor()))
        }
        "ceil" => {
            need(1)?;
            Ok(Value::Dbl(f(0)?.ceil()))
        }
        "sqrt" => {
            need(1)?;
            Ok(Value::Dbl(f(0)?.sqrt()))
        }
        "exp" => {
            need(1)?;
            Ok(Value::Dbl(f(0)?.exp()))
        }
        "log" => {
            need(1)?;
            Ok(Value::Dbl(f(0)?.ln()))
        }
        "log10" => {
            need(1)?;
            Ok(Value::Dbl(f(0)?.log10()))
        }
        "sin" => {
            need(1)?;
            Ok(Value::Dbl(f(0)?.sin()))
        }
        "cos" => {
            need(1)?;
            Ok(Value::Dbl(f(0)?.cos()))
        }
        "tan" => {
            need(1)?;
            Ok(Value::Dbl(f(0)?.tan()))
        }
        "atan" => {
            need(1)?;
            Ok(Value::Dbl(f(0)?.atan()))
        }
        "atan2" => {
            need(2)?;
            Ok(Value::Dbl(f(0)?.atan2(f(1)?)))
        }
        "pow" => {
            need(2)?;
            Ok(Value::Dbl(f(0)?.powf(f(1)?)))
        }
        "fmod" => {
            need(2)?;
            Ok(Value::Dbl(f(0)? % f(1)?))
        }
        "hypot" => {
            need(2)?;
            Ok(Value::Dbl(f(0)?.hypot(f(1)?)))
        }
        "min" | "max" => {
            if vals.is_empty() {
                return Err(ScriptError::new(format!(
                    "wrong # args for math function \"{name}\""
                )));
            }
            let mut best = numeric(0)?;
            for i in 1..vals.len() {
                let v = numeric(i)?;
                let take = if name == "min" {
                    as_f64(&v) < as_f64(&best)
                } else {
                    as_f64(&v) > as_f64(&best)
                };
                if take {
                    best = v;
                }
            }
            Ok(best)
        }
        _ => Err(ScriptError::new(format!(
            "unknown math function \"{name}\""
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct MapResolver(HashMap<String, String>);
    impl Resolver for MapResolver {
        fn var(&mut self, name: &str) -> Result<String, ScriptError> {
            self.0
                .get(name)
                .cloned()
                .ok_or_else(|| ScriptError::new(format!("can't read \"{name}\": no such variable")))
        }
        fn cmd(&mut self, script: &str) -> Result<String, ScriptError> {
            // Test stub: `[double X]` returns X twice.
            if let Some(rest) = script.strip_prefix("twice ") {
                let n: i64 = rest.trim().parse().unwrap();
                return Ok((n * 2).to_string());
            }
            Err(ScriptError::new(format!("unknown cmd {script}")))
        }
    }

    fn ev(src: &str) -> Result<String, ScriptError> {
        let mut r = MapResolver(HashMap::from([
            ("x".to_string(), "10".to_string()),
            ("y".to_string(), "2.5".to_string()),
            ("s".to_string(), "hello".to_string()),
            ("zero".to_string(), "0".to_string()),
        ]));
        eval_expr(src, &mut r).map(|v| v.to_output())
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(ev("1 + 2 * 3").unwrap(), "7");
        assert_eq!(ev("(1 + 2) * 3").unwrap(), "9");
        assert_eq!(ev("2 ** 3 ** 2").unwrap(), "512"); // right assoc
        assert_eq!(ev("10 - 3 - 2").unwrap(), "5"); // left assoc
    }

    #[test]
    fn integer_division_floors() {
        assert_eq!(ev("-7 / 2").unwrap(), "-4");
        assert_eq!(ev("7 / 2").unwrap(), "3");
        assert_eq!(ev("-7 % 2").unwrap(), "1"); // sign of divisor
        assert_eq!(ev("7 % -2").unwrap(), "-1");
    }

    #[test]
    fn doubles_and_mixing() {
        assert_eq!(ev("1 / 2.0").unwrap(), "0.5");
        assert_eq!(ev("2.5 * 2").unwrap(), "5.0");
        assert_eq!(ev("1e3 + 1").unwrap(), "1001.0");
        assert_eq!(ev(".5 + .5").unwrap(), "1.0");
    }

    #[test]
    fn divide_by_zero_errors() {
        assert!(ev("1 / 0").unwrap_err().message.contains("divide by zero"));
        assert!(ev("1 % 0").is_err());
        assert!(ev("1.0 / 0").is_err());
    }

    #[test]
    fn comparisons() {
        assert_eq!(ev("3 < 10").unwrap(), "1");
        assert_eq!(ev("3 >= 10").unwrap(), "0");
        // Numeric compare even when one side is a numeric string.
        assert_eq!(ev("\"10\" == 10").unwrap(), "1");
        // Non-numeric strings compare lexicographically.
        assert_eq!(ev("\"abc\" < \"abd\"").unwrap(), "1");
        assert_eq!(ev("$s eq \"hello\"").unwrap(), "1");
        assert_eq!(ev("$s ne \"hello\"").unwrap(), "0");
    }

    #[test]
    fn logical_short_circuit() {
        assert_eq!(ev("$zero != 0 && 1 / $zero > 2").unwrap(), "0");
        assert_eq!(ev("1 || 1 / 0").unwrap(), "1");
        assert!(ev("1 && 1 / 0").is_err());
    }

    #[test]
    fn ternary() {
        assert_eq!(ev("$x > 5 ? \"big\" : \"small\"").unwrap(), "big");
        assert_eq!(ev("0 ? 1/0 : 42").unwrap(), "42");
        assert_eq!(ev("1 ? 2 : 3 + 100").unwrap(), "2");
    }

    #[test]
    fn unary_ops() {
        assert_eq!(ev("-$x").unwrap(), "-10");
        assert_eq!(ev("!0").unwrap(), "1");
        assert_eq!(ev("!3").unwrap(), "0");
        assert_eq!(ev("~0").unwrap(), "-1");
        assert_eq!(ev("- - 5").unwrap(), "5");
    }

    #[test]
    fn variables_and_command_substitution() {
        assert_eq!(ev("$x + $y").unwrap(), "12.5");
        assert_eq!(ev("[twice 21]").unwrap(), "42");
        assert_eq!(ev("[twice 3] * [twice 2]").unwrap(), "24");
        assert!(ev("$missing").is_err());
    }

    #[test]
    fn math_functions() {
        assert_eq!(ev("abs(-5)").unwrap(), "5");
        assert_eq!(ev("abs(-5.5)").unwrap(), "5.5");
        assert_eq!(ev("int(3.9)").unwrap(), "3");
        assert_eq!(ev("round(3.5)").unwrap(), "4");
        assert_eq!(ev("sqrt(16)").unwrap(), "4.0");
        assert_eq!(ev("min(3, 1, 2)").unwrap(), "1");
        assert_eq!(ev("max(3, 1, 2)").unwrap(), "3");
        assert_eq!(ev("pow(2, 10)").unwrap(), "1024.0");
        assert!(ev("nosuch(1)").is_err());
        assert!(ev("sqrt()").is_err());
    }

    #[test]
    fn bitwise_and_shift() {
        assert_eq!(ev("0x0F & 0x3C").unwrap(), "12");
        assert_eq!(ev("1 | 6").unwrap(), "7");
        assert_eq!(ev("5 ^ 1").unwrap(), "4");
        assert_eq!(ev("1 << 10").unwrap(), "1024");
        assert_eq!(ev("1024 >> 3").unwrap(), "128");
        assert!(ev("1 << 99").is_err());
        assert!(ev("1.5 & 2").is_err());
    }

    #[test]
    fn booleans_as_words() {
        assert_eq!(ev("true && on").unwrap(), "1");
        assert_eq!(ev("false || off").unwrap(), "0");
    }

    #[test]
    fn braced_string_literal() {
        assert_eq!(ev("{abc} eq {abc}").unwrap(), "1");
    }

    #[test]
    fn errors_are_reported() {
        assert!(ev("").is_err());
        assert!(ev("1 +").is_err());
        assert!(ev("(1").is_err());
        assert!(ev("1 2").is_err());
        assert!(ev("\"a\" + 1").is_err());
        assert!(ev("@").is_err());
    }

    #[test]
    fn hex_literals() {
        assert_eq!(ev("0xff").unwrap(), "255");
        assert_eq!(ev("0x10 + 1").unwrap(), "17");
    }

    #[test]
    fn overflow_detected() {
        assert!(ev("9223372036854775807 + 1").is_err());
        assert!(ev("2 ** 100").is_err());
    }

    #[test]
    fn double_formatting() {
        assert_eq!(fmt_double(2.0), "2.0");
        assert_eq!(fmt_double(2.5), "2.5");
        assert_eq!(fmt_double(0.1), "0.1");
    }

    #[test]
    fn analyze_collects_vars_and_cmds() {
        let s = analyze_expr("$x + $y * $x").unwrap();
        assert_eq!(s.vars, vec!["x", "y"]); // deduplicated, first-seen order
        assert!(s.cmd_scripts.is_empty());
        assert_eq!(s.constant, None);

        let s = analyze_expr("[msg_type] == \"ACK\" && $seen($t) > 0").unwrap();
        assert_eq!(s.vars, vec!["seen", "t"]);
        assert_eq!(s.cmd_scripts, vec!["msg_type"]);
        assert_eq!(s.constant, None);
    }

    #[test]
    fn analyze_folds_constants() {
        assert_eq!(analyze_expr("1").unwrap().constant, Some(true));
        assert_eq!(analyze_expr("0").unwrap().constant, Some(false));
        assert_eq!(analyze_expr("2 > 3").unwrap().constant, Some(false));
        assert_eq!(analyze_expr("1 + 1 == 2").unwrap().constant, Some(true));
        // Substitutions make the value unknowable statically.
        assert_eq!(analyze_expr("$x > 0").unwrap().constant, None);
        // A constant that errors (divide by zero) has no truth value.
        assert_eq!(analyze_expr("1 / 0").unwrap().constant, None);
        // A non-boolean string constant has no truth value either.
        assert_eq!(analyze_expr("{hello}").unwrap().constant, None);
    }

    #[test]
    fn analyze_guard_recovers_lowered_conjuncts() {
        let atoms = analyze_guard("[msg_type] == \"COMMIT\" && [msg_dst] == 2").unwrap();
        assert_eq!(
            atoms,
            vec![
                GuardAtom::CmdEqStr {
                    cmd: "msg_type".into(),
                    value: "COMMIT".into(),
                    negated: false,
                },
                GuardAtom::CmdCmpInt {
                    cmd: "msg_dst".into(),
                    op: CmpOp::Eq,
                    value: 2,
                },
            ]
        );
        let atoms = analyze_guard("$c1 == 3").unwrap();
        assert_eq!(
            atoms,
            vec![GuardAtom::VarCmpInt {
                var: "c1".into(),
                op: CmpOp::Eq,
                value: 3,
            }]
        );
        // Mirrored spellings normalize; the operator flips with them.
        let atoms = analyze_guard("8 < [msg_len]").unwrap();
        assert_eq!(
            atoms,
            vec![GuardAtom::CmdCmpInt {
                cmd: "msg_len".into(),
                op: CmpOp::Gt,
                value: 8,
            }]
        );
        // Disjunctions and unrecognized shapes degrade to Opaque.
        let atoms = analyze_guard("[msg_type] eq {ACK} || $x > 0").unwrap();
        assert_eq!(atoms, vec![GuardAtom::Opaque]);
        let atoms = analyze_guard("$a == $b && [msg_len] >= 4").unwrap();
        assert_eq!(
            atoms,
            vec![
                GuardAtom::Opaque,
                GuardAtom::CmdCmpInt {
                    cmd: "msg_len".into(),
                    op: CmpOp::Ge,
                    value: 4,
                },
            ]
        );
    }

    #[test]
    fn cmp_op_holds() {
        assert!(CmpOp::Eq.holds(3, 3));
        assert!(CmpOp::Ne.holds(3, 4));
        assert!(CmpOp::Lt.holds(3, 4));
        assert!(CmpOp::Le.holds(4, 4));
        assert!(CmpOp::Gt.holds(5, 4));
        assert!(CmpOp::Ge.holds(4, 4));
        assert!(!CmpOp::Eq.holds(3, 4));
    }

    #[test]
    fn analyze_rejects_malformed_sources() {
        assert!(analyze_expr("1 +").is_err());
        assert!(analyze_expr("").is_err());
    }
}
