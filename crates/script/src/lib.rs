//! # pfi-script — a Tcl-subset interpreter for fault-injection scripts
//!
//! The paper argues that fault-injection scripts should be written in "a
//! popular interpreted language with a collection of predefined libraries"
//! and chooses Tcl. This crate is a from-scratch implementation of the Tcl
//! subset those scripts need: Tcl word/substitution rules, `expr`, control
//! flow, procs, strings, and lists — plus a [`Host`] trait through which the
//! embedding application (the PFI layer) exposes commands like `msg_type`,
//! `xDrop`, and `xDelay`, exactly as Tcl extensions written in C would be.
//!
//! # Examples
//!
//! Plain scripting:
//!
//! ```
//! use pfi_script::{Interp, NoHost};
//!
//! let mut interp = Interp::new();
//! let out = interp.eval(&mut NoHost, r#"
//!     proc classify {n} {
//!         if {$n % 2 == 0} { return even } else { return odd }
//!     }
//!     classify 7
//! "#).unwrap();
//! assert_eq!(out, "odd");
//! ```
//!
//! Host commands (the PFI extension mechanism):
//!
//! ```
//! use pfi_script::{Host, Interp, ScriptError};
//!
//! struct Counter(u32);
//! impl Host for Counter {
//!     fn call(&mut self, _i: &mut Interp, cmd: &str, _args: &[String])
//!         -> Option<Result<String, ScriptError>>
//!     {
//!         (cmd == "bump").then(|| { self.0 += 1; Ok(self.0.to_string()) })
//!     }
//! }
//!
//! let mut interp = Interp::new();
//! let mut host = Counter(0);
//! assert_eq!(interp.eval(&mut host, "bump; bump; bump").unwrap(), "3");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builtins;
mod cache;
mod error;
mod expr;
mod interp;
mod list;
mod parse;

pub use builtins::{builtins, lookup_builtin, BuiltinInfo};
pub use cache::CacheStats;
pub use error::{ScriptError, ScriptErrorKind};
pub use expr::{analyze_expr, analyze_guard, CmpOp, ExprSummary, GuardAtom};
pub use interp::{Host, Interp, NoHost};
pub use list::{glob_match, list_format, list_parse};
pub use parse::{Command, Part, Script, Span, Word};
