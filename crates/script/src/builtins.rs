//! The interpreter's builtin command table, exported for static analysis.
//!
//! `pfi-lint` resolves statically-known command words against this table
//! (plus the host's command table and script-local `proc` definitions)
//! and checks argument counts without running anything. The table is the
//! source of truth for *names and arities only* — semantics live in
//! `interp.rs`; a mismatch between the two is a bug caught by
//! `table_matches_the_interpreter` below.

/// Name and arity bounds for one interpreter builtin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuiltinInfo {
    /// The command word.
    pub name: &'static str,
    /// Minimum number of arguments (after the command word).
    pub min_args: usize,
    /// Maximum number of arguments, or `None` for variadic commands.
    pub max_args: Option<usize>,
}

impl BuiltinInfo {
    /// Whether `n` arguments is an acceptable count for this builtin.
    pub fn accepts(&self, n: usize) -> bool {
        n >= self.min_args && self.max_args.is_none_or(|max| n <= max)
    }
}

const fn b(name: &'static str, min_args: usize, max_args: Option<usize>) -> BuiltinInfo {
    BuiltinInfo {
        name,
        min_args,
        max_args,
    }
}

/// Every builtin the interpreter dispatches, sorted by name.
///
/// `if` and `switch` are syntactically variadic (`elseif`/`else` chains,
/// optional `-exact`/`-glob` flags), so their upper bounds are `None` even
/// though the interpreter enforces more structure at runtime.
const TABLE: &[BuiltinInfo] = &[
    b("append", 1, None),
    b("array", 2, Some(2)),
    b("break", 0, Some(0)),
    b("catch", 1, Some(2)),
    b("concat", 0, None),
    b("continue", 0, Some(0)),
    b("error", 1, Some(1)),
    b("eval", 0, None),
    b("expr", 1, None),
    b("for", 4, Some(4)),
    b("foreach", 3, Some(3)),
    b("format", 1, None),
    b("global", 0, None),
    b("if", 2, None),
    b("incr", 1, Some(2)),
    b("info", 2, Some(2)),
    b("join", 1, Some(2)),
    b("lappend", 1, None),
    b("lindex", 2, Some(2)),
    b("linsert", 3, None),
    b("list", 0, None),
    b("llength", 1, Some(1)),
    b("lrange", 3, Some(3)),
    b("lreplace", 3, None),
    b("lreverse", 1, Some(1)),
    b("lsearch", 2, Some(3)),
    b("lsort", 1, None),
    b("proc", 3, Some(3)),
    b("puts", 1, Some(2)),
    b("return", 0, Some(1)),
    b("set", 1, Some(2)),
    b("split", 1, Some(2)),
    b("string", 1, None),
    b("switch", 2, Some(3)),
    b("unset", 0, None),
    b("while", 2, Some(2)),
];

/// The interpreter's builtin commands with their arity bounds, sorted by
/// name (so lookups can binary-search).
pub fn builtins() -> &'static [BuiltinInfo] {
    TABLE
}

/// Looks up a builtin by command word.
pub fn lookup_builtin(name: &str) -> Option<&'static BuiltinInfo> {
    TABLE
        .binary_search_by(|info| info.name.cmp(name))
        .ok()
        .map(|i| &TABLE[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, NoHost};

    #[test]
    fn table_is_sorted_for_binary_search() {
        for pair in TABLE.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "{} >= {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn lookup_finds_every_entry() {
        for info in TABLE {
            assert_eq!(lookup_builtin(info.name), Some(info));
        }
        assert_eq!(lookup_builtin("frobnicate"), None);
    }

    #[test]
    fn accepts_bounds() {
        let set = lookup_builtin("set").unwrap();
        assert!(!set.accepts(0));
        assert!(set.accepts(1));
        assert!(set.accepts(2));
        assert!(!set.accepts(3));
        let list = lookup_builtin("list").unwrap();
        assert!(list.accepts(0));
        assert!(list.accepts(100));
    }

    /// Every table entry must actually be dispatched by the interpreter
    /// (i.e. not reach the "invalid command name" fallback), and a name
    /// missing from the table must not be a builtin.
    #[test]
    fn table_matches_the_interpreter() {
        for info in TABLE {
            // Invoke with zero args: any error is fine except the unknown-
            // command error, which would mean the table lists a ghost.
            let r = Interp::new().eval(&mut NoHost, info.name);
            if let Err(e) = r {
                assert!(
                    !e.message.contains("invalid command name"),
                    "table lists \"{}\" but the interpreter does not dispatch it",
                    info.name
                );
            }
        }
    }

    /// Below-minimum and above-maximum argument counts must be rejected at
    /// runtime for bounded builtins — the linter's arity errors are only
    /// trustworthy if the interpreter agrees.
    #[test]
    fn arity_bounds_agree_with_runtime() {
        for info in TABLE {
            if info.min_args > 0 {
                let words = vec![info.name.to_string(); 1]; // zero args
                let src = words.join(" ");
                let r = Interp::new().eval(&mut NoHost, &src);
                assert!(
                    r.is_err(),
                    "\"{src}\" should fail with too few args (min {})",
                    info.min_args
                );
            }
            if let Some(max) = info.max_args {
                let src = format!("{} {}", info.name, vec!["0"; max + 1].join(" "));
                let r = Interp::new().eval(&mut NoHost, &src);
                assert!(r.is_err(), "\"{src}\" should fail with too many args");
            }
        }
    }
}
