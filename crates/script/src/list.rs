//! Tcl list parsing and formatting, plus glob matching for `string match`
//! and `switch -glob`.
//!
//! Tcl lists are strings: elements are separated by whitespace; elements
//! containing special characters are wrapped in braces (or backslash-escaped
//! when braces cannot represent them).

use crate::error::ScriptError;

/// Splits a Tcl list string into its elements.
///
/// # Errors
///
/// Returns an error on unbalanced braces or a missing close quote.
///
/// # Examples
///
/// ```
/// use pfi_script::list_parse;
///
/// let v = list_parse("a {b c} d").unwrap();
/// assert_eq!(v, vec!["a", "b c", "d"]);
/// ```
pub fn list_parse(src: &str) -> Result<Vec<String>, ScriptError> {
    let chars: Vec<char> = src.chars().collect();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < chars.len() {
        while pos < chars.len() && chars[pos].is_whitespace() {
            pos += 1;
        }
        if pos >= chars.len() {
            break;
        }
        match chars[pos] {
            '{' => {
                pos += 1;
                let mut depth = 1usize;
                let mut elem = String::new();
                loop {
                    if pos >= chars.len() {
                        return Err(ScriptError::new("unmatched open brace in list"));
                    }
                    let c = chars[pos];
                    pos += 1;
                    match c {
                        '\\' => {
                            elem.push('\\');
                            if pos < chars.len() {
                                elem.push(chars[pos]);
                                pos += 1;
                            }
                        }
                        '{' => {
                            depth += 1;
                            elem.push('{');
                        }
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                            elem.push('}');
                        }
                        c => elem.push(c),
                    }
                }
                if pos < chars.len() && !chars[pos].is_whitespace() {
                    return Err(ScriptError::new(
                        "list element in braces followed by garbage",
                    ));
                }
                out.push(elem);
            }
            '"' => {
                pos += 1;
                let mut elem = String::new();
                loop {
                    if pos >= chars.len() {
                        return Err(ScriptError::new("unmatched open quote in list"));
                    }
                    let c = chars[pos];
                    pos += 1;
                    match c {
                        '\\' => {
                            if pos < chars.len() {
                                elem.push(unescape(chars[pos]));
                                pos += 1;
                            }
                        }
                        '"' => break,
                        c => elem.push(c),
                    }
                }
                out.push(elem);
            }
            _ => {
                let mut elem = String::new();
                while pos < chars.len() && !chars[pos].is_whitespace() {
                    let c = chars[pos];
                    pos += 1;
                    if c == '\\' && pos < chars.len() {
                        elem.push(unescape(chars[pos]));
                        pos += 1;
                    } else {
                        elem.push(c);
                    }
                }
                out.push(elem);
            }
        }
    }
    Ok(out)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

/// Joins elements into a Tcl list string, quoting as needed so that
/// [`list_parse`] recovers the original elements.
///
/// # Examples
///
/// ```
/// use pfi_script::{list_format, list_parse};
///
/// let elems = vec!["a".to_string(), "b c".to_string(), "".to_string()];
/// let s = list_format(&elems);
/// assert_eq!(list_parse(&s).unwrap(), elems);
/// ```
pub fn list_format<S: AsRef<str>>(elems: &[S]) -> String {
    let mut out = String::new();
    for (i, e) in elems.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&quote_elem(e.as_ref()));
    }
    out
}

fn needs_quoting(s: &str) -> bool {
    s.is_empty()
        || s.chars().any(|c| {
            c.is_whitespace() || matches!(c, '{' | '}' | '"' | '\\' | '[' | ']' | '$' | ';' | '#')
        })
}

fn braces_balanced(s: &str) -> bool {
    let mut depth = 0i64;
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                let _ = chars.next();
            }
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0
}

fn quote_elem(s: &str) -> String {
    if !needs_quoting(s) {
        return s.to_string();
    }
    if braces_balanced(s) && !s.ends_with('\\') {
        return format!("{{{s}}}");
    }
    // Fall back to backslash escaping.
    let mut out = String::new();
    for c in s.chars() {
        match c {
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c.is_whitespace()
                || matches!(c, '{' | '}' | '"' | '\\' | '[' | ']' | '$' | ';' | '#') =>
            {
                out.push('\\');
                out.push(c);
            }
            c => out.push(c),
        }
    }
    if out.is_empty() {
        out.push_str("{}");
    }
    out
}

/// Tcl-style glob matching (`string match`): `*` matches any run, `?` any
/// single character, `[a-z]` character classes, `\x` escapes.
///
/// # Examples
///
/// ```
/// use pfi_script::glob_match;
///
/// assert!(glob_match("AC*", "ACK"));
/// assert!(glob_match("m[12]", "m2"));
/// assert!(!glob_match("?", "ab"));
/// ```
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    glob_inner(&p, &t)
}

fn glob_inner(p: &[char], t: &[char]) -> bool {
    if p.is_empty() {
        return t.is_empty();
    }
    match p[0] {
        '*' => {
            // Collapse runs of '*'.
            let rest = &p[1..];
            (0..=t.len()).any(|i| glob_inner(rest, &t[i..]))
        }
        '?' => !t.is_empty() && glob_inner(&p[1..], &t[1..]),
        '[' => {
            if t.is_empty() {
                return false;
            }
            let close = match p.iter().position(|&c| c == ']') {
                Some(i) if i > 0 => i,
                _ => return false,
            };
            let class = &p[1..close];
            if class_matches(class, t[0]) {
                glob_inner(&p[close + 1..], &t[1..])
            } else {
                false
            }
        }
        '\\' if p.len() > 1 => !t.is_empty() && p[1] == t[0] && glob_inner(&p[2..], &t[1..]),
        c => !t.is_empty() && c == t[0] && glob_inner(&p[1..], &t[1..]),
    }
}

fn class_matches(class: &[char], c: char) -> bool {
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            if class[i] <= c && c <= class[i + 2] {
                return true;
            }
            i += 3;
        } else {
            if class[i] == c {
                return true;
            }
            i += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        assert_eq!(list_parse("a b c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(list_parse("").unwrap(), Vec::<String>::new());
        assert_eq!(list_parse("  one  ").unwrap(), vec!["one"]);
    }

    #[test]
    fn parse_braced_elements() {
        assert_eq!(list_parse("{a b} c").unwrap(), vec!["a b", "c"]);
        assert_eq!(
            list_parse("{nested {braces here}}").unwrap(),
            vec!["nested {braces here}"]
        );
        assert_eq!(list_parse("{}").unwrap(), vec![""]);
    }

    #[test]
    fn parse_quoted_elements() {
        assert_eq!(list_parse(r#""a b" c"#).unwrap(), vec!["a b", "c"]);
    }

    #[test]
    fn parse_errors() {
        assert!(list_parse("{unbalanced").is_err());
        assert!(list_parse(r#""unclosed"#).is_err());
    }

    #[test]
    fn format_round_trips() {
        let cases: Vec<Vec<String>> = vec![
            vec!["a".into(), "b".into()],
            vec!["with space".into()],
            vec!["".into(), "".into()],
            vec!["{braces}".into(), "$dollar".into(), "semi;colon".into()],
            vec!["tab\there".into()],
            vec!["ends with backslash\\".into()],
            vec!["un{balanced".into()],
        ];
        for case in cases {
            let s = list_format(&case);
            assert_eq!(list_parse(&s).unwrap(), case, "formatted as {s:?}");
        }
    }

    #[test]
    fn glob_basics() {
        assert!(glob_match("", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a*c", "abc"));
        assert!(glob_match("a*c", "ac"));
        assert!(!glob_match("a*c", "ab"));
        assert!(glob_match("??", "ab"));
        assert!(!glob_match("??", "a"));
    }

    #[test]
    fn glob_classes() {
        assert!(glob_match("[abc]x", "bx"));
        assert!(!glob_match("[abc]x", "dx"));
        assert!(glob_match("[a-f]*", "deadbeef"));
        assert!(!glob_match("[a-f]", "g"));
        assert!(!glob_match("[", "x"));
    }

    #[test]
    fn glob_escape() {
        assert!(glob_match(r"\*", "*"));
        assert!(!glob_match(r"\*", "x"));
    }

    #[test]
    fn multiple_stars() {
        assert!(glob_match("*a*b*", "xxaxxbxx"));
        assert!(!glob_match("*a*b*", "xxbxxaxx"));
    }
}
