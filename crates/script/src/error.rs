//! Script error and internal control-flow exception types.

use std::fmt;

use crate::parse::Span;

/// What class of failure a [`ScriptError`] reports.
///
/// Almost every error is [`General`](ScriptErrorKind::General) — a parse or
/// runtime failure of the script itself. [`BudgetExhausted`]
/// (ScriptErrorKind::BudgetExhausted) is the watchdog class: the
/// interpreter's step budget ([`crate::Interp::set_step_budget`]) ran out,
/// which means the *script* may be fine but is looping — campaign runners
/// escalate it to a `Hung` verdict instead of treating it as a script bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScriptErrorKind {
    /// A parse or runtime error of the script.
    #[default]
    General,
    /// The interpreter's step budget ran out before the script finished.
    BudgetExhausted,
}

/// An error raised while parsing or evaluating a script.
///
/// The [`Display`](fmt::Display) form matches Tcl's terse error style
/// (lowercase, no trailing punctuation), e.g. `can't read "x": no such
/// variable`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line the error was raised on (0 if unknown).
    pub line: u32,
    /// 1-based source column the error was raised on (0 if unknown).
    pub col: u32,
    /// Failure class (almost always [`ScriptErrorKind::General`]).
    pub kind: ScriptErrorKind,
}

impl ScriptError {
    /// Creates an error with no source attribution.
    pub fn new(message: impl Into<String>) -> Self {
        ScriptError {
            message: message.into(),
            line: 0,
            col: 0,
            kind: ScriptErrorKind::General,
        }
    }

    /// Creates an error attributed to a source line (column unknown).
    pub fn at(line: u32, message: impl Into<String>) -> Self {
        ScriptError {
            message: message.into(),
            line,
            col: 0,
            kind: ScriptErrorKind::General,
        }
    }

    /// Creates an error attributed to an exact source position.
    pub fn at_span(span: Span, message: impl Into<String>) -> Self {
        ScriptError {
            message: message.into(),
            line: span.line,
            col: span.col,
            kind: ScriptErrorKind::General,
        }
    }

    /// Creates the step-budget-exhausted watchdog error.
    pub fn budget_exhausted(span: Span) -> Self {
        ScriptError {
            message: "script execution budget exhausted".to_string(),
            line: span.line,
            col: span.col,
            kind: ScriptErrorKind::BudgetExhausted,
        }
    }

    /// Whether this is the step-budget watchdog error (a looping script,
    /// not a broken one).
    pub fn is_budget_exhausted(&self) -> bool {
        self.kind == ScriptErrorKind::BudgetExhausted
    }

    /// The error's source position (`line`/`col` may be 0 = unknown).
    pub fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 && self.col > 0 {
            write!(f, "{} (line {}:{})", self.message, self.line, self.col)
        } else if self.line > 0 {
            write!(f, "{} (line {})", self.message, self.line)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ScriptError {}

/// Internal control flow used during evaluation: errors plus the non-error
/// exceptional returns of Tcl (`break`, `continue`, `return`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Exc {
    Error(ScriptError),
    Break,
    Continue,
    Return(String),
}

impl From<ScriptError> for Exc {
    fn from(e: ScriptError) -> Self {
        Exc::Error(e)
    }
}

impl Exc {
    /// Converts a loop-less context's exception into a user-facing error.
    pub(crate) fn into_error(self) -> ScriptError {
        match self {
            Exc::Error(e) => e,
            Exc::Break => ScriptError::new("invoked \"break\" outside of a loop"),
            Exc::Continue => ScriptError::new("invoked \"continue\" outside of a loop"),
            Exc::Return(_) => ScriptError::new("invoked \"return\" outside of a proc"),
        }
    }
}

pub(crate) type EvalResult = Result<String, Exc>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_line() {
        assert_eq!(ScriptError::new("boom").to_string(), "boom");
        assert_eq!(ScriptError::at(3, "boom").to_string(), "boom (line 3)");
        assert_eq!(
            ScriptError::at_span(Span::at(3, 7), "boom").to_string(),
            "boom (line 3:7)"
        );
    }

    #[test]
    fn budget_errors_carry_their_kind() {
        let e = ScriptError::budget_exhausted(Span::at(2, 5));
        assert!(e.is_budget_exhausted());
        assert_eq!(e.line, 2);
        assert_eq!(
            e.to_string(),
            "script execution budget exhausted (line 2:5)"
        );
        assert!(!ScriptError::new("boom").is_budget_exhausted());
    }

    #[test]
    fn exc_into_error() {
        assert_eq!(
            Exc::Break.into_error().message,
            "invoked \"break\" outside of a loop"
        );
        let e = ScriptError::new("x");
        assert_eq!(Exc::Error(e.clone()).into_error(), e);
    }
}
